// Chaos soak — compound faults + flash overload with graceful degradation.
//
// The paper's testbed reshapes the network between runs; this soak breaks
// it mid-run. One mixed AR trace replays open-loop against a 4-venue mesh
// while a FaultSchedule scripts an edge crash/cold-restart, a topology
// partition, a WAN brownout, a Gilbert–Elliott bursty-loss window and a
// 4x flash-overload burst — with the full overload-control stack on
// (admission bound, wire deadlines, edge->cloud circuit breaker, client
// local fallback). Per run it reports goodput-within-deadline, p99, and
// per-heal hit-rate recovery time; a separate 4x-overload pair pins that
// overload control ON beats OFF on both goodput and p99; a final
// determinism pair pins that identical seeds + schedules replay
// bit-identically. Every row must fully drain.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "common/log.h"
#include "core/metrics.h"
#include "federation/federation_pipeline.h"
#include "netsim/chaos.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

using federation::FederationOutcome;
using federation::FederationPipeline;
using federation::FederationPipelineConfig;
using federation::FederationTransportConfig;

constexpr std::uint32_t kVenues = 4;
constexpr std::uint32_t kMobilesPerVenue = 4;
constexpr std::uint64_t kVideoId = 7;
constexpr std::uint32_t kObjects = 12;
constexpr double kBaseHz = 150;
/// Display budget goodput is measured against (and the wire deadline
/// clients stamp when overload control is on). Sits above the 1.1 s
/// on-device extraction a CoIC recognition always pays.
constexpr Duration kDeadline = Duration::Millis(2500);

/// Retry/ack stack for the soak: timeouts sized to the fault windows
/// (crash ~1 s must be survivable within the client budget), summary
/// aging so a crashed venue stops attracting probes.
FederationTransportConfig SoakTransport(bool overload_control) {
  FederationTransportConfig t;
  t.datagram = true;
  t.client_retry.timeout = Duration::Millis(2'000);
  t.client_retry.max_retries = 4;
  t.client_retry.max_timeout = Duration::Millis(8'000);
  t.cloud_retry.timeout = Duration::Millis(1'000);
  t.cloud_retry.max_retries = 3;
  t.cloud_retry.max_timeout = Duration::Millis(4'000);
  t.peer_probe_timeout = Duration::Millis(500);
  t.summary_ack = true;
  t.summary_max_age = Duration::Millis(3'000);
  if (overload_control) {
    t.edge_max_pending = 64;
    t.breaker_failure_threshold = 4;
    t.breaker_open_duration = Duration::Millis(1'000);
    t.client_deadline = kDeadline;
    t.client_local_fallback = true;
  }
  return t;
}

FederationPipelineConfig SoakConfig(bool overload_control) {
  FederationPipelineConfig config;
  config.venues = kVenues;
  config.mobiles_per_venue = kMobilesPerVenue;
  config.topology = federation::TopologyKind::kFullMesh;
  config.policy.kind = federation::PeerSelectKind::kSummaryDirected;
  config.gossip_period = Duration::Millis(100);
  config.network =
      core::NetworkCondition{Bandwidth::Gbps(1), Bandwidth::Mbps(200)};
  config.transport = SoakTransport(overload_control);
  return config;
}

/// Base soak trace plus a 4x flash-overload burst in [0.82, 0.88] of the
/// base span. Returns {trace, span}: span is the last base arrival, the
/// anchor every fault time is placed against.
std::pair<std::vector<trace::PlacedRecord>, SimTime> MakeSoakTrace(
    std::size_t base_ops) {
  trace::ClusterWorkloadConfig wl;
  wl.venues = kVenues;
  wl.base.users = kVenues * kMobilesPerVenue;
  wl.base.objects = kObjects;
  wl.base.scene_raster = 32;
  trace::ClusterWorkloadGenerator gen(wl);
  std::vector<std::uint64_t> model_ids;
  for (std::uint64_t m = 1; m <= kObjects; ++m) model_ids.push_back(m);

  auto placed = gen.GenerateMixed(base_ops, model_ids, kVideoId);
  trace::RetimeArrivals(std::span<trace::PlacedRecord>(placed), kBaseHz);
  SimTime span = SimTime::Epoch();
  for (const auto& p : placed) span = std::max(span, p.record.at);

  // Flash crowd: a quarter of the base volume arriving 4x as fast,
  // shifted into a narrow late window.
  auto burst = gen.GenerateMixed(base_ops / 4, model_ids, kVideoId);
  trace::RetimeArrivals(std::span<trace::PlacedRecord>(burst), 4 * kBaseHz,
                        /*seed=*/29);
  const Duration burst_start =
      Duration::Micros((span - SimTime::Epoch()).micros() * 82 / 100);
  for (auto& p : burst) {
    p.record.at = p.record.at + burst_start;
    placed.push_back(p);
  }
  std::sort(placed.begin(), placed.end(),
            [](const trace::PlacedRecord& a, const trace::PlacedRecord& b) {
              return a.record.at < b.record.at;
            });
  return {std::move(placed), span};
}

struct HealPoint {
  const char* fault;  ///< "crash-rejoin" / "partition-heal"
  SimTime at;
  std::vector<std::uint32_t> venues;  ///< Venues whose service was cut.
};

/// The scripted compound-fault scenario, all times anchored on the base
/// trace span. Also returns the heal instants recovery is measured from.
netsim::FaultSchedule MakeSchedule(SimTime span,
                                   std::vector<HealPoint>* heals) {
  const auto frac = [span](int pct) {
    return SimTime::Epoch() +
           Duration::Micros((span - SimTime::Epoch()).micros() * pct / 100);
  };
  netsim::FaultSchedule chaos;

  netsim::FaultSchedule::Crash crash;
  crash.venue = 1;
  crash.down_at = frac(20);
  crash.up_at = frac(32);
  crash.wipe_cache = true;  // cold restart: hit rate must rebuild
  chaos.crashes.push_back(crash);
  heals->push_back({"crash-rejoin", crash.up_at, {1}});

  netsim::FaultSchedule::Partition part;
  part.island = {2, 3};
  part.at = frac(45);
  part.heal_at = frac(57);
  chaos.partitions.push_back(part);
  heals->push_back({"partition-heal", part.heal_at, {2, 3}});

  // WAN brownout at venue 0: bandwidth dips to a tenth, then restores.
  netsim::FaultSchedule::Brownout brownout;
  brownout.venue = 0;
  brownout.steps.push_back(
      netsim::LinkConditionStep{frac(60), Bandwidth::Mbps(20), -1.0, -1});
  brownout.steps.push_back(
      netsim::LinkConditionStep{frac(68), Bandwidth::Mbps(200), -1.0, -1});
  chaos.brownouts.push_back(brownout);

  netsim::FaultSchedule::LossBurst burst;
  burst.at = frac(70);
  burst.end_at = frac(78);
  burst.model.good_to_bad = 0.05;
  burst.model.bad_to_good = 0.20;
  burst.model.good_loss_rate = 0.0;
  burst.model.bad_loss_rate = 0.25;
  chaos.loss_bursts.push_back(burst);

  return chaos;
}

struct SoakResult {
  std::uint64_t operations = 0;
  std::uint64_t drained = 0;
  std::uint64_t errors = 0;
  std::uint64_t achieved = 0;  ///< Non-error completions.
  std::uint64_t goodput = 0;   ///< Non-error, non-degraded, within deadline.
  std::uint64_t degraded = 0;  ///< Local-fallback completions.
  double hit_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t overload_sheds = 0;
  std::uint64_t overload_rejects = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t down_drops = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t events_fired = 0;
  double wall_secs = 0;
  std::vector<FederationOutcome> outcomes;
};

SoakResult Measure(FederationPipelineConfig config,
                   const std::vector<trace::PlacedRecord>& placed,
                   std::uint32_t render_models = kObjects) {
  FederationPipeline pipeline(std::move(config));
  for (std::uint64_t m = 1; m <= render_models; ++m) {
    pipeline.RegisterModel(m, KB(256) + (m % 8) * KB(4));
  }
  for (const auto& p : placed) pipeline.EnqueuePlaced(p);

  const obs::MetricsSnapshot before = pipeline.metrics().Snapshot();
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t fired_before = pipeline.scheduler().total_fired();
  auto outcomes = pipeline.RunOpenLoop();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const obs::MetricsSnapshot delta =
      pipeline.metrics().Snapshot().DiffSince(before);

  core::QoeAggregator agg;
  SoakResult r;
  for (const auto& o : outcomes) {
    agg.Add(o.outcome);
    if (o.outcome.error) continue;
    ++r.achieved;
    if (o.outcome.source == proto::ResultSource::kLocal) {
      ++r.degraded;
    } else if (o.outcome.latency <= kDeadline) {
      ++r.goodput;
    }
  }
  r.operations = placed.size();
  r.drained = outcomes.size();
  r.errors = agg.errors();
  r.hit_rate = agg.HitRate();
  r.p50_ms = agg.PercentileLatencyMs(50);
  r.p99_ms = agg.PercentileLatencyMs(99);
  r.overload_sheds = pipeline.total_overload_sheds();
  r.overload_rejects = pipeline.total_overload_rejects();
  for (std::uint32_t v = 0; v < pipeline.config().venues; ++v) {
    r.breaker_opens += pipeline.edge(v).breaker_opens();
  }
  r.fault_events =
      pipeline.chaos() != nullptr ? pipeline.chaos()->events_fired() : 0;
  r.down_drops = delta.value("net.links.down_drops");
  r.client_timeouts = pipeline.total_client_timeouts();
  r.events_fired = pipeline.scheduler().total_fired() - fired_before;
  r.wall_secs = wall;
  r.outcomes = std::move(outcomes);
  return r;
}

/// Hit-rate recovery after a heal: the end of the first window of
/// `kWindow` affected-venue completions at/after `heal` whose cache hit
/// rate reaches half the fault-free baseline. Falls back to the last
/// affected completion when the run ends first (finite either way).
struct Recovery {
  double ms = 0;
  bool recovered = false;
};

Recovery RecoveryAfterHeal(const SoakResult& r, const HealPoint& heal,
                           double baseline_hit_rate) {
  constexpr std::size_t kWindow = 20;
  const double target = 0.5 * baseline_hit_rate;
  std::vector<const FederationOutcome*> post;
  for (const auto& o : r.outcomes) {
    if (o.completed_at < heal.at) continue;
    if (std::find(heal.venues.begin(), heal.venues.end(), o.venue) ==
        heal.venues.end()) {
      continue;
    }
    post.push_back(&o);
  }
  std::sort(post.begin(), post.end(),
            [](const FederationOutcome* a, const FederationOutcome* b) {
              return a->completed_at < b->completed_at;
            });
  Recovery rec;
  for (std::size_t i = 0; i + kWindow <= post.size(); ++i) {
    std::size_t hits = 0;
    for (std::size_t j = i; j < i + kWindow; ++j) {
      const auto src = post[j]->outcome.source;
      if (src == proto::ResultSource::kEdgeCache ||
          src == proto::ResultSource::kPeerEdge) {
        ++hits;
      }
    }
    if (static_cast<double>(hits) / kWindow >= target) {
      rec.ms = (post[i + kWindow - 1]->completed_at - heal.at).millis();
      rec.recovered = true;
      return rec;
    }
  }
  rec.ms = post.empty()
               ? 0.0
               : (post.back()->completed_at - heal.at).millis();
  return rec;
}

void PrintRow(BenchJson& json, const char* row, const SoakResult& r) {
  std::printf(
      "%-16s %6llu/%llu %5llu %6llu %6llu %6.1f%% %8.1f %9.1f %5llu %5llu "
      "%3llu %4llu\n",
      row, static_cast<unsigned long long>(r.drained),
      static_cast<unsigned long long>(r.operations),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.goodput),
      static_cast<unsigned long long>(r.degraded), r.hit_rate * 100, r.p50_ms,
      r.p99_ms, static_cast<unsigned long long>(r.overload_sheds),
      static_cast<unsigned long long>(r.overload_rejects),
      static_cast<unsigned long long>(r.breaker_opens),
      static_cast<unsigned long long>(r.fault_events));
  json.AddRow()
      .Set("row", row)
      .Set("operations", r.operations)
      .Set("drained", r.drained)
      .Set("errors", r.errors)
      .Set("achieved", r.achieved)
      .Set("goodput", r.goodput)
      .Set("degraded", r.degraded)
      .Set("hit_rate", r.hit_rate)
      .Set("p50_ms", r.p50_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("overload_sheds", r.overload_sheds)
      .Set("overload_rejects", r.overload_rejects)
      .Set("breaker_opens", r.breaker_opens)
      .Set("fault_events", r.fault_events)
      .Set("down_drops", r.down_drops)
      .Set("client_timeouts", r.client_timeouts)
      .SetEvents(r.events_fired);
}

/// The 4x-overload pair: a render storm of mostly-distinct models over a
/// tight 10 Mbps WAN, offered at 4x the WAN's service rate. OFF queues
/// until client budgets burn; ON sheds at the admission bound (sized so
/// every admitted fetch still meets the deadline) and degrades the rest
/// to the on-device fallback.
SoakResult MeasureOverload(bool overload_control, std::size_t ops) {
  FederationPipelineConfig config;
  config.venues = kVenues;
  config.mobiles_per_venue = kMobilesPerVenue;
  config.topology = federation::TopologyKind::kFullMesh;
  config.gossip_period = Duration::Millis(100);
  config.network =
      core::NetworkCondition{Bandwidth::Mbps(100), Bandwidth::Mbps(10)};
  FederationTransportConfig t;
  t.datagram = true;
  t.client_retry.timeout = Duration::Millis(4'000);
  t.client_retry.max_retries = 3;
  t.client_retry.max_timeout = Duration::Millis(8'000);
  // Generous edge->cloud timeout: the WAN is saturated, not dead, and a
  // spuriously retransmitted fetch would only deepen the queue.
  t.cloud_retry.timeout = Duration::Millis(8'000);
  t.cloud_retry.max_retries = 1;
  t.cloud_retry.max_timeout = Duration::Millis(8'000);
  t.peer_probe_timeout = Duration::Millis(500);
  t.summary_ack = true;
  if (overload_control) {
    // ~215 ms WAN serialization per ~270 KB model: 8 in flight keep the
    // oldest admitted fetch inside the 2.5 s deadline.
    t.edge_max_pending = 8;
    t.breaker_failure_threshold = 6;
    t.breaker_open_duration = Duration::Millis(2'000);
    t.client_deadline = kDeadline;
    t.client_local_fallback = true;
  }
  config.transport = t;

  const std::uint32_t models = static_cast<std::uint32_t>(ops);
  auto placed = trace::MakeRenderStorm(kVenues, ops, 4 * 2.0 * kVenues,
                                       models);
  return Measure(std::move(config), placed, models);
}

void PrintSoakTable(bool quick) {
  PrintHeader(
      "Chaos soak: 4-venue mesh, mixed AR trace, scripted compound faults\n"
      "(edge crash + cold restart, partition, WAN brownout, bursty loss,\n"
      "4x flash crowd) with admission bound + deadlines + circuit breaker\n"
      "+ client local fallback; every row must fully drain");
  std::printf("%-16s %9s %5s %6s %6s %7s %8s %9s %5s %5s %3s %4s\n", "row",
              "drained", "err", "good", "degr", "hit", "p50 ms", "p99 ms",
              "shed", "rej", "brk", "flt");
  BenchJson json("chaos_soak");

  const std::size_t base_ops = quick ? 500 : 4'000;
  const auto [placed, span] = MakeSoakTrace(base_ops);

  // Fault-free anchor: same trace (flash crowd included), no schedule.
  const SoakResult baseline = Measure(SoakConfig(true), placed);
  PrintRow(json, "baseline", baseline);

  std::vector<HealPoint> heals;
  const netsim::FaultSchedule chaos = MakeSchedule(span, &heals);
  FederationPipelineConfig chaos_config = SoakConfig(true);
  chaos_config.chaos = chaos;
  const SoakResult faulted = Measure(chaos_config, placed);
  PrintRow(json, "chaos", faulted);

  for (const HealPoint& heal : heals) {
    const Recovery rec = RecoveryAfterHeal(faulted, heal, baseline.hit_rate);
    std::printf("  %-14s heal at %7.0f ms -> hit rate back in %7.1f ms%s\n",
                heal.fault, (heal.at - SimTime::Epoch()).millis(), rec.ms,
                rec.recovered ? "" : " (run ended first)");
    json.AddRow()
        .Set("row", "heal")
        .Set("fault", heal.fault)
        .Set("heal_ms", (heal.at - SimTime::Epoch()).millis())
        .Set("recovery_ms", rec.ms)
        .Set("recovered", rec.recovered ? 1 : 0);
  }

  const std::size_t overload_ops = quick ? 192 : 640;
  PrintRow(json, "overload-4x-off", MeasureOverload(false, overload_ops));
  PrintRow(json, "overload-4x-on", MeasureOverload(true, overload_ops));

  // Determinism: the same seed + schedule must replay bit-identically —
  // every outcome's venue, task, source, error flag, latency and
  // completion instant.
  const SoakResult replay = Measure(chaos_config, placed);
  std::uint64_t mismatch = 0;
  if (replay.outcomes.size() != faulted.outcomes.size()) {
    mismatch = faulted.outcomes.size() + replay.outcomes.size();
  } else {
    for (std::size_t i = 0; i < replay.outcomes.size(); ++i) {
      const auto& a = faulted.outcomes[i];
      const auto& b = replay.outcomes[i];
      if (std::tuple(a.venue, a.outcome.task, a.outcome.source,
                     a.outcome.error, a.outcome.latency.micros(),
                     a.completed_at.micros()) !=
          std::tuple(b.venue, b.outcome.task, b.outcome.source,
                     b.outcome.error, b.outcome.latency.micros(),
                     b.completed_at.micros())) {
        ++mismatch;
      }
    }
  }
  std::printf("  determinism: %llu mismatched outcomes across 2 runs "
              "(%llu fault events each)\n",
              static_cast<unsigned long long>(mismatch),
              static_cast<unsigned long long>(replay.fault_events));
  json.AddRow()
      .Set("row", "determinism")
      .Set("runs", 2)
      .Set("outcome_mismatch", mismatch)
      .Set("fault_events", replay.fault_events);

  std::printf(
      "\nevery row drains; under the 4x storm overload control ON must beat\n"
      "OFF on goodput-within-deadline and p99 (sheds become fast degraded\n"
      "local results instead of queue-and-timeout errors); identical seed +\n"
      "schedule replays to identical outcomes.\n");
}

void BM_ChaosSoak(benchmark::State& state) {
  const auto [placed, span] =
      MakeSoakTrace(static_cast<std::size_t>(state.range(0)));
  std::vector<HealPoint> heals;
  for (auto _ : state) {
    FederationPipelineConfig config = SoakConfig(true);
    heals.clear();
    config.chaos = MakeSchedule(span, &heals);
    const auto r = Measure(config, placed);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaosSoak)->Arg(500);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kError);
  const bool quick = coic::bench::QuickMode(argc, argv);
  coic::bench::PrintSoakTable(quick);
  if (quick) {
    char name[] = "bench_chaos_soak";
    char min_time[] = "--benchmark_min_time=0.001";
    char* quick_argv[] = {name, min_time, nullptr};
    int quick_argc = 2;
    benchmark::Initialize(&quick_argc, quick_argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
