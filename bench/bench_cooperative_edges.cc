// Cooperative multi-edge ablation — the "Co" in CoIC.
//
// Two venues (edge A, edge B) serve co-located user populations looking
// at overlapping object sets. Venue A's users arrive first and warm A's
// cache; venue B's users then issue overlapping requests. With
// cooperation on, B's misses probe A over the LAN before the cloud.
// The table sweeps the cross-venue overlap fraction and reports venue
// B's mean latency and request-source breakdown for both designs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/coop_pipeline.h"

namespace coic::bench {
namespace {

struct CoopResult {
  double venue_b_mean_ms = 0;
  std::uint64_t cloud_tasks = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t cloud_served = 0;
};

CoopResult MeasureCoop(bool cooperative, double overlap_fraction,
                       std::size_t requests_per_venue) {
  core::CoopPipelineConfig config;
  config.cooperative = cooperative;
  config.recognition_classes = 40;
  core::CoopPipeline pipeline(config);

  Rng rng(0xC00B);
  // Venue A's users sweep objects 1..12 (warming A).
  for (std::size_t i = 0; i < requests_per_venue; ++i) {
    pipeline.EnqueueRecognitionAt(
        0, {.scene_id = 1 + rng.NextBelow(12),
            .view_angle_deg = (rng.NextDouble() * 2 - 1) * 5});
  }
  // Venue B's users draw from a pool that overlaps A's by the configured
  // fraction: overlapping requests can be served by A's edge.
  for (std::size_t i = 0; i < requests_per_venue; ++i) {
    const bool shared = rng.NextBool(overlap_fraction);
    const std::uint64_t scene =
        shared ? 1 + rng.NextBelow(12) : 21 + rng.NextBelow(12);
    pipeline.EnqueueRecognitionAt(
        1, {.scene_id = scene,
            .view_angle_deg = (rng.NextDouble() * 2 - 1) * 5});
  }

  const auto outcomes = pipeline.Run();
  CoopResult result;
  double total_ms = 0;
  std::size_t venue_b = 0;
  for (const auto& vo : outcomes) {
    if (vo.venue != 1) continue;
    ++venue_b;
    total_ms += vo.outcome.latency.millis();
    switch (vo.outcome.source) {
      case proto::ResultSource::kEdgeCache: ++result.local_hits; break;
      case proto::ResultSource::kPeerEdge: ++result.peer_hits; break;
      default: ++result.cloud_served; break;
    }
  }
  result.venue_b_mean_ms = total_ms / static_cast<double>(venue_b);
  result.cloud_tasks = pipeline.cloud().tasks_executed();
  return result;
}

void PrintCoopTable() {
  PrintHeader(
      "Cooperative edges ablation: venue B latency vs cross-venue overlap\n"
      "40 warming requests at venue A, then 40 at venue B; sources for B");
  std::printf("%-10s | %-34s | %-34s\n", "", "non-cooperative",
              "cooperative (peer probe)");
  std::printf("%-10s | %10s %6s %6s %6s | %10s %6s %6s %6s %8s\n", "overlap",
              "mean ms", "local", "cloud", "tasks", "mean ms", "local", "peer",
              "cloud", "saving");
  BenchJson json("cooperative_edges");
  for (const double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto off = MeasureCoop(false, overlap, 40);
    const auto on = MeasureCoop(true, overlap, 40);
    std::printf("%-10.2f | %10.1f %6llu %6llu %6llu | %10.1f %6llu %6llu "
                "%6llu %7.1f%%\n",
                overlap, off.venue_b_mean_ms,
                static_cast<unsigned long long>(off.local_hits),
                static_cast<unsigned long long>(off.cloud_served),
                static_cast<unsigned long long>(off.cloud_tasks),
                on.venue_b_mean_ms,
                static_cast<unsigned long long>(on.local_hits),
                static_cast<unsigned long long>(on.peer_hits),
                static_cast<unsigned long long>(on.cloud_served),
                (1.0 - on.venue_b_mean_ms / off.venue_b_mean_ms) * 100);
    json.AddRow()
        .Set("overlap", overlap)
        .Set("solo_mean_ms", off.venue_b_mean_ms)
        .Set("coop_mean_ms", on.venue_b_mean_ms)
        .Set("coop_local_hits", on.local_hits)
        .Set("coop_peer_hits", on.peer_hits)
        .Set("coop_cloud_served", on.cloud_served)
        .Set("saving_pct",
             (1.0 - on.venue_b_mean_ms / off.venue_b_mean_ms) * 100);
  }
  std::printf("\n'tasks' = cloud executions across both venues; cooperation\n"
              "converts venue B's cloud misses into LAN peer hits as overlap\n"
              "grows, at a bounded one-LAN-RTT penalty when overlap is zero.\n");
}

void BM_CoopExchange(benchmark::State& state) {
  const bool cooperative = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureCoop(cooperative, 0.5, 10));
  }
  state.SetLabel(cooperative ? "coop" : "solo");
}
BENCHMARK(BM_CoopExchange)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintCoopTable();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
