// §4 cache-management ablation — the paper's prototype uses a "simple
// cache management policy" and names better cache management as future
// work. This bench sweeps eviction policy x capacity under a Zipf render
// workload and reports hit rates, quantifying how much policy choice
// matters at each cache size. Uses IcCache directly (no network) so the
// sweep covers thousands of requests.
#include <benchmark/benchmark.h>

#include "cache/ic_cache.h"
#include "bench/bench_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

using cache::IcCache;
using cache::IcCacheConfig;
using cache::PolicyKind;

/// Replays a Zipf-popular render-object stream against one cache setup.
double MeasureHitRate(PolicyKind policy, Bytes capacity, std::size_t requests,
                      bool tinylfu = false) {
  IcCacheConfig config;
  config.policy = policy;
  config.capacity_bytes = capacity;
  config.use_tinylfu = tinylfu;
  config.tinylfu_capacity_hint = 256;
  IcCache ic_cache(config);

  // 64 objects, ~256 KB results, Zipf(0.9) popularity: a typical edge
  // working set much larger than small cache capacities.
  constexpr std::size_t kObjects = 64;
  constexpr Bytes kResultBytes = 256 * 1000;
  ZipfDistribution popularity(kObjects, 0.9);
  Rng rng(0xE71C);

  SimTime now = SimTime::Epoch();
  for (std::size_t i = 0; i < requests; ++i) {
    now = now + Duration::Millis(50);
    const std::size_t object = popularity.Sample(rng);
    const auto key = proto::FeatureDescriptor::ForHash(
        proto::TaskKind::kRender, Digest128{0xF00D, object + 1});
    const auto outcome = ic_cache.Lookup(key, now);
    if (!outcome.hit) {
      ic_cache.Insert(key, DeterministicBytes(kResultBytes, object), now);
    }
  }
  return ic_cache.stats().HitRate();
}

void PrintEvictionSweep() {
  PrintHeader(
      "Eviction ablation (paper 4 future work): policy x capacity\n"
      "Zipf(0.9) over 64 render objects of 256 KB, 4000 requests; hit rate");
  const std::vector<Bytes> capacities = {MB(1), MB(2), MB(4), MB(8), MB(16), 0};
  std::printf("%-16s", "capacity");
  for (const auto policy : {PolicyKind::kLru, PolicyKind::kFifo,
                            PolicyKind::kLfu, PolicyKind::kSlru}) {
    std::printf(" %9s", std::string(cache::PolicyKindName(policy)).c_str());
  }
  std::printf(" %9s\n", "lru+tlfu");
  BenchJson json("eviction_ablation");
  for (const Bytes capacity : capacities) {
    if (capacity == 0) {
      std::printf("%-16s", "unlimited");
    } else {
      std::printf("%-16s", FormatBytes(capacity).c_str());
    }
    auto& row = json.AddRow().Set("capacity_bytes", capacity);
    for (const auto policy : {PolicyKind::kLru, PolicyKind::kFifo,
                              PolicyKind::kLfu, PolicyKind::kSlru}) {
      const double hit_rate = MeasureHitRate(policy, capacity, 4000);
      std::printf("    %5.1f%%", hit_rate * 100);
      row.Set(cache::PolicyKindName(policy), hit_rate);
    }
    const double tlfu = MeasureHitRate(PolicyKind::kLru, capacity, 4000,
                                       /*tinylfu=*/true);
    std::printf("    %5.1f%%", tlfu * 100);
    row.Set("lru_tinylfu", tlfu);
    std::printf("\n");
  }
}

void BM_CacheReplay(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureHitRate(policy, MB(4), 2000));
  }
  state.counters["hit_rate"] = MeasureHitRate(policy, MB(4), 2000);
}
BENCHMARK(BM_CacheReplay)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintEvictionSweep();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
