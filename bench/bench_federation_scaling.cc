// Federation scaling — cluster-wide hit rate and probe traffic vs
// cluster size and peer-selection policy.
//
// K venues serve K user populations drawing from one shared Zipf object
// pool (the metro-popular content of the paper's co-location study).
// Each venue's first request for an object misses everywhere; once any
// venue has it, federation turns the other venues' misses into LAN peer
// hits. The table reports, per cluster size and policy: cluster-wide
// hit rate (local + peer), peer probes sent (the traffic a policy
// spends), summary-gossip messages, and mean latency.
//
// Two further sections close ROADMAP items:
//   * gossip_period × churn staleness ablation — hit-rate loss per unit
//     of summary staleness, and full- vs delta-gossip wire bytes under a
//     rotating catalogue (the regime where every round re-advertises);
//   * relay storm on a shaped 8-ring — broadcast probes riding the same
//     venue links as relays and gossip, p99 inflation vs link speed;
//   * hierarchical two-tier federation at 16-256 venues — flat full-mesh
//     gossip vs region digests (bytes, hit rate, p99), a 64-edge run on
//     the sharded engine with one region per shard, and a 1-vs-4-worker
//     determinism check over the sorted outcome stream.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/status.h"
#include "federation/federation_pipeline.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

using federation::FederationPipeline;
using federation::FederationPipelineConfig;
using federation::PeerSelectKind;
using federation::TopologyKind;

struct FederationResult {
  double hit_rate = 0;
  double mean_ms = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t peer_probes = 0;
  std::uint64_t summary_updates = 0;
  std::uint64_t cloud_tasks = 0;
  std::uint64_t sim_events = 0;
};

FederationResult MeasureCluster(std::uint32_t venues, PeerSelectKind policy,
                                bool cooperative,
                                std::size_t requests_per_venue = 30,
                                std::uint32_t objects = 12) {
  FederationPipelineConfig config;
  config.venues = venues;
  config.cooperative = cooperative;
  config.policy.kind = policy;
  config.gossip_period = Duration::Millis(100);
  FederationPipeline pipeline(config);

  std::vector<std::uint64_t> model_ids;
  for (std::uint64_t m = 1; m <= objects; ++m) {
    pipeline.RegisterModel(m, KB(256) + m * KB(8));
    model_ids.push_back(m);
  }

  // Interleave venues so the shared pool warms up cluster-wide, the way
  // co-located crowds actually arrive.
  Rng rng(0xFED5 + venues);
  ZipfDistribution popularity(objects, 0.9);
  for (std::size_t i = 0; i < requests_per_venue; ++i) {
    for (std::uint32_t v = 0; v < venues; ++v) {
      pipeline.EnqueueRenderAt(v, model_ids[popularity.Sample(rng)]);
    }
  }

  const auto outcomes = pipeline.Run();
  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  FederationResult result;
  result.hit_rate = agg.HitRate();
  result.mean_ms = agg.MeanLatencyMs();
  result.peer_hits = pipeline.total_peer_hits();
  result.peer_probes = pipeline.total_peer_probes();
  result.summary_updates = pipeline.summary_updates_sent();
  result.cloud_tasks = pipeline.cloud().tasks_executed();
  result.sim_events = pipeline.scheduler().total_fired();
  return result;
}

void PrintFederationTable(BenchJson& json) {
  PrintHeader(
      "Federation scaling: cluster-wide hit rate & probe traffic\n"
      "K venues x 30 shared-pool render requests each, Zipf(0.9) over 12 "
      "objects;\nfull-mesh metro LAN, gossip every 100 ms");
  std::printf("%-8s %-18s %9s %9s %8s %8s %9s %10s\n", "venues", "policy",
              "hit rate", "mean ms", "peerhit", "probes", "gossip", "cloud");
  for (const std::uint32_t venues : {1u, 2u, 4u, 8u}) {
    const struct {
      const char* label;
      PeerSelectKind kind;
      bool cooperative;
    } kColumns[] = {
        {"solo", PeerSelectKind::kBroadcastAll, false},
        {"broadcast-all", PeerSelectKind::kBroadcastAll, true},
        {"summary-directed", PeerSelectKind::kSummaryDirected, true},
        {"random-k", PeerSelectKind::kRandomK, true},
    };
    for (const auto& col : kColumns) {
      if (venues == 1 && col.cooperative) continue;  // no peers to probe
      const auto r = MeasureCluster(venues, col.kind, col.cooperative);
      std::printf("%-8u %-18s %8.1f%% %9.1f %8llu %8llu %9llu %10llu\n",
                  venues, col.label, r.hit_rate * 100, r.mean_ms,
                  static_cast<unsigned long long>(r.peer_hits),
                  static_cast<unsigned long long>(r.peer_probes),
                  static_cast<unsigned long long>(r.summary_updates),
                  static_cast<unsigned long long>(r.cloud_tasks));
      json.AddRow()
          .Set("section", "scaling")
          .Set("venues", static_cast<std::uint64_t>(venues))
          .Set("policy", col.label)
          .Set("hit_rate", r.hit_rate)
          .Set("mean_ms", r.mean_ms)
          .Set("peer_hits", r.peer_hits)
          .Set("peer_probes", r.peer_probes)
          .Set("summary_updates", r.summary_updates)
          .Set("cloud_tasks", r.cloud_tasks)
          .SetEvents(r.sim_events);
    }
  }
  std::printf(
      "\nsummary-directed should match broadcast-all's hit rate while\n"
      "sending a small fraction of its probes; the residual gap is\n"
      "gossip staleness (results cached since the last summary round).\n");
}

// ---------------------------------------------------------------------------
// Gossip staleness × churn ablation (delta vs full summaries)
// ---------------------------------------------------------------------------

struct ChurnResult {
  double hit_rate = 0;
  double mean_ms = 0;
  std::uint64_t summary_updates = 0;
  std::uint64_t summary_deltas = 0;
  std::uint64_t bytes_full = 0;
  std::uint64_t bytes_delta = 0;
  std::uint64_t sim_events = 0;
};

/// A churning shared catalogue (trace::MakeChurnWorkload): the Zipf
/// window slides every `rotate` rounds, so fresh content keeps entering
/// every cache and summaries keep changing — the regime where gossip
/// frames dominate. Smaller `rotate` = higher churn.
ChurnResult MeasureChurn(Duration gossip_period, std::uint32_t rotate,
                         bool delta_gossip,
                         std::size_t requests_per_venue = 40) {
  constexpr std::uint32_t kVenues = 4;
  constexpr std::uint32_t kWindow = 8;
  constexpr std::uint32_t kCatalog = 40;
  FederationPipelineConfig config;
  config.venues = kVenues;
  config.policy.kind = PeerSelectKind::kSummaryDirected;
  config.gossip_period = gossip_period;
  config.delta_gossip = delta_gossip;
  FederationPipeline pipeline(config);

  for (std::uint64_t m = 1; m <= kCatalog; ++m) {
    pipeline.RegisterModel(m, KB(128) + m * KB(4));
  }
  for (const auto& p : trace::MakeChurnWorkload(kVenues, requests_per_venue,
                                                kWindow, kCatalog, rotate)) {
    pipeline.EnqueuePlaced(p);
  }

  const auto outcomes = pipeline.Run();
  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  ChurnResult result;
  result.hit_rate = agg.HitRate();
  result.mean_ms = agg.MeanLatencyMs();
  result.summary_updates = pipeline.summary_updates_sent();
  result.summary_deltas = pipeline.summary_deltas_sent();
  result.bytes_full = pipeline.summary_bytes_full();
  result.bytes_delta = pipeline.summary_bytes_delta();
  result.sim_events = pipeline.scheduler().total_fired();
  return result;
}

void PrintStalenessChurnTable(BenchJson& json) {
  PrintHeader(
      "Gossip staleness x churn: hit rate & summary wire bytes\n"
      "4 venues, summary-directed, Zipf(0.9) window of 8 sliding over a\n"
      "40-object catalogue; high churn slides every 4 rounds, low every 16.\n"
      "Each cell runs full-summary gossip vs delta gossip on an identical\n"
      "workload: same hit rate, far fewer gossip bytes.");
  std::printf("%-10s %-6s %18s %18s %14s %14s %14s\n", "period", "churn",
              "hit full/delta", "gossip KB f/d", "full frames",
              "delta frames", "delta shrink");
  for (const auto period_ms : {25u, 100u, 400u, 1600u}) {
    for (const std::uint32_t rotate : {4u, 16u}) {
      const char* churn = rotate == 4 ? "high" : "low";
      const auto full =
          MeasureChurn(Duration::Millis(period_ms), rotate, false);
      const auto delta =
          MeasureChurn(Duration::Millis(period_ms), rotate, true);
      const std::uint64_t full_total = full.bytes_full + full.bytes_delta;
      const std::uint64_t delta_total = delta.bytes_full + delta.bytes_delta;
      std::printf(
          "%6u ms  %-6s %8.1f%% /%6.1f%% %9.1f /%7.1f %14llu %14llu %13.1fx\n",
          period_ms, churn, full.hit_rate * 100, delta.hit_rate * 100,
          static_cast<double>(full_total) / 1024.0,
          static_cast<double>(delta_total) / 1024.0,
          static_cast<unsigned long long>(delta.summary_updates),
          static_cast<unsigned long long>(delta.summary_deltas),
          delta_total > 0
              ? static_cast<double>(full_total) /
                    static_cast<double>(delta_total)
              : 0.0);
      json.AddRow()
          .Set("section", "staleness_churn")
          .Set("gossip_period_ms", static_cast<std::uint64_t>(period_ms))
          .Set("churn", churn)
          .Set("hit_rate_full", full.hit_rate)
          .Set("hit_rate_delta", delta.hit_rate)
          .Set("mean_ms_full", full.mean_ms)
          .Set("mean_ms_delta", delta.mean_ms)
          .Set("summary_bytes_full", full_total)
          .Set("summary_bytes_delta", delta_total)
          .Set("full_frames_delta_mode", delta.summary_updates)
          .Set("delta_frames", delta.summary_deltas)
          .SetEvents(full.sim_events + delta.sim_events);
    }
  }
  std::printf(
      "\nhit rate falls as the gossip period grows (staleness: content\n"
      "cached since the last round is not yet advertised) and delta\n"
      "gossip matches full gossip's hit rate at a fraction of the bytes —\n"
      "most rounds ship a handful of keys instead of the whole Bloom\n"
      "array, and peers that are already current get nothing at all.\n");
}

// ---------------------------------------------------------------------------
// Relay storm on a shaped 8-ring
// ---------------------------------------------------------------------------

struct RelayStormResult {
  double hit_rate = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t relay_forwards = 0;
  std::uint64_t peer_probes = 0;
  std::uint64_t sim_events = 0;
};

/// Broadcast probes on an 8-ring: most peers are 2-4 hops away, so every
/// miss fans relay traffic onto the same venue links that carry peer
/// replies and gossip. `peer_mbps` shapes those links.
RelayStormResult MeasureRelayStorm(double peer_mbps,
                                   std::size_t requests = 240,
                                   double rate_hz = 600.0) {
  FederationPipelineConfig config;
  config.venues = 8;
  config.topology = TopologyKind::kRing;
  config.policy.kind = PeerSelectKind::kBroadcastAll;
  config.gossip_period = Duration::Millis(100);
  config.peer_link.bandwidth = Bandwidth::Mbps(peer_mbps);
  config.peer_link.propagation = Duration::Millis(1);
  // Provisioned access + WAN so the shaped venue links dominate.
  config.network =
      core::NetworkCondition{Bandwidth::Gbps(1), Bandwidth::Mbps(200)};
  FederationPipeline pipeline(config);

  constexpr std::uint32_t kModels = 10;
  for (std::uint64_t m = 1; m <= kModels; ++m) {
    pipeline.RegisterModel(m, KB(64) + m * KB(4));
  }
  const auto placed = trace::MakeRenderStorm(8, requests, rate_hz, kModels);
  for (const auto& p : placed) pipeline.EnqueuePlaced(p);

  const auto outcomes = pipeline.RunOpenLoop();
  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  RelayStormResult result;
  result.hit_rate = agg.HitRate();
  result.mean_ms = agg.MeanLatencyMs();
  result.p50_ms = agg.PercentileLatencyMs(50);
  result.p99_ms = agg.PercentileLatencyMs(99);
  result.relay_forwards = pipeline.relay_forwards();
  result.peer_probes = pipeline.total_peer_probes();
  result.sim_events = pipeline.scheduler().total_fired();
  return result;
}

void PrintRelayStormTable(BenchJson& json) {
  PrintHeader(
      "Relay storm: broadcast probes on a shaped 8-ring\n"
      "240 render requests at 600 req/s; every miss probes all 7 peers,\n"
      "so relays to the 2-4 hop venues share the ring links with replies\n"
      "and gossip. Shaping the venue links inflates the relay path tail.");
  std::printf("%-12s %9s %9s %9s %9s %9s %9s\n", "peer link", "hit rate",
              "mean ms", "p50 ms", "p99 ms", "relays", "probes");
  for (const double mbps : {1000.0, 100.0, 25.0}) {
    const auto r = MeasureRelayStorm(mbps);
    std::printf("%8.0f Mbps %8.1f%% %9.1f %9.1f %9.1f %9llu %9llu\n", mbps,
                r.hit_rate * 100, r.mean_ms, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.relay_forwards),
                static_cast<unsigned long long>(r.peer_probes));
    json.AddRow()
        .Set("section", "relay_storm")
        .Set("peer_mbps", mbps)
        .Set("hit_rate", r.hit_rate)
        .Set("mean_ms", r.mean_ms)
        .Set("p50_ms", r.p50_ms)
        .Set("p99_ms", r.p99_ms)
        .Set("relay_forwards", r.relay_forwards)
        .Set("peer_probes", r.peer_probes)
        .SetEvents(r.sim_events);
  }
  std::printf(
      "\nrelay_forwards tracks the probe fan-out (~4 forwards per\n"
      "broadcast round trip on the 8-ring); shaping the links queues the\n"
      "relay path — paid in tail latency, never in drops or errors.\n");
}

// ---------------------------------------------------------------------------
// Hierarchical two-tier federation: flat vs regions at 16-256 venues
// ---------------------------------------------------------------------------

struct HierarchyResult {
  double hit_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t drained = 0;
  std::uint64_t peer_probes = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t summary_frames = 0;
  std::uint64_t digest_frames = 0;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t head_forwards = 0;
  std::uint64_t head_self_serves = 0;
  std::uint64_t arena_reuses = 0;
  std::uint64_t sim_events = 0;
};

constexpr std::uint32_t kHierarchyModels = 12;

federation::FederationPipelineConfig HierarchyConfig(std::uint32_t venues,
                                                     bool hierarchical,
                                                     std::uint32_t workers,
                                                     std::uint32_t regions) {
  FederationPipelineConfig config;
  config.venues = venues;
  config.policy.kind = PeerSelectKind::kSummaryDirected;
  config.gossip_period = Duration::Millis(50);
  config.region.hierarchical = hierarchical;
  config.region.regions = regions;
  // Two foreign heads per miss: digest staleness at 100+ venues costs a
  // couple of hit-rate points at fanout 1, and the second probe buys
  // them back for a handful of extra control frames.
  config.region.cross_fanout = 2;
  config.execution.workers = workers;
  config.execution.mode = federation::ExecutionConfig::Mode::kDeterministic;
  return config;
}

/// One Poisson render storm over the whole cluster; the arrival rate
/// scales with the venue count so every cluster size plays the same
/// ~2 s of sim time (~40 gossip rounds at 50 ms): a warmup burst while
/// caches fill and summaries churn, then the steady state where flat
/// gossip keeps re-broadcasting O(N^2) frames every round and the
/// version-gated hierarchical sends go quiet. The digest period (4
/// rounds) makes cross-region knowledge up to 200 ms staler than flat's
/// one-round summaries, so the warmup share of the run bounds the
/// hit-rate gap — 2 s keeps it inside the +-3 pt target.
std::vector<trace::PlacedRecord> HierarchyStorm(
    std::uint32_t venues, std::size_t requests_per_venue) {
  return trace::MakeRenderStorm(
      venues, venues * requests_per_venue,
      static_cast<double>(venues * requests_per_venue) / 2.0,
      kHierarchyModels);
}

void LoadHierarchyStorm(FederationPipeline& pipeline, std::uint32_t venues,
                        std::size_t requests_per_venue) {
  for (std::uint64_t m = 1; m <= kHierarchyModels; ++m) {
    pipeline.RegisterModel(m, KB(64) + m * KB(4));
  }
  for (const auto& p : HierarchyStorm(venues, requests_per_venue)) {
    pipeline.EnqueuePlaced(p);
  }
}

HierarchyResult MeasureHierarchy(std::uint32_t venues, bool hierarchical,
                                 std::size_t requests_per_venue,
                                 std::uint32_t workers = 1,
                                 std::uint32_t regions = 0) {
  FederationPipeline pipeline(
      HierarchyConfig(venues, hierarchical, workers, regions));
  LoadHierarchyStorm(pipeline, venues, requests_per_venue);
  const auto outcomes = pipeline.RunOpenLoop();
  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  HierarchyResult r;
  r.hit_rate = agg.HitRate();
  r.p50_ms = agg.PercentileLatencyMs(50);
  r.p99_ms = agg.PercentileLatencyMs(99);
  r.drained = outcomes.size();
  r.peer_probes = pipeline.total_peer_probes();
  r.peer_hits = pipeline.total_peer_hits();
  r.summary_frames =
      pipeline.summary_updates_sent() + pipeline.summary_deltas_sent();
  r.digest_frames = pipeline.region_digests_sent();
  r.gossip_bytes = pipeline.summary_bytes_full() +
                   pipeline.summary_bytes_delta() +
                   pipeline.region_digest_bytes();
  r.head_forwards = pipeline.region_head_forwards();
  r.head_self_serves = pipeline.region_head_self_serves();
  r.arena_reuses = pipeline.arena_reuses();
  r.sim_events = pipeline.open_loop_stats().events_fired;
  return r;
}

/// The outcome stream reduced to the fields the determinism contract
/// pins, sorted by (completion time, venue) so sharded completion-order
/// jitter inside one instant cannot alias as divergence — the same
/// reduction HierarchicalFederationTest.DeterministicAcrossWorkerCounts
/// asserts on.
using OutcomeRow = std::tuple<std::uint32_t, proto::ResultSource, bool,
                              std::int64_t, std::int64_t>;

std::vector<OutcomeRow> HierarchyOutcomeRows(std::uint32_t venues,
                                             std::size_t requests_per_venue,
                                             std::uint32_t workers,
                                             std::uint32_t regions) {
  FederationPipeline pipeline(
      HierarchyConfig(venues, /*hierarchical=*/true, workers, regions));
  LoadHierarchyStorm(pipeline, venues, requests_per_venue);
  std::vector<OutcomeRow> rows;
  for (const auto& o : pipeline.RunOpenLoop()) {
    rows.emplace_back(o.venue, o.outcome.source, o.outcome.error,
                      o.outcome.latency.micros(),
                      (o.completed_at - SimTime::Epoch()).micros());
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& x, const auto& y) {
                     if (std::get<4>(x) != std::get<4>(y))
                       return std::get<4>(x) < std::get<4>(y);
                     return std::get<0>(x) < std::get<0>(y);
                   });
  return rows;
}

void PrintHierarchyTable(BenchJson& json, bool quick) {
  PrintHeader(
      "Hierarchical two-tier federation: flat vs region gossip at scale\n"
      "K venues, one Poisson render storm (rate scaled so every size plays\n"
      "~0.5 s of sim), summary-directed probing, gossip every 50 ms.\n"
      "Hierarchical: venue v in region v % R (auto R = floor(sqrt(K)));\n"
      "full summaries stay intra-region, heads gossip compact RegionDigests\n"
      "cross-region, and misses probe digest-matched heads which relay to\n"
      "their best member.");
  std::printf("%-8s %-14s %9s %9s %8s %10s %11s %8s %8s %8s\n", "venues",
              "mode", "hit rate", "p99 ms", "probes", "gossip KB",
              "bytes ratio", "digests", "headfwd", "drained");
  const std::size_t rpv = quick ? 6 : 8;
  std::vector<std::uint32_t> sizes{16u, 64u};
  if (!quick) {
    sizes.push_back(128u);
    sizes.push_back(256u);
  }
  const auto print_row = [](std::uint32_t venues, const char* mode,
                            const HierarchyResult& r, double ratio) {
    std::printf("%-8u %-14s %8.1f%% %9.1f %8llu %10.1f %10.1fx %8llu %8llu "
                "%8llu\n",
                venues, mode, r.hit_rate * 100, r.p99_ms,
                static_cast<unsigned long long>(r.peer_probes),
                static_cast<double>(r.gossip_bytes) / 1024.0, ratio,
                static_cast<unsigned long long>(r.digest_frames),
                static_cast<unsigned long long>(r.head_forwards),
                static_cast<unsigned long long>(r.drained));
  };
  const auto add_row = [&json, rpv](const char* section, std::uint32_t venues,
                                    const char* mode, std::uint32_t workers,
                                    const HierarchyResult& r, double ratio) {
    json.AddRow()
        .Set("section", section)
        .Set("venues", static_cast<std::uint64_t>(venues))
        .Set("mode", mode)
        .Set("workers", static_cast<std::uint64_t>(workers))
        .Set("operations", static_cast<std::uint64_t>(venues) * rpv)
        .Set("hit_rate", r.hit_rate)
        .Set("p50_ms", r.p50_ms)
        .Set("p99_ms", r.p99_ms)
        .Set("peer_probes", r.peer_probes)
        .Set("peer_hits", r.peer_hits)
        .Set("summary_frames", r.summary_frames)
        .Set("digest_frames", r.digest_frames)
        .Set("gossip_bytes", r.gossip_bytes)
        .Set("bytes_ratio_vs_flat", ratio)
        .Set("head_forwards", r.head_forwards)
        .Set("head_self_serves", r.head_self_serves)
        .Set("arena_reuses", r.arena_reuses)
        .Set("drained", r.drained)
        .SetEvents(r.sim_events);
  };
  for (const std::uint32_t venues : sizes) {
    // Row added right after each run so wall_ms (and events_per_sec)
    // bill the run that produced it.
    const auto flat = MeasureHierarchy(venues, false, rpv);
    print_row(venues, "flat", flat, 1.0);
    add_row("hierarchy", venues, "flat", 1, flat, 1.0);
    const auto hier = MeasureHierarchy(venues, true, rpv);
    const double ratio = hier.gossip_bytes > 0
                             ? static_cast<double>(flat.gossip_bytes) /
                                   static_cast<double>(hier.gossip_bytes)
                             : 0.0;
    print_row(venues, "hierarchical", hier, ratio);
    add_row("hierarchy", venues, "hierarchical", 1, hier, ratio);
  }

  // 64 edges on the sharded engine, 8 regions over 8 workers: region_of
  // and the shard map are both v % 8, so each region lives wholly on one
  // shard and digest frames are the only cross-shard gossip.
  // Deterministic mode: aggregates must equal the single-thread run's.
  const auto sharded = MeasureHierarchy(64, true, rpv, /*workers=*/8,
                                        /*regions=*/8);
  print_row(64, "hier/8-shard", sharded, 0.0);
  add_row("hierarchy_sharded", 64, "hierarchical", 8, sharded, 0.0);

  // 64-edge determinism: the sorted outcome stream must be bit-identical
  // between 1 worker and 4 workers (regions straddle shards at 4 — the
  // harder alignment).
  const auto single = HierarchyOutcomeRows(64, rpv, 1, 8);
  const auto multi = HierarchyOutcomeRows(64, rpv, 4, 8);
  std::uint64_t mismatches = 0;
  if (single.size() != multi.size()) {
    mismatches = single.size() > multi.size() ? single.size() : multi.size();
  } else {
    for (std::size_t i = 0; i < single.size(); ++i) {
      if (single[i] != multi[i]) ++mismatches;
    }
  }
  std::printf("\n64-edge determinism, 1 vs 4 workers: %llu/%zu outcomes "
              "diverged\n",
              static_cast<unsigned long long>(mismatches), single.size());
  COIC_CHECK_MSG(mismatches == 0,
                 "sharded hierarchical run diverged from single-thread");
  json.AddRow()
      .Set("section", "hierarchy_determinism")
      .Set("venues", static_cast<std::uint64_t>(64))
      .Set("workers_compared", static_cast<std::uint64_t>(4))
      .Set("outcomes_compared", static_cast<std::uint64_t>(single.size()))
      .Set("outcome_mismatch", mismatches);
  std::printf(
      "\nflat gossip re-broadcasts every summary to every peer each round\n"
      "(O(N^2) frames); hierarchical keeps full summaries inside sqrt(N)-\n"
      "sized regions and ships one compact digest per region per digest\n"
      "period, so the byte ratio widens with the cluster while the hit\n"
      "rate stays within a few points (digest false positives fall to the\n"
      "cloud like flat Bloom false positives).\n");
}

void BM_FederationRun(benchmark::State& state) {
  const auto venues = static_cast<std::uint32_t>(state.range(0));
  const auto kind = state.range(1) == 0 ? PeerSelectKind::kBroadcastAll
                                        : PeerSelectKind::kSummaryDirected;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureCluster(venues, kind, true, 10, 8));
  }
  state.SetLabel(std::string(PeerSelectKindName(kind)) + "/" +
                 std::to_string(venues) + "-edges");
}
BENCHMARK(BM_FederationRun)
    ->Args({2, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  const bool quick = coic::bench::QuickMode(argc, argv);
  {
    coic::bench::BenchJson json("federation_scaling");
    coic::bench::PrintFederationTable(json);
    coic::bench::PrintStalenessChurnTable(json);
    coic::bench::PrintRelayStormTable(json);
    coic::bench::PrintHierarchyTable(json, quick);
  }
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
