// Federation scaling — cluster-wide hit rate and probe traffic vs
// cluster size and peer-selection policy.
//
// K venues serve K user populations drawing from one shared Zipf object
// pool (the metro-popular content of the paper's co-location study).
// Each venue's first request for an object misses everywhere; once any
// venue has it, federation turns the other venues' misses into LAN peer
// hits. The table reports, per cluster size and policy: cluster-wide
// hit rate (local + peer), peer probes sent (the traffic a policy
// spends), summary-gossip messages, and mean latency.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "federation/federation_pipeline.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

using federation::FederationPipeline;
using federation::FederationPipelineConfig;
using federation::PeerSelectKind;

struct FederationResult {
  double hit_rate = 0;
  double mean_ms = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t peer_probes = 0;
  std::uint64_t summary_updates = 0;
  std::uint64_t cloud_tasks = 0;
  std::uint64_t sim_events = 0;
};

FederationResult MeasureCluster(std::uint32_t venues, PeerSelectKind policy,
                                bool cooperative,
                                std::size_t requests_per_venue = 30,
                                std::uint32_t objects = 12) {
  FederationPipelineConfig config;
  config.venues = venues;
  config.cooperative = cooperative;
  config.policy.kind = policy;
  config.gossip_period = Duration::Millis(100);
  FederationPipeline pipeline(config);

  std::vector<std::uint64_t> model_ids;
  for (std::uint64_t m = 1; m <= objects; ++m) {
    pipeline.RegisterModel(m, KB(256) + m * KB(8));
    model_ids.push_back(m);
  }

  // Interleave venues so the shared pool warms up cluster-wide, the way
  // co-located crowds actually arrive.
  Rng rng(0xFED5 + venues);
  ZipfDistribution popularity(objects, 0.9);
  for (std::size_t i = 0; i < requests_per_venue; ++i) {
    for (std::uint32_t v = 0; v < venues; ++v) {
      pipeline.EnqueueRenderAt(v, model_ids[popularity.Sample(rng)]);
    }
  }

  const auto outcomes = pipeline.Run();
  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  FederationResult result;
  result.hit_rate = agg.HitRate();
  result.mean_ms = agg.MeanLatencyMs();
  result.peer_hits = pipeline.total_peer_hits();
  result.peer_probes = pipeline.total_peer_probes();
  result.summary_updates = pipeline.summary_updates_sent();
  result.cloud_tasks = pipeline.cloud().tasks_executed();
  result.sim_events = pipeline.scheduler().total_fired();
  return result;
}

void PrintFederationTable() {
  PrintHeader(
      "Federation scaling: cluster-wide hit rate & probe traffic\n"
      "K venues x 30 shared-pool render requests each, Zipf(0.9) over 12 "
      "objects;\nfull-mesh metro LAN, gossip every 100 ms");
  std::printf("%-8s %-18s %9s %9s %8s %8s %9s %10s\n", "venues", "policy",
              "hit rate", "mean ms", "peerhit", "probes", "gossip", "cloud");
  BenchJson json("federation_scaling");
  for (const std::uint32_t venues : {1u, 2u, 4u, 8u}) {
    const struct {
      const char* label;
      PeerSelectKind kind;
      bool cooperative;
    } kColumns[] = {
        {"solo", PeerSelectKind::kBroadcastAll, false},
        {"broadcast-all", PeerSelectKind::kBroadcastAll, true},
        {"summary-directed", PeerSelectKind::kSummaryDirected, true},
        {"random-k", PeerSelectKind::kRandomK, true},
    };
    for (const auto& col : kColumns) {
      if (venues == 1 && col.cooperative) continue;  // no peers to probe
      const auto r = MeasureCluster(venues, col.kind, col.cooperative);
      std::printf("%-8u %-18s %8.1f%% %9.1f %8llu %8llu %9llu %10llu\n",
                  venues, col.label, r.hit_rate * 100, r.mean_ms,
                  static_cast<unsigned long long>(r.peer_hits),
                  static_cast<unsigned long long>(r.peer_probes),
                  static_cast<unsigned long long>(r.summary_updates),
                  static_cast<unsigned long long>(r.cloud_tasks));
      json.AddRow()
          .Set("venues", static_cast<std::uint64_t>(venues))
          .Set("policy", col.label)
          .Set("hit_rate", r.hit_rate)
          .Set("mean_ms", r.mean_ms)
          .Set("peer_hits", r.peer_hits)
          .Set("peer_probes", r.peer_probes)
          .Set("summary_updates", r.summary_updates)
          .Set("cloud_tasks", r.cloud_tasks)
          .SetEvents(r.sim_events);
    }
  }
  std::printf(
      "\nsummary-directed should match broadcast-all's hit rate while\n"
      "sending a small fraction of its probes; the residual gap is\n"
      "gossip staleness (results cached since the last summary round).\n");
}

void BM_FederationRun(benchmark::State& state) {
  const auto venues = static_cast<std::uint32_t>(state.range(0));
  const auto kind = state.range(1) == 0 ? PeerSelectKind::kBroadcastAll
                                        : PeerSelectKind::kSummaryDirected;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureCluster(venues, kind, true, 10, 8));
  }
  state.SetLabel(std::string(PeerSelectKindName(kind)) + "/" +
                 std::to_string(venues) + "-edges");
}
BENCHMARK(BM_FederationRun)
    ->Args({2, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintFederationTable();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
