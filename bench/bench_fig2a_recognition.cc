// Figure 2a — "Recognition latency reduction under different network
// conditions." Reproduces the paper's three series (Origin, Cache Hit,
// Cache Miss) across the five (B_M->E, B_E->C) conditions and reports
// the headline metric: latency reduction of a cache hit vs Origin
// (paper: up to 52.28%).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "core/cost_model.h"

namespace coic::bench {
namespace {

void PrintFigure2a() {
  PrintHeader(
      "Figure 2a: recognition latency (ms) vs network condition\n"
      "series: Origin (cloud offload, no cache) | Cache Hit | Cache Miss\n"
      "paper headline: CoIC reduces recognition latency by up to 52.28%");
  std::printf("%-22s %12s %12s %12s %12s\n", "condition (Mbps)", "Origin",
              "CacheHit", "CacheMiss", "reduction");
  BenchJson json("fig2a_recognition");
  double best_reduction = 0;
  for (const auto& cond : core::Figure2aConditions()) {
    const double origin_ms = MeasureRecognitionOrigin(cond);
    const auto coic = MeasureRecognitionCoic(cond);
    const double reduction = (1.0 - coic.hit_ms / origin_ms) * 100.0;
    best_reduction = std::max(best_reduction, reduction);
    char label[64];
    std::snprintf(label, sizeof(label), "BM->E=%3.0f BE->C=%.0f",
                  cond.mobile_edge.mbps(), cond.edge_cloud.mbps());
    std::printf("%-22s %12.1f %12.1f %12.1f %11.1f%%\n", label, origin_ms,
                coic.hit_ms, coic.miss_ms, reduction);
    json.AddRow()
        .Set("mobile_edge_mbps", cond.mobile_edge.mbps())
        .Set("edge_cloud_mbps", cond.edge_cloud.mbps())
        .Set("origin_ms", origin_ms)
        .Set("hit_ms", coic.hit_ms)
        .Set("miss_ms", coic.miss_ms)
        .Set("reduction_pct", reduction);
  }
  std::printf("\nmax hit-vs-origin reduction: %.2f%% (paper: 52.28%%)\n",
              best_reduction);
  json.AddRow().Set("metric", "max_reduction_pct").Set("value", best_reduction);
  const core::CostModel costs;
  std::printf("Local baseline (full on-device DNN, no offload): %.0f ms at "
              "every condition\n",
              costs.recognition.local_full_inference.millis());
}

// Engine microbenchmark: wall time to simulate one full CoIC exchange
// (miss + hit) at a given condition index.
void BM_SimulatedCoicExchange(benchmark::State& state) {
  const auto& cond = core::Figure2aConditions()[
      static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto result = MeasureRecognitionCoic(cond, /*repeats=*/1);
    benchmark::DoNotOptimize(result);
  }
  const auto sample = MeasureRecognitionCoic(cond, /*repeats=*/1);
  state.counters["sim_hit_ms"] = sample.hit_ms;
  state.counters["sim_miss_ms"] = sample.miss_ms;
}
BENCHMARK(BM_SimulatedCoicExchange)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_SimulatedOriginExchange(benchmark::State& state) {
  const auto& cond = core::Figure2aConditions()[
      static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRecognitionOrigin(cond, /*repeats=*/1));
  }
  state.counters["sim_origin_ms"] = MeasureRecognitionOrigin(cond, 1);
}
BENCHMARK(BM_SimulatedOriginExchange)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintFigure2a();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
