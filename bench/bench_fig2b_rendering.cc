// Figure 2b — "Load latency reduction in rendering tasks." Reproduces
// the Origin / Cache Hit / Cache Miss load latency across the paper's
// six model sizes (231..15053 KB). Paper headline: CoIC reduces load
// latency by up to 75.86% by caching loaded model data on the edge.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "render/registry.h"

namespace coic::bench {
namespace {

struct RenderLatencies {
  double origin_ms = 0;
  double hit_ms = 0;
  double miss_ms = 0;
};

RenderLatencies MeasureRender(Bytes model_size) {
  RenderLatencies out;
  {
    core::PipelineConfig config;
    config.mode = proto::OffloadMode::kOrigin;
    config.network = core::Figure2bCondition();
    core::SimPipeline pipeline(config);
    pipeline.RegisterModel(1, model_size);
    pipeline.EnqueueRender(1);
    out.origin_ms = pipeline.Run()[0].latency.millis();
  }
  {
    core::PipelineConfig config;
    config.mode = proto::OffloadMode::kCoic;
    config.network = core::Figure2bCondition();
    core::SimPipeline pipeline(config);
    pipeline.RegisterModel(1, model_size);
    pipeline.EnqueueRender(1);
    out.miss_ms = pipeline.Run()[0].latency.millis();
    pipeline.EnqueueRender(1);
    pipeline.EnqueueRender(1);
    const auto hits = pipeline.Run();
    out.hit_ms = (hits[0].latency.millis() + hits[1].latency.millis()) / 2.0;
  }
  return out;
}

void PrintFigure2b() {
  PrintHeader(
      "Figure 2b: 3D-model load latency (ms) vs model size\n"
      "series: Origin | Cache Hit | Cache Miss  (network: Figure2bCondition)\n"
      "paper headline: CoIC reduces load latency by up to 75.86%");
  std::printf("%-16s %12s %12s %12s %12s\n", "model size (KB)", "Origin",
              "CacheHit", "CacheMiss", "reduction");
  BenchJson json("fig2b_rendering");
  double best_reduction = 0;
  for (const Bytes size : render::ModelRegistry::Figure2bSizes()) {
    const auto lat = MeasureRender(size);
    const double reduction = (1.0 - lat.hit_ms / lat.origin_ms) * 100.0;
    best_reduction = std::max(best_reduction, reduction);
    std::printf("%-16llu %12.1f %12.1f %12.1f %11.1f%%\n",
                static_cast<unsigned long long>(size / 1000), lat.origin_ms,
                lat.hit_ms, lat.miss_ms, reduction);
    json.AddRow()
        .Set("model_kb", static_cast<std::uint64_t>(size / 1000))
        .Set("origin_ms", lat.origin_ms)
        .Set("hit_ms", lat.hit_ms)
        .Set("miss_ms", lat.miss_ms)
        .Set("reduction_pct", reduction);
  }
  std::printf("\nmax hit-vs-origin load reduction: %.2f%% (paper: 75.86%%)\n",
              best_reduction);
  json.AddRow().Set("metric", "max_reduction_pct").Set("value", best_reduction);
}

void BM_SimulatedRenderExchange(benchmark::State& state) {
  const auto& sizes = render::ModelRegistry::Figure2bSizes();
  const Bytes size = sizes[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRender(size));
  }
  const auto lat = MeasureRender(size);
  state.counters["sim_origin_ms"] = lat.origin_ms;
  state.counters["sim_hit_ms"] = lat.hit_ms;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_SimulatedRenderExchange)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintFigure2b();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
