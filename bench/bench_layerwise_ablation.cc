// §4 future work — fine-grained (per-DNN-layer) result reuse.
//
// Compares three designs on the same perturbed-view request stream:
//   no cache     — full cloud inference per request;
//   coarse CoIC  — whole-result cache (the shipped system);
//   layered CoIC — per-layer activation cache reusing the deepest
//                  matching prefix (the paper's roadmap).
// Reports mean cloud compute per request and full/partial hit rates.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/layered.h"

namespace coic::bench {
namespace {

struct LayeredResult {
  double full_cost_ms = 0;
  double coarse_cost_ms = 0;
  double layered_cost_ms = 0;
  double full_hit_rate = 0;
  double partial_hit_rate = 0;
  double mean_matched_depth = 0;
};

LayeredResult MeasureLayered(double view_jitter_deg, std::size_t requests) {
  core::LayeredRecognitionCache cache;
  Rng rng(0x14AE);
  LayeredResult out;
  double layered_total = 0, coarse_total = 0, depth_total = 0;
  std::size_t full_hits = 0, partial_hits = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    vision::SceneParams scene;
    scene.scene_id = 1 + rng.NextBelow(6);
    scene.view_angle_deg = (rng.NextDouble() * 2 - 1) * view_jitter_deg;
    scene.distance = 1.0 + (rng.NextDouble() * 2 - 1) * 0.05;
    const auto outcome = cache.Process(vision::SyntheticImage::Generate(scene));
    layered_total += outcome.cloud_compute.millis();
    coarse_total += cache.CoarseEquivalentCost(outcome).millis();
    depth_total += outcome.matched_depth;
    if (outcome.full_hit(cache.config().layers)) {
      ++full_hits;
    } else if (outcome.matched_depth > 0) {
      ++partial_hits;
    }
  }
  const auto n = static_cast<double>(requests);
  out.full_cost_ms = cache.FullCost().millis();
  out.layered_cost_ms = layered_total / n;
  out.coarse_cost_ms = coarse_total / n;
  out.full_hit_rate = static_cast<double>(full_hits) / n;
  out.partial_hit_rate = static_cast<double>(partial_hits) / n;
  out.mean_matched_depth = depth_total / n;
  return out;
}

void PrintLayeredTable() {
  PrintHeader(
      "Layer-wise reuse ablation (paper 4): cloud compute per request\n"
      "6 objects, 150 requests; layered cache reuses deepest matching prefix");
  std::printf("%-18s %10s %10s %10s %10s %10s %8s\n", "view jitter (deg)",
              "nocache", "coarse", "layered", "full-hit", "part-hit", "depth");
  BenchJson json("layerwise_ablation");
  for (const double jitter : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    const auto r = MeasureLayered(jitter, 150);
    std::printf("%-18.1f %8.1fms %8.1fms %8.1fms %9.1f%% %9.1f%% %8.2f\n",
                jitter, r.full_cost_ms, r.coarse_cost_ms, r.layered_cost_ms,
                r.full_hit_rate * 100, r.partial_hit_rate * 100,
                r.mean_matched_depth);
    json.AddRow()
        .Set("view_jitter_deg", jitter)
        .Set("nocache_ms", r.full_cost_ms)
        .Set("coarse_ms", r.coarse_cost_ms)
        .Set("layered_ms", r.layered_cost_ms)
        .Set("full_hit_rate", r.full_hit_rate)
        .Set("partial_hit_rate", r.partial_hit_rate)
        .Set("mean_matched_depth", r.mean_matched_depth);
  }
  std::printf(
      "\nInterpretation: as views diverge, coarse full-result hits vanish\n"
      "while deep-layer prefixes keep matching — the gap between the\n"
      "'coarse' and 'layered' columns is the payoff the paper's future\n"
      "work targets.\n");
}

void BM_LayeredProcess(benchmark::State& state) {
  core::LayeredRecognitionCache cache;
  Rng rng(1);
  for (auto _ : state) {
    vision::SceneParams scene;
    scene.scene_id = 1 + rng.NextBelow(4);
    scene.view_angle_deg = (rng.NextDouble() * 2 - 1) * 5;
    benchmark::DoNotOptimize(
        cache.Process(vision::SyntheticImage::Generate(scene)));
  }
}
BENCHMARK(BM_LayeredProcess)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintLayeredTable();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
