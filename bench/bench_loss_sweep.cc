// Loss sweep — service quality vs wire loss with the recovery stack on.
//
// The paper's testbed is a clean lab network; real metro edges drop
// frames. This bench replays one mixed AR trace against a 4-venue mesh
// while sweeping Bernoulli per-frame loss from 0 to 5% with the full
// loss-tolerance stack enabled (datagram chunking, client/cloud
// timeout+retry, gossip ack/nack). Per row it reports hit rate and
// p50/p99 latency plus the recovery traffic that bought them
// (retransmissions, timeouts, discarded partial reassemblies) — and the
// frame-copy counter, which must stay flat: the retry path re-sends
// refcounted frames, it does not duplicate payload bytes.
//
// The 0%-loss rows run the default (inert) transport config, i.e. the
// exact pre-loss-tolerance wire behavior: their numbers are the
// reliable-fabric baseline every lossy row is read against.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/frame.h"
#include "common/log.h"
#include "core/metrics.h"
#include "federation/federation_pipeline.h"
#include "obs/trace.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

using federation::FederationPipeline;
using federation::FederationPipelineConfig;
using federation::FederationTransportConfig;

constexpr std::uint32_t kVenues = 4;
constexpr std::uint32_t kMobilesPerVenue = 4;
constexpr std::uint64_t kVideoId = 7;
constexpr std::uint32_t kObjects = 12;
constexpr double kOfferedHz = 400;

FederationPipelineConfig SweepConfig(double loss_rate) {
  FederationPipelineConfig config;
  config.venues = kVenues;
  config.mobiles_per_venue = kMobilesPerVenue;
  config.topology = federation::TopologyKind::kFullMesh;
  config.policy.kind = federation::PeerSelectKind::kSummaryDirected;
  config.gossip_period = Duration::Millis(100);
  config.delta_gossip = true;
  config.network =
      core::NetworkCondition{Bandwidth::Gbps(1), Bandwidth::Mbps(200)};
  // Loss 0 keeps the default transport: no datagrams, no retry timers,
  // no acks — the reliable baseline, bit-identical to the pre-recovery
  // pipeline. Any positive loss flips the whole stack on.
  if (loss_rate > 0) {
    config.transport = FederationTransportConfig::Lossy(loss_rate);
  }
  return config;
}

std::vector<trace::PlacedRecord> MakeTrace(std::size_t n) {
  trace::ClusterWorkloadConfig wl;
  wl.venues = kVenues;
  wl.base.users = kVenues * kMobilesPerVenue;
  wl.base.objects = kObjects;
  wl.base.scene_raster = 32;
  trace::ClusterWorkloadGenerator gen(wl);
  std::vector<std::uint64_t> model_ids;
  for (std::uint64_t m = 1; m <= kObjects; ++m) model_ids.push_back(m);
  return gen.GenerateMixed(n, model_ids, kVideoId);
}

struct SweepResult {
  double loss_rate = 0;
  std::uint64_t operations = 0;
  std::uint64_t drained = 0;  ///< Outcomes delivered; a hung run shows here.
  std::uint64_t errors = 0;
  double hit_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t client_rtx = 0;
  std::uint64_t cloud_rtx = 0;
  std::uint64_t timeouts = 0;  ///< Client + cloud expiries (incl. recovered).
  std::uint64_t frames_lost = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t partials_discarded = 0;
  std::uint64_t frame_copies = 0;
  std::uint64_t events_fired = 0;
  double wall_secs = 0;
};

SweepResult MeasureLossLevel(double loss_rate, bool open_loop,
                             const std::vector<trace::PlacedRecord>& base,
                             BenchJson* phase_json = nullptr) {
  FederationPipelineConfig config = SweepConfig(loss_rate);
  config.trace.enabled = phase_json != nullptr;
  FederationPipeline pipeline(config);
  for (std::uint64_t m = 1; m <= kObjects; ++m) {
    pipeline.RegisterModel(m, KB(256) + m * KB(8));
  }
  std::vector<trace::PlacedRecord> placed = base;
  if (open_loop) {
    trace::RetimeArrivals(std::span<trace::PlacedRecord>(placed), kOfferedHz);
  }
  for (const auto& p : placed) pipeline.EnqueuePlaced(p);

  // One diffable snapshot instead of per-counter record/subtract pairs:
  // frame copies, datagram and link-loss tallies all ride the registry's
  // samplers.
  const obs::MetricsSnapshot before = pipeline.metrics().Snapshot();
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t fired_before = pipeline.scheduler().total_fired();
  const auto outcomes = open_loop ? pipeline.RunOpenLoop() : pipeline.Run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const obs::MetricsSnapshot delta =
      pipeline.metrics().Snapshot().DiffSince(before);

  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  SweepResult r;
  r.loss_rate = loss_rate;
  r.operations = placed.size();
  r.drained = outcomes.size();
  r.errors = agg.errors();
  r.hit_rate = agg.HitRate();
  r.p50_ms = agg.PercentileLatencyMs(50);
  r.p99_ms = agg.PercentileLatencyMs(99);
  r.client_rtx = pipeline.total_client_retransmissions();
  r.cloud_rtx = pipeline.total_cloud_retransmissions();
  r.timeouts =
      pipeline.total_client_timeouts() + pipeline.total_cloud_timeouts();
  r.frames_lost = delta.value("net.links.frames_lost");
  r.chunks_sent = delta.value("net.datagram.chunks_sent");
  r.partials_discarded = delta.value("net.datagram.partials_discarded");
  r.frame_copies = delta.value("frame.copies");
  r.events_fired = pipeline.scheduler().total_fired() - fired_before;
  r.wall_secs = wall;

  if (phase_json != nullptr) {
    // Where does the loss-recovery latency actually go? Reduce the traced
    // run to per-phase rows: retry waits surface as a fat cloud_fetch /
    // uplink tail, not as a uniform inflation.
    const obs::RequestTracer& tracer = *pipeline.tracer();
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      const auto phase = static_cast<obs::Phase>(p);
      const LatencyHistogram& hist = tracer.phase_histogram(phase);
      if (hist.count() == 0) continue;
      phase_json->AddRow()
          .Set("section", "phase_breakdown")
          .Set("phase", obs::PhaseName(phase))
          .Set("loss_rate", loss_rate)
          .Set("spans", hist.count())
          .Set("mean_us", hist.MeanMicros())
          .Set("p50_us", hist.QuantileMicros(0.5))
          .Set("p99_us", hist.QuantileMicros(0.99));
    }
  }
  return r;
}

void PrintRow(BenchJson& json, const char* regime, const SweepResult& r) {
  std::printf(
      "%-11s %6.1f%% %6llu/%llu %5llu %6.1f%% %8.1f %9.1f %5llu %5llu %5llu "
      "%6llu %6llu %7llu\n",
      regime, r.loss_rate * 100, static_cast<unsigned long long>(r.drained),
      static_cast<unsigned long long>(r.operations),
      static_cast<unsigned long long>(r.errors), r.hit_rate * 100, r.p50_ms,
      r.p99_ms, static_cast<unsigned long long>(r.client_rtx),
      static_cast<unsigned long long>(r.cloud_rtx),
      static_cast<unsigned long long>(r.timeouts),
      static_cast<unsigned long long>(r.frames_lost),
      static_cast<unsigned long long>(r.partials_discarded),
      static_cast<unsigned long long>(r.frame_copies));
  json.AddRow()
      .Set("regime", regime)
      .Set("loss_rate", r.loss_rate)
      .Set("operations", r.operations)
      .Set("drained", r.drained)
      .Set("errors", r.errors)
      .Set("hit_rate", r.hit_rate)
      .Set("p50_ms", r.p50_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("client_retransmissions", r.client_rtx)
      .Set("cloud_retransmissions", r.cloud_rtx)
      .Set("timeouts", r.timeouts)
      .Set("frames_lost", r.frames_lost)
      .Set("datagram_chunks_sent", r.chunks_sent)
      .Set("partials_discarded", r.partials_discarded)
      .Set("frame_copies", r.frame_copies)
      .Set("events_per_sec",
           r.wall_secs > 0
               ? static_cast<double>(r.events_fired) / r.wall_secs
               : 0.0);
}

void PrintSweepTable(bool quick) {
  PrintHeader(
      "Loss sweep: 4-venue mesh, mixed AR trace, recovery stack on\n"
      "(datagram chunking + client/cloud retry + gossip ack/nack);\n"
      "loss 0% = default reliable transport, the pre-recovery baseline");
  std::printf("%-11s %7s %9s %5s %7s %8s %9s %5s %5s %5s %6s %6s %7s\n",
              "regime", "loss", "drained", "err", "hit", "p50 ms", "p99 ms",
              "c.rtx", "w.rtx", "tmo", "lost", "part", "frmcopy");
  BenchJson json("loss_sweep");

  const std::size_t ops = quick ? 1'000 : 6'000;
  const auto base = MakeTrace(ops);
  // The reliable anchor: one request in flight cluster-wide on the
  // default transport — the regime every paper figure uses.
  PrintRow(json, "closed-loop", MeasureLossLevel(0.0, /*open_loop=*/false,
                                                 base));
  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.01}
            : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05};
  for (const double loss : losses) {
    PrintRow(json, "open-loop", MeasureLossLevel(loss, /*open_loop=*/true,
                                                 base));
  }
  // One traced re-run at a representative loss point feeds the per-phase
  // breakdown rows (headline rows above stay tracing-off).
  PrintRow(json, "open-loop-traced",
           MeasureLossLevel(0.01, /*open_loop=*/true, base, &json));
  std::printf(
      "\nevery row must fully drain (drained == ops, no hung requests);\n"
      "hit rate degrades gracefully while p99 absorbs the retry timeouts;\n"
      "frmcopy stays flat — retransmits re-send refcounted frames, they\n"
      "never duplicate payload bytes.\n");
}

void BM_LossSweep(benchmark::State& state) {
  const auto base = MakeTrace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto r = MeasureLossLevel(0.02, /*open_loop=*/true, base);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LossSweep)->Arg(1000);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kError);
  const bool quick = coic::bench::QuickMode(argc, argv);
  coic::bench::PrintSweepTable(quick);
  if (quick) {
    char name[] = "bench_loss_sweep";
    char min_time[] = "--benchmark_min_time=0.001";
    char* quick_argv[] = {name, min_time, nullptr};
    int quick_argc = 2;
    benchmark::Initialize(&quick_argc, quick_argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
