// Engine microbenchmarks: the hot paths under every figure — codec,
// cache probes, similarity indexes, feature extraction, simulator event
// throughput, model (de)serialization.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench/bench_util.h"
#include "common/frame.h"
#include "cache/ic_cache.h"
#include "cache/similarity_index.h"
#include "common/log.h"
#include "common/rng.h"
#include "federation/federation_pipeline.h"
#include "netsim/link.h"
#include "netsim/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/envelope.h"
#include "render/loader.h"
#include "render/model.h"
#include "render/panorama.h"
#include "trace/workload.h"
#include "vision/features.h"
#include "vision/image.h"

namespace coic {
namespace {

std::vector<float> RandomUnitVector(Rng& rng, std::size_t dim) {
  std::vector<float> v(dim);
  double norm = 0;
  for (auto& x : v) {
    x = static_cast<float>(rng.NextGaussian());
    norm += static_cast<double>(x) * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x = static_cast<float>(x / norm);
  return v;
}

// --------------------------------- proto -----------------------------------

void BM_EnvelopeEncode(benchmark::State& state) {
  const ByteVec payload = DeterministicBytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::EncodeEnvelope(proto::MessageType::kPing, 1, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnvelopeEncode)->Arg(1024)->Arg(256 * 1024)->Arg(2 * 1024 * 1024);

void BM_EnvelopeDecode(benchmark::State& state) {
  const ByteVec frame = proto::EncodeEnvelope(
      proto::MessageType::kPing, 1,
      DeterministicBytes(static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    auto env = proto::DecodeEnvelope(frame);
    benchmark::DoNotOptimize(env);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnvelopeDecode)->Arg(1024)->Arg(256 * 1024)->Arg(2 * 1024 * 1024);

void BM_RecognitionRequestRoundTrip(benchmark::State& state) {
  Rng rng(1);
  proto::RecognitionRequest req;
  req.descriptor = proto::FeatureDescriptor::ForVector(
      proto::TaskKind::kRecognition, RandomUnitVector(rng, 64));
  for (auto _ : state) {
    const ByteVec frame =
        proto::EncodeMessage(proto::MessageType::kRecognitionRequest, 1, req);
    auto env = proto::DecodeEnvelope(frame);
    auto decoded = proto::DecodePayloadAs<proto::RecognitionRequest>(
        env.value(), proto::MessageType::kRecognitionRequest);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RecognitionRequestRoundTrip);

// ------------------------------ frame fabric -------------------------------

void BM_FrameShareVsCloneBytes(benchmark::State& state) {
  const bool clone = state.range(1) != 0;
  const Frame frame(DeterministicBytes(static_cast<std::size_t>(state.range(0)), 1));
  for (auto _ : state) {
    if (clone) {
      benchmark::DoNotOptimize(frame.CloneBytes());
    } else {
      Frame shared = frame;  // refcount bump — the fan-out fast path
      benchmark::DoNotOptimize(shared);
    }
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameShareVsCloneBytes)
    ->Args({256 * 1024, 0})
    ->Args({256 * 1024, 1});

void BM_EnvelopeDecodeView(benchmark::State& state) {
  // Borrowed-view counterpart of BM_EnvelopeDecode: same validation, no
  // payload copy.
  const Frame frame(proto::EncodeEnvelope(
      proto::MessageType::kPing, 1,
      DeterministicBytes(static_cast<std::size_t>(state.range(0)), 1)));
  for (auto _ : state) {
    auto env = proto::DecodeEnvelopeView(frame.span());
    benchmark::DoNotOptimize(env);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnvelopeDecodeView)->Arg(1024)->Arg(256 * 1024)->Arg(2 * 1024 * 1024);

void BM_ControlFrameEncodeArenaVsPlain(benchmark::State& state) {
  // Small control frames (peer probes, probe replies, region digests)
  // dominate allocation churn at 64+ venues. The arena path recycles
  // the backing buffer of the previous frame; the plain path allocates
  // fresh every time. Wire bytes are identical.
  const bool use_arena = state.range(0) != 0;
  proto::PeerLookupRequest query;
  query.descriptor = proto::FeatureDescriptor::ForHash(proto::TaskKind::kRender,
                                                       Digest128{7, 9});
  query.reply_type = proto::MessageType::kRenderResult;
  FrameArena arena;
  std::uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    if (use_arena) {
      Frame f = arena.Seal(proto::EncodeMessageInto(
          arena.Acquire(proto::kEnvelopeHeaderSize +
                        static_cast<std::size_t>(query.WireSize())),
          proto::MessageType::kPeerLookupRequest, id, query));
      benchmark::DoNotOptimize(f);
    } else {
      Frame f(proto::EncodeMessage(proto::MessageType::kPeerLookupRequest, id,
                                   query));
      benchmark::DoNotOptimize(f);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(use_arena ? "arena" : "plain");
}
BENCHMARK(BM_ControlFrameEncodeArenaVsPlain)->Arg(0)->Arg(1);

void BM_NetworkBroadcastFanout(benchmark::State& state) {
  // One encoded frame fanned to 8 links — the gossip/relay broadcast
  // shape. With refcounted frames the payload is never duplicated
  // (asserted below via the global copy counter).
  const std::int64_t fanout = 8;
  const Frame frame(proto::EncodeEnvelope(proto::MessageType::kPing, 1,
                                          DeterministicBytes(64 * 1024, 1)));
  for (auto _ : state) {
    netsim::EventScheduler sched;
    netsim::LinkConfig config;
    config.bandwidth = Bandwidth::Gbps(10);
    std::vector<std::unique_ptr<netsim::Link>> links;
    std::uint64_t delivered = 0;
    for (std::int64_t i = 0; i < fanout; ++i) {
      links.push_back(std::make_unique<netsim::Link>(
          sched, "fan" + std::to_string(i), config));
    }
    const std::uint64_t copies_before = frame_stats().copies();
    for (auto& link : links) {
      link->Send(frame, [&delivered](Frame) { ++delivered; });
    }
    sched.Run();
    COIC_CHECK_MSG(frame_stats().copies() == copies_before,
                   "broadcast fan-out must not copy payload bytes");
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_NetworkBroadcastFanout);

// --------------------------------- cache -----------------------------------

void BM_IcCacheExactLookup(benchmark::State& state) {
  cache::IcCache ic_cache(cache::IcCacheConfig{});
  const std::int64_t entries = state.range(0);
  for (std::int64_t i = 0; i < entries; ++i) {
    ic_cache.Insert(proto::FeatureDescriptor::ForHash(
                        proto::TaskKind::kRender,
                        Digest128{1, static_cast<std::uint64_t>(i) + 1}),
                    DeterministicBytes(64, i), SimTime::Epoch());
  }
  Rng rng(2);
  for (auto _ : state) {
    const auto key = proto::FeatureDescriptor::ForHash(
        proto::TaskKind::kRender,
        Digest128{1, 1 + rng.NextBelow(static_cast<std::uint64_t>(entries))});
    benchmark::DoNotOptimize(ic_cache.Lookup(key, SimTime::Epoch()));
  }
}
BENCHMARK(BM_IcCacheExactLookup)->Arg(100)->Arg(10'000);

void BM_SimilarityLookupLinearVsLsh(benchmark::State& state) {
  const bool use_lsh = state.range(1) != 0;
  cache::IcCacheConfig config;
  config.use_lsh = use_lsh;
  cache::IcCache ic_cache(config);
  Rng rng(3);
  std::vector<std::vector<float>> stored;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    stored.push_back(RandomUnitVector(rng, 64));
    ic_cache.Insert(proto::FeatureDescriptor::ForVector(
                        proto::TaskKind::kRecognition, stored.back()),
                    DeterministicBytes(64, i), SimTime::Epoch());
  }
  for (auto _ : state) {
    auto query = stored[rng.NextBelow(stored.size())];
    query[0] += 0.01f;
    benchmark::DoNotOptimize(ic_cache.Lookup(
        proto::FeatureDescriptor::ForVector(proto::TaskKind::kRecognition,
                                            std::move(query)),
        SimTime::Epoch()));
  }
  state.SetLabel(use_lsh ? "lsh" : "linear");
}
BENCHMARK(BM_SimilarityLookupLinearVsLsh)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10'000, 0})
    ->Args({10'000, 1});

// --------------------------------- vision ----------------------------------

void BM_SyntheticImageGenerate(benchmark::State& state) {
  std::uint64_t scene = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vision::SyntheticImage::Generate({.scene_id = ++scene}));
  }
}
BENCHMARK(BM_SyntheticImageGenerate);

void BM_FeatureExtract(benchmark::State& state) {
  const vision::FeatureExtractor extractor;
  const auto img = vision::SyntheticImage::Generate({.scene_id = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(img));
  }
}
BENCHMARK(BM_FeatureExtract);

// --------------------------------- render ----------------------------------

void BM_ModelSerializeParse(benchmark::State& state) {
  render::ProceduralModelParams params;
  params.target_serialized_bytes = static_cast<Bytes>(state.range(0));
  const auto model = render::BuildProceduralModel(params);
  const ByteVec bytes = render::SerializeModel(model);
  for (auto _ : state) {
    auto loaded = render::LoadModel(bytes);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ModelSerializeParse)->Arg(231'000)->Arg(7'050'000);

void BM_PanoramaGenerate(benchmark::State& state) {
  std::uint32_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::Panorama::Generate(1, ++frame));
  }
}
BENCHMARK(BM_PanoramaGenerate);

// ------------------------------ observability ------------------------------

void BM_TracerSpanLifecycle(benchmark::State& state) {
  // The enabled per-request cost: Begin + 3 Transitions + End (5 events,
  // one hash-map touch and one ring write each). Compare against
  // BM_TracerDisabledSite to see what flipping TraceConfig::enabled buys.
  obs::TraceConfig config;
  config.enabled = true;
  obs::RequestTracer tracer(config);
  std::uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    tracer.Begin(id, 0, obs::Phase::kClientCompute, SimTime::FromMicros(1));
    tracer.Transition(id, obs::Phase::kUplink, SimTime::FromMicros(2));
    tracer.Transition(id, obs::Phase::kEdgeLookup, SimTime::FromMicros(3));
    tracer.Transition(id, obs::Phase::kDownlink, SimTime::FromMicros(4));
    tracer.End(id, SimTime::FromMicros(5));
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_TracerSpanLifecycle);

void BM_TracerDisabledSite(benchmark::State& state) {
  // The disabled path every hot-path site pays: one null-pointer test.
  obs::RequestTracer* tracer = nullptr;
  benchmark::DoNotOptimize(tracer);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    if (tracer) tracer->End(1, SimTime::Epoch());
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TracerDisabledSite);

void BM_RegistryCounterVsPlain(benchmark::State& state) {
  // A registered Counter& increment must cost the same as the uint64
  // member it replaced (the migration's "no hot-path tax" contract).
  const bool registry = state.range(0) != 0;
  obs::MetricsRegistry metrics;
  obs::Counter& cell = metrics.GetCounter("bench.counter");
  std::uint64_t plain = 0;
  for (auto _ : state) {
    if (registry) {
      ++cell;
    } else {
      ++plain;
    }
    benchmark::DoNotOptimize(plain);
  }
  state.SetLabel(registry ? "registry" : "plain_uint64");
}
BENCHMARK(BM_RegistryCounterVsPlain)->Arg(0)->Arg(1);

// --------------------------------- netsim ----------------------------------

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    netsim::EventScheduler sched;
    std::uint64_t fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      sched.ScheduleAt(SimTime::FromMicros(i * 7 % 5000),
                       [&fired] { ++fired; });
    }
    sched.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerThroughput);

// Schedule + cancel + drain: the free-running gossip-timer pattern
// (every re-armed timer is eventually cancelled at workload drain).
// Exercises the lazy-deletion path — cancelled events ride the heap to
// the top and are discarded there, with no per-event hash-set work.
void BM_SchedulerScheduleCancel(benchmark::State& state) {
  for (auto _ : state) {
    netsim::EventScheduler sched;
    std::vector<netsim::EventId> ids;
    ids.reserve(10'000);
    std::uint64_t fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      ids.push_back(sched.ScheduleAt(SimTime::FromMicros(i * 7 % 5000),
                                     [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sched.Cancel(ids[i]);
    sched.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerScheduleCancel);

void BM_LinkMessageThroughput(benchmark::State& state) {
  for (auto _ : state) {
    netsim::EventScheduler sched;
    netsim::LinkConfig config;
    config.bandwidth = Bandwidth::Gbps(10);
    netsim::Link link(sched, "bench", config);
    std::uint64_t delivered = 0;
    for (int i = 0; i < 1000; ++i) {
      link.Send(ByteVec(64), [&delivered](Frame) { ++delivered; });
    }
    sched.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkMessageThroughput);

// Hand-timed hot-path summary: the BENCH_micro.json rows that track the
// engine's raw throughput across PRs (google-benchmark's own numbers
// only reach stdout).
void EmitMicroJson() {
  using Clock = std::chrono::steady_clock;
  coic::bench::BenchJson json("micro");

  {
    const ByteVec payload = DeterministicBytes(256 * 1024, 1);
    constexpr int kIters = 500;
    const auto start = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(
          proto::EncodeEnvelope(proto::MessageType::kPing, 1, payload));
    }
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    json.AddRow()
        .Set("path", "envelope_encode_256KiB")
        .Set("mbytes_per_sec", 256.0 / 1024 * kIters / secs);
  }
  {
    netsim::EventScheduler sched;
    std::uint64_t fired = 0;
    constexpr int kEvents = 100'000;
    const auto start = Clock::now();
    for (int i = 0; i < kEvents; ++i) {
      sched.ScheduleAt(SimTime::FromMicros(i * 7 % 5000), [&fired] { ++fired; });
    }
    sched.Run();
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    json.AddRow()
        .Set("path", "scheduler_events")
        .Set("events_per_sec", fired / secs);
  }
  {
    // Schedule/cancel/drain: tracks the lazy-deletion Cancel cost across
    // PRs (the closed-loop seed paid two hash-set ops per event here).
    netsim::EventScheduler sched;
    std::uint64_t fired = 0;
    constexpr int kEvents = 100'000;
    std::vector<netsim::EventId> ids;
    ids.reserve(kEvents);
    const auto start = Clock::now();
    for (int i = 0; i < kEvents; ++i) {
      ids.push_back(
          sched.ScheduleAt(SimTime::FromMicros(i * 7 % 5000), [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sched.Cancel(ids[i]);
    sched.Run();
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    json.AddRow()
        .Set("path", "scheduler_schedule_cancel")
        .Set("events_per_sec", kEvents / secs)
        .Set("fired", fired);
  }
  {
    // Frame fabric: view decode of a 256 KiB envelope (no payload copy)
    // vs the owning decode, plus the copy counters — the trajectory
    // column for the zero-copy refactor.
    const Frame frame(proto::EncodeEnvelope(proto::MessageType::kPing, 1,
                                            DeterministicBytes(256 * 1024, 1)));
    constexpr int kIters = 2000;
    const std::uint64_t copies_before = frame_stats().copies();
    const auto view_start = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(proto::DecodeEnvelopeView(frame.span()));
    }
    const double view_secs =
        std::chrono::duration<double>(Clock::now() - view_start).count();
    const auto own_start = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(proto::DecodeEnvelope(frame.span()));
    }
    const double own_secs =
        std::chrono::duration<double>(Clock::now() - own_start).count();
    json.AddRow()
        .Set("path", "envelope_decode_view_vs_owning_256KiB")
        .Set("view_mbytes_per_sec", 256.0 / 1024 * kIters / view_secs)
        .Set("owning_mbytes_per_sec", 256.0 / 1024 * kIters / own_secs)
        .Set("frame_copies_during_view_loop",
             frame_stats().copies() - copies_before);
  }
  {
    // 8-way broadcast fan-out of one 64 KiB frame through Links: the
    // gossip shape. frame_copies must stay 0 — shared buffer, refcounts
    // only.
    netsim::EventScheduler sched;
    netsim::LinkConfig config;
    config.bandwidth = Bandwidth::Gbps(10);
    std::vector<std::unique_ptr<netsim::Link>> links;
    for (int i = 0; i < 8; ++i) {
      links.push_back(std::make_unique<netsim::Link>(
          sched, "fan" + std::to_string(i), config));
    }
    const Frame frame(proto::EncodeEnvelope(proto::MessageType::kPing, 1,
                                            DeterministicBytes(64 * 1024, 1)));
    constexpr int kRounds = 500;
    std::uint64_t delivered = 0;
    const std::uint64_t copies_before = frame_stats().copies();
    const std::uint64_t copy_bytes_before = frame_stats().bytes_copied();
    const auto start = Clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (auto& link : links) {
        link->Send(frame, [&delivered](Frame) { ++delivered; });
      }
      sched.Run();
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    json.AddRow()
        .Set("path", "broadcast_fanout_8x64KiB")
        .Set("frames_per_sec", delivered / secs)
        .Set("frame_copies", frame_stats().copies() - copies_before)
        .Set("frame_bytes_copied",
             frame_stats().bytes_copied() - copy_bytes_before);
  }
  {
    // Arena vs plain encode of a small control frame (a peer probe):
    // the per-frame allocation the two-tier gossip/probe planes shed at
    // scale. Wire bytes are identical; the arena loop must also stay
    // copy-free (recycling is a buffer reuse, never a memcpy).
    proto::PeerLookupRequest query;
    query.descriptor = proto::FeatureDescriptor::ForHash(
        proto::TaskKind::kRender, Digest128{7, 9});
    query.reply_type = proto::MessageType::kRenderResult;
    constexpr int kFrames = 200'000;
    const auto plain_start = Clock::now();
    for (int i = 0; i < kFrames; ++i) {
      Frame f(proto::EncodeMessage(proto::MessageType::kPeerLookupRequest,
                                   static_cast<std::uint64_t>(i), query));
      benchmark::DoNotOptimize(f);
    }
    const double plain_secs =
        std::chrono::duration<double>(Clock::now() - plain_start).count();
    FrameArena arena;
    const std::uint64_t copies_before = frame_stats().copies();
    const auto arena_start = Clock::now();
    for (int i = 0; i < kFrames; ++i) {
      Frame f = arena.Seal(proto::EncodeMessageInto(
          arena.Acquire(proto::kEnvelopeHeaderSize +
                        static_cast<std::size_t>(query.WireSize())),
          proto::MessageType::kPeerLookupRequest,
          static_cast<std::uint64_t>(i), query));
      benchmark::DoNotOptimize(f);
    }
    const double arena_secs =
        std::chrono::duration<double>(Clock::now() - arena_start).count();
    COIC_CHECK_MSG(frame_stats().copies() == copies_before,
                   "arena encode must not copy frame bytes");
    COIC_CHECK_MSG(arena.reuses() > 0, "warm arena must recycle buffers");
    json.AddRow()
        .Set("path", "control_frame_encode_arena_vs_plain")
        .Set("plain_ns_per_frame", plain_secs * 1e9 / kFrames)
        .Set("arena_ns_per_frame", arena_secs * 1e9 / kFrames)
        .Set("arena_reuses", arena.reuses())
        .Set("arena_allocations", arena.allocations())
        .Set("frame_copies", frame_stats().copies() - copies_before);
  }
  double disabled_ns_per_site = 0;
  {
    // Tracer cost model, pinned as trajectory rows: the disabled path is
    // one null-pointer test per instrumentation site; the enabled path
    // is a hash-map touch plus a ring write per event.
    obs::RequestTracer* disabled = nullptr;
    benchmark::DoNotOptimize(disabled);
    constexpr int kSites = 2'000'000;
    std::uint64_t sink = 0;
    const auto off_start = Clock::now();
    for (int i = 0; i < kSites; ++i) {
      if (disabled) disabled->End(1, SimTime::Epoch());
      benchmark::DoNotOptimize(sink);
    }
    const double off_secs =
        std::chrono::duration<double>(Clock::now() - off_start).count();
    disabled_ns_per_site = off_secs * 1e9 / kSites;

    obs::TraceConfig config;
    config.enabled = true;
    obs::RequestTracer tracer(config);
    constexpr int kRequests = 100'000;
    const auto on_start = Clock::now();
    for (int i = 1; i <= kRequests; ++i) {
      const auto id = static_cast<std::uint64_t>(i);
      tracer.Begin(id, 0, obs::Phase::kClientCompute, SimTime::FromMicros(1));
      tracer.Transition(id, obs::Phase::kUplink, SimTime::FromMicros(2));
      tracer.Transition(id, obs::Phase::kEdgeLookup, SimTime::FromMicros(3));
      tracer.Transition(id, obs::Phase::kDownlink, SimTime::FromMicros(4));
      tracer.End(id, SimTime::FromMicros(5));
    }
    const double on_secs =
        std::chrono::duration<double>(Clock::now() - on_start).count();
    json.AddRow()
        .Set("path", "tracer_disabled_vs_enabled")
        .Set("disabled_ns_per_site", disabled_ns_per_site)
        .Set("enabled_ns_per_event", on_secs * 1e9 / (kRequests * 5.0))
        .Set("enabled_spans_recorded", tracer.spans_recorded());
  }
  {
    // Registered Counter& vs the plain uint64 member it replaced: the
    // migration's "no hot-path tax" contract, as a measured ratio.
    obs::MetricsRegistry metrics;
    obs::Counter& cell = metrics.GetCounter("bench.counter");
    std::uint64_t plain = 0;
    constexpr int kIncrements = 5'000'000;
    const auto plain_start = Clock::now();
    for (int i = 0; i < kIncrements; ++i) {
      ++plain;
      benchmark::DoNotOptimize(plain);
    }
    const double plain_secs =
        std::chrono::duration<double>(Clock::now() - plain_start).count();
    const auto cell_start = Clock::now();
    for (int i = 0; i < kIncrements; ++i) {
      ++cell;
      benchmark::DoNotOptimize(cell);
    }
    const double cell_secs =
        std::chrono::duration<double>(Clock::now() - cell_start).count();
    json.AddRow()
        .Set("path", "registry_counter_vs_plain_uint64")
        .Set("plain_ns_per_inc", plain_secs * 1e9 / kIncrements)
        .Set("registry_ns_per_inc", cell_secs * 1e9 / kIncrements)
        .Set("counter_value", cell.value());
  }
  {
    // The zero-cost-when-disabled guard, enforced every run: a traced-off
    // federation storm must add no frame copies, and the null-guard
    // burden (~10 instrumentation sites per request at the measured
    // per-site cost) must stay under 2% of the storm's wall time.
    federation::FederationPipelineConfig config;
    config.venues = 4;
    config.mobiles_per_venue = 2;
    config.policy.kind = federation::PeerSelectKind::kSummaryDirected;
    config.gossip_period = Duration::Millis(100);
    config.network =
        core::NetworkCondition{Bandwidth::Gbps(1), Bandwidth::Mbps(200)};
    federation::FederationPipeline pipeline(config);
    for (std::uint64_t m = 1; m <= 6; ++m) {
      pipeline.RegisterModel(m, 64 * 1024 + m * 4096);
    }
    constexpr std::size_t kOps = 1'000;
    for (const auto& p : trace::MakeRenderStorm(4, kOps, 500.0)) {
      pipeline.EnqueuePlaced(p);
    }
    const obs::MetricsSnapshot before = pipeline.metrics().Snapshot();
    const auto start = Clock::now();
    const auto outcomes = pipeline.RunOpenLoop();
    const double storm_secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    const obs::MetricsSnapshot delta =
        pipeline.metrics().Snapshot().DiffSince(before);
    COIC_CHECK_MSG(outcomes.size() == kOps, "storm must drain");
    COIC_CHECK_MSG(delta.value("frame.copies") == 0,
                   "disabled tracing must not introduce frame copies");
    const double guard_secs =
        disabled_ns_per_site * 1e-9 * 10.0 * static_cast<double>(kOps);
    COIC_CHECK_MSG(guard_secs < 0.02 * storm_secs,
                   "disabled tracer null-guards must cost <2% of storm wall");
    json.AddRow()
        .Set("path", "storm_tracing_disabled_guard")
        .Set("operations", static_cast<std::uint64_t>(kOps))
        .Set("storm_wall_ms", storm_secs * 1e3)
        .Set("null_guard_overhead_ms", guard_secs * 1e3)
        .Set("frame_copies", delta.value("frame.copies"));
  }
}

}  // namespace
}  // namespace coic

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::EmitMicroJson();
  if (coic::bench::QuickMode(argc, argv)) {
    // Smoke mode: execute every registered microbenchmark once, with the
    // shortest measurement window google-benchmark accepts. Suffix-less
    // value on purpose: benchmark 1.7 silently ignores the 1.8+ "0.001s"
    // spelling (falls back to the 0.5 s default), while 1.8+ still
    // parses the bare number on its backward-compat path.
    char name[] = "bench_micro";
    char min_time[] = "--benchmark_min_time=0.001";
    char* quick_argv[] = {name, min_time, nullptr};
    int quick_argc = 2;
    benchmark::Initialize(&quick_argc, quick_argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
