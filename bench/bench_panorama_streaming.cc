// §1.2 third insight — shared panoramic frames in cloud VR.
//
// "Multiple users playing the same VR applications or watching the same
// VR video might use the same panorama." This bench streams a synced
// multi-viewer panorama trace through CoIC and Origin and reports mean
// frame latency + hit rate as viewer count grows.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

struct PanoResult {
  double mean_ms = 0;
  double hit_rate = 0;
};

PanoResult MeasurePanorama(proto::OffloadMode mode, std::uint32_t viewers) {
  // Each viewer watches the 48-frame video once; synced viewers request
  // the same frames, so redundancy scales with the audience.
  const std::size_t requests = static_cast<std::size_t>(viewers) * 48;
  core::PipelineConfig config;
  config.mode = mode;
  config.network = core::Figure2aConditions()[1];  // (100, 10)
  core::SimPipeline pipeline(config);

  trace::WorkloadConfig workload;
  workload.users = viewers;
  workload.colocated_fraction = 1.0;  // all watching together
  workload.seed = 0xBEEF;
  trace::WorkloadGenerator gen(workload);
  for (const auto& rec : gen.GeneratePanorama(requests, /*video_id=*/1,
                                              /*frames_in_video=*/48)) {
    pipeline.EnqueuePanorama(rec.video_id, rec.frame_index);
  }
  core::QoeAggregator agg;
  agg.AddAll(pipeline.Run());
  return {agg.MeanLatencyMs(), agg.HitRate()};
}

void PrintPanoramaTable() {
  PrintHeader(
      "Panorama streaming (paper 1.2): synced viewers sharing frames\n"
      "48-frame video, (B_M->E, B_E->C) = (100, 10), 96 requests");
  std::printf("%-10s %14s %14s %12s %12s\n", "viewers", "Origin ms",
              "CoIC ms", "hit rate", "reduction");
  BenchJson json("panorama_streaming");
  for (const std::uint32_t viewers : {1u, 2u, 4u, 8u}) {
    const auto origin = MeasurePanorama(proto::OffloadMode::kOrigin, viewers);
    const auto coic = MeasurePanorama(proto::OffloadMode::kCoic, viewers);
    std::printf("%-10u %14.1f %14.1f %11.1f%% %11.1f%%\n", viewers,
                origin.mean_ms, coic.mean_ms, coic.hit_rate * 100,
                (1.0 - coic.mean_ms / origin.mean_ms) * 100);
    json.AddRow()
        .Set("viewers", static_cast<std::uint64_t>(viewers))
        .Set("origin_ms", origin.mean_ms)
        .Set("coic_ms", coic.mean_ms)
        .Set("hit_rate", coic.hit_rate)
        .Set("reduction_pct", (1.0 - coic.mean_ms / origin.mean_ms) * 100);
  }
}

void BM_PanoramaStream(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MeasurePanorama(proto::OffloadMode::kCoic,
                        static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_PanoramaStream)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintPanoramaTable();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
