// §1.2 redundancy study — hit rate and mean latency as a function of the
// workload's redundancy structure (co-location fraction, Zipf skew,
// object-pool size). This regenerates the quantitative backbone of the
// paper's motivating claim: "computation-intensive tasks of mobile IC
// applications can be similar or redundant, especially when
// applications/users are in the close location."
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

struct TraceRunResult {
  double hit_rate = 0;
  double mean_latency_ms = 0;
  double accuracy = 0;
};

TraceRunResult RunRecognitionTrace(const trace::WorkloadConfig& workload,
                                   std::size_t requests) {
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kCoic;
  config.network = core::Figure2aConditions()[1];  // (100, 10)
  config.recognition_classes = 64;
  core::SimPipeline pipeline(config);

  trace::WorkloadGenerator gen(workload);
  for (const auto& rec : gen.GenerateRecognition(requests)) {
    // Scene ids pass through untouched: shared objects live in 1..objects
    // (known to the cloud's class set), private ones in per-user ranges
    // (classified best-effort). Folding private ids into the shared space
    // would fabricate cross-user redundancy and corrupt the sweep.
    pipeline.EnqueueRecognition(rec.scene);
  }
  core::QoeAggregator agg;
  agg.AddAll(pipeline.Run());
  TraceRunResult out;
  out.hit_rate = agg.HitRate();
  out.mean_latency_ms = agg.MeanLatencyMs();
  out.accuracy = agg.Accuracy();
  return out;
}

void PrintColocationSweep() {
  PrintHeader(
      "Redundancy study (paper 1.2): hit rate vs user co-location\n"
      "CoIC recognition over a multi-user trace, (B_M->E, B_E->C) = (100, 10)");
  std::printf("%-22s %10s %16s\n", "colocated fraction", "hit rate",
              "mean latency ms");
  BenchJson json("redundancy_colocation");
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    trace::WorkloadConfig workload;
    workload.users = 8;
    workload.objects = 24;
    workload.zipf_skew = 0.9;
    workload.colocated_fraction = fraction;
    const auto result = RunRecognitionTrace(workload, 120);
    std::printf("%-22.2f %9.1f%% %16.1f\n", fraction, result.hit_rate * 100,
                result.mean_latency_ms);
    json.AddRow()
        .Set("colocated_fraction", fraction)
        .Set("hit_rate", result.hit_rate)
        .Set("mean_latency_ms", result.mean_latency_ms);
  }
}

void PrintSkewSweep() {
  PrintHeader(
      "Redundancy study (paper 1.2): hit rate vs object popularity skew");
  std::printf("%-22s %10s %16s\n", "zipf skew", "hit rate", "mean latency ms");
  BenchJson json("redundancy_skew");
  for (const double skew : {0.0, 0.6, 0.9, 1.2, 1.5}) {
    trace::WorkloadConfig workload;
    workload.users = 8;
    workload.objects = 24;
    workload.zipf_skew = skew;
    workload.colocated_fraction = 1.0;
    const auto result = RunRecognitionTrace(workload, 120);
    std::printf("%-22.2f %9.1f%% %16.1f\n", skew, result.hit_rate * 100,
                result.mean_latency_ms);
    json.AddRow()
        .Set("zipf_skew", skew)
        .Set("hit_rate", result.hit_rate)
        .Set("mean_latency_ms", result.mean_latency_ms);
  }
}

void BM_TraceReplay(benchmark::State& state) {
  trace::WorkloadConfig workload;
  workload.colocated_fraction = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRecognitionTrace(workload, 40));
  }
  state.counters["hit_rate"] = RunRecognitionTrace(workload, 40).hit_rate;
}
BENCHMARK(BM_TraceReplay)->Arg(0)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintColocationSweep();
  coic::bench::PrintSkewSweep();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
