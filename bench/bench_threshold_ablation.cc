// §2 design-choice ablation — the similarity threshold.
//
// "If the distance between the new feature descriptor and another one in
// the cache is under a certain threshold, CoIC determines that the
// computation result is already in the cache." The threshold trades hit
// rate against false hits (serving object A's cached annotation for
// object B). This bench sweeps it and reports hit rate, false-hit rate
// and end-to-end accuracy, justifying the default (0.25).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/log.h"
#include "common/rng.h"

namespace coic::bench {
namespace {

struct ThresholdResult {
  double hit_rate = 0;
  double false_hit_rate = 0;  ///< Hits that returned the wrong label.
  double accuracy = 0;
};

ThresholdResult MeasureThreshold(double threshold, std::size_t requests) {
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kCoic;
  config.network = core::Figure2aConditions()[2];
  config.cache.similarity_threshold = threshold;
  config.recognition_classes = 16;
  core::SimPipeline pipeline(config);

  Rng rng(0xAB1A7E);
  for (std::size_t i = 0; i < requests; ++i) {
    vision::SceneParams scene;
    scene.scene_id = 1 + rng.NextBelow(8);  // 8 objects, heavy reuse
    scene.view_angle_deg = (rng.NextDouble() * 2 - 1) * 6;
    scene.distance = 1.0 + (rng.NextDouble() * 2 - 1) * 0.08;
    scene.illumination = 1.0 + (rng.NextDouble() * 2 - 1) * 0.1;
    pipeline.EnqueueRecognition(scene);
  }
  const auto outcomes = pipeline.Run();

  ThresholdResult out;
  std::uint64_t hits = 0, false_hits = 0, correct = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.source == proto::ResultSource::kEdgeCache) {
      ++hits;
      if (!outcome.correct) ++false_hits;
    }
    if (outcome.correct) ++correct;
  }
  out.hit_rate = static_cast<double>(hits) / static_cast<double>(outcomes.size());
  out.false_hit_rate =
      hits == 0 ? 0 : static_cast<double>(false_hits) / static_cast<double>(hits);
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(outcomes.size());
  return out;
}

void PrintThresholdSweep() {
  PrintHeader(
      "Threshold ablation (paper 2): similarity threshold vs hit quality\n"
      "8 shared objects, jittered views, 120 requests");
  std::printf("%-12s %10s %16s %10s\n", "threshold", "hit rate",
              "false-hit rate", "accuracy");
  BenchJson json("threshold_ablation");
  for (const double threshold :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.80, 1.20}) {
    const auto result = MeasureThreshold(threshold, 120);
    std::printf("%-12.2f %9.1f%% %15.1f%% %9.1f%%\n", threshold,
                result.hit_rate * 100, result.false_hit_rate * 100,
                result.accuracy * 100);
    json.AddRow()
        .Set("threshold", threshold)
        .Set("hit_rate", result.hit_rate)
        .Set("false_hit_rate", result.false_hit_rate)
        .Set("accuracy", result.accuracy);
  }
}

void BM_ThresholdSweep(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureThreshold(threshold, 30));
  }
  state.counters["hit_rate"] = MeasureThreshold(threshold, 30).hit_rate;
}
BENCHMARK(BM_ThresholdSweep)->Arg(10)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kWarn);
  coic::bench::PrintThresholdSweep();
  if (coic::bench::QuickMode(argc, argv)) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
