// Open-loop throughput replay — the venue-scale request-storm regime.
//
// The paper's figures are a latency study: one request in flight
// cluster-wide (the closed loop). This bench drives the same 8-venue
// federation with open-loop arrivals — every trace record issued at its
// Poisson arrival time regardless of completions — and sweeps the
// offered load. Per level it reports the simulated service quality
// (p50/p99 latency, achieved throughput, hit rate, probe traffic,
// observed concurrency) and the simulator's own wall-clock speed
// (events/sec), which is what caps how large a cluster we can replay.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "common/frame.h"
#include "common/log.h"
#include "core/metrics.h"
#include "federation/federation_pipeline.h"
#include "obs/trace.h"
#include "trace/workload.h"

namespace coic::bench {
namespace {

using federation::FederationPipeline;
using federation::FederationPipelineConfig;

constexpr std::uint32_t kVenues = 8;
constexpr std::uint32_t kMobilesPerVenue = 4;
constexpr std::uint64_t kVideoId = 7;
constexpr std::uint32_t kObjects = 12;

FederationPipelineConfig ReplayConfig() {
  FederationPipelineConfig config;
  config.venues = kVenues;
  config.mobiles_per_venue = kMobilesPerVenue;
  config.topology = federation::TopologyKind::kFullMesh;
  config.policy.kind = federation::PeerSelectKind::kSummaryDirected;
  config.gossip_period = Duration::Millis(100);
  // Provisioned metro-edge links (vs the paper's throttled latency-study
  // testbed): throughput mode is about queueing at the services and peer
  // fabric, not about a 10 Mbps WAN saturating on the first storm.
  config.network =
      core::NetworkCondition{Bandwidth::Gbps(1), Bandwidth::Mbps(200)};
  return config;
}

std::vector<trace::PlacedRecord> MakeTrace(std::size_t n) {
  trace::ClusterWorkloadConfig wl;
  wl.venues = kVenues;
  wl.base.users = kVenues * kMobilesPerVenue;
  wl.base.objects = kObjects;
  // Throughput regime: a 32x32 extraction raster cuts ~9x the dominant
  // per-request wall cost (scene rendering) while preserving descriptor
  // locality; both regimes below share the trace, so rows stay comparable.
  wl.base.scene_raster = 32;
  trace::ClusterWorkloadGenerator gen(wl);
  std::vector<std::uint64_t> model_ids;
  for (std::uint64_t m = 1; m <= kObjects; ++m) model_ids.push_back(m);
  return gen.GenerateMixed(n, model_ids, kVideoId);
}

void RegisterModels(FederationPipeline& pipeline) {
  for (std::uint64_t m = 1; m <= kObjects; ++m) {
    pipeline.RegisterModel(m, KB(256) + m * KB(8));
  }
}

struct ReplayResult {
  double offered_hz = 0;
  double achieved_hz = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  std::uint64_t peer_probes = 0;
  std::uint64_t gossip_rounds = 0;
  std::uint32_t max_inflight = 0;
  std::uint64_t events_fired = 0;
  double wall_secs = 0;
  std::uint64_t operations = 0;
  /// Frame-payload duplications during the run (common/frame.h global
  /// counters) — the zero-copy fabric's "measured, not assumed" column.
  std::uint64_t frame_copies = 0;
  std::uint64_t frame_bytes_copied = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t cloud_forwards = 0;
};

ReplayResult MeasureOpenLoop(double offered_hz,
                             const std::vector<trace::PlacedRecord>& base,
                             FederationPipeline& pipeline) {
  RegisterModels(pipeline);

  std::vector<trace::PlacedRecord> placed = base;
  trace::RetimeArrivals(std::span<trace::PlacedRecord>(placed), offered_hz);
  for (const auto& p : placed) pipeline.EnqueuePlaced(p);

  // One snapshot covers frame copies, datagram stats and every
  // edge/client counter — no more per-counter record/subtract pairs.
  const obs::MetricsSnapshot before = pipeline.metrics().Snapshot();
  const auto start = std::chrono::steady_clock::now();
  const auto outcomes = pipeline.RunOpenLoop();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const obs::MetricsSnapshot delta =
      pipeline.metrics().Snapshot().DiffSince(before);

  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);
  const auto& stats = pipeline.open_loop_stats();

  ReplayResult r;
  r.offered_hz = offered_hz;
  const double span =
      (stats.last_completion - stats.first_arrival).seconds();
  r.achieved_hz = span > 0 ? static_cast<double>(outcomes.size()) / span : 0;
  r.p50_ms = agg.PercentileLatencyMs(50);
  r.p99_ms = agg.PercentileLatencyMs(99);
  r.hit_rate = agg.HitRate();
  r.peer_probes = pipeline.total_peer_probes();
  r.gossip_rounds = stats.gossip_rounds;
  r.max_inflight = stats.max_inflight;
  r.events_fired = stats.events_fired;
  r.wall_secs = wall;
  r.operations = outcomes.size();
  r.frame_copies = delta.value("frame.copies");
  r.frame_bytes_copied = delta.value("frame.bytes_copied");
  r.coalesced = pipeline.total_coalesced_requests();
  r.cloud_forwards = pipeline.total_cloud_forwards();
  return r;
}

ReplayResult MeasureOpenLoop(double offered_hz,
                             const std::vector<trace::PlacedRecord>& base) {
  FederationPipeline pipeline(ReplayConfig());
  return MeasureOpenLoop(offered_hz, base, pipeline);
}

/// Closed-loop reference on the identical trace: the N=1-in-flight
/// special case the paper's figures use; its hit rate anchors the
/// open-loop rows (same content, so comparable cache behavior).
ReplayResult MeasureClosedLoop(const std::vector<trace::PlacedRecord>& base) {
  FederationPipeline pipeline(ReplayConfig());
  RegisterModels(pipeline);
  for (const auto& p : base) pipeline.EnqueuePlaced(p);

  const obs::MetricsSnapshot before = pipeline.metrics().Snapshot();
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t fired_before = pipeline.scheduler().total_fired();
  const auto outcomes = pipeline.Run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const obs::MetricsSnapshot delta =
      pipeline.metrics().Snapshot().DiffSince(before);

  core::QoeAggregator agg;
  for (const auto& o : outcomes) agg.Add(o.outcome);

  ReplayResult r;
  r.p50_ms = agg.PercentileLatencyMs(50);
  r.p99_ms = agg.PercentileLatencyMs(99);
  r.hit_rate = agg.HitRate();
  r.peer_probes = pipeline.total_peer_probes();
  r.max_inflight = 1;
  r.events_fired = pipeline.scheduler().total_fired() - fired_before;
  r.wall_secs = wall;
  r.operations = outcomes.size();
  r.frame_copies = delta.value("frame.copies");
  r.frame_bytes_copied = delta.value("frame.bytes_copied");
  r.coalesced = pipeline.total_coalesced_requests();
  r.cloud_forwards = pipeline.total_cloud_forwards();
  return r;
}

/// One storm with the tracer enabled: emits per-phase latency rows
/// (section "phase_breakdown") reduced from the tracer's histograms, and
/// optionally writes the full Chrome trace to `trace_out`. Runs after
/// the untraced rows so every headline number stays tracing-off.
void MeasureTracedReplay(BenchJson& json, double offered_hz,
                         const std::vector<trace::PlacedRecord>& base,
                         const std::string& trace_out) {
  FederationPipelineConfig config = ReplayConfig();
  config.trace.enabled = true;
  // Size the ring so the Chrome export keeps every span of the storm
  // (the per-phase histograms never evict regardless).
  config.trace.span_capacity = base.size() * 12;
  FederationPipeline pipeline(config);
  const ReplayResult r = MeasureOpenLoop(offered_hz, base, pipeline);
  json.AddRow()
      .Set("regime", "open-loop-traced")
      .Set("operations", r.operations)
      .Set("offered_hz", r.offered_hz)
      .Set("run_wall_ms", r.wall_secs * 1e3)
      .Set("frame_copies", r.frame_copies)
      .Set("spans_recorded", pipeline.tracer()->spans_recorded());

  std::printf("\nper-phase latency breakdown (traced %llu-op storm at %.0f "
              "Hz):\n",
              static_cast<unsigned long long>(r.operations), offered_hz);
  std::printf("%-16s %10s %10s %10s %10s\n", "phase", "spans", "mean us",
              "p50 us", "p99 us");
  const obs::RequestTracer& tracer = *pipeline.tracer();
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::Phase>(p);
    const LatencyHistogram& hist = tracer.phase_histogram(phase);
    if (hist.count() == 0) continue;
    std::printf("%-16s %10llu %10.0f %10.0f %10.0f\n", obs::PhaseName(phase),
                static_cast<unsigned long long>(hist.count()),
                hist.MeanMicros(), hist.QuantileMicros(0.5),
                hist.QuantileMicros(0.99));
    json.AddRow()
        .Set("section", "phase_breakdown")
        .Set("phase", obs::PhaseName(phase))
        .Set("offered_hz", offered_hz)
        .Set("spans", hist.count())
        .Set("mean_us", hist.MeanMicros())
        .Set("p50_us", hist.QuantileMicros(0.5))
        .Set("p99_us", hist.QuantileMicros(0.99));
  }
  if (!trace_out.empty()) {
    const Status status = pipeline.tracer()->WriteChromeTrace(trace_out);
    if (status.ok()) {
      std::printf("chrome trace (%llu spans) -> %s\n",
                  static_cast<unsigned long long>(
                      pipeline.tracer()->spans_recorded()),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "bench: trace export failed: %s\n",
                   status.message().c_str());
    }
  }
}

/// One sharded open-loop storm: emits the aggregate "sharded_storm" row
/// plus one "sharded_worker" row per worker thread (per-thread simulator
/// events/sec — the multi-core scaling trajectory). Deterministic mode
/// synchronizes every cross-shard-lookahead window and reproduces the
/// single-thread outcome stream bit for bit; fast mode barriers every
/// `fast_window` and pins only aggregate invariants.
void MeasureShardedStorm(BenchJson& json, double offered_hz,
                         const std::vector<trace::PlacedRecord>& base,
                         std::uint32_t workers,
                         federation::ExecutionConfig::Mode mode) {
  FederationPipelineConfig config = ReplayConfig();
  config.execution.workers = workers;
  config.execution.mode = mode;
  FederationPipeline pipeline(config);
  RegisterModels(pipeline);

  std::vector<trace::PlacedRecord> placed = base;
  trace::RetimeArrivals(std::span<trace::PlacedRecord>(placed), offered_hz);
  for (const auto& p : placed) pipeline.EnqueuePlaced(p);

  const auto start = std::chrono::steady_clock::now();
  const auto outcomes = pipeline.RunOpenLoop();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto& stats = pipeline.open_loop_stats();
  const char* mode_name =
      mode == federation::ExecutionConfig::Mode::kDeterministic
          ? "deterministic"
          : "fast";
  std::printf("%-8zu %7u %-13s %12llu %12llu %10.0f %9.0f\n", base.size(),
              workers, mode_name,
              static_cast<unsigned long long>(stats.sync_windows),
              static_cast<unsigned long long>(stats.cross_shard_messages),
              wall > 0 ? static_cast<double>(stats.events_fired) / wall : 0,
              wall * 1e3);
  json.AddRow()
      .Set("regime", "sharded_storm")
      .Set("operations", static_cast<std::uint64_t>(base.size()))
      .Set("drained", static_cast<std::uint64_t>(outcomes.size()))
      .Set("offered_hz", offered_hz)
      .Set("workers", static_cast<std::uint64_t>(workers))
      .Set("mode", mode_name)
      .Set("sync_windows", stats.sync_windows)
      .Set("cross_shard_messages", stats.cross_shard_messages)
      .Set("sim_events", stats.events_fired)
      .Set("events_per_sec",
           wall > 0 ? static_cast<double>(stats.events_fired) / wall : 0.0)
      .Set("run_wall_ms", wall * 1e3);
  for (std::size_t w = 0; w < stats.per_worker_events_fired.size(); ++w) {
    const std::uint64_t fired = stats.per_worker_events_fired[w];
    json.AddRow()
        .Set("section", "sharded_worker")
        .Set("workers", static_cast<std::uint64_t>(workers))
        .Set("mode", mode_name)
        .Set("worker", static_cast<std::uint64_t>(w))
        .Set("events_fired", fired)
        .Set("events_per_sec",
             wall > 0 ? static_cast<double>(fired) / wall : 0.0);
  }
}

/// Replays the same trace single-thread and sharded-deterministic and
/// counts outcome divergences — the bench-level pin of the bit-identity
/// contract (mirrors the chaos soak's determinism row; the schema check
/// fails CI on any mismatch).
void MeasureShardedDeterminism(BenchJson& json, double offered_hz,
                               const std::vector<trace::PlacedRecord>& base,
                               std::uint32_t workers) {
  using Row = std::tuple<std::uint32_t, int, int, bool, std::int64_t,
                         std::int64_t>;
  const auto rows_for = [&](std::uint32_t w) {
    FederationPipelineConfig config = ReplayConfig();
    config.execution.workers = w;
    FederationPipeline pipeline(config);
    RegisterModels(pipeline);
    std::vector<trace::PlacedRecord> placed = base;
    trace::RetimeArrivals(std::span<trace::PlacedRecord>(placed), offered_hz);
    for (const auto& p : placed) pipeline.EnqueuePlaced(p);
    std::vector<Row> rows;
    for (const auto& o : pipeline.RunOpenLoop()) {
      rows.emplace_back(o.venue, static_cast<int>(o.outcome.task),
                        static_cast<int>(o.outcome.source), o.outcome.error,
                        o.outcome.latency.micros(),
                        (o.completed_at - SimTime::Epoch()).micros());
    }
    // Canonical (completed_at, venue) order on both sides: the sharded
    // engine already returns it; impose it on the single-thread stream.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& x, const Row& y) {
                       if (std::get<5>(x) != std::get<5>(y))
                         return std::get<5>(x) < std::get<5>(y);
                       return std::get<0>(x) < std::get<0>(y);
                     });
    return rows;
  };

  const auto single = rows_for(1);
  const auto sharded = rows_for(workers);
  std::uint64_t mismatch = 0;
  if (single.size() != sharded.size()) {
    mismatch = single.size() > sharded.size() ? single.size() - sharded.size()
                                              : sharded.size() - single.size();
  }
  for (std::size_t i = 0; i < std::min(single.size(), sharded.size()); ++i) {
    if (single[i] != sharded[i]) ++mismatch;
  }
  std::printf("determinism: %zu ops, %u workers vs single thread -> %llu "
              "mismatched outcomes\n",
              base.size(), workers,
              static_cast<unsigned long long>(mismatch));
  json.AddRow()
      .Set("row", "sharded-determinism")
      .Set("operations", static_cast<std::uint64_t>(base.size()))
      .Set("offered_hz", offered_hz)
      .Set("workers", static_cast<std::uint64_t>(workers))
      .Set("outcome_mismatch", mismatch);
}

void PrintRow(BenchJson& json, const char* regime, std::size_t ops,
              const ReplayResult& r) {
  std::printf(
      "%-12s %8zu %9.0f %9.0f %8.1f %8.1f %7.1f%% %8llu %8u %10.0f %9llu\n",
      regime, ops, r.offered_hz, r.achieved_hz, r.p50_ms, r.p99_ms,
      r.hit_rate * 100, static_cast<unsigned long long>(r.peer_probes),
      r.max_inflight,
      r.wall_secs > 0 ? static_cast<double>(r.events_fired) / r.wall_secs : 0,
      static_cast<unsigned long long>(r.frame_copies));
  json.AddRow()
      .Set("regime", regime)
      .Set("operations", static_cast<std::uint64_t>(ops))
      .Set("offered_hz", r.offered_hz)
      .Set("achieved_hz", r.achieved_hz)
      .Set("p50_ms", r.p50_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("hit_rate", r.hit_rate)
      .Set("peer_probes", r.peer_probes)
      .Set("gossip_rounds", r.gossip_rounds)
      .Set("max_inflight", static_cast<std::uint64_t>(r.max_inflight))
      .Set("sim_events", r.events_fired)
      // Match the printed column: events over the tightly measured run
      // wall time, not the row-to-row wall time (which includes trace
      // generation and aggregation).
      .Set("events_per_sec",
           r.wall_secs > 0
               ? static_cast<double>(r.events_fired) / r.wall_secs
               : 0.0)
      .Set("run_wall_ms", r.wall_secs * 1e3)
      .Set("frame_copies", r.frame_copies)
      .Set("frame_bytes_copied", r.frame_bytes_copied)
      .Set("coalesced_requests", r.coalesced)
      .Set("cloud_forwards", r.cloud_forwards);
}

void PrintReplayTable(bool quick, const std::string& trace_out) {
  PrintHeader(
      "Open-loop throughput replay: 8-venue full mesh, mixed AR trace\n"
      "arrivals at offered load (Poisson), summary gossip every 100 ms on\n"
      "free-running per-edge timers; closed-loop row = same trace, 1 in "
      "flight");
  std::printf("%-12s %8s %9s %9s %8s %8s %8s %8s %8s %10s %9s\n", "regime",
              "ops", "offered", "achieved", "p50 ms", "p99 ms", "hit",
              "probes", "inflight", "events/s", "frmcopy");
  BenchJson json("throughput_replay");

  const std::size_t ops = quick ? 1500 : 20'000;
  const auto base = MakeTrace(ops);
  PrintRow(json, "closed-loop", ops, MeasureClosedLoop(base));
  const std::vector<double> loads =
      quick ? std::vector<double>{250, 1000}
            : std::vector<double>{100, 500, 1000, 2000};
  for (const double hz : loads) {
    PrintRow(json, "open-loop", ops, MeasureOpenLoop(hz, base));
  }
  {
    // Before/after anchor for the zero-copy frame-fabric refactor (PR 5).
    // This is PROVENANCE, not a live measurement: the 100k-op 1000 Hz
    // storm measured once at the PR 4 tree on the PR 5 development
    // machine (tight run wall; see CHANGES.md), pinned so the JSON
    // trajectory records the step — the old copying code no longer
    // exists to re-measure. The fields are prefixed `reference_` so
    // trajectory tooling can never mistake them for this run's numbers
    // (this row's auto-stamped wall_ms is just the AddRow call cost).
    // frame_copies was uninstrumented before the refactor; every ByteVec
    // hop (link delivery, decode payload copy, fan-out clone) duplicated
    // payload bytes.
    json.AddRow()
        .Set("regime", "storm-before-frame-fabric-reference")
        .Set("operations", std::uint64_t{100'000})
        .Set("offered_hz", 1000.0)
        .Set("reference_run_wall_ms", 26'555.0)
        .Set("reference_events_per_sec", 22'633.0)
        .Set("note",
             "pinned PR4-tree measurement from the PR5 dev machine; "
             "compare only against open-loop storm rows produced there");
  }
  if (!quick) {
    // The scaling claim: a 100k-operation storm replays in seconds —
    // compare against the storm-before-frame-fabric reference row.
    const std::size_t big = 100'000;
    const auto big_trace = MakeTrace(big);
    PrintRow(json, "open-loop", big, MeasureOpenLoop(1000, big_trace));
    // Traced re-run of the same 100k-op storm for the phase breakdown
    // and the Chrome export.
    MeasureTracedReplay(json, 1000, big_trace, trace_out);
  } else {
    MeasureTracedReplay(json, 1000, base, trace_out);
  }
  // Sharded engine rows: per-worker events/sec at each worker count in
  // both execution modes, plus the bit-identity anchor. Wall-clock
  // speedup depends on the host's core count, so the schema check pins
  // conservation and determinism, never a speedup ratio.
  std::printf("\nsharded open-loop storm (same trace, workers > 1):\n");
  std::printf("%-8s %7s %-13s %12s %12s %10s %9s\n", "ops", "workers",
              "mode", "windows", "xshard-msgs", "events/s", "wall ms");
  const std::vector<std::uint32_t> worker_counts =
      quick ? std::vector<std::uint32_t>{2, 4}
            : std::vector<std::uint32_t>{2, 4, 8};
  for (const std::uint32_t w : worker_counts) {
    MeasureShardedStorm(json, 1000, base, w,
                        federation::ExecutionConfig::Mode::kDeterministic);
  }
  for (const std::uint32_t w : worker_counts) {
    MeasureShardedStorm(json, 1000, base, w,
                        federation::ExecutionConfig::Mode::kFast);
  }
  if (!quick) {
    // The scale target: a million-operation storm, fast mode, all
    // eight venues sharded out.
    const auto million = MakeTrace(1'000'000);
    MeasureShardedStorm(json, 2000, million, 8,
                        federation::ExecutionConfig::Mode::kFast);
  }
  MeasureShardedDeterminism(json, 1000, base, 4);
  std::printf(
      "\nopen-loop hit rates should track the closed-loop row (same trace);\n"
      "p99 inflates with offered load as probe/link queueing appears —\n"
      "exactly the contention the sequential regime hides.\n");
}

void BM_OpenLoopReplay(benchmark::State& state) {
  const auto base = MakeTrace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto r = MeasureOpenLoop(1000, base);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OpenLoopReplay)->Arg(1000);

}  // namespace
}  // namespace coic::bench

int main(int argc, char** argv) {
  coic::SetLogLevel(coic::LogLevel::kError);
  const bool quick = coic::bench::QuickMode(argc, argv);
  // --trace-out=PATH writes the traced storm's Chrome trace there; quick
  // mode defaults to storm.trace.json (the build dir under CTest) so CI
  // always has an artifact to validate.
  std::string trace_out = quick ? "storm.trace.json" : "";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      argv[kept++] = argv[i];  // strip our flag before benchmark::Initialize
    }
  }
  argc = kept;
  coic::bench::PrintReplayTable(quick, trace_out);
  if (quick) {
    char name[] = "bench_throughput_replay";
    char min_time[] = "--benchmark_min_time=0.001";
    char* quick_argv[] = {name, min_time, nullptr};
    int quick_argc = 2;
    benchmark::Initialize(&quick_argc, quick_argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
