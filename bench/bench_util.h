// Shared helpers for the figure-reproduction benches.
//
// Each bench binary prints the paper-style table first (the actual
// reproduction artifact) and then runs google-benchmark microbenchmarks
// of the same code paths (engine throughput).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/sim_pipeline.h"

namespace coic::bench {

/// True when argv contains `--quick`. Quick mode prints the paper-style
/// tables but skips the google-benchmark loop, so every bench binary
/// doubles as a fast CTest smoke test (label: bench-smoke) and the
/// reproduction code path can never silently rot.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Prints a separator + title for a reproduced figure/table.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Version of the BENCH_*.json row schema. Bump when a breaking change
/// is made to the automatic columns (wall_ms, events_per_sec,
/// schema_version itself) or their semantics, so cross-PR trajectory
/// tooling can key on it instead of sniffing columns. History:
///   1 — wall_ms per row, optional events_per_sec, schema_version stamp.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// Machine-readable companion to the printed tables: every bench emits a
/// `BENCH_<name>.json` file in the working directory (the build dir when
/// run under CTest) so the perf trajectory can be tracked across PRs and
/// uploaded as a CI artifact. Rows mirror the human table one-to-one.
///
///   BenchJson json("fig2a_recognition");
///   json.AddRow().Set("condition", "90/9").Set("origin_ms", 2381.5);
///   ...
///   json.Write();  // also invoked by the destructor as a backstop
///
/// Every row automatically carries a `wall_ms` column — the wall-clock
/// time elapsed since the previous AddRow (i.e. the cost of producing
/// that row) — and a `schema_version` stamp (enforced by
/// tools/check_bench_json.py). Rows that ran a simulation can add
/// `events_per_sec` via SetEvents(scheduler.total_fired() delta).
class BenchJson {
 public:
  class Row {
   public:
    Row& Set(std::string_view key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.10g", value);
      return Raw(key, buf);
    }
    Row& Set(std::string_view key, std::uint64_t value) {
      return Raw(key, std::to_string(value));
    }
    Row& Set(std::string_view key, std::int64_t value) {
      return Raw(key, std::to_string(value));
    }
    Row& Set(std::string_view key, int value) {
      return Set(key, static_cast<std::int64_t>(value));
    }
    Row& Set(std::string_view key, std::string_view value) {
      return Raw(key, '"' + Escaped(value) + '"');
    }
    Row& Set(std::string_view key, const char* value) {
      return Set(key, std::string_view(value));
    }
    /// Scheduler events fired while producing this row; emitted as
    /// `events_per_sec` against the row's wall time.
    Row& SetEvents(std::uint64_t fired) {
      return Set("events_per_sec",
                 elapsed_secs_ > 0 ? static_cast<double>(fired) / elapsed_secs_
                                   : 0.0);
    }

   private:
    friend class BenchJson;
    Row& Raw(std::string_view key, std::string rendered) {
      fields_.emplace_back('"' + Escaped(key) + '"', std::move(rendered));
      return *this;
    }
    static std::string Escaped(std::string_view s) {
      std::string out;
      out.reserve(s.size());
      for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        out.push_back(c);
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
    double elapsed_secs_ = 0;
  };

  explicit BenchJson(std::string name)
      : name_(std::move(name)), last_row_at_(std::chrono::steady_clock::now()) {}
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { Write(); }

  Row& AddRow() {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_row_at_).count();
    last_row_at_ = now;
    rows_.emplace_back();
    Row& row = rows_.back();
    row.elapsed_secs_ = elapsed;
    row.Set("schema_version", kBenchJsonSchemaVersion);
    row.Set("wall_ms", elapsed * 1e3);
    return row;
  }

  /// Writes BENCH_<name>.json; idempotent (later calls rewrite the file
  /// with any rows added since).
  void Write() {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [", name_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n    {", r == 0 ? "" : ",");
      const auto& fields = rows_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                     fields[i].first.c_str(), fields[i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::string name_;
  std::vector<Row> rows_;
  std::chrono::steady_clock::time_point last_row_at_;
};

/// Measures CoIC recognition at one network condition: returns
/// {miss_ms, hit_ms} means, using `repeats` perturbed re-requests of the
/// same object for the hit series.
struct HitMissLatency {
  double miss_ms = 0;
  double hit_ms = 0;
};

inline HitMissLatency MeasureRecognitionCoic(const core::NetworkCondition& cond,
                                             int repeats = 5,
                                             std::uint64_t scene_id = 3) {
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kCoic;
  config.network = cond;
  core::SimPipeline pipeline(config);

  pipeline.EnqueueRecognition({.scene_id = scene_id});
  const auto cold = pipeline.Run();
  HitMissLatency result;
  result.miss_ms = cold[0].latency.millis();

  core::QoeAggregator hits;
  for (int i = 1; i <= repeats; ++i) {
    pipeline.EnqueueRecognition(
        {.scene_id = scene_id, .view_angle_deg = static_cast<double>(i - 3)});
  }
  hits.AddAll(pipeline.Run());
  result.hit_ms = hits.MeanLatencyMs();
  return result;
}

/// Mean Origin-mode recognition latency at one condition.
inline double MeasureRecognitionOrigin(const core::NetworkCondition& cond,
                                       int repeats = 3,
                                       std::uint64_t scene_id = 3) {
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kOrigin;
  config.network = cond;
  core::SimPipeline pipeline(config);
  for (int i = 0; i < repeats; ++i) {
    pipeline.EnqueueRecognition({.scene_id = scene_id});
  }
  core::QoeAggregator agg;
  agg.AddAll(pipeline.Run());
  return agg.MeanLatencyMs();
}

}  // namespace coic::bench
