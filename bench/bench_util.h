// Shared helpers for the figure-reproduction benches.
//
// Each bench binary prints the paper-style table first (the actual
// reproduction artifact) and then runs google-benchmark microbenchmarks
// of the same code paths (engine throughput).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/sim_pipeline.h"

namespace coic::bench {

/// True when argv contains `--quick`. Quick mode prints the paper-style
/// tables but skips the google-benchmark loop, so every bench binary
/// doubles as a fast CTest smoke test (label: bench-smoke) and the
/// reproduction code path can never silently rot.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Prints a separator + title for a reproduced figure/table.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Measures CoIC recognition at one network condition: returns
/// {miss_ms, hit_ms} means, using `repeats` perturbed re-requests of the
/// same object for the hit series.
struct HitMissLatency {
  double miss_ms = 0;
  double hit_ms = 0;
};

inline HitMissLatency MeasureRecognitionCoic(const core::NetworkCondition& cond,
                                             int repeats = 5,
                                             std::uint64_t scene_id = 3) {
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kCoic;
  config.network = cond;
  core::SimPipeline pipeline(config);

  pipeline.EnqueueRecognition({.scene_id = scene_id});
  const auto cold = pipeline.Run();
  HitMissLatency result;
  result.miss_ms = cold[0].latency.millis();

  core::QoeAggregator hits;
  for (int i = 1; i <= repeats; ++i) {
    pipeline.EnqueueRecognition(
        {.scene_id = scene_id, .view_angle_deg = static_cast<double>(i - 3)});
  }
  hits.AddAll(pipeline.Run());
  result.hit_ms = hits.MeanLatencyMs();
  return result;
}

/// Mean Origin-mode recognition latency at one condition.
inline double MeasureRecognitionOrigin(const core::NetworkCondition& cond,
                                       int repeats = 3,
                                       std::uint64_t scene_id = 3) {
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kOrigin;
  config.network = cond;
  core::SimPipeline pipeline(config);
  for (int i = 0; i < repeats; ++i) {
    pipeline.EnqueueRecognition({.scene_id = scene_id});
  }
  core::QoeAggregator agg;
  agg.AddAll(pipeline.Run());
  return agg.MeanLatencyMs();
}

}  // namespace coic::bench
