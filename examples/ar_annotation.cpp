// AR annotation session — the paper's demo application.
//
// "We implement an AR application upon CoIC, which renders high-quality
//  3D annotations to label objects recognized in the camera view."
//
// Simulates a user walking through a scene with several physical
// objects, recognizing each as the camera pans (many frames per object,
// each a slightly different view) and loading a 3D annotation model for
// every new label. Prints a frame-by-frame log and the session QoE
// summary under CoIC vs Origin.
//
//   ./ar_annotation
#include <cstdio>

#include "core/metrics.h"
#include "core/sim_pipeline.h"
#include "render/registry.h"
#include "vision/tracking.h"

using namespace coic;

namespace {

struct CameraFrame {
  std::uint64_t object;  ///< Physical object in view (scene id).
  double angle;          ///< Camera angle for this frame.
};

/// A short walk: the user dwells on each object for a few frames.
std::vector<CameraFrame> WalkThroughScene() {
  std::vector<CameraFrame> frames;
  for (const std::uint64_t object : {1ull, 2ull, 1ull, 3ull, 2ull}) {
    for (int dwell = 0; dwell < 3; ++dwell) {
      frames.push_back({object, -4.0 + 4.0 * dwell});
    }
  }
  return frames;
}

core::QoeAggregator RunSession(proto::OffloadMode mode, bool print_log) {
  core::PipelineConfig config;
  config.mode = mode;
  config.network = {Bandwidth::Mbps(100), Bandwidth::Mbps(10)};
  core::SimPipeline pipeline(config);

  // Each recognizable object has an annotation asset on the cloud.
  for (const std::uint64_t model_id : {1ull, 2ull, 3ull}) {
    pipeline.RegisterModel(model_id, KB(500 + 400 * model_id));
  }

  std::vector<bool> annotation_loaded(4, false);
  for (const CameraFrame& frame : WalkThroughScene()) {
    pipeline.EnqueueRecognition(
        {.scene_id = frame.object, .view_angle_deg = frame.angle});
    if (!annotation_loaded[frame.object]) {
      // First sighting: also fetch the 3D annotation model.
      pipeline.EnqueueRender(frame.object);
      annotation_loaded[frame.object] = true;
    }
  }

  const auto outcomes = pipeline.Run();
  core::QoeAggregator agg;
  if (print_log) {
    std::printf("%-6s %-12s %-10s %-10s %10s\n", "step", "task", "result",
                "source", "latency");
  }
  int step = 0;
  for (const auto& outcome : outcomes) {
    agg.Add(outcome);
    if (print_log) {
      std::printf("%-6d %-12s %-10s %-10s %8.1fms\n", step++,
                  outcome.task == proto::TaskKind::kRecognition ? "recognize"
                                                                : "load-model",
                  outcome.task == proto::TaskKind::kRecognition
                      ? outcome.label.c_str()
                      : ("model#" + std::to_string(outcome.object_id)).c_str(),
                  outcome.source == proto::ResultSource::kEdgeCache ? "edge"
                                                                    : "cloud",
                  outcome.latency.millis());
    }
  }
  return agg;
}

}  // namespace

int main() {
  std::printf("AR annotation session over CoIC (paper 3 demo app)\n");
  std::printf("user pans across 3 objects, 15 camera frames + 3 model loads\n\n");
  const auto coic_qoe = RunSession(proto::OffloadMode::kCoic, /*print_log=*/true);
  const auto origin_qoe =
      RunSession(proto::OffloadMode::kOrigin, /*print_log=*/false);

  std::printf("\nsession summary\n");
  std::printf("  CoIC:   mean %7.1f ms | p95 %7.1f ms | hit rate %4.1f%% | accuracy %5.1f%%\n",
              coic_qoe.MeanLatencyMs(), coic_qoe.PercentileLatencyMs(95),
              coic_qoe.HitRate() * 100, coic_qoe.Accuracy() * 100);
  std::printf("  Origin: mean %7.1f ms | p95 %7.1f ms\n",
              origin_qoe.MeanLatencyMs(), origin_qoe.PercentileLatencyMs(95));
  std::printf("  CoIC reduces mean session latency by %.1f%%\n",
              coic_qoe.ReductionPercentVs(origin_qoe));

  // Between recognitions the app tracks the labeled object ON DEVICE
  // (paper 2: tracking is cheap enough to stay local — it is never
  // offloaded or cached). Follow object 1 across a slow camera pan:
  std::printf("\non-device tracking between recognitions (no network):\n");
  vision::SceneParams view;
  view.scene_id = 1;
  vision::ObjectTracker tracker(vision::SyntheticImage::Generate(view),
                                {24, 40});
  for (int frame = 1; frame <= 5; ++frame) {
    view.view_angle_deg = 3.0 * frame;
    const auto track =
        tracker.Track(vision::SyntheticImage::Generate(view));
    std::printf("  pan frame %d: %s (ncc=%.3f, moved %+d,%+d px)\n", frame,
                track.found ? "locked" : "LOST -> re-recognize via CoIC",
                track.score, track.dx, track.dy);
  }
  return 0;
}
