// Edge federation — a metro-scale cluster of cooperating venues.
//
// Spins up K edge venues on a chosen topology, replays a cluster
// workload with user mobility (mid-trace venue handoff), and prints the
// cluster-wide request-source breakdown for the three peer-selection
// policies plus the non-cooperative baseline: how much cloud traffic a
// federation absorbs, and how few probes the summary-directed policy
// needs to do it.
//
//   ./federation_cluster [venues] [requests] [topology: mesh|star|ring]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/metrics.h"
#include "federation/federation_pipeline.h"
#include "trace/workload.h"

using namespace coic;

namespace {

struct PolicyRun {
  const char* label;
  bool cooperative;
  federation::PeerSelectKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t venues =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 160;
  federation::TopologyKind topology = federation::TopologyKind::kFullMesh;
  if (argc > 3 && std::strcmp(argv[3], "star") == 0) {
    topology = federation::TopologyKind::kStar;
  } else if (argc > 3 && std::strcmp(argv[3], "ring") == 0) {
    topology = federation::TopologyKind::kRing;
  }

  // A metro crowd: users spread across the venues, 5% venue handoff per
  // request, all drawing avatars from one shared catalogue.
  trace::ClusterWorkloadConfig workload;
  workload.base.users = venues * 3;
  workload.base.objects = 16;
  workload.venues = venues;
  workload.handoff_probability = 0.05;
  const std::vector<std::uint64_t> avatars = {1, 2, 3, 4, 5, 6};

  const PolicyRun runs[] = {
      {"non-cooperative", false, federation::PeerSelectKind::kBroadcastAll},
      {"broadcast-all", true, federation::PeerSelectKind::kBroadcastAll},
      {"summary-directed", true, federation::PeerSelectKind::kSummaryDirected},
      {"random-k (k=2)", true, federation::PeerSelectKind::kRandomK},
  };

  std::printf("Edge federation: %u venues, %zu render requests, %s topology\n",
              venues, requests,
              topology == federation::TopologyKind::kFullMesh ? "full-mesh"
              : topology == federation::TopologyKind::kStar   ? "star"
                                                              : "ring");
  std::printf("%-18s %9s %7s %7s %7s %8s %8s %8s\n", "policy", "mean ms",
              "local", "peer", "cloud", "probes", "gossip", "relays");

  for (const auto& run : runs) {
    federation::FederationPipelineConfig config;
    config.venues = venues;
    config.topology = topology;
    config.cooperative = run.cooperative;
    config.policy.kind = run.kind;
    config.policy.random_k = 2;
    config.gossip_period = Duration::Millis(100);
    federation::FederationPipeline pipeline(config);
    for (const std::uint64_t avatar : avatars) {
      pipeline.RegisterModel(avatar, KB(600 + 200 * avatar));
    }

    trace::ClusterWorkloadGenerator gen(workload);  // same seed every run
    for (const auto& placed : gen.GenerateRender(requests, avatars)) {
      pipeline.EnqueuePlaced(placed);
    }

    core::QoeAggregator agg;
    for (const auto& outcome : pipeline.Run()) agg.Add(outcome.outcome);
    std::printf("%-18s %9.1f %7llu %7llu %7llu %8llu %8llu %8llu\n",
                run.label, agg.MeanLatencyMs(),
                static_cast<unsigned long long>(agg.edge_hits()),
                static_cast<unsigned long long>(agg.peer_hits()),
                static_cast<unsigned long long>(agg.cloud_served()),
                static_cast<unsigned long long>(pipeline.total_peer_probes()),
                static_cast<unsigned long long>(pipeline.summary_updates_sent()),
                static_cast<unsigned long long>(pipeline.relay_forwards()));
  }

  std::printf(
      "\nReading the table: federation converts cloud fetches into LAN peer\n"
      "hits; summary-directed keeps broadcast's hit rate at a fraction of\n"
      "its probe traffic, paying instead with periodic gossip messages.\n");
  return 0;
}
