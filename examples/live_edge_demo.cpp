// Live three-tier deployment on real TCP sockets.
//
// Starts a cloud server and an edge server (both on loopback, ephemeral
// ports), then connects two mobile clients and replays the paper's demo:
// client A recognizes an object (cold: executed by the cloud), client B
// recognizes the same object from a different angle (warm: served from
// the edge cache), and both load the same 3D avatar. Latencies here are
// real wall-clock protocol times; pass --simulate-compute to also sleep
// the calibrated compute costs so the numbers resemble the testbed's.
//
//   ./live_edge_demo [--simulate-compute]
#include <cstdio>
#include <cstring>

#include "net/servers.h"

using namespace coic;

namespace {

void Report(const char* who, const char* what,
            const Result<core::RequestOutcome>& outcome) {
  if (!outcome.ok()) {
    std::printf("  %-8s %-18s FAILED: %s\n", who, what,
                outcome.status().ToString().c_str());
    return;
  }
  std::printf("  %-8s %-18s %-6s %8.2f ms  %s\n", who, what,
              outcome.value().source == proto::ResultSource::kEdgeCache
                  ? "edge"
                  : "cloud",
              outcome.value().latency.millis(),
              outcome.value().label.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions options;
  options.simulate_compute_delays =
      argc > 1 && std::strcmp(argv[1], "--simulate-compute") == 0;

  // --- cloud ---------------------------------------------------------------
  core::CloudService::Config cloud_config;
  cloud_config.recognition_classes = 10;
  net::CloudServer cloud(options, cloud_config);
  if (const Status status = cloud.Start(); !status.ok()) {
    std::fprintf(stderr, "cloud start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  cloud.service().RegisterModel(/*model_id=*/1, KB(1073));
  const auto avatar_digest = cloud.service().model_registry().DigestFor(1);

  // --- edge ----------------------------------------------------------------
  net::EdgeServer edge(options, core::EdgeService::Config{},
                       net::SocketAddress{"127.0.0.1", cloud.port()});
  if (const Status status = edge.Start(); !status.ok()) {
    std::fprintf(stderr, "edge start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("cloud listening on 127.0.0.1:%u, edge on 127.0.0.1:%u%s\n\n",
              cloud.port(), edge.port(),
              options.simulate_compute_delays
                  ? " (simulating calibrated compute delays)"
                  : "");

  // --- two mobile clients ----------------------------------------------------
  net::LiveClient::Options client_options;
  client_options.edge = {"127.0.0.1", edge.port()};
  auto alice = net::LiveClient::Connect(client_options);
  auto bob = net::LiveClient::Connect(client_options);
  if (!alice.ok() || !bob.ok()) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  std::printf("  %-8s %-18s %-6s %11s  %s\n", "client", "task", "source",
              "latency", "label");
  Report("alice", "recognize obj#3",
         alice.value()->Recognize({.scene_id = 3}, "object_3"));
  Report("bob", "recognize obj#3",
         bob.value()->Recognize({.scene_id = 3, .view_angle_deg = -4},
                                "object_3"));
  Report("alice", "load avatar#1",
         alice.value()->LoadModel(1, avatar_digest.value()));
  Report("bob", "load avatar#1",
         bob.value()->LoadModel(1, avatar_digest.value()));
  Report("alice", "panorama f0", alice.value()->FetchPanorama(7, 0));
  Report("bob", "panorama f0", bob.value()->FetchPanorama(7, 0));

  const auto& stats = edge.service().cache().stats();
  std::printf("\nedge cache: %llu hits / %llu misses — Bob's requests were "
              "served from Alice's results.\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  edge.Stop();
  cloud.Stop();
  return 0;
}
