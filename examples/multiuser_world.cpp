// Multi-user shared world — the "Pokemon Go" scenario of paper 1.2.
//
// "If multiple users play in the same environment, the content in the
//  view of different users is likely to be similar. For example, two
//  Pokemon Go players require rendering the same 3D avatar when they are
//  interacting through Pokemon application in the same place."
//
// Generates a multi-user mixed workload (recognition + avatar model
// loads + panoramas) with the trace module's co-location model and
// replays it through one shared edge, reporting how the edge cache turns
// cross-user redundancy into latency savings.
//
//   ./multiuser_world [users] [requests]
#include <cstdio>
#include <cstdlib>

#include "core/metrics.h"
#include "core/sim_pipeline.h"
#include "trace/workload.h"

using namespace coic;

int main(int argc, char** argv) {
  const std::uint32_t users =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 120;

  trace::WorkloadConfig workload;
  workload.users = users;
  workload.objects = 16;
  workload.zipf_skew = 0.9;
  workload.colocated_fraction = 0.75;
  trace::WorkloadGenerator gen(workload);

  // Avatar catalogue shared by all players.
  const std::vector<std::uint64_t> avatars = {1, 2, 3, 4};

  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kCoic;
  config.network = {Bandwidth::Mbps(200), Bandwidth::Mbps(20)};
  config.recognition_classes = 20;
  core::SimPipeline pipeline(config);
  for (const std::uint64_t avatar : avatars) {
    pipeline.RegisterModel(avatar, KB(800 + 350 * avatar));
  }

  const auto trace_records = gen.GenerateMixed(requests, avatars, /*video=*/9);
  std::size_t recognition = 0, renders = 0, panoramas = 0;
  for (const auto& rec : trace_records) {
    switch (rec.type) {
      case trace::IcTaskType::kRecognition: {
        vision::SceneParams scene = rec.scene;
        scene.scene_id = 1 + scene.scene_id % 20;  // clamp to class space
        pipeline.EnqueueRecognition(scene);
        ++recognition;
        break;
      }
      case trace::IcTaskType::kRender:
        pipeline.EnqueueRender(rec.model_id);
        ++renders;
        break;
      case trace::IcTaskType::kPanorama:
        pipeline.EnqueuePanorama(rec.video_id, rec.frame_index);
        ++panoramas;
        break;
    }
  }

  const auto outcomes = pipeline.Run();
  core::QoeAggregator all, rec_agg, render_agg, pano_agg;
  for (const auto& outcome : outcomes) {
    all.Add(outcome);
    switch (outcome.task) {
      case proto::TaskKind::kRecognition: rec_agg.Add(outcome); break;
      case proto::TaskKind::kRender: render_agg.Add(outcome); break;
      case proto::TaskKind::kPanorama: pano_agg.Add(outcome); break;
    }
  }

  std::printf("Shared-world session: %u players, %zu IC requests "
              "(%zu recognize, %zu avatar loads, %zu panoramas)\n\n",
              users, requests, recognition, renders, panoramas);
  const auto& stats = pipeline.edge_cache_stats();
  std::printf("edge cache: %llu hits / %llu misses (%.1f%% hit rate), "
              "%llu results cached\n\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              stats.HitRate() * 100,
              static_cast<unsigned long long>(stats.insertions));
  std::printf("%-14s %8s %12s %12s %10s\n", "task", "count", "mean ms",
              "p95 ms", "hit rate");
  const auto row = [](const char* name, const core::QoeAggregator& agg) {
    if (agg.count() == 0) return;
    std::printf("%-14s %8llu %12.1f %12.1f %9.1f%%\n", name,
                static_cast<unsigned long long>(agg.count()),
                agg.MeanLatencyMs(), agg.PercentileLatencyMs(95),
                agg.HitRate() * 100);
  };
  row("recognition", rec_agg);
  row("avatar load", render_agg);
  row("panorama", pano_agg);
  row("all", all);
  return 0;
}
