// Quickstart: the CoIC framework in ~60 lines.
//
// Builds the paper's three-tier testbed (mobile / edge / cloud) in the
// simulator, runs one AR recognition task twice — a cold miss that goes
// to the cloud and a warm hit served from the edge IC cache — and prints
// the latency both ways plus the Origin (no-cache cloud offload)
// baseline.
//
//   ./quickstart
#include <cstdio>

#include "core/cost_model.h"
#include "core/sim_pipeline.h"

using namespace coic;

int main() {
  // The paper's most constrained network condition: 90 Mbps WiFi to the
  // edge, 9 Mbps from the edge to the cloud.
  const core::NetworkCondition network{Bandwidth::Mbps(90), Bandwidth::Mbps(9)};

  // --- CoIC: descriptor-first with an edge cache ---------------------------
  core::PipelineConfig coic_config;
  coic_config.mode = proto::OffloadMode::kCoic;
  coic_config.network = network;
  core::SimPipeline coic(coic_config);

  // Two users look at the same object (scene 3) from slightly different
  // angles — the paper's "same stop sign at the same crossroads".
  coic.EnqueueRecognition({.scene_id = 3, .view_angle_deg = 0.0});
  coic.EnqueueRecognition({.scene_id = 3, .view_angle_deg = 4.0});
  const auto outcomes = coic.Run();

  // --- Origin baseline: ship the full frame to the cloud every time --------
  core::PipelineConfig origin_config;
  origin_config.mode = proto::OffloadMode::kOrigin;
  origin_config.network = network;
  core::SimPipeline origin(origin_config);
  origin.EnqueueRecognition({.scene_id = 3});
  const auto baseline = origin.Run();

  std::printf("CoIC quickstart — AR recognition at (90, 9) Mbps\n\n");
  std::printf("  origin (no cache):  %8.1f ms  label=%s\n",
              baseline[0].latency.millis(), baseline[0].label.c_str());
  std::printf("  CoIC cache miss:    %8.1f ms  label=%s (cloud, result cached)\n",
              outcomes[0].latency.millis(), outcomes[0].label.c_str());
  std::printf("  CoIC cache hit:     %8.1f ms  label=%s (served by the edge)\n",
              outcomes[1].latency.millis(), outcomes[1].label.c_str());
  std::printf("\n  hit vs origin: %.1f%% latency reduction (paper: up to 52.28%%)\n",
              (1.0 - outcomes[1].latency.millis() /
                         baseline[0].latency.millis()) * 100.0);
  std::printf("  edge cache: %llu hit / %llu miss\n",
              static_cast<unsigned long long>(coic.edge_cache_stats().hits),
              static_cast<unsigned long long>(coic.edge_cache_stats().misses));
  return 0;
}
