// Cloud VR panorama streaming with client-side viewport cropping.
//
// Paper 1.2: "The server sends a panoramic frame to the client, and then
// the client crops the panorama to generate the final frame for display.
// Multiple users playing the same VR applications or watching the same
// VR video might use the same panorama."
//
// Two synced viewers watch the same VR video through CoIC; the example
// also exercises the real rendering substrate: it generates the
// equirectangular frame and gnomonically crops each viewer's viewport,
// printing a small ASCII rendering of what each HMD displays.
//
//   ./vr_panorama
#include <cstdio>

#include "core/sim_pipeline.h"
#include "render/panorama.h"

using namespace coic;

namespace {

/// Renders a cropped viewport as ASCII luminance art.
void PrintView(const char* title, const render::CroppedView& view) {
  static const char kRamp[] = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (std::uint16_t y = 0; y < view.height; y += 2) {  // 2:1 aspect glyphs
    std::fputs("    ", stdout);
    for (std::uint16_t x = 0; x < view.width; ++x) {
      const float v = view.pixels[static_cast<std::size_t>(y) * view.width + x];
      const int idx = static_cast<int>(v * 9.99f);
      std::fputc(kRamp[idx < 0 ? 0 : (idx > 9 ? 9 : idx)], stdout);
    }
    std::fputc('\n', stdout);
  }
}

}  // namespace

int main() {
  constexpr std::uint64_t kVideo = 7;

  // --- Transport: two viewers fetch the same frames through the edge ------
  core::PipelineConfig config;
  config.mode = proto::OffloadMode::kCoic;
  config.network = {Bandwidth::Mbps(200), Bandwidth::Mbps(20)};
  core::SimPipeline pipeline(config);

  // Viewer A then viewer B request frames 0..3 (B trails A).
  for (std::uint32_t frame = 0; frame < 4; ++frame) {
    pipeline.EnqueuePanorama(kVideo, frame, proto::Viewport{0, 0, 90});
    pipeline.EnqueuePanorama(kVideo, frame, proto::Viewport{60, -10, 90});
  }
  const auto outcomes = pipeline.Run();

  std::printf("VR panorama streaming over CoIC (video %llu, 4 frames, 2 viewers)\n\n",
              static_cast<unsigned long long>(kVideo));
  std::printf("%-8s %-8s %-8s %10s\n", "frame", "viewer", "source", "latency");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    std::printf("%-8u %-8s %-8s %8.1fms\n",
                static_cast<std::uint32_t>(i / 2), i % 2 == 0 ? "A" : "B",
                outcomes[i].source == proto::ResultSource::kEdgeCache
                    ? "edge"
                    : "cloud",
                outcomes[i].latency.millis());
  }
  std::printf("\nViewer B's frames all hit the edge cache: the panorama "
              "rendered for A is reused.\n\n");

  // --- Display path: the client-side crop (real pixels) -------------------
  const auto pano = render::Panorama::Generate(kVideo, 0, 512, 256);
  const render::ViewportCropper cropper(48, 24);
  PrintView("viewer A viewport (yaw 0):",
            cropper.Crop(pano, proto::Viewport{0, 0, 90}));
  PrintView("\nviewer B viewport (yaw 60, pitch -10):",
            cropper.Crop(pano, proto::Viewport{60, -10, 90}));
  return 0;
}
