// libFuzzer harness over the CoIC decode surface.
//
// PR 4's fuzz sweep is property-based and fixed-seed: truncation ladders
// and 10k seeded-random buffers. This harness upgrades that to
// coverage-guided exploration — libFuzzer mutates inputs toward new
// branches in the envelope framing, every peek fast path, and every
// per-type payload decoder (owning and borrowed-view alike), under
// ASan/UBSan. The invariant is the decoders' contract: hostile bytes may
// be rejected with Status, but must never crash, over-read, or trip UB.
//
// Build (Clang only; excluded from tier-1):
//   cmake -B build-fuzz -S . -DCMAKE_C_COMPILER=clang \
//     -DCMAKE_CXX_COMPILER=clang++ -DCOIC_BUILD_FUZZERS=ON -DCOIC_SANITIZE=ON
//   cmake --build build-fuzz --target coic_fuzz_decode coic_fuzz_seed_corpus
// Seed and run:
//   build-fuzz/coic_fuzz_seed_corpus corpus/
//   build-fuzz/coic_fuzz_decode -max_total_time=30 corpus/
#include <cstddef>
#include <cstdint>
#include <span>

#include "proto/envelope.h"
#include "proto/messages.h"

namespace {

using namespace coic;        // NOLINT(google-build-using-namespace)
using namespace coic::proto; // NOLINT(google-build-using-namespace)

/// Runs one payload decoder (owning or view form) over arbitrary bytes.
template <typename M>
void TryDecode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  (void)M::Decode(r);
}

void DecodeAllTypes(std::span<const std::uint8_t> payload) {
  TryDecode<RecognitionRequest>(payload);
  TryDecode<RecognitionResult>(payload);
  TryDecode<RecognitionResultView>(payload);
  TryDecode<RenderRequest>(payload);
  TryDecode<RenderResult>(payload);
  TryDecode<RenderResultView>(payload);
  TryDecode<PanoramaRequest>(payload);
  TryDecode<PanoramaResult>(payload);
  TryDecode<PanoramaResultView>(payload);
  TryDecode<ErrorReply>(payload);
  TryDecode<PeerLookupRequest>(payload);
  TryDecode<PeerLookupReply>(payload);
  TryDecode<PeerLookupReplyView>(payload);
  TryDecode<SummaryUpdate>(payload);
  TryDecode<SummaryDeltaUpdate>(payload);
  TryDecode<FederatedRelay>(payload);
  TryDecode<CacheStatsReply>(payload);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  // Framing peeks: must reject or report without reading past `size`.
  (void)PeekFrameSize(input);
  (void)PeekRelayFrame(input);
  (void)PeekSummaryFrame(input);
  (void)PeekSummaryDeltaFrame(input);

  // Envelope decode, borrowed-view and owning (the owning form is a thin
  // wrapper; running both keeps their validation pinned together).
  const auto view = DecodeEnvelopeView(input);
  (void)DecodeEnvelope(input);

  if (view.ok()) {
    // A structurally valid envelope: run every payload decoder over the
    // payload window, not just the tagged one — decoders must be safe on
    // any bytes regardless of the envelope's type claim.
    DecodeAllTypes(view.value().payload);
  } else if (size >= kEnvelopeHeaderSize) {
    // No valid envelope: still exercise the payload decoders on the
    // post-header window so mutations reach them through bad framing.
    DecodeAllTypes(input.subspan(kEnvelopeHeaderSize));
  }
  return 0;
}
