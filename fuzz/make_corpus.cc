// Seed-corpus generator for coic_fuzz_decode: writes one well-formed
// sample frame per MessageType (plus a couple of structural corner
// cases) into the directory given as argv[1]. Coverage-guided mutation
// starts from valid frames, so the fuzzer reaches the deep per-field
// validation branches immediately instead of spending its budget
// rediscovering the magic number.
#include <cstdio>
#include <string>

#include "proto/envelope.h"
#include "proto/messages.h"

namespace {

using namespace coic;        // NOLINT(google-build-using-namespace)
using namespace coic::proto; // NOLINT(google-build-using-namespace)

bool WriteFile(const std::string& dir, const std::string& name,
               const ByteVec& bytes) {
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  if (!bytes.empty()) {
    std::fwrite(bytes.data(), 1, bytes.size(), f);
  }
  std::fclose(f);
  return true;
}

FeatureDescriptor SampleVectorKey() {
  return FeatureDescriptor::ForVector(TaskKind::kRecognition,
                                      {0.5f, -0.5f, 0.5f, 0.5f});
}

FeatureDescriptor SampleHashKey() {
  return FeatureDescriptor::ForHash(TaskKind::kRender, Digest128{7, 9});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  bool ok = true;

  ok &= WriteFile(dir, "ping", EncodeEnvelope(MessageType::kPing, 1, {}));
  ok &= WriteFile(dir, "pong", EncodeEnvelope(MessageType::kPong, 2, {}));

  ErrorReply error;
  error.code = 7;
  error.message = "sample";
  ok &= WriteFile(dir, "error", EncodeMessage(MessageType::kError, 3, error));

  RecognitionRequest recognition_request;
  recognition_request.user_id = 1;
  recognition_request.frame_id = 4;
  recognition_request.descriptor = SampleVectorKey();
  ok &= WriteFile(dir, "recognition_request",
                  EncodeMessage(MessageType::kRecognitionRequest, 4,
                                recognition_request));

  RecognitionResult recognition_result;
  recognition_result.frame_id = 4;
  recognition_result.label = "object_4";
  recognition_result.confidence = 0.75f;
  recognition_result.annotation = DeterministicBytes(48, 4);
  ok &= WriteFile(dir, "recognition_result",
                  EncodeMessage(MessageType::kRecognitionResult, 5,
                                recognition_result));

  RenderRequest render_request;
  render_request.model_id = 6;
  render_request.descriptor = SampleHashKey();
  ok &= WriteFile(dir, "render_request",
                  EncodeMessage(MessageType::kRenderRequest, 6, render_request));

  RenderResult render_result;
  render_result.model_id = 6;
  render_result.model_bytes = DeterministicBytes(96, 6);
  ok &= WriteFile(dir, "render_result",
                  EncodeMessage(MessageType::kRenderResult, 7, render_result));

  PanoramaRequest panorama_request;
  panorama_request.video_id = 8;
  panorama_request.frame_index = 2;
  panorama_request.descriptor = SampleHashKey();
  ok &= WriteFile(dir, "panorama_request",
                  EncodeMessage(MessageType::kPanoramaRequest, 8,
                                panorama_request));

  PanoramaResult panorama_result;
  panorama_result.video_id = 8;
  panorama_result.frame_index = 2;
  panorama_result.width = 64;
  panorama_result.height = 32;
  panorama_result.frame = DeterministicBytes(128, 8);
  ok &= WriteFile(dir, "panorama_result",
                  EncodeMessage(MessageType::kPanoramaResult, 9,
                                panorama_result));

  ok &= WriteFile(dir, "cache_stats_request",
                  EncodeEnvelope(MessageType::kCacheStatsRequest, 10, {}));

  CacheStatsReply stats;
  stats.hits = 3;
  stats.misses = 1;
  ok &= WriteFile(dir, "cache_stats_reply",
                  EncodeMessage(MessageType::kCacheStatsReply, 11, stats));

  PeerLookupRequest lookup_request;
  lookup_request.descriptor = SampleHashKey();
  lookup_request.reply_type = MessageType::kRenderResult;
  ok &= WriteFile(dir, "peer_lookup_request",
                  EncodeMessage(MessageType::kPeerLookupRequest, 12,
                                lookup_request));

  PeerLookupReply lookup_reply;
  lookup_reply.found = true;
  lookup_reply.reply_type = MessageType::kRenderResult;
  lookup_reply.payload = DeterministicBytes(40, 12);
  ok &= WriteFile(dir, "peer_lookup_reply",
                  EncodeMessage(MessageType::kPeerLookupReply, 13,
                                lookup_reply));

  SummaryUpdate summary;
  summary.edge_id = 1;
  summary.version = 3;
  summary.bloom_hashes = 4;
  summary.bloom_inserted = 5;
  summary.bloom_bits = DeterministicBytes(32, 14);
  summary.centroids[0].count = 2;
  summary.centroids[0].centroid = {0.25f, 0.5f};
  ok &= WriteFile(dir, "summary_update",
                  EncodeMessage(MessageType::kSummaryUpdate, 14, summary));

  SummaryDeltaUpdate delta;
  delta.edge_id = 1;
  delta.version = 4;
  delta.base_version = 3;
  delta.bloom_inserted = 7;
  delta.keys_inserted = {11, 22};
  delta.centroids[0].count = 2;
  delta.centroids[0].centroid = {0.25f, 0.5f};
  ok &= WriteFile(dir, "summary_delta_update",
                  EncodeMessage(MessageType::kSummaryDeltaUpdate, 15, delta));

  SummaryAck ack;
  ack.acker_edge = 2;
  ack.subject_edge = 1;
  ack.version = 3;
  ok &= WriteFile(dir, "summary_ack",
                  EncodeMessage(MessageType::kSummaryAck, 18, ack));

  DatagramChunk chunk;
  chunk.chunk_index = 1;
  chunk.chunk_count = 3;
  chunk.data = DeterministicBytes(64, 18);
  ok &= WriteFile(dir, "datagram_chunk",
                  EncodeMessage(MessageType::kDatagramChunk, 19, chunk));

  FederatedRelay relay;
  relay.src_edge = 0;
  relay.dest_edge = 2;
  relay.ttl = 1;
  relay.inner = EncodeEnvelope(MessageType::kPing, 16, {});
  ok &= WriteFile(dir, "federated_relay",
                  EncodeMessage(MessageType::kFederatedRelay, 16, relay));

  RegionDigestUpdate digest;
  digest.region_id = 1;
  digest.head_edge = 4;
  digest.version = 20;
  digest.bloom_hashes = 4;
  digest.bloom_inserted = 5;
  digest.bloom_bits = DeterministicBytes(32, 20);
  digest.centroids[1].count = 2;
  digest.centroids[1].centroid = {0.5f, -0.25f};
  digest.member_edges = {4, 7};
  digest.member_keys = {3, 2};
  ok &= WriteFile(dir, "region_digest_update",
                  EncodeMessage(MessageType::kRegionDigestUpdate, 20, digest));

  // Structural corners: empty input and a bare header.
  ok &= WriteFile(dir, "empty", {});
  ByteWriter header;
  AppendEnvelopeHeader(header, MessageType::kPing, 17, 0);
  ok &= WriteFile(dir, "bare_header", header.TakeBytes());

  return ok ? 0 : 1;
}
