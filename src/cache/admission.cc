#include "cache/admission.h"

#include <bit>

#include "common/rng.h"

namespace coic::cache {

FrequencySketch::FrequencySketch(std::size_t capacity_hint) {
  COIC_CHECK(capacity_hint >= 1);
  slots_ = std::bit_ceil(capacity_hint * 8);
  aging_window_ = static_cast<std::uint64_t>(capacity_hint) * 10;
  counters_.assign(kRows * slots_ / 2, 0);  // two 4-bit counters per byte
}

std::size_t FrequencySketch::IndexFor(int row, std::uint64_t key) const noexcept {
  std::uint64_t h = key ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(row + 1));
  h = SplitMix64(h);
  return static_cast<std::size_t>(row) * slots_ +
         static_cast<std::size_t>(h & (slots_ - 1));
}

std::uint8_t FrequencySketch::Get(std::size_t idx) const noexcept {
  const std::uint8_t byte = counters_[idx / 2];
  return idx % 2 == 0 ? (byte & 0x0F) : (byte >> 4);
}

void FrequencySketch::Increment(std::size_t idx) noexcept {
  std::uint8_t& byte = counters_[idx / 2];
  if (idx % 2 == 0) {
    if ((byte & 0x0F) < 15) ++byte;
  } else {
    if ((byte >> 4) < 15) byte += 0x10;
  }
}

void FrequencySketch::Record(std::uint64_t key) noexcept {
  for (int row = 0; row < kRows; ++row) {
    Increment(IndexFor(row, key));
  }
  if (++samples_ >= aging_window_) Age();
}

std::uint32_t FrequencySketch::Estimate(std::uint64_t key) const noexcept {
  std::uint32_t best = 15;
  for (int row = 0; row < kRows; ++row) {
    const std::uint32_t c = Get(IndexFor(row, key));
    if (c < best) best = c;
  }
  return best;
}

void FrequencySketch::Age() noexcept {
  for (auto& byte : counters_) {
    // Halve both nibbles in place.
    byte = static_cast<std::uint8_t>(((byte >> 1) & 0x77));
  }
  samples_ = 0;
}

}  // namespace coic::cache
