// Admission control — TinyLFU-style frequency gatekeeping.
//
// The paper's prototype admits every miss into the edge cache. Under
// byte pressure that lets one-shot requests (a tourist's one-off object)
// evict results that co-located users re-request constantly. A TinyLFU
// gate estimates each key's access frequency with a Count-Min sketch and
// admits a new entry only if it is at least as popular as the eviction
// victim it would displace. Shipped as an optional IcCache feature and
// quantified in bench_eviction_ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace coic::cache {

/// 4-bit Count-Min sketch with periodic halving ("aging") so the
/// frequency estimate tracks the recent workload, not all history.
class FrequencySketch {
 public:
  /// `capacity_hint` ~ the number of distinct hot keys to track. The
  /// sketch allocates ~8 counters per hint for a low collision rate.
  explicit FrequencySketch(std::size_t capacity_hint);

  /// Records one access.
  void Record(std::uint64_t key) noexcept;

  /// Estimated access count (saturates at 15; min over rows).
  [[nodiscard]] std::uint32_t Estimate(std::uint64_t key) const noexcept;

  /// Total Record() calls since the last aging pass.
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

  /// Halves every counter. Called automatically once samples() exceeds
  /// the aging window; exposed for tests.
  void Age() noexcept;

 private:
  static constexpr int kRows = 4;

  [[nodiscard]] std::size_t IndexFor(int row, std::uint64_t key) const noexcept;
  [[nodiscard]] std::uint8_t Get(std::size_t idx) const noexcept;
  void Increment(std::size_t idx) noexcept;

  std::size_t slots_;          ///< Counters per row (power of two).
  std::uint64_t aging_window_;
  std::uint64_t samples_ = 0;
  /// Packed 4-bit counters, kRows * slots_ of them.
  std::vector<std::uint8_t> counters_;
};

/// TinyLFU admission decision: admit a candidate only if its estimated
/// frequency beats the victim's. Stateless aside from the sketch.
class TinyLfuAdmission {
 public:
  explicit TinyLfuAdmission(std::size_t capacity_hint)
      : sketch_(capacity_hint) {}

  /// Records that `key` was requested (hit or miss) — feeds the sketch.
  void OnRequest(std::uint64_t key) noexcept { sketch_.Record(key); }

  /// Should `candidate` displace `victim`? Ties admit the candidate
  /// (recency bias: the candidate was just requested).
  [[nodiscard]] bool Admit(std::uint64_t candidate,
                           std::uint64_t victim) const noexcept {
    return sketch_.Estimate(candidate) >= sketch_.Estimate(victim);
  }

  [[nodiscard]] const FrequencySketch& sketch() const noexcept { return sketch_; }

 private:
  FrequencySketch sketch_;
};

}  // namespace coic::cache
