#include "cache/ic_cache.h"

#include "common/rng.h"

namespace coic::cache {

using proto::DescriptorKind;
using proto::FeatureDescriptor;
using proto::TaskKind;

IcCache::IcCache(IcCacheConfig config)
    : config_(config), policy_(MakePolicy(config.policy)) {
  COIC_CHECK_MSG(config.similarity_threshold >= 0,
                 "similarity threshold must be non-negative");
  for (auto& idx : vector_index_) {
    if (config.use_lsh) {
      idx = std::make_unique<LshIndex>(config.lsh);
    } else {
      idx = std::make_unique<LinearIndex>();
    }
  }
  if (config.use_tinylfu) {
    admission_ =
        std::make_unique<TinyLfuAdmission>(config.tinylfu_capacity_hint);
  }
}

std::uint64_t IcCache::SketchKey(const FeatureDescriptor& key) noexcept {
  if (key.kind() == DescriptorKind::kContentHash) return key.IndexKey();
  // Sign-bit signature: perturbed views of one object flip few signs, so
  // they usually collapse onto the same sketch key — which is exactly
  // the granularity frequency estimation wants.
  std::uint64_t sig = 0xcbf29ce484222325ULL;
  std::uint64_t bits = 0;
  std::size_t n = 0;
  for (const float v : key.vector()) {
    bits = (bits << 1) | (v >= 0 ? 1u : 0u);
    if (++n % 64 == 0) {
      sig ^= SplitMix64(bits);
      bits = 0;
    }
  }
  sig ^= SplitMix64(bits);
  return sig ^ static_cast<std::uint64_t>(key.task());
}

LookupOutcome IcCache::Lookup(const FeatureDescriptor& key, SimTime now) {
  LookupOutcome out;
  if (admission_) admission_->OnRequest(SketchKey(key));

  if (key.kind() == DescriptorKind::kContentHash) {
    const auto it = exact_.find(key.IndexKey());
    if (it != exact_.end()) {
      Entry& e = entries_.at(it->second);
      // Guard against 64-bit IndexKey collisions with a full-digest check.
      if (e.key.digest() == key.digest() && e.key.task() == key.task()) {
        if (Expired(e, now)) {
          RemoveEntry(it->second, /*eviction=*/false, /*expiration=*/true);
        } else {
          out.hit = true;
          out.entry = it->second;
          out.distance = 0;
          e.last_access = now;
          policy_->OnAccess(out.entry);
          out.payload = e.payload;
        }
      }
    }
  } else {
    const auto neighbor = VectorIndexFor(key.task()).Nearest(key.vector());
    if (neighbor && neighbor->distance <= config_.similarity_threshold) {
      Entry& e = entries_.at(neighbor->id);
      if (Expired(e, now)) {
        RemoveEntry(neighbor->id, /*eviction=*/false, /*expiration=*/true);
      } else {
        out.hit = true;
        out.entry = neighbor->id;
        out.distance = neighbor->distance;
        e.last_access = now;
        policy_->OnAccess(out.entry);
        out.payload = e.payload;
      }
    }
  }

  if (out.hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return out;
}

EntryId IcCache::Insert(const FeatureDescriptor& key, Frame payload,
                        SimTime now) {
  // Compacting re-own: the cache holds payloads for far longer than any
  // transport hop, so a small slice of a large delivery buffer is
  // re-owned into a right-sized allocation rather than pinning the
  // whole backing buffer until eviction (see kCompactSlackBytes).
  if (payload.backing_size() > payload.size() + kCompactSlackBytes &&
      payload.size() * 2 < payload.backing_size()) {
    payload = Frame::Copy(payload.span());
  }
  // Exact keys replace any existing entry for the same content.
  if (key.kind() == DescriptorKind::kContentHash) {
    const auto it = exact_.find(key.IndexKey());
    if (it != exact_.end()) {
      Entry& e = entries_.at(it->second);
      if (e.key.digest() == key.digest() && e.key.task() == key.task()) {
        const EntryId id = it->second;
        bytes_used_ -= e.charged_bytes;
        e.payload = std::move(payload);
        e.charged_bytes = e.payload.size() + e.key.WireSize() + kEntryOverhead;
        e.inserted_at = now;
        e.last_access = now;
        bytes_used_ += e.charged_bytes;
        policy_->OnAccess(id);
        ++stats_.updates;
        EvictUntilFits(id);
        return id;
      }
    }
  }

  const EntryId id = next_id_++;
  Entry e;
  e.key = key;
  e.payload = std::move(payload);
  e.charged_bytes = e.payload.size() + key.WireSize() + kEntryOverhead;
  e.inserted_at = now;
  e.last_access = now;
  e.sketch_key = SketchKey(key);
  bytes_used_ += e.charged_bytes;

  if (key.kind() == DescriptorKind::kContentHash) {
    exact_[key.IndexKey()] = id;
    Journal(key.IndexKey(), /*erased=*/false);
  } else {
    VectorIndexFor(key.task()).Insert(id, key.vector());
  }
  entries_.emplace(id, std::move(e));
  policy_->OnInsert(id);
  ++stats_.insertions;
  ++mutation_count_;

  EvictUntilFits(id);
  return id;
}

void IcCache::RemoveEntry(EntryId id, bool count_as_eviction,
                          bool count_as_expiration) {
  const auto it = entries_.find(id);
  COIC_CHECK_MSG(it != entries_.end(), "removing unknown entry");
  ++mutation_count_;
  const Entry& e = it->second;
  if (e.key.kind() == DescriptorKind::kContentHash) {
    exact_.erase(e.key.IndexKey());
    Journal(e.key.IndexKey(), /*erased=*/true);
  } else {
    VectorIndexFor(e.key.task()).Remove(id);
  }
  bytes_used_ -= e.charged_bytes;
  policy_->OnErase(id);
  entries_.erase(it);
  if (count_as_eviction) ++stats_.evictions;
  if (count_as_expiration) ++stats_.expirations;
}

void IcCache::EvictUntilFits(EntryId candidate) {
  if (config_.capacity_bytes == 0) return;
  while (bytes_used_ > config_.capacity_bytes && !entries_.empty()) {
    auto victim = policy_->Victim();
    COIC_CHECK_MSG(victim.has_value(), "policy lost track of entries");
    if (config_.replicated_hint && config_.replication_scan_depth > 0) {
      // Peer-aware steering: among the policy's next few picks, prefer
      // an entry a 1-hop peer already advertises — its re-reference is
      // a cheap peer probe, not a cloud round trip. The newcomer is
      // never steered onto (admission, below, owns that decision).
      const auto near = policy_->VictimCandidates(config_.replication_scan_depth);
      for (const EntryId cand : near) {
        if (cand == candidate) continue;
        const auto it = entries_.find(cand);
        if (it == entries_.end() ||
            it->second.key.kind() != DescriptorKind::kContentHash) {
          continue;
        }
        if (config_.replicated_hint(it->second.key.IndexKey())) {
          if (cand != *victim) ++stats_.unique_spared;
          victim = cand;
          break;
        }
      }
    }
    if (admission_ && candidate != 0 && *victim != candidate) {
      const auto candidate_it = entries_.find(candidate);
      const auto victim_it = entries_.find(*victim);
      if (candidate_it != entries_.end() && victim_it != entries_.end() &&
          !admission_->Admit(candidate_it->second.sketch_key,
                             victim_it->second.sketch_key)) {
        // The would-be victim is hotter than the newcomer: bounce the
        // newcomer instead (TinyLFU admission reject).
        RemoveEntry(candidate, /*eviction=*/false, /*expiration=*/false);
        ++stats_.admission_rejects;
        continue;
      }
    }
    RemoveEntry(*victim, /*eviction=*/true, /*expiration=*/false);
  }
}

bool IcCache::Erase(EntryId id) {
  if (entries_.count(id) == 0) return false;
  RemoveEntry(id, /*eviction=*/false, /*expiration=*/false);
  return true;
}

void IcCache::Clear() {
  while (!entries_.empty()) {
    RemoveEntry(entries_.begin()->first, false, false);
  }
}

void IcCache::ForEachKey(
    const std::function<void(const proto::FeatureDescriptor&)>& fn) const {
  for (const auto& [id, entry] : entries_) fn(entry.key);
}

void IcCache::Journal(std::uint64_t index_key, bool erased) {
  if (config_.journal_capacity == 0) return;
  if (journal_.size() == config_.journal_capacity) {
    journal_.pop_front();
    ++journal_head_;
  }
  journal_.push_back({index_key, erased});
}

bool IcCache::ForEachJournaled(
    std::uint64_t from,
    const std::function<void(const CacheJournalEntry&)>& fn) const {
  // A disabled journal records nothing, so it can never attest that a
  // reader saw every change — report it like an overflow rather than
  // letting callers build (empty) deltas from silence.
  if (config_.journal_capacity == 0) return false;
  if (from < journal_head_) return false;  // overflowed past the reader
  for (std::uint64_t seq = from; seq < journal_cursor(); ++seq) {
    fn(journal_[seq - journal_head_]);
  }
  return true;
}

}  // namespace coic::cache
