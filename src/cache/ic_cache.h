// IcCache — the edge-resident result cache at the centre of CoIC.
//
// Keys are proto::FeatureDescriptor values. Content-hash descriptors
// (render / panorama tasks) match exactly; feature-vector descriptors
// (recognition) match approximately: nearest neighbour within the
// configured distance threshold (paper §2). Values are opaque result
// payloads (annotation blobs, loaded model bytes, panoramic frames).
//
// Capacity is accounted in bytes (payload + descriptor + bookkeeping);
// overflow evicts victims nominated by a pluggable EvictionPolicy.
// Entries may also carry a TTL, expired lazily on access.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "cache/admission.h"
#include "cache/policy.h"
#include "cache/similarity_index.h"
#include "common/bytes.h"
#include "common/frame.h"
#include "common/time.h"
#include "common/units.h"
#include "proto/descriptor.h"

namespace coic::cache {

struct IcCacheConfig {
  /// Byte budget; 0 means unlimited (Figure 2a/2b runs are unconstrained,
  /// the eviction ablation sweeps this).
  Bytes capacity_bytes = 0;
  PolicyKind policy = PolicyKind::kLru;
  /// Feature-vector hit threshold (L2). Descriptor vectors are
  /// L2-normalized, so this is in [0, 2]; the threshold ablation bench
  /// sweeps it.
  double similarity_threshold = 0.25;
  /// Per-entry time-to-live; Infinite = never expires.
  Duration ttl = Duration::Infinite();
  /// Use LSH instead of exact linear scan for vector lookups.
  bool use_lsh = false;
  LshParams lsh;
  /// TinyLFU admission: a new entry only displaces an eviction victim it
  /// is (estimated) at least as popular as. Protects the hot working set
  /// from one-shot requests under byte pressure.
  bool use_tinylfu = false;
  /// Sketch sizing hint ~ number of distinct hot keys.
  std::size_t tinylfu_capacity_hint = 1024;
  /// Change-journal depth (content-hash key inserts/removals retained for
  /// delta summaries). When a reader's cursor falls off the tail the
  /// journal reports overflow and the reader must fall back to a full
  /// resync. 0 (default) disables journaling — caches pay nothing for a
  /// feature only delta-summary consumers use; FederationPipeline
  /// auto-enables a 4096-entry journal when delta gossip is on.
  std::size_t journal_capacity = 0;
  /// Peer-aware eviction: when set, the cache consults this predicate
  /// (content-hash index key -> "a 1-hop peer advertises it") while
  /// choosing eviction victims, steering onto a replicated entry within
  /// the policy's next `replication_scan_depth` candidates. Evicting
  /// replicated content costs a cheap peer probe on re-reference;
  /// evicting a unique entry costs a cloud round trip. Null (default)
  /// keeps the policy's choice bit-for-bit.
  std::function<bool(std::uint64_t)> replicated_hint;
  std::size_t replication_scan_depth = 4;
};

/// One content-hash key change recorded by the IcCache journal.
struct CacheJournalEntry {
  std::uint64_t index_key = 0;  ///< FeatureDescriptor::IndexKey().
  bool erased = false;          ///< false = inserted, true = removed.
};

struct IcCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t updates = 0;      ///< Re-insert over an existing exact key.
  std::uint64_t evictions = 0;    ///< Capacity-driven removals.
  std::uint64_t expirations = 0;  ///< TTL-driven removals.
  std::uint64_t admission_rejects = 0;  ///< Candidates TinyLFU bounced.
  /// Evictions steered onto a peer-replicated entry, sparing the
  /// policy's first pick (which no 1-hop peer advertised).
  std::uint64_t unique_spared = 0;

  [[nodiscard]] double HitRate() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Result of a cache probe.
struct LookupOutcome {
  bool hit = false;
  EntryId entry = 0;
  /// L2 distance of the matched neighbour (0 for exact-hash hits).
  double distance = 0;
  /// The cached result, shared with the cache (a refcount, not a copy) —
  /// valid even across later mutating calls, unlike the borrowed pointer
  /// it replaced.
  Frame payload;
};

class IcCache {
 public:
  explicit IcCache(IcCacheConfig config);

  IcCache(const IcCache&) = delete;
  IcCache& operator=(const IcCache&) = delete;

  /// Probes for `key` at simulated time `now`. A hit refreshes recency.
  LookupOutcome Lookup(const proto::FeatureDescriptor& key, SimTime now);

  /// Inserts a result under `key`, evicting as needed to respect the byte
  /// budget. Exact-hash keys that already exist are updated in place.
  /// The payload frame is adopted by reference — inserting a slice of a
  /// just-delivered network frame costs no copy. Returns the entry id
  /// (stable until eviction).
  EntryId Insert(const proto::FeatureDescriptor& key, Frame payload,
                 SimTime now);

  /// Erases one entry; returns false if absent.
  bool Erase(EntryId id);

  /// Visits every resident entry's key in unspecified order. Lazily
  /// expired entries may still be visited; federation summaries accept
  /// that slack (a stale advertisement only costs one wasted probe).
  void ForEachKey(
      const std::function<void(const proto::FeatureDescriptor&)>& fn) const;

  /// Drops everything (stats are preserved).
  void Clear();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] Bytes bytes_used() const noexcept { return bytes_used_; }
  [[nodiscard]] const IcCacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const IcCacheStats& stats() const noexcept { return stats_; }

  /// Monotonic content-change counter: bumped on every insert and every
  /// removal regardless of cause (eviction, expiration, Erase, Clear).
  /// Change-detection consumers (e.g. federation's gossip memo, which
  /// rebuilds a cache summary only when this moved) compare it instead
  /// of inferring mutations from the stats counter subset.
  [[nodiscard]] std::uint64_t mutation_count() const noexcept {
    return mutation_count_;
  }

  /// Change journal over content-hash keys, for delta cache summaries.
  /// Changes are numbered by a monotonic cursor: `journal_cursor()` is
  /// the sequence the *next* change will receive, `journal_head()` the
  /// oldest sequence still retained. A consumer that remembers the cursor
  /// at its last sync replays everything since via ForEachJournaled; when
  /// its cursor predates journal_head() the bounded journal has
  /// overflowed and the consumer must resync from the full content.
  /// Only content-hash keys are journaled — vector-keyed entries are
  /// digested into centroid sketches that delta consumers replace
  /// wholesale. Re-inserting an existing exact key (the update path) does
  /// not change the key set and is not journaled.
  [[nodiscard]] std::uint64_t journal_cursor() const noexcept {
    return journal_head_ + journal_.size();
  }
  [[nodiscard]] std::uint64_t journal_head() const noexcept {
    return journal_head_;
  }
  /// Visits entries with sequence in [from, journal_cursor()), oldest
  /// first. Returns false (visiting nothing) when `from` predates the
  /// retained window — the overflow signal — or when journaling is
  /// disabled (a journal that records nothing cannot attest coverage).
  bool ForEachJournaled(
      std::uint64_t from,
      const std::function<void(const CacheJournalEntry&)>& fn) const;

  /// Fixed per-entry bookkeeping charge added to payload+descriptor size.
  static constexpr Bytes kEntryOverhead = 64;

  /// Compacting re-own threshold: an inserted slice that views less than
  /// half of a backing buffer at least this much larger than itself is
  /// copied into a right-sized buffer instead of pinning the whole
  /// delivery allocation for the life of the cache entry (a 200-byte
  /// annotation slice must not retain a multi-MB reassembly buffer).
  /// The copy is deliberate and counted in frame_stats().
  static constexpr Bytes kCompactSlackBytes = 4096;

 private:
  struct Entry {
    proto::FeatureDescriptor key;
    Frame payload;
    Bytes charged_bytes = 0;
    SimTime inserted_at;
    SimTime last_access;
    std::uint64_t sketch_key = 0;  ///< TinyLFU frequency key.
  };

  /// Frequency-sketch key: exact keys use their index key; vector keys
  /// use a sign-bit signature so near-identical descriptors share a key.
  static std::uint64_t SketchKey(const proto::FeatureDescriptor& key) noexcept;

  [[nodiscard]] bool Expired(const Entry& e, SimTime now) const noexcept {
    return config_.ttl != Duration::Infinite() &&
           now - e.inserted_at > config_.ttl;
  }

  NearestNeighborIndex& VectorIndexFor(proto::TaskKind task) noexcept {
    return *vector_index_[static_cast<std::size_t>(task)];
  }

  void RemoveEntry(EntryId id, bool count_as_eviction, bool count_as_expiration);

  /// Appends one change to the bounded journal (no-op when disabled).
  void Journal(std::uint64_t index_key, bool erased);

  /// Evicts until the byte budget holds. `candidate` is the just-added
  /// entry; with TinyLFU enabled it is itself evicted (admission reject)
  /// the moment a victim with higher estimated frequency would otherwise
  /// be displaced. 0 = no candidate (plain re-fit).
  void EvictUntilFits(EntryId candidate);

  IcCacheConfig config_;
  IcCacheStats stats_;
  std::uint64_t mutation_count_ = 0;
  /// Bounded hash-key change journal; journal_head_ is the sequence
  /// number of journal_.front().
  std::uint64_t journal_head_ = 0;
  std::deque<CacheJournalEntry> journal_;
  Bytes bytes_used_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  std::unique_ptr<TinyLfuAdmission> admission_;
  EntryId next_id_ = 1;
  std::unordered_map<EntryId, Entry> entries_;
  /// Exact index: FeatureDescriptor::IndexKey() -> entry, for hash keys.
  std::unordered_map<std::uint64_t, EntryId> exact_;
  /// One vector index per TaskKind (only kRecognition is populated in
  /// practice, but the layout is uniform).
  std::array<std::unique_ptr<NearestNeighborIndex>, 3> vector_index_;
};

}  // namespace coic::cache
