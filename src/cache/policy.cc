#include "cache/policy.h"

#include <cmath>

namespace coic::cache {

std::string_view PolicyKindName(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kLfu: return "lfu";
    case PolicyKind::kSlru: return "slru";
  }
  return "unknown";
}

// --------------------------------- LRU -------------------------------------

void LruPolicy::OnInsert(EntryId id) {
  COIC_CHECK_MSG(pos_.count(id) == 0, "duplicate insert into LRU policy");
  order_.push_front(id);
  pos_[id] = order_.begin();
}

void LruPolicy::OnAccess(EntryId id) {
  const auto it = pos_.find(id);
  COIC_CHECK_MSG(it != pos_.end(), "access of untracked entry");
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::OnErase(EntryId id) {
  const auto it = pos_.find(id);
  COIC_CHECK_MSG(it != pos_.end(), "erase of untracked entry");
  order_.erase(it->second);
  pos_.erase(it);
}

std::optional<EntryId> LruPolicy::Victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

std::vector<EntryId> LruPolicy::VictimCandidates(std::size_t n) const {
  std::vector<EntryId> out;
  out.reserve(std::min(n, order_.size()));
  for (auto it = order_.rbegin(); it != order_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

// --------------------------------- FIFO ------------------------------------

void FifoPolicy::OnInsert(EntryId id) {
  COIC_CHECK_MSG(pos_.count(id) == 0, "duplicate insert into FIFO policy");
  order_.push_front(id);
  pos_[id] = order_.begin();
}

void FifoPolicy::OnErase(EntryId id) {
  const auto it = pos_.find(id);
  COIC_CHECK_MSG(it != pos_.end(), "erase of untracked entry");
  order_.erase(it->second);
  pos_.erase(it);
}

std::optional<EntryId> FifoPolicy::Victim() const {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

// --------------------------------- LFU -------------------------------------

void LfuPolicy::Place(EntryId id, std::uint64_t freq) {
  auto& bucket = buckets_[freq];
  bucket.push_front(id);
  where_[id] = Where{freq, bucket.begin()};
}

void LfuPolicy::OnInsert(EntryId id) {
  COIC_CHECK_MSG(where_.count(id) == 0, "duplicate insert into LFU policy");
  Place(id, 1);
}

void LfuPolicy::OnAccess(EntryId id) {
  const auto it = where_.find(id);
  COIC_CHECK_MSG(it != where_.end(), "access of untracked entry");
  const Where old = it->second;
  auto bucket_it = buckets_.find(old.freq);
  bucket_it->second.erase(old.it);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  Place(id, old.freq + 1);
}

void LfuPolicy::OnErase(EntryId id) {
  const auto it = where_.find(id);
  COIC_CHECK_MSG(it != where_.end(), "erase of untracked entry");
  auto bucket_it = buckets_.find(it->second.freq);
  bucket_it->second.erase(it->second.it);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  where_.erase(it);
}

std::optional<EntryId> LfuPolicy::Victim() const {
  if (buckets_.empty()) return std::nullopt;
  // Lowest frequency bucket, least-recently-used element within it.
  return buckets_.begin()->second.back();
}

// --------------------------------- SLRU ------------------------------------

SlruPolicy::SlruPolicy(double protected_fraction)
    : protected_fraction_(protected_fraction) {
  COIC_CHECK_MSG(protected_fraction > 0 && protected_fraction < 1,
                 "protected fraction must be in (0, 1)");
}

void SlruPolicy::OnInsert(EntryId id) {
  COIC_CHECK_MSG(where_.count(id) == 0, "duplicate insert into SLRU policy");
  probation_.push_front(id);
  where_[id] = Where{Segment::kProbation, probation_.begin()};
}

void SlruPolicy::OnAccess(EntryId id) {
  const auto it = where_.find(id);
  COIC_CHECK_MSG(it != where_.end(), "access of untracked entry");
  if (it->second.segment == Segment::kProbation) {
    probation_.erase(it->second.it);
    protected_.push_front(id);
    it->second = Where{Segment::kProtected, protected_.begin()};
    EnforceProtectedBound();
  } else {
    protected_.splice(protected_.begin(), protected_, it->second.it);
  }
}

void SlruPolicy::EnforceProtectedBound() {
  const auto bound = static_cast<std::size_t>(
      std::ceil(protected_fraction_ * static_cast<double>(where_.size())));
  while (protected_.size() > bound && !protected_.empty()) {
    const EntryId demoted = protected_.back();
    protected_.pop_back();
    probation_.push_front(demoted);
    where_[demoted] = Where{Segment::kProbation, probation_.begin()};
  }
}

void SlruPolicy::OnErase(EntryId id) {
  const auto it = where_.find(id);
  COIC_CHECK_MSG(it != where_.end(), "erase of untracked entry");
  if (it->second.segment == Segment::kProbation) {
    probation_.erase(it->second.it);
  } else {
    protected_.erase(it->second.it);
  }
  where_.erase(it);
}

std::optional<EntryId> SlruPolicy::Victim() const {
  // Probationary entries go first; fall back to the protected LRU tail.
  if (!probation_.empty()) return probation_.back();
  if (!protected_.empty()) return protected_.back();
  return std::nullopt;
}

std::unique_ptr<EvictionPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kLfu: return std::make_unique<LfuPolicy>();
    case PolicyKind::kSlru: return std::make_unique<SlruPolicy>();
  }
  COIC_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace coic::cache
