// Eviction policies for the edge IC cache.
//
// The paper notes its prototype uses a "simple cache management policy"
// and lists better cache management as future work (§4). We therefore
// implement a policy family behind one interface and ship an ablation
// bench (bench_eviction_ablation) comparing them under Zipf workloads.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace coic::cache {

using EntryId = std::uint64_t;

enum class PolicyKind : std::uint8_t { kLru = 0, kFifo = 1, kLfu = 2, kSlru = 3 };

std::string_view PolicyKindName(PolicyKind kind) noexcept;

/// Tracks entry recency/frequency and nominates eviction victims.
/// Policies never own payloads; the cache drives them via callbacks.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// A new entry entered the cache. `id` must not be currently tracked.
  virtual void OnInsert(EntryId id) = 0;

  /// An existing entry was hit.
  virtual void OnAccess(EntryId id) = 0;

  /// An entry left the cache (eviction or explicit erase).
  virtual void OnErase(EntryId id) = 0;

  /// The entry the policy would evict next; nullopt if empty.
  [[nodiscard]] virtual std::optional<EntryId> Victim() const = 0;

  /// Up to `n` victims in eviction order (Victim() first). The default
  /// exposes only the head — policies that can enumerate cheaply
  /// override it so the cache's peer-aware eviction has a window of
  /// near-equivalent victims to steer within.
  [[nodiscard]] virtual std::vector<EntryId> VictimCandidates(
      std::size_t n) const {
    const auto v = Victim();
    if (!v || n == 0) return {};
    return {*v};
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t tracked() const noexcept = 0;
};

/// Least-recently-used: classic list+map, O(1) per operation.
class LruPolicy final : public EvictionPolicy {
 public:
  void OnInsert(EntryId id) override;
  void OnAccess(EntryId id) override;
  void OnErase(EntryId id) override;
  [[nodiscard]] std::optional<EntryId> Victim() const override;
  [[nodiscard]] std::vector<EntryId> VictimCandidates(
      std::size_t n) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "lru"; }
  [[nodiscard]] std::size_t tracked() const noexcept override { return pos_.size(); }

 private:
  std::list<EntryId> order_;  // front = most recent
  std::unordered_map<EntryId, std::list<EntryId>::iterator> pos_;
};

/// First-in-first-out: insertion order only; accesses are ignored.
class FifoPolicy final : public EvictionPolicy {
 public:
  void OnInsert(EntryId id) override;
  void OnAccess(EntryId /*id*/) override {}
  void OnErase(EntryId id) override;
  [[nodiscard]] std::optional<EntryId> Victim() const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "fifo"; }
  [[nodiscard]] std::size_t tracked() const noexcept override { return pos_.size(); }

 private:
  std::list<EntryId> order_;  // front = newest
  std::unordered_map<EntryId, std::list<EntryId>::iterator> pos_;
};

/// Least-frequently-used with LRU tiebreak inside each frequency class
/// (the O(1) LFU of Ketan Shah et al.): frequency buckets in a sorted
/// map, each bucket an LRU list.
class LfuPolicy final : public EvictionPolicy {
 public:
  void OnInsert(EntryId id) override;
  void OnAccess(EntryId id) override;
  void OnErase(EntryId id) override;
  [[nodiscard]] std::optional<EntryId> Victim() const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "lfu"; }
  [[nodiscard]] std::size_t tracked() const noexcept override { return where_.size(); }

 private:
  struct Where {
    std::uint64_t freq;
    std::list<EntryId>::iterator it;
  };
  void Place(EntryId id, std::uint64_t freq);

  std::map<std::uint64_t, std::list<EntryId>> buckets_;  // freq -> LRU list
  std::unordered_map<EntryId, Where> where_;
};

/// Segmented LRU: new entries go to a probationary segment; a hit
/// promotes to the protected segment (bounded to `protected_fraction` of
/// tracked entries, overflow demotes back to probation). Scan-resistant:
/// one-shot items never displace the hot set.
class SlruPolicy final : public EvictionPolicy {
 public:
  explicit SlruPolicy(double protected_fraction = 0.8);

  void OnInsert(EntryId id) override;
  void OnAccess(EntryId id) override;
  void OnErase(EntryId id) override;
  [[nodiscard]] std::optional<EntryId> Victim() const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "slru"; }
  [[nodiscard]] std::size_t tracked() const noexcept override { return where_.size(); }

 private:
  enum class Segment : std::uint8_t { kProbation, kProtected };
  struct Where {
    Segment segment;
    std::list<EntryId>::iterator it;
  };
  void EnforceProtectedBound();

  double protected_fraction_;
  std::list<EntryId> probation_;   // front = most recent
  std::list<EntryId> protected_;   // front = most recent
  std::unordered_map<EntryId, Where> where_;
};

/// Factory keyed by PolicyKind.
std::unique_ptr<EvictionPolicy> MakePolicy(PolicyKind kind);

}  // namespace coic::cache
