#include "cache/similarity_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace coic::cache {
namespace {

double L2Distance(std::span<const float> a, std::span<const float> b) noexcept {
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

// ------------------------------- LinearIndex -------------------------------

void LinearIndex::Insert(std::uint64_t id, std::span<const float> vec) {
  COIC_CHECK_MSG(!vec.empty(), "cannot index an empty vector");
  if (dim_ == 0) dim_ = vec.size();
  COIC_CHECK_MSG(vec.size() == dim_, "dimension mismatch");
  COIC_CHECK_MSG(row_of_.count(id) == 0, "duplicate id");
  row_of_[id] = ids_.size();
  ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
}

bool LinearIndex::Remove(std::uint64_t id) {
  const auto it = row_of_.find(id);
  if (it == row_of_.end()) return false;
  const std::size_t row = it->second;
  const std::size_t last = ids_.size() - 1;
  if (row != last) {
    // Swap-with-last keeps storage dense.
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(last * dim_), dim_,
                data_.begin() + static_cast<std::ptrdiff_t>(row * dim_));
    ids_[row] = ids_[last];
    row_of_[ids_[row]] = row;
  }
  ids_.pop_back();
  data_.resize(ids_.size() * dim_);
  row_of_.erase(it);
  return true;
}

std::optional<Neighbor> LinearIndex::Nearest(std::span<const float> query) const {
  if (ids_.empty()) return std::nullopt;
  COIC_CHECK_MSG(query.size() == dim_, "query dimension mismatch");
  std::size_t best_row = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < ids_.size(); ++row) {
    const std::span<const float> v(data_.data() + row * dim_, dim_);
    const double d = L2Distance(query, v);
    if (d < best) {
      best = d;
      best_row = row;
    }
  }
  return Neighbor{ids_[best_row], best};
}

// -------------------------------- LshIndex ---------------------------------

LshIndex::LshIndex(LshParams params) : params_(params) {
  COIC_CHECK(params.tables >= 1);
  COIC_CHECK_MSG(params.hyperplanes >= 1 && params.hyperplanes <= 32,
                 "signature must fit a u32");
  tables_.resize(params.tables);
}

void LshIndex::EnsurePlanes(std::size_t dim) const {
  if (dim_ != 0) {
    COIC_CHECK_MSG(dim == dim_, "dimension mismatch");
    return;
  }
  dim_ = dim;
  Rng rng(params_.seed);
  planes_.resize(params_.tables);
  for (auto& table_planes : planes_) {
    table_planes.resize(params_.hyperplanes * dim_);
    for (auto& x : table_planes) x = static_cast<float>(rng.NextGaussian());
  }
}

std::uint32_t LshIndex::Signature(std::size_t table,
                                  std::span<const float> vec) const {
  const auto& tp = planes_[table];
  std::uint32_t sig = 0;
  for (std::size_t h = 0; h < params_.hyperplanes; ++h) {
    double dot = 0;
    const float* plane = tp.data() + h * dim_;
    for (std::size_t i = 0; i < dim_; ++i) dot += static_cast<double>(plane[i]) * vec[i];
    if (dot >= 0) sig |= (1u << h);
  }
  return sig;
}

void LshIndex::Insert(std::uint64_t id, std::span<const float> vec) {
  COIC_CHECK_MSG(!vec.empty(), "cannot index an empty vector");
  EnsurePlanes(vec.size());
  COIC_CHECK_MSG(vectors_.count(id) == 0, "duplicate id");
  vectors_[id].assign(vec.begin(), vec.end());
  for (std::size_t t = 0; t < params_.tables; ++t) {
    tables_[t][Signature(t, vec)].push_back(id);
  }
}

bool LshIndex::Remove(std::uint64_t id) {
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) return false;
  const std::span<const float> vec(it->second);
  for (std::size_t t = 0; t < params_.tables; ++t) {
    auto& bucket = tables_[t][Signature(t, vec)];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  }
  vectors_.erase(it);
  return true;
}

std::optional<Neighbor> LshIndex::Nearest(std::span<const float> query) const {
  if (vectors_.empty()) return std::nullopt;
  COIC_CHECK_MSG(query.size() == dim_, "query dimension mismatch");
  std::optional<Neighbor> best;
  last_probe_count_ = 0;
  // Dedup candidates across tables without allocating a set: tolerate
  // re-scoring (idempotent) and just track the best.
  for (std::size_t t = 0; t < params_.tables; ++t) {
    const auto bucket_it = tables_[t].find(Signature(t, query));
    if (bucket_it == tables_[t].end()) continue;
    for (const std::uint64_t id : bucket_it->second) {
      ++last_probe_count_;
      const auto vec_it = vectors_.find(id);
      const double d = L2Distance(query, vec_it->second);
      if (!best || d < best->distance) best = Neighbor{id, d};
    }
  }
  return best;
}

}  // namespace coic::cache
