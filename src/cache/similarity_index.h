// Approximate-match index over feature-vector descriptors.
//
// The paper's hit rule for recognition tasks: "If the distance between
// the new feature descriptor and another one in the cache is under a
// certain threshold, CoIC determines that the computation result is
// already in the cache." (§2)
//
// Two implementations behind one interface:
//   * LinearIndex — exact nearest neighbour by scan; ground truth.
//   * LshIndex    — random-hyperplane locality-sensitive hashing with
//                   multiple tables; sub-linear probes at high recall on
//                   clustered data (the regime CoIC lives in: descriptors
//                   of the same physical object form tight clusters).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace coic::cache {

/// Nearest-neighbour answer: entry id and L2 distance.
struct Neighbor {
  std::uint64_t id = 0;
  double distance = 0;
};

class NearestNeighborIndex {
 public:
  virtual ~NearestNeighborIndex() = default;

  /// Adds a vector under `id`. Ids are unique; dimension is fixed by the
  /// first insert and enforced thereafter.
  virtual void Insert(std::uint64_t id, std::span<const float> vec) = 0;

  /// Removes `id`; returns false if absent.
  virtual bool Remove(std::uint64_t id) = 0;

  /// Closest stored vector to `query`, or nullopt if empty. LSH may
  /// return a near (not exact) neighbour or nullopt on probe miss.
  [[nodiscard]] virtual std::optional<Neighbor> Nearest(
      std::span<const float> query) const = 0;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Exact scan. O(n) per query, cache-friendly flat storage.
class LinearIndex final : public NearestNeighborIndex {
 public:
  void Insert(std::uint64_t id, std::span<const float> vec) override;
  bool Remove(std::uint64_t id) override;
  [[nodiscard]] std::optional<Neighbor> Nearest(
      std::span<const float> query) const override;
  [[nodiscard]] std::size_t size() const noexcept override { return ids_.size(); }
  [[nodiscard]] std::string_view name() const noexcept override { return "linear"; }

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> ids_;
  std::vector<float> data_;  // row-major, ids_.size() x dim_
  std::unordered_map<std::uint64_t, std::size_t> row_of_;
};

struct LshParams {
  std::size_t tables = 8;        ///< Independent hash tables.
  std::size_t hyperplanes = 12;  ///< Bits per table signature.
  std::uint64_t seed = 0xC01C;   ///< Hyperplane RNG seed.
};

/// Random-hyperplane LSH (sign of dot product per plane → bit). A query
/// probes its bucket in every table and scans the union of candidates.
class LshIndex final : public NearestNeighborIndex {
 public:
  explicit LshIndex(LshParams params = {});

  void Insert(std::uint64_t id, std::span<const float> vec) override;
  bool Remove(std::uint64_t id) override;
  [[nodiscard]] std::optional<Neighbor> Nearest(
      std::span<const float> query) const override;
  [[nodiscard]] std::size_t size() const noexcept override { return vectors_.size(); }
  [[nodiscard]] std::string_view name() const noexcept override { return "lsh"; }

  /// Candidates examined by the last Nearest call (probe cost metric for
  /// the ablation bench).
  [[nodiscard]] std::size_t last_probe_count() const noexcept { return last_probe_count_; }

 private:
  void EnsurePlanes(std::size_t dim) const;
  [[nodiscard]] std::uint32_t Signature(std::size_t table,
                                        std::span<const float> vec) const;

  LshParams params_;
  mutable std::size_t dim_ = 0;
  /// planes_[t] holds `hyperplanes` row vectors of dimension dim_.
  mutable std::vector<std::vector<float>> planes_;
  std::vector<std::unordered_map<std::uint32_t, std::vector<std::uint64_t>>> tables_;
  std::unordered_map<std::uint64_t, std::vector<float>> vectors_;
  mutable std::size_t last_probe_count_ = 0;
};

}  // namespace coic::cache
