#include "common/bytes.h"

#include <bit>

#include "common/rng.h"

namespace coic {

static_assert(std::endian::native == std::endian::little,
              "CoIC wire codec assumes a little-endian host; add byte "
              "swapping in ByteWriter/ByteReader before porting");

Status ByteReader::ReadBlobView(std::span<const std::uint8_t>& out) noexcept {
  // The one implementation of the length-prefix read; the owning and
  // string forms delegate here so bounds/rewind behavior cannot diverge.
  std::uint32_t len = 0;
  const std::size_t start = pos_;
  COIC_RETURN_IF_ERROR(ReadU32(len));
  if (remaining() < len) {
    pos_ = start;
    return Status(StatusCode::kDataLoss, "blob length exceeds buffer");
  }
  out = data_.subspan(pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status ByteReader::ReadBlob(ByteVec& out) {
  std::span<const std::uint8_t> view;
  COIC_RETURN_IF_ERROR(ReadBlobView(view));
  out.assign(view.begin(), view.end());
  return Status::Ok();
}

Status ByteReader::ReadStringView(std::string_view& out) noexcept {
  std::span<const std::uint8_t> view;
  COIC_RETURN_IF_ERROR(ReadBlobView(view));
  out = std::string_view(reinterpret_cast<const char*>(view.data()),
                         view.size());
  return Status::Ok();
}

Status ByteReader::ReadBytes(ByteVec& out, std::size_t n) {
  if (remaining() < n) {
    return Status(StatusCode::kDataLoss, "raw read past end of buffer");
  }
  out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::ReadString(std::string& out) {
  std::string_view view;
  COIC_RETURN_IF_ERROR(ReadStringView(view));
  out.assign(view);
  return Status::Ok();
}

Status ByteReader::ReadF32Vector(std::vector<float>& out) {
  std::uint32_t count;
  const std::size_t start = pos_;
  COIC_RETURN_IF_ERROR(ReadU32(count));
  if (remaining() < static_cast<std::size_t>(count) * 4) {
    pos_ = start;
    return Status(StatusCode::kDataLoss, "f32 vector exceeds buffer");
  }
  out.resize(count);
  // Packed little-endian f32s on a little-endian host: one memcpy
  // replaces count bounds-checked element reads (identical bit
  // patterns). Guarded: memcpy with a null destination (empty vector)
  // is UB even at length 0.
  if (count != 0) {
    std::memcpy(out.data(), data_.data() + pos_,
                static_cast<std::size_t>(count) * 4);
  }
  pos_ += static_cast<std::size_t>(count) * 4;
  return Status::Ok();
}

Status ByteReader::ReadU64Vector(std::vector<std::uint64_t>& out) {
  std::uint32_t count;
  const std::size_t start = pos_;
  COIC_RETURN_IF_ERROR(ReadU32(count));
  if (remaining() < static_cast<std::size_t>(count) * 8) {
    pos_ = start;
    return Status(StatusCode::kDataLoss, "u64 vector exceeds buffer");
  }
  out.resize(count);
  if (count != 0) {
    std::memcpy(out.data(), data_.data() + pos_,
                static_cast<std::size_t>(count) * 8);
  }
  pos_ += static_cast<std::size_t>(count) * 8;
  return Status::Ok();
}

Status ByteReader::Skip(std::size_t n) noexcept {
  if (remaining() < n) {
    return Status(StatusCode::kDataLoss, "skip past end of buffer");
  }
  pos_ += n;
  return Status::Ok();
}

ByteVec DeterministicBytes(std::size_t size, std::uint64_t seed) {
  ByteVec out(size);
  Rng rng(seed);
  std::size_t i = 0;
  while (i + 8 <= size) {
    const std::uint64_t word = rng.NextU64();
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  if (i < size) {
    const std::uint64_t word = rng.NextU64();
    std::memcpy(out.data() + i, &word, size - i);
  }
  return out;
}

}  // namespace coic
