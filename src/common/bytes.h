// Byte-buffer primitives: ByteWriter / ByteReader.
//
// All CoIC wire messages are encoded little-endian with explicit widths.
// ByteWriter appends to a growable buffer; ByteReader is a non-owning
// cursor over a span that reports truncation as Status (kDataLoss)
// instead of UB — the decoder must be safe on hostile input since in the
// real deployment these bytes arrive from the network.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace coic {

using ByteVec = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian scalars, length-prefixed blobs and
/// strings to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }
  /// Adopts `recycled`'s heap buffer (cleared, capacity kept) so pooled
  /// control-frame encodes skip the allocation once the pool is warm.
  explicit ByteWriter(ByteVec&& recycled) : buf_(std::move(recycled)) {
    buf_.clear();
  }

  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU16(std::uint16_t v) { AppendLE(&v, 2); }
  void WriteU32(std::uint32_t v) { AppendLE(&v, 4); }
  void WriteU64(std::uint64_t v) { AppendLE(&v, 8); }
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }
  void WriteF32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    WriteU32(bits);
  }
  void WriteF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    WriteU64(bits);
  }

  /// Raw bytes, no length prefix.
  void WriteRaw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// u32 length prefix + bytes.
  void WriteBlob(std::span<const std::uint8_t> data) {
    WriteU32(static_cast<std::uint32_t>(data.size()));
    WriteRaw(data);
  }

  /// u32 length prefix + UTF-8 bytes.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// u32 count + tightly packed f32s.
  void WriteF32Vector(std::span<const float> v) {
    WriteU32(static_cast<std::uint32_t>(v.size()));
    for (const float f : v) WriteF32(f);
  }

  /// u32 count + tightly packed u64s (delta-summary key lists).
  void WriteU64Vector(std::span<const std::uint64_t> v) {
    WriteU32(static_cast<std::uint32_t>(v.size()));
    for (const std::uint64_t x : v) WriteU64(x);
  }

  /// Overwrites 4 already-written bytes at `offset` (little-endian).
  /// Lets encoders emit a length placeholder and fix it up afterwards,
  /// avoiding a separate payload buffer + copy on the envelope hot path.
  void PatchU32(std::size_t offset, std::uint32_t v) {
    COIC_CHECK(offset + 4 <= buf_.size());
    std::memcpy(buf_.data() + offset, &v, 4);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept { return buf_; }

  /// Moves the buffer out; the writer is empty afterwards.
  [[nodiscard]] ByteVec TakeBytes() noexcept { return std::move(buf_); }

 private:
  void AppendLE(const void* p, std::size_t n) {
    // Little-endian host assumed (x86-64 / aarch64 Linux); a static_assert
    // in bytes.cc guards the port to a BE platform.
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), bytes, bytes + n);
  }
  ByteVec buf_;
};

/// Sequential decoder over a non-owned byte span. Every Read* returns
/// Status and leaves the cursor untouched on failure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }

  Status ReadU8(std::uint8_t& out) noexcept { return ReadLE(&out, 1); }
  Status ReadU16(std::uint16_t& out) noexcept { return ReadLE(&out, 2); }
  Status ReadU32(std::uint32_t& out) noexcept { return ReadLE(&out, 4); }
  Status ReadU64(std::uint64_t& out) noexcept { return ReadLE(&out, 8); }
  Status ReadI64(std::int64_t& out) noexcept {
    std::uint64_t u;
    COIC_RETURN_IF_ERROR(ReadU64(u));
    out = static_cast<std::int64_t>(u);
    return Status::Ok();
  }
  Status ReadF32(float& out) noexcept {
    std::uint32_t bits = 0;
    COIC_RETURN_IF_ERROR(ReadU32(bits));
    std::memcpy(&out, &bits, 4);
    return Status::Ok();
  }
  Status ReadF64(double& out) noexcept {
    std::uint64_t bits = 0;
    COIC_RETURN_IF_ERROR(ReadU64(bits));
    std::memcpy(&out, &bits, 8);
    return Status::Ok();
  }

  /// Reads a u32-length-prefixed blob into an owned vector.
  Status ReadBlob(ByteVec& out);

  /// Borrowed-view variant of ReadBlob: `out` points into the reader's
  /// underlying buffer (valid only while that buffer lives). This is the
  /// zero-copy path the view decoders use on the client receive side —
  /// the multi-MB model/panorama blobs are never duplicated into an
  /// owned vector.
  Status ReadBlobView(std::span<const std::uint8_t>& out) noexcept;

  /// Borrowed-view variant of ReadString (same lifetime caveat).
  Status ReadStringView(std::string_view& out) noexcept;

  /// Reads exactly `n` raw bytes (no length prefix) into an owned vector.
  Status ReadBytes(ByteVec& out, std::size_t n);

  /// Reads a u32-length-prefixed string.
  Status ReadString(std::string& out);

  /// Reads a u32-count-prefixed packed f32 vector.
  Status ReadF32Vector(std::vector<float>& out);

  /// Reads a u32-count-prefixed packed u64 vector.
  Status ReadU64Vector(std::vector<std::uint64_t>& out);

  /// Reads exactly `n` raw little-endian bytes into caller storage with
  /// one bounds check — the bulk path for packed scalar arrays (mesh
  /// vertices, descriptor vectors) that per-element Read* calls make the
  /// decode hot spot.
  Status ReadRaw(void* out, std::size_t n) noexcept { return ReadLE(out, n); }

  /// Skips n bytes.
  Status Skip(std::size_t n) noexcept;

 private:
  Status ReadLE(void* out, std::size_t n) noexcept {
    if (remaining() < n) {
      return Status(StatusCode::kDataLoss, "buffer truncated");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: a ByteVec filled with deterministic pseudo-random content
/// of exactly `size` bytes (used to fabricate payloads whose ContentDigest
/// is stable across runs).
ByteVec DeterministicBytes(std::size_t size, std::uint64_t seed);

}  // namespace coic
