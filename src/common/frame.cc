#include "common/frame.h"

namespace coic {

FrameCopyStats& frame_stats() noexcept {
  static FrameCopyStats stats;
  return stats;
}

Frame Frame::Copy(std::span<const std::uint8_t> bytes) {
  frame_stats().Record(bytes.size());
  return Frame(ByteVec(bytes.begin(), bytes.end()));
}

ByteVec Frame::CloneBytes() const {
  frame_stats().Record(size_);
  const auto s = span();
  return ByteVec(s.begin(), s.end());
}

std::span<std::uint8_t> Frame::MutableSpan() {
  COIC_CHECK(buf_ != nullptr);
  if (buf_.use_count() == 1) {
    // Sole owner: every buffer is allocated as a non-const ByteVec (see
    // the adopting constructor) with only the stored pointer
    // const-qualified, so casting the const away is defined behavior —
    // and nobody else can observe the patch.
    auto* mutable_buf = const_cast<ByteVec*>(buf_.get());
    return {mutable_buf->data() + offset_, size_};
  }
  // Shared: copy-on-write the viewed window (counted).
  *this = Copy(span());
  auto* mutable_buf = const_cast<ByteVec*>(buf_.get());
  return {mutable_buf->data(), size_};
}

}  // namespace coic
