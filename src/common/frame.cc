#include "common/frame.h"

#include <mutex>
#include <vector>

namespace coic {

FrameCopyStats& frame_stats() noexcept {
  static FrameCopyStats stats;
  return stats;
}

Frame Frame::Copy(std::span<const std::uint8_t> bytes) {
  frame_stats().Record(bytes.size());
  return Frame(ByteVec(bytes.begin(), bytes.end()));
}

ByteVec Frame::CloneBytes() const {
  frame_stats().Record(size_);
  const auto s = span();
  return ByteVec(s.begin(), s.end());
}

std::span<std::uint8_t> Frame::MutableSpan() {
  COIC_CHECK(buf_ != nullptr);
  if (buf_.use_count() == 1) {
    // Sole owner: every buffer is allocated as a non-const ByteVec (see
    // the adopting constructor) with only the stored pointer
    // const-qualified, so casting the const away is defined behavior —
    // and nobody else can observe the patch.
    auto* mutable_buf = const_cast<ByteVec*>(buf_.get());
    return {mutable_buf->data() + offset_, size_};
  }
  // Shared: copy-on-write the viewed window (counted).
  *this = Copy(span());
  auto* mutable_buf = const_cast<ByteVec*>(buf_.get());
  return {mutable_buf->data(), size_};
}

struct FrameArena::FreeList {
  std::mutex mu;
  std::vector<ByteVec> free;
  std::size_t max_free = 0;
  std::uint64_t reuses = 0;
  std::uint64_t allocations = 0;
};

FrameArena::FrameArena(std::size_t max_free)
    : list_(std::make_shared<FreeList>()) {
  list_->max_free = max_free;
}

ByteVec FrameArena::Acquire(std::size_t reserve) {
  ByteVec buf;
  {
    std::lock_guard<std::mutex> lock(list_->mu);
    if (!list_->free.empty()) {
      buf = std::move(list_->free.back());
      list_->free.pop_back();
      ++list_->reuses;
    } else {
      ++list_->allocations;
    }
  }
  buf.clear();
  buf.reserve(reserve);
  return buf;
}

Frame FrameArena::Seal(ByteVec&& bytes) {
  // The deleter returns the buffer to the free list (or frees it when
  // the list is full) and holds its own reference to the list, so
  // returns after arena destruction are safe. Sealed buffers are
  // allocated non-const here; reclaiming the storage through the
  // original type is defined behavior.
  return Frame::FromShared(std::shared_ptr<const ByteVec>(
      new ByteVec(std::move(bytes)),
      [list = list_](const ByteVec* buf) noexcept {
        auto* owned = const_cast<ByteVec*>(buf);
        {
          std::lock_guard<std::mutex> lock(list->mu);
          if (list->free.size() < list->max_free) {
            list->free.push_back(std::move(*owned));
          }
        }
        delete owned;
      }));
}

std::uint64_t FrameArena::reuses() const {
  std::lock_guard<std::mutex> lock(list_->mu);
  return list_->reuses;
}

std::uint64_t FrameArena::allocations() const {
  std::lock_guard<std::mutex> lock(list_->mu);
  return list_->allocations;
}

}  // namespace coic
