// Frame — the zero-copy unit of frame transport.
//
// Every encoded envelope that moves between Link, Network, the services
// and decode used to travel as a `ByteVec` that each fan-out point
// (gossip broadcast, peer-probe fan-out, relay forwarding) had to copy
// per recipient. A Frame is an immutable refcounted view instead: a
// `std::shared_ptr<const ByteVec>` plus an (offset, length) window, so
//
//   * copying a Frame is a refcount bump (one buffer, N holders);
//   * slicing (e.g. stripping a relay wrapper) shares the same buffer;
//   * the rare mutating paths (in-place relay-TTL patching) go through
//     MutableSpan(), which mutates in place while the buffer is uniquely
//     held and copies-on-write only when it is shared.
//
// Copies are never silent: the only ways to duplicate payload bytes
// through this type are Copy() / CloneBytes() / a CoW trigger, and each
// one bumps the process-wide FrameCopyStats counters that
// bench_micro/bench_throughput_replay report — so "zero payload copies
// on broadcast fan-out" is asserted, not assumed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"

namespace coic {

/// Process-wide tally of payload-byte duplications made through the
/// Frame API. Atomic because the live TCP servers move frames across
/// threads; the simulator is single-threaded and pays only uncontended
/// relaxed increments.
struct FrameCopyStats {
  std::atomic<std::uint64_t> frame_copies{0};
  std::atomic<std::uint64_t> frame_bytes_copied{0};

  void Record(std::size_t bytes) noexcept {
    frame_copies.fetch_add(1, std::memory_order_relaxed);
    frame_bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t copies() const noexcept {
    return frame_copies.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_copied() const noexcept {
    return frame_bytes_copied.load(std::memory_order_relaxed);
  }
  void Reset() noexcept {
    frame_copies.store(0, std::memory_order_relaxed);
    frame_bytes_copied.store(0, std::memory_order_relaxed);
  }
};

/// The global counter instance (see FrameCopyStats).
FrameCopyStats& frame_stats() noexcept;

class Frame {
 public:
  /// Empty frame (no buffer).
  Frame() = default;

  /// Adopts `bytes` without copying. Implicit on purpose: every encoder
  /// returns a ByteVec rvalue, and wrapping it is free — while wrapping
  /// an lvalue would hide a copy, so only rvalues convert. The buffer is
  /// allocated as a non-const ByteVec and only the stored pointer is
  /// const-qualified, so MutableSpan's cast-back is defined behavior.
  Frame(ByteVec&& bytes)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<ByteVec>(std::move(bytes))),
        size_(buf_->size()) {}

  /// Named form of the adopting constructor.
  [[nodiscard]] static Frame Own(ByteVec&& bytes) {
    return Frame(std::move(bytes));
  }

  /// Adopts an already-shared buffer (no copy) — the FrameArena seal
  /// path, where the shared_ptr carries a custom deleter that recycles
  /// the buffer instead of freeing it. The pointee must have been
  /// allocated non-const (see the adopting constructor's note on
  /// MutableSpan).
  [[nodiscard]] static Frame FromShared(std::shared_ptr<const ByteVec> buf) {
    const std::size_t size = buf ? buf->size() : 0;
    return Frame(std::move(buf), 0, size);
  }

  /// Duplicates `bytes` into a fresh buffer. Counted in frame_stats() —
  /// this is the escape hatch, not the default.
  [[nodiscard]] static Frame Copy(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_ ? buf_->data() + offset_ : nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {data(), size_};
  }
  /// Frames decode everywhere a span does.
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return span();
  }

  /// A sub-window sharing the same buffer (no copy). The window must lie
  /// within this frame.
  [[nodiscard]] Frame Slice(std::size_t offset, std::size_t length) const {
    COIC_CHECK(offset + length <= size_);
    return Frame(buf_, offset_ + offset, length);
  }

  /// The slice whose bytes are exactly `sub`, which must point into this
  /// frame's span (e.g. a borrowed-view decoder's blob field) — how a
  /// receive path turns "the payload I just parsed" into a shareable
  /// Frame without copying it.
  [[nodiscard]] Frame SliceOf(std::span<const std::uint8_t> sub) const {
    COIC_CHECK(sub.data() >= data() && sub.data() + sub.size() <= data() + size_);
    return Frame(buf_, offset_ + static_cast<std::size_t>(sub.data() - data()),
                 sub.size());
  }

  /// An owned copy of the viewed bytes. Counted in frame_stats().
  [[nodiscard]] ByteVec CloneBytes() const;

  /// Holders of the underlying buffer (0 for an empty frame). The
  /// buffer-sharing assertions in tests key on this.
  [[nodiscard]] long use_count() const noexcept { return buf_.use_count(); }

  /// Size of the whole underlying buffer, regardless of this frame's
  /// window. A long-lived holder (e.g. a cache) compares this against
  /// size() to detect a small slice pinning a large delivery buffer.
  [[nodiscard]] std::size_t backing_size() const noexcept {
    return buf_ ? buf_->size() : 0;
  }

  /// True when both frames view the same underlying buffer (regardless
  /// of window).
  [[nodiscard]] bool SharesBufferWith(const Frame& other) const noexcept {
    return buf_ != nullptr && buf_ == other.buf_;
  }

  /// Mutable access for the rare in-place patches (relay TTL). While the
  /// buffer is uniquely held the patch lands in place (no copy — the
  /// sole-owner case of an intermediate relay hop); when it is shared
  /// the viewed bytes are first copied out (copy-on-write, counted), so
  /// other holders never observe the mutation.
  [[nodiscard]] std::span<std::uint8_t> MutableSpan();

 private:
  Frame(std::shared_ptr<const ByteVec> buf, std::size_t offset,
        std::size_t length)
      : buf_(std::move(buf)), offset_(offset), size_(length) {}

  std::shared_ptr<const ByteVec> buf_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

/// Buffer pool for small control frames (peer probes, summary acks,
/// region digests). These are encoded at high rate, fanned out by
/// refcount, and dropped microseconds later — so the heap churn is pure
/// allocator traffic for buffers of near-identical size. The arena hands
/// out ByteVecs whose capacity survives recycling: Acquire() pops a
/// warm buffer (or allocates on a cold start), Seal() wraps the encoded
/// bytes in a Frame whose deleter pushes the buffer back onto the free
/// list when the last holder drops it. Only the shared_ptr control
/// block remains a per-frame allocation.
///
/// Thread-safety: the free list is mutex-protected because a frame's
/// last reference may drop on a different shard thread than the one
/// that acquired the buffer (cross-shard gossip). The deleter holds a
/// shared_ptr to the free list, so destroying the arena while sealed
/// frames are still in flight is safe — late returns land on the
/// orphaned list and are freed with it.
class FrameArena {
 public:
  /// `max_free` bounds the free list; buffers returned beyond it are
  /// simply freed.
  explicit FrameArena(std::size_t max_free = 64);

  /// A cleared buffer, reserving `reserve` bytes, with capacity retained
  /// from a previously recycled control frame when one is available.
  [[nodiscard]] ByteVec Acquire(std::size_t reserve);

  /// Wraps `bytes` in a Frame whose backing buffer returns to this
  /// arena's free list when the last holder drops it.
  [[nodiscard]] Frame Seal(ByteVec&& bytes);

  /// Buffers handed out from the free list (vs freshly allocated).
  [[nodiscard]] std::uint64_t reuses() const;
  /// Cold-start allocations made by Acquire().
  [[nodiscard]] std::uint64_t allocations() const;

 private:
  struct FreeList;
  std::shared_ptr<FreeList> list_;
};

}  // namespace coic
