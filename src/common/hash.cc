#include "common/hash.h"

#include <cstdio>

namespace coic {
namespace {

constexpr std::uint64_t Avalanche(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Digest128 ContentDigest(std::span<const std::uint8_t> data) noexcept {
  // Two independent FNV streams; fold in the length so that buffers that
  // are prefixes of each other cannot collide trivially.
  const std::uint64_t a = Fnv1a64(data, 0xcbf29ce484222325ULL);
  const std::uint64_t b = Fnv1a64(data, 0x84222325cbf29ce4ULL);
  const std::uint64_t len = data.size();
  return Digest128{Avalanche(a ^ (len * 0xD1B54A32D192ED03ULL)),
                   Avalanche(b + 0x2545F4914F6CDD1DULL * (len + 1))};
}

std::string Digest128::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

}  // namespace coic
