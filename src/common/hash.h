// Content hashing.
//
// CoIC keys 3D models and panoramic frames by content hash (paper §2).
// We provide FNV-1a for cheap table hashing and a 128-bit mixed hash
// (two independently seeded passes) as the collision-resistant-enough
// content digest for cache keys. This is a simulator: we need stable,
// well-distributed digests, not cryptographic strength, and we document
// that distinction here rather than pretending otherwise.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace coic {

/// 64-bit FNV-1a over a byte span.
constexpr std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t Fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A 128-bit content digest. Value-semantic, hashable, printable.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Digest128&, const Digest128&) noexcept = default;
  friend constexpr auto operator<=>(const Digest128&, const Digest128&) noexcept = default;

  [[nodiscard]] bool IsZero() const noexcept { return hi == 0 && lo == 0; }

  /// 32 hex chars.
  [[nodiscard]] std::string ToHex() const;
};

/// Content digest of a byte buffer: two FNV passes with distinct seeds,
/// each finalized through a SplitMix-style avalanche.
Digest128 ContentDigest(std::span<const std::uint8_t> data) noexcept;

/// Hash functor so Digest128 can key unordered containers.
struct Digest128Hasher {
  std::size_t operator()(const Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9E3779B97F4A7C15ULL));
  }
};

}  // namespace coic
