#include "common/log.h"

#include <cstdio>
#include <mutex>

namespace coic {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

std::string_view Basename(std::string_view path) noexcept {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

bool LogEnabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void EmitLogLine(LogLevel level, std::string_view file, int line,
                 std::string_view message) {
  const std::string_view base = Basename(file);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", LevelTag(level),
               static_cast<int>(base.size()), base.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace internal
}  // namespace coic
