// Minimal leveled logger.
//
// The simulator is single-threaded and the real transport logs from
// multiple threads, so the sink takes a lock per line. Level filtering is
// a cheap atomic read; benches run with the level at kWarn so logging
// never shows up in profiles.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace coic {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; lines below it are discarded before formatting.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {

bool LogEnabled(LogLevel level) noexcept;
void EmitLogLine(LogLevel level, std::string_view file, int line,
                 std::string_view message);

/// Stream-collecting helper; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) noexcept
      : level_(level), file_(file), line_(line) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { EmitLogLine(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define COIC_LOG(level)                                          \
  if (!::coic::internal::LogEnabled(::coic::LogLevel::level)) {  \
  } else                                                         \
    ::coic::internal::LogLine(::coic::LogLevel::level, __FILE__, __LINE__)

}  // namespace coic
