#include "common/rng.h"

#include <algorithm>

namespace coic {

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) : skew_(skew) {
  COIC_CHECK(n >= 1);
  COIC_CHECK(skew >= 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against FP round-down at the tail
}

std::size_t ZipfDistribution::Sample(Rng& rng) const noexcept {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t rank) const {
  COIC_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace coic
