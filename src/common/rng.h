// Deterministic random-number generation.
//
// Every stochastic component in the repo (synthetic scenes, workload
// traces, link loss) draws from an explicitly seeded Rng so that tests and
// benches are reproducible bit-for-bit across runs and machines. We avoid
// std::mt19937 + std::*_distribution because libstdc++ does not guarantee
// cross-version distribution stability; xoshiro256** plus hand-rolled
// distributions is stable by construction.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace coic {

/// SplitMix64: used to expand a single seed into xoshiro state, and as a
/// cheap stateless mixer for hashing integer tuples.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, tiny state; the repo-wide PRNG.
class Rng {
 public:
  /// Seeds deterministically; two Rngs with the same seed produce the same
  /// stream on every platform.
  explicit Rng(std::uint64_t seed) noexcept { Reseed(seed); }

  void Reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Uniform over all 64-bit values.
  std::uint64_t NextU64() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  std::uint64_t NextBelow(std::uint64_t n) noexcept {
    COIC_CHECK(n > 0);
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    COIC_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare to
  /// keep the stream position independent of call pattern).
  double NextGaussian() noexcept {
    double u1 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial.
  bool NextBool(double p_true) noexcept { return NextDouble() < p_true; }

  /// Exponential with the given rate (mean 1/rate). Rate must be positive.
  double NextExponential(double rate) noexcept {
    COIC_CHECK(rate > 0);
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks {0, .., n-1}: rank k is drawn with
/// probability proportional to 1/(k+1)^s. Precomputes the CDF once; each
/// sample is a binary search. This is the popularity model used by the
/// trace generator (popular objects = shared stop signs / avatars).
class ZipfDistribution {
 public:
  /// n must be >= 1; s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double skew);

  [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
  [[nodiscard]] double skew() const noexcept { return skew_; }

  /// Draws a rank in [0, n).
  std::size_t Sample(Rng& rng) const noexcept;

  /// Probability mass of a given rank (for tests).
  [[nodiscard]] double Pmf(std::size_t rank) const;

 private:
  double skew_ = 0;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); cdf_.back() == 1.0
};

}  // namespace coic
