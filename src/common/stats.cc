#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace coic {

void OnlineStats::Merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double Sample::mean() const noexcept {
  if (values_.empty()) return 0;
  double acc = 0;
  for (const double v : values_) acc += v;
  return acc / static_cast<double>(values_.size());
}

double Sample::Percentile(double q) const {
  COIC_CHECK(!values_.empty());
  COIC_CHECK(q >= 0 && q <= 100);
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
  if (values_.size() == 1) return values_[0];
  const double pos = q / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1 - frac) + values_[lo + 1] * frac;
}

int LatencyHistogram::BucketFor(std::int64_t us) noexcept {
  if (us <= 1) return 0;
  // log_sqrt2(us) = 2 * log2(us)
  const int b = static_cast<int>(2.0 * std::log2(static_cast<double>(us)));
  return b >= kBuckets ? kBuckets - 1 : b;
}

double LatencyHistogram::BucketLowerBound(int b) noexcept {
  return std::pow(2.0, static_cast<double>(b) / 2.0);
}

void LatencyHistogram::AddMicros(std::int64_t us) noexcept {
  ++buckets_[BucketFor(us)];
  ++total_;
  sum_us_ += us;
}

double LatencyHistogram::QuantileMicros(double q) const noexcept {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // Midpoint of the bucket in linear space.
      return (BucketLowerBound(b) + BucketLowerBound(b + 1)) / 2.0;
    }
  }
  return BucketLowerBound(kBuckets);
}

std::string LatencyHistogram::ToString() const {
  std::string out;
  char line[96];
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    std::snprintf(line, sizeof(line), "[%9.0f, %9.0f) us  %llu\n",
                  BucketLowerBound(b), BucketLowerBound(b + 1),
                  static_cast<unsigned long long>(buckets_[b]));
    out += line;
  }
  return out;
}

}  // namespace coic
