// Measurement primitives used by benches and QoE accounting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace coic {

/// Streaming mean/variance/min/max via Welford's algorithm. O(1) memory,
/// numerically stable; used for per-link utilization and compute-time
/// accounting inside the simulator where storing samples would distort
/// the hot loop.
class OnlineStats {
 public:
  void Add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void Merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples and answers exact percentile queries. Benches use
/// this for p50/p95/p99 latency rows; sample counts there are small
/// enough (<= a few 100k) that exactness beats sketching.
class Sample {
 public:
  void Add(double x) { values_.push_back(x); dirty_ = true; }
  void Reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const noexcept;

  /// Exact percentile with linear interpolation; q in [0, 100].
  /// Precondition: !empty().
  [[nodiscard]] double Percentile(double q) const;

  [[nodiscard]] double min() const { return Percentile(0); }
  [[nodiscard]] double median() const { return Percentile(50); }
  [[nodiscard]] double max() const { return Percentile(100); }

  void Clear() noexcept { values_.clear(); dirty_ = true; }

 private:
  mutable std::vector<double> values_;
  mutable bool dirty_ = true;
};

/// Log-bucketed histogram (powers of sqrt(2) above 1us) for latency
/// distributions whose range spans decades.
class LatencyHistogram {
 public:
  void AddMicros(std::int64_t us) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }

  /// Exact sum of added values (the buckets are approximate; the mean
  /// is not).
  [[nodiscard]] std::int64_t sum_micros() const noexcept { return sum_us_; }
  [[nodiscard]] double MeanMicros() const noexcept {
    return total_ == 0 ? 0
                       : static_cast<double>(sum_us_) /
                             static_cast<double>(total_);
  }

  /// Approximate quantile from bucket boundaries; q in [0,1].
  [[nodiscard]] double QuantileMicros(double q) const noexcept;

  /// One bucket per row: "[lo_us, hi_us) count".
  [[nodiscard]] std::string ToString() const;

 private:
  static constexpr int kBuckets = 96;
  static int BucketFor(std::int64_t us) noexcept;
  static double BucketLowerBound(int b) noexcept;

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::int64_t sum_us_ = 0;
};

}  // namespace coic
