#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace coic {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
    case StatusCode::kNotFound: return "kNotFound";
    case StatusCode::kAlreadyExists: return "kAlreadyExists";
    case StatusCode::kOutOfRange: return "kOutOfRange";
    case StatusCode::kResourceExhausted: return "kResourceExhausted";
    case StatusCode::kFailedPrecondition: return "kFailedPrecondition";
    case StatusCode::kDataLoss: return "kDataLoss";
    case StatusCode::kUnavailable: return "kUnavailable";
    case StatusCode::kTimeout: return "kTimeout";
    case StatusCode::kInternal: return "kInternal";
    case StatusCode::kUnimplemented: return "kUnimplemented";
  }
  return "kUnknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "COIC_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace coic
