// Status / Result error-handling primitives for the CoIC codebase.
//
// The codebase follows the C++ Core Guidelines error-handling advice for a
// library that must also run inside a simulator hot loop: recoverable
// failures are reported by value via Status / Result<T> (E.27), exceptions
// are reserved for programmer errors surfaced by CHECK-style assertions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace coic {

/// Canonical error space shared by every CoIC module.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value outside the documented domain.
  kNotFound,          ///< Lookup key absent (cache miss is NOT an error; this
                      ///< is for registries / configuration lookups).
  kAlreadyExists,     ///< Insert collided with an existing entry.
  kOutOfRange,        ///< Index or cursor beyond the valid range.
  kResourceExhausted, ///< Capacity (bytes, queue slots, file descriptors) hit.
  kFailedPrecondition,///< Object not in the state required by the call.
  kDataLoss,          ///< Wire data failed to decode (truncated / corrupt).
  kUnavailable,       ///< Transient transport failure; retry may succeed.
  kTimeout,           ///< Deadline elapsed before the operation completed.
  kInternal,          ///< Invariant violation that is not the caller's fault.
  kUnimplemented,     ///< Feature intentionally not provided.
};

/// Human-readable name of a status code ("kOk" -> "OK").
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A cheap, value-semantic (code, message) pair. `Status::Ok()` carries no
/// allocation; error statuses own their message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status; `code` must not be kOk (use Ok()).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "error Status must carry an error code");
  }

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "kDataLoss: frame truncated at byte 12".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. A deliberately small
/// stand-in for std::expected (not available in libstdc++ 12).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from error: `return Status(StatusCode::kNotFound, "...");`
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from OK status carries no value");
  }

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk = Status::Ok();
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& {
    assert(ok() && "value() on error Result");
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(ok() && "value() on error Result");
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok() && "value() on error Result");
    return std::get<T>(std::move(rep_));
  }

  /// Value if ok, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

/// CHECK: aborts with a diagnostic on contract violation. Used for
/// programmer errors only (Core Guidelines I.6 / E.12), never for
/// recoverable conditions.
#define COIC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::coic::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                   \
  } while (false)

#define COIC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::coic::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));  \
    }                                                                   \
  } while (false)

/// Propagates an error Status from an expression producing a Status.
#define COIC_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::coic::Status coic_status_ = (expr);            \
    if (!coic_status_.ok()) return coic_status_;     \
  } while (false)

}  // namespace coic
