#include "common/time.h"

#include <cstdio>

namespace coic {
namespace {

std::string FormatMicros(std::int64_t us) {
  char buf[48];
  if (us >= 1'000'000 || us <= -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3f s", static_cast<double>(us) / 1e6);
  } else if (us >= 1'000 || us <= -1'000) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const { return FormatMicros(us_); }
std::string SimTime::ToString() const { return "t=" + FormatMicros(us_); }

}  // namespace coic
