// Simulated-time strong types.
//
// All of netsim / core measure time as integral microseconds on a simulated
// clock. Wrapping the raw int64 in strong types (Core Guidelines I.4 —
// "make interfaces precisely and strongly typed") prevents the classic
// bandwidth-math bugs (ms vs us, bits vs bytes) at compile time.
#pragma once

#include <cstdint>
#include <string>

namespace coic {

/// A span of simulated time, in microseconds. Value-semantic, totally
/// ordered, closed under + and - and integer scaling.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  static constexpr Duration Micros(std::int64_t us) noexcept { return Duration(us); }
  static constexpr Duration Millis(std::int64_t ms) noexcept { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) noexcept {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() noexcept { return Duration(0); }
  /// Largest representable span; used as "no timeout".
  static constexpr Duration Infinite() noexcept { return Duration(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return us_; }
  [[nodiscard]] constexpr double millis() const noexcept { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(us_) / 1e6; }

  constexpr Duration& operator+=(Duration d) noexcept { us_ += d.us_; return *this; }
  constexpr Duration& operator-=(Duration d) noexcept { us_ -= d.us_; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration(a.us_ + b.us_); }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration(a.us_ - b.us_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) noexcept { return Duration(a.us_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) noexcept { return Duration(a.us_ * k); }
  friend constexpr auto operator<=>(Duration a, Duration b) noexcept = default;

  /// "1.250 ms" / "2.000 s" style rendering for logs and bench tables.
  [[nodiscard]] std::string ToString() const;

 private:
  constexpr explicit Duration(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute instant on the simulated clock (microseconds since sim
/// epoch). Instants and Durations form the usual affine space.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  static constexpr SimTime Epoch() noexcept { return SimTime(0); }
  static constexpr SimTime FromMicros(std::int64_t us) noexcept { return SimTime(us); }

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return us_; }
  [[nodiscard]] constexpr double millis() const noexcept { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds() const noexcept { return static_cast<double>(us_) / 1e6; }

  friend constexpr SimTime operator+(SimTime t, Duration d) noexcept { return SimTime(t.us_ + d.micros()); }
  friend constexpr SimTime operator+(Duration d, SimTime t) noexcept { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) noexcept { return SimTime(t.us_ - d.micros()); }
  friend constexpr Duration operator-(SimTime a, SimTime b) noexcept {
    return Duration::Micros(a.us_ - b.us_);
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) noexcept = default;

  [[nodiscard]] std::string ToString() const;

 private:
  constexpr explicit SimTime(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace coic
