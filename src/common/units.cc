#include "common/units.h"

#include <cstdio>

namespace coic {

std::string FormatBytes(Bytes n) {
  char buf[48];
  const double d = static_cast<double>(n);
  if (n >= MB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", d / 1e6);
  } else if (n >= KB(1)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", d / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string Bandwidth::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f Mbps", mbps());
  return buf;
}

}  // namespace coic
