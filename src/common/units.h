// Data-size and bandwidth units.
//
// Bandwidth is the quantity the paper sweeps (Figure 2a's x-axis), so it
// gets a strong type with the bits-per-second arithmetic done in one
// audited place instead of scattered through call sites.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"

namespace coic {

/// Bytes as a plain integer type alias; sizes come straight from
/// serialized buffers so an alias (not a wrapper) keeps interop cheap.
using Bytes = std::uint64_t;

constexpr Bytes KiB(std::uint64_t n) noexcept { return n * 1024; }
constexpr Bytes MiB(std::uint64_t n) noexcept { return n * 1024 * 1024; }
/// The paper reports model sizes in (decimal) KB; keep both spellings.
constexpr Bytes KB(std::uint64_t n) noexcept { return n * 1000; }
constexpr Bytes MB(std::uint64_t n) noexcept { return n * 1000 * 1000; }

/// "1.5 MB" / "231.0 KB" human rendering.
std::string FormatBytes(Bytes n);

/// Link bandwidth. Stored in bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() noexcept = default;

  static constexpr Bandwidth BitsPerSecond(std::int64_t bps) noexcept { return Bandwidth(bps); }
  static constexpr Bandwidth Mbps(double mbps) noexcept {
    return Bandwidth(static_cast<std::int64_t>(mbps * 1e6));
  }
  static constexpr Bandwidth Gbps(double gbps) noexcept {
    return Bandwidth(static_cast<std::int64_t>(gbps * 1e9));
  }

  [[nodiscard]] constexpr std::int64_t bps() const noexcept { return bps_; }
  [[nodiscard]] constexpr double mbps() const noexcept { return static_cast<double>(bps_) / 1e6; }

  /// Serialization delay for `n` bytes at this rate. Rounds up to the next
  /// microsecond so a transfer never completes "for free".
  [[nodiscard]] constexpr Duration TransmitTime(Bytes n) const noexcept {
    const __int128 bits = static_cast<__int128>(n) * 8;
    const __int128 us = (bits * 1'000'000 + bps_ - 1) / bps_;
    return Duration::Micros(static_cast<std::int64_t>(us));
  }

  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) noexcept = default;

  [[nodiscard]] std::string ToString() const;

 private:
  constexpr explicit Bandwidth(std::int64_t bps) noexcept : bps_(bps) {}
  std::int64_t bps_ = 1;  // never zero: avoids div-by-zero on default object
};

}  // namespace coic
