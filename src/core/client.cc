#include "core/client.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "render/loader.h"

namespace coic::core {

using proto::Envelope;
using proto::MessageType;
using proto::OffloadMode;
using proto::TaskKind;

CoicClient::CoicClient(Config config, SendToEdgeFn send, DelayFn delay,
                       NowFn now)
    : config_(std::move(config)), send_(std::move(send)),
      delay_(std::move(delay)), now_(std::move(now)),
      extractor_(config_.extractor),
      next_request_id_(config_.first_request_id),
      own_metrics_(config_.metrics ? nullptr : new obs::MetricsRegistry()),
      tracer_(config_.tracer), trace_track_(config_.trace_track),
      retransmissions_(Metric("retransmissions")),
      timeouts_(Metric("timeouts")),
      overload_rejects_(Metric("overload_rejects")) {}

std::uint32_t CoicClient::RemainingDeadlineMs(
    Duration spent_before_send) const noexcept {
  if (config_.deadline <= Duration::Zero()) return 0;
  const Duration remaining = config_.deadline - spent_before_send;
  if (remaining <= Duration::Zero()) return 1;
  return static_cast<std::uint32_t>(remaining.millis());
}

void CoicClient::TrackPending(std::uint64_t request_id,
                              PendingRequest pending) {
  pending_.emplace(request_id, std::move(pending));
  peak_inflight_ = std::max(peak_inflight_, pending_.size());
}

void CoicClient::SendTracked(std::uint64_t request_id, Frame frame) {
  if (tracer_) tracer_->Transition(request_id, obs::Phase::kUplink, now_());
  if (config_.retry.enabled()) {
    const auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      // The timeout clock starts at the actual send (after any modeled
      // extraction/prep delay), matching what a real socket would see.
      it->second.request = frame;
      ArmRetryTimer(request_id, it->second.attempt);
    }
  }
  send_(std::move(frame));
}

void CoicClient::ArmRetryTimer(std::uint64_t request_id,
                               std::uint32_t attempt) {
  delay_(config_.retry.TimeoutForAttempt(attempt),
         [this, request_id, attempt] { OnRetryTimer(request_id, attempt); });
}

void CoicClient::OnRetryTimer(std::uint64_t request_id,
                              std::uint32_t attempt) {
  const auto it = pending_.find(request_id);
  // Lazy disarm: resolved, or a newer attempt superseded this timer.
  if (it == pending_.end() || it->second.attempt != attempt) return;
  if (attempt >= config_.retry.max_retries) {
    ++timeouts_;
    if (tracer_) tracer_->Annotate(request_id, "client-timeout", now_());
    FinishWithError(request_id);
    return;
  }
  ++it->second.attempt;
  ++retransmissions_;
  if (tracer_) tracer_->Annotate(request_id, "client-retransmit", now_());
  send_(it->second.request);
  ArmRetryTimer(request_id, it->second.attempt);
}

std::vector<std::uint64_t> CoicClient::inflight_request_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, req] : pending_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Digest128 CoicClient::PanoramaIdentityDigest(std::uint64_t video_id,
                                             std::uint32_t frame_index) {
  ByteWriter w;
  w.WriteU64(video_id);
  w.WriteU32(frame_index);
  return ContentDigest(w.bytes());
}

void CoicClient::StartRecognition(const vision::SceneParams& scene,
                                  std::string expected_label,
                                  CompletionFn done) {
  const std::uint64_t request_id = NextRequestId();
  PendingRequest pending;
  pending.task = TaskKind::kRecognition;
  pending.started_at = now_();
  pending.expected_label = std::move(expected_label);
  pending.object_id = scene.scene_id;
  pending.done = std::move(done);
  if (tracer_) {
    tracer_->Begin(request_id, trace_track_, obs::Phase::kClientCompute,
                   pending.started_at);
  }

  proto::RecognitionRequest req;
  req.user_id = config_.user_id;
  req.app_id = config_.app_id;
  req.frame_id = request_id;
  req.mode = config_.mode;

  const vision::SyntheticImage image = vision::SyntheticImage::Generate(scene);

  if (config_.mode == OffloadMode::kOrigin) {
    // Baseline: ship the whole frame; no on-device DNN work.
    req.deadline_ms = RemainingDeadlineMs(Duration::Zero());
    req.image =
        image.SerializeForWire(config_.costs.recognition.frame_bytes);
    // Origin still needs a syntactically valid descriptor field; a
    // content hash marks "no feature extraction happened".
    req.descriptor = proto::FeatureDescriptor::ForHash(TaskKind::kRecognition,
                                                       image.ContentHash());
    TrackPending(request_id, std::move(pending));
    SendTracked(request_id, Frame(proto::EncodeMessage(
                                MessageType::kRecognitionRequest, request_id,
                                req)));
    return;
  }

  // CoIC: pay the on-device extraction, then ship only the descriptor.
  const Duration extraction = config_.costs.recognition.mobile_extraction;
  req.deadline_ms = RemainingDeadlineMs(extraction);
  pending.client_compute += extraction;
  TrackPending(request_id, std::move(pending));
  req.descriptor = proto::FeatureDescriptor::ForVector(
      TaskKind::kRecognition, extractor_.Extract(image));
  delay_(extraction, [this, request_id, req = std::move(req)] {
    SendTracked(request_id, Frame(proto::EncodeMessage(
                                MessageType::kRecognitionRequest, request_id,
                                req)));
  });
}

void CoicClient::StartRender(std::uint64_t model_id, const Digest128& digest,
                             CompletionFn done) {
  const std::uint64_t request_id = NextRequestId();
  PendingRequest pending;
  pending.task = TaskKind::kRender;
  pending.started_at = now_();
  pending.object_id = model_id;
  pending.done = std::move(done);
  if (tracer_) {
    tracer_->Begin(request_id, trace_track_, obs::Phase::kClientCompute,
                   pending.started_at);
  }

  proto::RenderRequest req;
  req.user_id = config_.user_id;
  req.app_id = config_.app_id;
  req.model_id = model_id;
  req.mode = config_.mode;
  req.descriptor = proto::FeatureDescriptor::ForHash(TaskKind::kRender, digest);

  const Duration prep = config_.costs.render.client_request_prep;
  req.deadline_ms = RemainingDeadlineMs(prep);
  pending.client_compute += prep;
  TrackPending(request_id, std::move(pending));
  delay_(prep, [this, request_id, req = std::move(req)] {
    SendTracked(request_id, Frame(proto::EncodeMessage(
                                MessageType::kRenderRequest, request_id, req)));
  });
}

void CoicClient::StartPanorama(std::uint64_t video_id,
                               std::uint32_t frame_index,
                               const proto::Viewport& viewport,
                               CompletionFn done) {
  const std::uint64_t request_id = NextRequestId();
  PendingRequest pending;
  pending.task = TaskKind::kPanorama;
  pending.started_at = now_();
  pending.object_id = video_id;
  pending.done = std::move(done);
  if (tracer_) {
    tracer_->Begin(request_id, trace_track_, obs::Phase::kClientCompute,
                   pending.started_at);
  }
  TrackPending(request_id, std::move(pending));

  proto::PanoramaRequest req;
  req.user_id = config_.user_id;
  req.video_id = video_id;
  req.frame_index = frame_index;
  req.mode = config_.mode;
  req.viewport = viewport;
  req.descriptor = proto::FeatureDescriptor::ForHash(
      TaskKind::kPanorama, PanoramaIdentityDigest(video_id, frame_index));
  req.deadline_ms = RemainingDeadlineMs(Duration::Zero());
  SendTracked(request_id, Frame(proto::EncodeMessage(
                              MessageType::kPanoramaRequest, request_id, req)));
}

void CoicClient::FinishWithError(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);
  if (tracer_) tracer_->End(request_id, now_());
  RequestOutcome outcome;
  outcome.task = pending.task;
  outcome.error = true;
  outcome.latency = now_() - pending.started_at;
  outcome.object_id = pending.object_id;
  pending.done(std::move(outcome));
}

void CoicClient::FinishWithLocalFallback(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);

  Duration local = Duration::Zero();
  RequestOutcome outcome;
  outcome.task = pending.task;
  outcome.source = proto::ResultSource::kLocal;
  outcome.object_id = pending.object_id;
  switch (pending.task) {
    case TaskKind::kRecognition:
      // Run the full DNN on-device — the Local baseline's path, so the
      // label is as correct as the offloaded one, just much later.
      local = config_.costs.recognition.local_full_inference;
      outcome.label = pending.expected_label;
      outcome.correct = true;
      break;
    case TaskKind::kRender:
      // Low-LOD placeholder assembled from assets already on device.
      local = config_.costs.render.local_fallback_render;
      break;
    case TaskKind::kPanorama:
      // Reproject the previous panoramic frame into the new viewport.
      local = config_.costs.panorama.local_reproject;
      break;
  }
  outcome.client_compute = pending.client_compute + local;
  if (tracer_) {
    tracer_->Transition(request_id, obs::Phase::kClientFinish, now_());
  }
  delay_(local, [this, outcome = std::move(outcome), request_id,
                 started_at = pending.started_at,
                 done = std::move(pending.done)]() mutable {
    outcome.latency = now_() - started_at;
    if (tracer_) tracer_->End(request_id, now_());
    done(std::move(outcome));
  });
}

void CoicClient::OnEdgeFrame(Frame frame) {
  auto env_or = proto::DecodeEnvelopeView(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "client: dropping undecodable frame";
    return;
  }
  const proto::EnvelopeView env = env_or.value();
  const auto it = pending_.find(env.request_id);
  if (it == pending_.end()) {
    // Normal under lossy transport: retransmits can draw duplicate
    // replies, and a reply can land after the local retry budget died.
    COIC_LOG(kDebug) << "client: reply for unknown request "
                     << env.request_id;
    return;
  }

  if (env.type == MessageType::kError) {
    // Overload control speaks through error replies: kResourceExhausted
    // (admission / deadline shed) and kUnavailable (open breaker) are
    // policy verdicts, not failures, and the client may degrade to
    // on-device compute instead of reporting an error.
    auto err = proto::DecodePayloadAs<proto::ErrorReply>(
        env, MessageType::kError);
    const bool shed =
        err.ok() &&
        (err.value().code ==
             static_cast<std::uint16_t>(StatusCode::kResourceExhausted) ||
         err.value().code ==
             static_cast<std::uint16_t>(StatusCode::kUnavailable));
    if (shed) {
      ++overload_rejects_;
      if (tracer_) {
        tracer_->Annotate(env.request_id, "overload-reject", now_());
      }
      if (config_.local_fallback) {
        FinishWithLocalFallback(env.request_id);
        return;
      }
    }
    FinishWithError(env.request_id);
    return;
  }

  PendingRequest pending = std::move(it->second);
  pending_.erase(it);

  RequestOutcome outcome;
  outcome.task = pending.task;
  outcome.object_id = pending.object_id;
  outcome.client_compute = pending.client_compute;

  switch (pending.task) {
    case TaskKind::kRecognition: {
      auto result = proto::DecodePayloadAs<proto::RecognitionResultView>(
          env, MessageType::kRecognitionResult);
      if (!result.ok()) {
        TrackPending(env.request_id, std::move(pending));
        FinishWithError(env.request_id);
        return;
      }
      outcome.source = result.value().source;
      outcome.label.assign(result.value().label);
      outcome.correct = outcome.label == pending.expected_label;
      outcome.result_bytes = result.value().annotation.size();
      // The annotation is display-ready; no post-receive compute.
      outcome.latency = now_() - pending.started_at;
      if (tracer_) tracer_->End(env.request_id, now_());
      pending.done(std::move(outcome));
      return;
    }

    case TaskKind::kRender: {
      auto result = proto::DecodePayloadAs<proto::RenderResultView>(
          env, MessageType::kRenderResult);
      if (!result.ok()) {
        TrackPending(env.request_id, std::move(pending));
        FinishWithError(env.request_id);
        return;
      }
      const Bytes size = result.value().model_bytes.size();
      // Ingest is real: parse + buffer build, with calibrated wall time —
      // once per distinct asset; repeats hit the device's install memo.
      // The parse reads the model bytes in place (borrowed view); the
      // frame is alive for the whole call.
      const std::uint64_t model_id = result.value().model_id;
      bool parse_ok;
      const auto memo = ingest_memo_.find(model_id);
      if (memo != ingest_memo_.end() && memo->second.first == size) {
        parse_ok = memo->second.second;
      } else {
        parse_ok = render::LoadModel(result.value().model_bytes).ok();
        ingest_memo_[model_id] = {size, parse_ok};
      }
      const Duration install = config_.costs.ClientModelInstall(size);
      outcome.source = result.value().source;
      outcome.result_bytes = size;
      outcome.client_compute = pending.client_compute + install;
      outcome.error = !parse_ok;
      if (tracer_) {
        tracer_->Transition(env.request_id, obs::Phase::kClientFinish, now_());
      }
      delay_(install, [this, outcome = std::move(outcome),
                       request_id = env.request_id,
                       started_at = pending.started_at,
                       done = std::move(pending.done)]() mutable {
        outcome.latency = now_() - started_at;
        if (tracer_) tracer_->End(request_id, now_());
        done(std::move(outcome));
      });
      return;
    }

    case TaskKind::kPanorama: {
      auto result = proto::DecodePayloadAs<proto::PanoramaResultView>(
          env, MessageType::kPanoramaResult);
      if (!result.ok()) {
        TrackPending(env.request_id, std::move(pending));
        FinishWithError(env.request_id);
        return;
      }
      const Duration crop = config_.costs.panorama.client_crop;
      outcome.source = result.value().source;
      outcome.result_bytes = result.value().frame.size();
      outcome.client_compute = pending.client_compute + crop;
      if (tracer_) {
        tracer_->Transition(env.request_id, obs::Phase::kClientFinish, now_());
      }
      delay_(crop, [this, outcome = std::move(outcome),
                    request_id = env.request_id,
                    started_at = pending.started_at,
                    done = std::move(pending.done)]() mutable {
        outcome.latency = now_() - started_at;
        if (tracer_) tracer_->End(request_id, now_());
        done(std::move(outcome));
      });
      return;
    }
  }
}

}  // namespace coic::core
