// CoicClient — the mobile-device actor.
//
// Owns the client half of the protocol for all three IC task families:
//   recognition — run the DNN's lower layers (simulated cost), extract
//     the feature-vector descriptor, send it (CoIC) or upload the full
//     frame (Origin);
//   rendering   — resolve the asset digest, request the model, then
//     ingest the returned bytes into the renderer;
//   panorama    — request the frame by identity digest, then crop the
//     viewport locally.
// Latency is measured from task start to result-ready-for-display,
// exactly the user-perceived window the paper's figures report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/cost_model.h"
#include "core/services.h"
#include "proto/envelope.h"
#include "vision/features.h"
#include "vision/image.h"

namespace coic::core {

/// Per-request QoE record; one row of the figures' underlying data.
struct RequestOutcome {
  proto::TaskKind task = proto::TaskKind::kRecognition;
  proto::ResultSource source = proto::ResultSource::kCloud;
  /// Start-to-display latency (the figures' y-axis).
  Duration latency = Duration::Zero();
  /// Client-side compute included in `latency` (extraction / ingest /
  /// crop) — reported so benches can decompose the bar.
  Duration client_compute = Duration::Zero();
  /// Recognition: label returned; empty otherwise.
  std::string label;
  /// Recognition: whether the label matched the scene's ground truth.
  bool correct = false;
  /// Render: model id; panorama: video id.
  std::uint64_t object_id = 0;
  /// Result payload size (annotation / model / panorama bytes).
  Bytes result_bytes = 0;
  bool error = false;
};

class CoicClient {
 public:
  struct Config {
    CostModel costs;
    proto::OffloadMode mode = proto::OffloadMode::kCoic;
    vision::FeatureExtractorConfig extractor;
    std::uint32_t user_id = 1;
    std::uint32_t app_id = 1;
    /// First request id issued. Live deployments set a random base so
    /// concurrent clients at one edge never collide; the simulator keeps
    /// the default for reproducible ids.
    std::uint64_t first_request_id = 1;
    /// Client->edge timeout/retry policy for the unreliable-transport
    /// mode. Disabled by default; when enabled, a request whose reply
    /// misses the deadline is retransmitted (same id — the edge
    /// deduplicates) until the budget is spent, then completed with an
    /// error outcome so every run drains.
    RetryConfig retry;
    /// Observability: when set, this client's counters live in the
    /// shared registry under `metrics_prefix` (e.g. "client.0.3.");
    /// when null the client owns a private registry. The accessors below
    /// keep working either way.
    obs::MetricsRegistry* metrics = nullptr;
    std::string metrics_prefix = "client.";
    /// Request-lifecycle tracer; null => tracing disabled. `trace_track`
    /// is the Chrome-trace pid this client's requests render under (the
    /// venue index in federation runs).
    obs::RequestTracer* tracer = nullptr;
    std::uint32_t trace_track = 0;
    /// End-to-end latency budget granted to each request; Zero = no
    /// deadline. The remaining budget (after the pre-send on-device
    /// compute) is stamped on the wire, so the edge can shed work whose
    /// result could no longer be displayed in time. A blown budget is
    /// stamped as 1 ms — the edge sheds it on arrival instead of the
    /// client silently dropping the request.
    Duration deadline = Duration::Zero();
    /// When true, an edge overload / circuit-open shed completes the
    /// task with a degraded on-device result (ResultSource::kLocal)
    /// instead of an error outcome: full local inference for
    /// recognition, a low-LOD placeholder for render, a reprojected
    /// previous frame for panorama. Graceful degradation, not failure.
    bool local_fallback = false;
  };

  using SendToEdgeFn = std::function<void(Frame frame)>;
  using CompletionFn = std::function<void(RequestOutcome)>;

  CoicClient(Config config, SendToEdgeFn send, DelayFn delay, NowFn now);

  /// Begins a recognition task on `scene`. `expected_label` is the
  /// ground truth used to fill RequestOutcome::correct.
  void StartRecognition(const vision::SceneParams& scene,
                        std::string expected_label, CompletionFn done);

  /// Begins a render/load task for the model owning `digest`.
  void StartRender(std::uint64_t model_id, const Digest128& digest,
                   CompletionFn done);

  /// Begins a panorama-frame fetch.
  void StartPanorama(std::uint64_t video_id, std::uint32_t frame_index,
                     const proto::Viewport& viewport, CompletionFn done);

  /// Frames arriving from the edge. Results are parsed with the
  /// borrowed-view decoders straight out of the frame — the multi-MB
  /// model/panorama blobs are never copied on the receive path.
  void OnEdgeFrame(Frame frame);

  /// Identity digest for a panoramic frame, shared by client and tests.
  static Digest128 PanoramaIdentityDigest(std::uint64_t video_id,
                                          std::uint32_t frame_index);

  [[nodiscard]] std::size_t inflight() const noexcept { return pending_.size(); }
  /// Ids of the requests still awaiting a reply, ascending — named by
  /// the open-loop stranded-workload diagnostics.
  [[nodiscard]] std::vector<std::uint64_t> inflight_request_ids() const;
  /// High-water mark of concurrently outstanding requests. The closed
  /// loop issues one at a time (peak 1); open-loop replay drives many.
  [[nodiscard]] std::size_t peak_inflight() const noexcept {
    return peak_inflight_;
  }
  [[nodiscard]] const vision::FeatureExtractor& extractor() const noexcept {
    return extractor_;
  }
  /// Requests retransmitted after a timeout (0 with retries disabled).
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_.value();
  }
  /// Requests abandoned (error outcome) after the retry budget.
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return timeouts_.value();
  }
  /// Requests the edge refused under overload control (admission shed,
  /// deadline shed, or open circuit breaker) — distinct from timeouts:
  /// the edge answered, with a policy verdict rather than a result.
  [[nodiscard]] std::uint64_t overload_rejects() const noexcept {
    return overload_rejects_.value();
  }

 private:
  struct PendingRequest {
    proto::TaskKind task;
    SimTime started_at;
    Duration client_compute;
    std::string expected_label;
    std::uint64_t object_id = 0;
    CompletionFn done;
    /// The encoded request, retained (a refcount) for retransmission
    /// when the retry policy is enabled.
    Frame request;
    /// Send attempt number; stale retry timers compare and disarm.
    std::uint32_t attempt = 0;
  };

  std::uint64_t NextRequestId() noexcept { return next_request_id_++; }
  /// The registry cell backing counter `name`. Constructor-only.
  [[nodiscard]] obs::Counter& Metric(const char* name) {
    return (config_.metrics ? *config_.metrics : *own_metrics_)
        .GetCounter(config_.metrics_prefix + name);
  }
  void TrackPending(std::uint64_t request_id, PendingRequest pending);
  void FinishWithError(std::uint64_t request_id);
  /// Completes an overload-rejected request with an on-device stand-in
  /// (ResultSource::kLocal) after the task's modeled local compute.
  void FinishWithLocalFallback(std::uint64_t request_id);
  /// Wire value for the deadline field: the budget left after
  /// `spent_before_send` of on-device compute, floored at 1 ms so a
  /// blown budget still reaches the edge's shed path. 0 = no deadline.
  [[nodiscard]] std::uint32_t RemainingDeadlineMs(
      Duration spent_before_send) const noexcept;
  /// Sends the encoded request and, when retries are enabled, stores it
  /// on the pending entry and arms the attempt-0 timeout.
  void SendTracked(std::uint64_t request_id, Frame frame);
  void ArmRetryTimer(std::uint64_t request_id, std::uint32_t attempt);
  void OnRetryTimer(std::uint64_t request_id, std::uint32_t attempt);

  Config config_;
  SendToEdgeFn send_;
  DelayFn delay_;
  NowFn now_;
  vision::FeatureExtractor extractor_;
  std::uint64_t next_request_id_;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::size_t peak_inflight_ = 0;
  /// Private registry backing the counters when no shared one is
  /// configured; declared before the Counter& members that bind to it.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::RequestTracer* tracer_ = nullptr;
  std::uint32_t trace_track_ = 0;
  obs::Counter& retransmissions_;
  obs::Counter& timeouts_;
  obs::Counter& overload_rejects_;
  /// Models already parsed on this device, keyed by id -> (byte size,
  /// parse ok). A real client keeps installed assets, so re-receiving
  /// the same model skips the wall-clock re-parse; the modeled install
  /// latency is still charged per request, so QoE outcomes are
  /// unchanged.
  std::unordered_map<std::uint64_t, std::pair<Bytes, bool>> ingest_memo_;
};

}  // namespace coic::core
