#include "core/coop_pipeline.h"

namespace coic::core {

federation::FederationPipelineConfig CoopPipeline::ToFederation(
    const CoopPipelineConfig& config) {
  federation::FederationPipelineConfig fed;
  fed.venues = 2;
  fed.mobiles_per_venue = 1;
  fed.network = config.network;
  fed.topology = federation::TopologyKind::kFullMesh;
  fed.peer_link.bandwidth = config.peer_bandwidth;
  fed.peer_link.propagation = config.peer_propagation;
  fed.cooperative = config.cooperative;
  // Broadcast to "all" peers — with one neighbor that is exactly the
  // original single-probe protocol. No summaries are needed, so gossip
  // is disabled and the wire traffic matches the pre-federation
  // pipeline frame for frame.
  fed.policy.kind = federation::PeerSelectKind::kBroadcastAll;
  fed.probe_budget = 1;
  fed.hop_limit = 1;
  fed.gossip_period = Duration::Infinite();
  fed.costs = config.costs;
  fed.cache = config.cache;
  fed.extractor = config.extractor;
  fed.recognition_classes = config.recognition_classes;
  fed.mobile_edge_propagation = config.mobile_edge_propagation;
  fed.edge_cloud_propagation = config.edge_cloud_propagation;
  return fed;
}

CoopPipeline::CoopPipeline(CoopPipelineConfig config)
    : fed_(ToFederation(config)) {}

Digest128 CoopPipeline::RegisterModel(std::uint64_t model_id,
                                      Bytes serialized_size) {
  return fed_.RegisterModel(model_id, serialized_size);
}

void CoopPipeline::EnqueueRecognitionAt(int venue,
                                        const vision::SceneParams& scene) {
  COIC_CHECK(venue == 0 || venue == 1);
  fed_.EnqueueRecognitionAt(static_cast<std::uint32_t>(venue), scene);
}

void CoopPipeline::EnqueueRenderAt(int venue, std::uint64_t model_id) {
  COIC_CHECK(venue == 0 || venue == 1);
  fed_.EnqueueRenderAt(static_cast<std::uint32_t>(venue), model_id);
}

void CoopPipeline::EnqueuePanoramaAt(int venue, std::uint64_t video_id,
                                     std::uint32_t frame_index) {
  COIC_CHECK(venue == 0 || venue == 1);
  fed_.EnqueuePanoramaAt(static_cast<std::uint32_t>(venue), video_id,
                         frame_index);
}

std::vector<VenueOutcome> CoopPipeline::Run() {
  auto fed_outcomes = fed_.Run();
  std::vector<VenueOutcome> outcomes;
  outcomes.reserve(fed_outcomes.size());
  for (auto& fo : fed_outcomes) {
    outcomes.push_back(
        {static_cast<int>(fo.venue), std::move(fo.outcome)});
  }
  return outcomes;
}

}  // namespace coic::core
