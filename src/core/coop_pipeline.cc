#include "core/coop_pipeline.h"

#include <cstring>

namespace coic::core {
namespace {

/// Request id from an encoded envelope (bytes 8..16 LE); used to route
/// cloud replies back to the edge that forwarded the request.
std::uint64_t PeekRequestId(std::span<const std::uint8_t> frame) {
  COIC_CHECK(frame.size() >= proto::kEnvelopeHeaderSize);
  std::uint64_t id = 0;
  std::memcpy(&id, frame.data() + 8, 8);
  return id;
}

}  // namespace

CoopPipeline::CoopPipeline(CoopPipelineConfig config)
    : config_(config), net_(sched_) {
  mobiles_[0] = net_.AddNode("mobileA");
  mobiles_[1] = net_.AddNode("mobileB");
  edge_nodes_[0] = net_.AddNode("edgeA");
  edge_nodes_[1] = net_.AddNode("edgeB");
  cloud_node_ = net_.AddNode("cloud");

  netsim::LinkConfig wifi;
  wifi.bandwidth = config.network.mobile_edge;
  wifi.propagation = config.mobile_edge_propagation;
  netsim::LinkConfig wan;
  wan.bandwidth = config.network.edge_cloud;
  wan.propagation = config.edge_cloud_propagation;
  netsim::LinkConfig lan;
  lan.bandwidth = config.peer_bandwidth;
  lan.propagation = config.peer_propagation;

  for (int venue = 0; venue < 2; ++venue) {
    net_.Connect(mobiles_[venue], edge_nodes_[venue], wifi);
    net_.Connect(edge_nodes_[venue], cloud_node_, wan);
  }
  net_.Connect(edge_nodes_[0], edge_nodes_[1], lan);

  const DelayFn delay = [this](Duration d, std::function<void()> fn) {
    sched_.ScheduleAfter(d, std::move(fn));
  };
  const NowFn now = [this] { return sched_.now(); };

  // Cloud: one shared service; replies route to whichever edge forwarded
  // the request (looked up by request id at send time).
  CloudService::Config cloud_config;
  cloud_config.costs = config.costs;
  cloud_config.recognition_classes = config.recognition_classes;
  cloud_config.extractor = config.extractor;
  static_assert(sizeof(netsim::NodeId) <= sizeof(std::uint64_t));
  auto cloud_routes =
      std::make_shared<std::unordered_map<std::uint64_t, netsim::NodeId>>();
  cloud_ = std::make_unique<CloudService>(
      cloud_config,
      [this, cloud_routes](Peer /*to*/, ByteVec frame) {
        const std::uint64_t id = PeekRequestId(frame);
        const auto it = cloud_routes->find(id);
        COIC_CHECK_MSG(it != cloud_routes->end(), "cloud reply with no route");
        const netsim::NodeId target = it->second;
        cloud_routes->erase(it);
        net_.Send(cloud_node_, target, std::move(frame));
      },
      delay);
  net_.SetHandler(cloud_node_,
                  [this, cloud_routes](netsim::NodeId from, ByteVec frame) {
                    (*cloud_routes)[PeekRequestId(frame)] = from;
                    cloud_->OnFrame(std::move(frame));
                  });

  // Edges: cooperative services wired to client, cloud and each other.
  for (int venue = 0; venue < 2; ++venue) {
    EdgeService::Config edge_config;
    edge_config.costs = config.costs;
    edge_config.cache = config.cache;
    edge_config.cooperative = config.cooperative;
    const netsim::NodeId self = edge_nodes_[venue];
    const netsim::NodeId peer = edge_nodes_[1 - venue];
    const netsim::NodeId client_node = mobiles_[venue];
    edges_[venue] = std::make_unique<EdgeService>(
        edge_config,
        [this, self, peer, client_node](Peer to, ByteVec frame) {
          netsim::NodeId target = client_node;
          if (to == Peer::kCloud) target = cloud_node_;
          if (to == Peer::kPeerEdge) target = peer;
          net_.Send(self, target, std::move(frame));
        },
        delay, now);

    net_.SetHandler(self, [this, venue, client_node,
                           peer](netsim::NodeId from, ByteVec frame) {
      if (from == client_node) {
        edges_[venue]->OnClientFrame(std::move(frame));
      } else if (from == peer) {
        edges_[venue]->OnPeerFrame(std::move(frame));
      } else {
        edges_[venue]->OnCloudFrame(std::move(frame));
      }
    });

    CoicClient::Config client_config;
    client_config.costs = config.costs;
    client_config.mode = proto::OffloadMode::kCoic;
    client_config.extractor = config.extractor;
    client_config.user_id = static_cast<std::uint32_t>(venue + 1);
    // Disjoint id spaces so the two venues' requests never collide at
    // the shared cloud.
    client_config.first_request_id =
        venue == 0 ? 1 : (std::uint64_t{1} << 40);
    clients_[venue] = std::make_unique<CoicClient>(
        client_config,
        [this, client_node, self](ByteVec frame) {
          net_.Send(client_node, self, std::move(frame));
        },
        delay, now);
    net_.SetHandler(client_node, [this, venue](netsim::NodeId, ByteVec frame) {
      clients_[venue]->OnEdgeFrame(std::move(frame));
    });
  }
}

Digest128 CoopPipeline::RegisterModel(std::uint64_t model_id,
                                      Bytes serialized_size) {
  cloud_->RegisterModel(model_id, serialized_size);
  const auto digest = cloud_->model_registry().DigestFor(model_id);
  COIC_CHECK(digest.ok());
  model_digests_[model_id] = digest.value();
  return digest.value();
}

void CoopPipeline::EnqueueRecognitionAt(int venue,
                                        const vision::SceneParams& scene) {
  COIC_CHECK(venue == 0 || venue == 1);
  ops_.push_back({venue, [this, venue, scene](CoicClient::CompletionFn done) {
                    clients_[venue]->StartRecognition(
                        scene, CloudService::LabelForScene(scene.scene_id),
                        std::move(done));
                  }});
}

void CoopPipeline::EnqueueRenderAt(int venue, std::uint64_t model_id) {
  COIC_CHECK(venue == 0 || venue == 1);
  const auto it = model_digests_.find(model_id);
  COIC_CHECK_MSG(it != model_digests_.end(),
                 "EnqueueRenderAt before RegisterModel");
  const Digest128 digest = it->second;
  ops_.push_back(
      {venue, [this, venue, model_id, digest](CoicClient::CompletionFn done) {
         clients_[venue]->StartRender(model_id, digest, std::move(done));
       }});
}

void CoopPipeline::EnqueuePanoramaAt(int venue, std::uint64_t video_id,
                                     std::uint32_t frame_index) {
  COIC_CHECK(venue == 0 || venue == 1);
  ops_.push_back(
      {venue, [this, venue, video_id, frame_index](CoicClient::CompletionFn done) {
         clients_[venue]->StartPanorama(video_id, frame_index, {},
                                        std::move(done));
       }});
}

void CoopPipeline::IssueNext() {
  if (ops_.empty()) return;
  Op op = std::move(ops_.front());
  ops_.pop_front();
  const int venue = op.venue;
  op.start([this, venue](RequestOutcome outcome) {
    outcomes_.push_back({venue, std::move(outcome)});
    IssueNext();
  });
}

std::vector<VenueOutcome> CoopPipeline::Run() {
  outcomes_.clear();
  IssueNext();
  sched_.Run();
  COIC_CHECK_MSG(ops_.empty(), "pipeline drained with operations unissued");
  return std::move(outcomes_);
}

}  // namespace coic::core
