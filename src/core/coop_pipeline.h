// CoopPipeline — two edge venues cooperating over a LAN peer link.
//
// The paper's framing is explicitly cooperative: "improve QoE of
// immersive computing by cooperatively sharing and utilizing
// intermediate IC results among different applications/users." Within
// one edge that sharing is the IC cache; across edges this pipeline adds
// the peer-probe protocol (PeerLookupRequest/Reply): a venue that misses
// locally asks its neighbor before paying the cloud WAN trip.
//
// Topology:
//
//   mobileA —wifi— edgeA —peer LAN— edgeB —wifi— mobileB
//                    \                /
//                     \—— WAN ——— cloud ——— WAN ——/
//
// Since the edge-federation subsystem landed, this class is the N=2
// special case of federation::FederationPipeline (full mesh of two
// venues, broadcast-all selection — which for one peer is exactly the
// original single-probe protocol, gossip disabled). The public API is
// unchanged; only the engine underneath is shared with the N-edge
// cluster.
#pragma once

#include "core/client.h"
#include "core/services.h"
#include "federation/federation_pipeline.h"

namespace coic::core {

struct CoopPipelineConfig {
  /// Per-venue access + WAN bandwidths (both venues symmetric).
  NetworkCondition network{Bandwidth::Mbps(100), Bandwidth::Mbps(10)};
  /// The edge-to-edge LAN link.
  Bandwidth peer_bandwidth = Bandwidth::Gbps(1);
  Duration peer_propagation = Duration::Millis(1);
  /// Disable to measure the non-cooperative baseline on an identical
  /// topology (misses go straight to the cloud).
  bool cooperative = true;
  CostModel costs;
  cache::IcCacheConfig cache;
  vision::FeatureExtractorConfig extractor;
  std::uint32_t recognition_classes = 20;
  Duration mobile_edge_propagation = kMobileEdgePropagation;
  Duration edge_cloud_propagation = kEdgeCloudPropagation;
};

/// A RequestOutcome tagged with the venue (0 or 1) that issued it.
struct VenueOutcome {
  int venue = 0;
  RequestOutcome outcome;
};

class CoopPipeline {
 public:
  explicit CoopPipeline(CoopPipelineConfig config);

  /// Registers a model with the shared cloud store; returns its digest.
  Digest128 RegisterModel(std::uint64_t model_id, Bytes serialized_size);

  void EnqueueRecognitionAt(int venue, const vision::SceneParams& scene);
  void EnqueueRenderAt(int venue, std::uint64_t model_id);
  void EnqueuePanoramaAt(int venue, std::uint64_t video_id,
                         std::uint32_t frame_index);

  /// Runs all queued operations sequentially; outcomes in issue order.
  std::vector<VenueOutcome> Run();

  [[nodiscard]] EdgeService& edge(int venue) {
    COIC_CHECK(venue == 0 || venue == 1);
    return fed_.edge(static_cast<std::uint32_t>(venue));
  }
  [[nodiscard]] CloudService& cloud() noexcept { return fed_.cloud(); }
  [[nodiscard]] netsim::EventScheduler& scheduler() noexcept {
    return fed_.scheduler();
  }

 private:
  static federation::FederationPipelineConfig ToFederation(
      const CoopPipelineConfig& config);

  federation::FederationPipeline fed_;
};

}  // namespace coic::core
