#include "core/cost_model.h"

namespace coic::core {

const std::vector<NetworkCondition>& Figure2aConditions() {
  // (B_M->E, B_E->C) pairs exactly as labelled on Figure 2a's x-axis.
  static const std::vector<NetworkCondition> kConditions = {
      {Bandwidth::Mbps(90), Bandwidth::Mbps(9)},
      {Bandwidth::Mbps(100), Bandwidth::Mbps(10)},
      {Bandwidth::Mbps(200), Bandwidth::Mbps(20)},
      {Bandwidth::Mbps(300), Bandwidth::Mbps(30)},
      {Bandwidth::Mbps(400), Bandwidth::Mbps(40)},
  };
  return kConditions;
}

NetworkCondition Figure2bCondition() noexcept {
  // The rendering experiment runs on the testbed's full-rate 802.11ac
  // WiFi (the paper quotes "up to 400 Mbps available throughput") with a
  // mid-range edge-to-cloud uplink.
  return {Bandwidth::Mbps(400), Bandwidth::Mbps(30)};
}

}  // namespace coic::core
