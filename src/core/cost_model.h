// Calibrated compute/transfer cost model.
//
// The testbed quantities the paper holds fixed (Pixel SoC inference
// speed, cloud GPU speed, frame/annotation sizes) are constants here,
// chosen so the simulated Figure 2a/2b reproduce the paper's shape:
//
//  * Figure 2a — Origin at the most constrained network condition
//    (B_M->E = 90 Mbps, B_E->C = 9 Mbps) lands near the figure's 2400 ms
//    ceiling, and the cache-hit reduction peaks at ~52% (paper: 52.28%),
//    shrinking as bandwidth grows (the paper reports the reduction "up
//    to" that figure across conditions).
//  * Figure 2b — Origin for the largest model (15053 KB) lands near the
//    figure's 6000 ms ceiling and the cache-hit load-latency reduction
//    approaches ~76% (paper: 75.86%) at the largest model.
//
// Every latency formula lives in the pipelines; this header is the only
// place numbers come from, so re-calibration is one edit.
#pragma once

#include <vector>

#include "common/time.h"
#include "common/units.h"

namespace coic::core {

/// Object-recognition task constants (Figure 2a workload).
struct RecognitionCosts {
  /// Camera frame upload size in Origin mode (4K-class JPEG).
  Bytes frame_bytes = 1'800'000;
  /// The "high-quality 3D annotation" result blob.
  Bytes annotation_bytes = 450'000;
  /// Mobile-side DNN feature extraction (partial forward pass on a
  /// 2018-class phone SoC). This is the price CoIC pays on every request
  /// — and why the reduction tops out near 52% instead of 90%.
  Duration mobile_extraction = Duration::Millis(1100);
  /// Cloud-side full inference from the raw frame (GPU).
  Duration cloud_full_inference = Duration::Millis(150);
  /// Cloud-side inference resumed from the shipped descriptor (the
  /// remaining upper layers only) on a cache miss.
  Duration cloud_descriptor_inference = Duration::Millis(80);
  /// Full on-device inference (Local baseline; the reason offloading
  /// exists at all).
  Duration local_full_inference = Duration::Millis(2800);
};

/// 3D-model rendering task constants (Figure 2b workload).
struct RenderCosts {
  /// Cloud-side model load (parse + prepare) per KB of asset.
  Duration cloud_load_per_kb = Duration::Micros(40);
  /// Client-side ingest (decode + GPU upload) per KB; paid in every mode
  /// because the bytes must reach the phone's renderer regardless.
  Duration client_install_per_kb = Duration::Micros(75);
  /// Client-side request preparation (asset resolution + hashing).
  Duration client_request_prep = Duration::Millis(25);
  /// Draw call budget after load (not part of load latency, used by the
  /// renderer example).
  Duration draw_time = Duration::Millis(11);
  /// Degraded on-device stand-in when the edge sheds the request: a
  /// low-LOD placeholder assembled from assets already installed.
  Duration local_fallback_render = Duration::Millis(90);
};

/// Panoramic VR streaming constants (§1.2 third insight).
struct PanoramaCosts {
  /// Cloud-side panorama render/encode per frame.
  Duration cloud_render = Duration::Millis(70);
  /// Client-side viewport crop of a received panorama.
  Duration client_crop = Duration::Millis(8);
  /// Degraded on-device stand-in when the edge sheds the request:
  /// reproject the previously received panoramic frame into the new
  /// viewport instead of fetching a fresh one.
  Duration local_reproject = Duration::Millis(25);
  /// Panoramic frame wire size (4K-class).
  Bytes frame_bytes = 2'400'000;
};

/// Edge cache service costs.
struct EdgeCosts {
  Duration cache_lookup = Duration::Millis(2);
  Duration cache_insert = Duration::Millis(1);
};

struct CostModel {
  RecognitionCosts recognition;
  RenderCosts render;
  PanoramaCosts panorama;
  EdgeCosts edge;

  /// Cloud model-load time for an asset of `size` bytes.
  [[nodiscard]] Duration CloudModelLoad(Bytes size) const noexcept {
    return Duration::Micros(render.cloud_load_per_kb.micros() *
                            static_cast<std::int64_t>(size / 1000));
  }

  /// Client ingest time for model bytes of `size`.
  [[nodiscard]] Duration ClientModelInstall(Bytes size) const noexcept {
    return Duration::Micros(render.client_install_per_kb.micros() *
                            static_cast<std::int64_t>(size / 1000));
  }
};

/// The five network conditions swept by Figure 2a, as (B_M->E, B_E->C)
/// in Mbps, ordered as the figure's x-axis.
struct NetworkCondition {
  Bandwidth mobile_edge;
  Bandwidth edge_cloud;
};

const std::vector<NetworkCondition>& Figure2aConditions();

/// The fixed network condition used for the Figure 2b rendering sweep.
NetworkCondition Figure2bCondition() noexcept;

/// One-way propagation delays of the testbed topology.
inline constexpr Duration kMobileEdgePropagation = Duration::Millis(2);
inline constexpr Duration kEdgeCloudPropagation = Duration::Millis(20);

}  // namespace coic::core
