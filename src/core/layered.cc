#include "core/layered.h"

namespace coic::core {

LayeredRecognitionCache::LayeredRecognitionCache(LayeredCacheConfig config)
    : config_(config) {
  COIC_CHECK(config.layers >= 1);
  COIC_CHECK_MSG(config.threshold_shallow >= config.threshold_deep,
                 "shallow threshold must be the tolerant one");
  extractors_.reserve(config.layers);
  for (std::uint32_t layer = 0; layer < config.layers; ++layer) {
    vision::FeatureExtractorConfig fc;
    fc.grid = 8;
    fc.output_dim = 48;
    // Each layer projects through an independent basis — distinct
    // feature subspaces, as distinct DNN stages would produce.
    fc.seed = config.seed ^ (0x9E3779B97F4A7C15ULL * (layer + 1));
    extractors_.emplace_back(fc);
    indexes_.push_back(std::make_unique<cache::LinearIndex>());
  }
}

double LayeredRecognitionCache::ThresholdFor(std::uint32_t layer) const noexcept {
  if (config_.layers == 1) return config_.threshold_deep;
  const double t = static_cast<double>(layer) /
                   static_cast<double>(config_.layers - 1);
  return config_.threshold_shallow +
         (config_.threshold_deep - config_.threshold_shallow) * t;
}

LayeredOutcome LayeredRecognitionCache::Process(
    const vision::SyntheticImage& image) {
  // Extract all layer activations once.
  std::vector<std::vector<float>> activations;
  activations.reserve(config_.layers);
  for (const auto& extractor : extractors_) {
    activations.push_back(extractor.Extract(image));
  }

  LayeredOutcome outcome;
  // Probe deepest-first: the deepest matching prefix saves the most.
  for (std::uint32_t layer = config_.layers; layer-- > 0;) {
    const auto neighbor = indexes_[layer]->Nearest(activations[layer]);
    if (neighbor && neighbor->distance <= ThresholdFor(layer)) {
      outcome.matched_depth = layer + 1;
      break;
    }
  }
  outcome.cloud_compute =
      config_.cloud_cost_per_layer *
      static_cast<std::int64_t>(config_.layers - outcome.matched_depth);

  // Share this frame's activations with future requests.
  for (std::uint32_t layer = 0; layer < config_.layers; ++layer) {
    indexes_[layer]->Insert(next_id_, activations[layer]);
    ++next_id_;
  }
  return outcome;
}

Duration LayeredRecognitionCache::CoarseEquivalentCost(
    const LayeredOutcome& o) const noexcept {
  return o.full_hit(config_.layers) ? Duration::Zero() : FullCost();
}

}  // namespace coic::core
