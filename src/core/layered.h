// Fine-grained (per-DNN-layer) result reuse — the paper's §4 roadmap.
//
// "Since the current CoIC can only identify coarse-grained IC tasks with
//  simple cache management policy, we are exploring the improvement that
//  can efficiently and accurately identify reusable IC workload in
//  fine-grained (e.g., the result of a specific DNN layer)."
//
// Model: the recognition DNN is a stack of `layers` stages. Each stage's
// activation gets its own descriptor (an independent projection of the
// frame), and each layer has its own reuse threshold. Shallow layers
// compute generic features that remain valid across substantial view
// changes (loose threshold); the deeper the layer, the more view- and
// pose-specific the activation a cached copy must replace, so the
// threshold tightens with depth — the final layer's threshold is the
// strict whole-result rule. A request probes from the deepest layer down
// and reuses the deepest prefix whose activation matches within that
// layer's threshold; the cloud recomputes only the remaining suffix.
// Coarse CoIC is the special case "match at the final (strict) layer or
// recompute everything".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/similarity_index.h"
#include "common/time.h"
#include "vision/features.h"
#include "vision/image.h"

namespace coic::core {

struct LayeredCacheConfig {
  /// DNN depth in reusable stages.
  std::uint32_t layers = 8;
  /// Cloud compute per stage (uniform stage cost keeps the ablation
  /// interpretable; total full inference = layers * per-layer).
  Duration cloud_cost_per_layer = Duration::Millis(19);
  /// Reuse threshold at layer 1 (shallow, generic features — tolerant).
  double threshold_shallow = 0.45;
  /// Reuse threshold at the final layer (whole-result reuse — strict).
  double threshold_deep = 0.07;
  /// Seed for the per-layer extractor banks.
  std::uint64_t seed = 0x1A7E;
};

/// Result of pushing one frame through the layered cache.
struct LayeredOutcome {
  /// Deepest layer whose activation matched a cached one (0 = nothing
  /// matched, layers = full-result hit).
  std::uint32_t matched_depth = 0;
  /// Cloud compute actually spent: (layers - matched_depth) stages.
  Duration cloud_compute = Duration::Zero();
  [[nodiscard]] bool full_hit(std::uint32_t layers) const noexcept {
    return matched_depth == layers;
  }
};

class LayeredRecognitionCache {
 public:
  explicit LayeredRecognitionCache(LayeredCacheConfig config = {});

  /// Processes a frame: probes each layer deepest-first, then inserts
  /// this frame's activations at every layer so later similar frames can
  /// reuse them.
  LayeredOutcome Process(const vision::SyntheticImage& image);

  /// What coarse (whole-result-only) CoIC would have spent on the same
  /// frame: zero on a full-depth match, full recompute otherwise.
  [[nodiscard]] Duration CoarseEquivalentCost(const LayeredOutcome& o) const noexcept;

  /// Full no-cache inference cost.
  [[nodiscard]] Duration FullCost() const noexcept {
    return config_.cloud_cost_per_layer *
           static_cast<std::int64_t>(config_.layers);
  }

  [[nodiscard]] const LayeredCacheConfig& config() const noexcept { return config_; }

  /// Reuse threshold for 0-based layer index.
  [[nodiscard]] double ThresholdFor(std::uint32_t layer) const noexcept;

 private:
  LayeredCacheConfig config_;
  /// One extractor per layer; deeper = coarser pooling grid.
  std::vector<vision::FeatureExtractor> extractors_;
  /// One similarity index per layer.
  std::vector<std::unique_ptr<cache::LinearIndex>> indexes_;
  std::uint64_t next_id_ = 1;
};

}  // namespace coic::core
