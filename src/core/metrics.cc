#include "core/metrics.h"

namespace coic::core {

void QoeAggregator::Add(const RequestOutcome& outcome) {
  ++count_;
  if (outcome.error) {
    ++errors_;
    return;
  }
  latency_ms_.Add(outcome.latency.millis());
  switch (outcome.source) {
    case proto::ResultSource::kEdgeCache:
      ++edge_hits_;
      break;
    case proto::ResultSource::kCloud:
      ++cloud_served_;
      break;
    case proto::ResultSource::kPeerEdge:
      ++peer_hits_;
      break;
    case proto::ResultSource::kLocal:
      break;
  }
  if (outcome.task == proto::TaskKind::kRecognition) {
    ++recognition_total_;
    if (outcome.correct) ++recognition_correct_;
  }
}

void QoeAggregator::AddAll(const std::vector<RequestOutcome>& outcomes) {
  for (const auto& o : outcomes) Add(o);
}

double QoeAggregator::HitRate() const noexcept {
  const auto served = edge_hits_ + peer_hits_ + cloud_served_;
  return served == 0 ? 0
                     : static_cast<double>(edge_hits_ + peer_hits_) /
                           static_cast<double>(served);
}

double QoeAggregator::Accuracy() const noexcept {
  return recognition_total_ == 0
             ? 0
             : static_cast<double>(recognition_correct_) /
                   static_cast<double>(recognition_total_);
}

double QoeAggregator::ReductionPercentVs(const QoeAggregator& baseline) const {
  const double base = baseline.MeanLatencyMs();
  if (base <= 0) return 0;
  return (1.0 - MeanLatencyMs() / base) * 100.0;
}

}  // namespace coic::core
