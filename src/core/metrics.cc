#include "core/metrics.h"

namespace coic::core {

void QoeAggregator::Add(const RequestOutcome& outcome) {
  ++count_;
  if (outcome.error) {
    ++errors_;
    return;
  }
  latency_ms_.Add(outcome.latency.millis());
  latency_by_source_[SourceIndex(outcome.source)].Add(outcome.latency.millis());
  switch (outcome.source) {
    case proto::ResultSource::kEdgeCache:
      ++edge_hits_;
      break;
    case proto::ResultSource::kCloud:
      ++cloud_served_;
      break;
    case proto::ResultSource::kPeerEdge:
      ++peer_hits_;
      break;
    case proto::ResultSource::kLocal:
      break;
  }
  if (outcome.task == proto::TaskKind::kRecognition) {
    ++recognition_total_;
    if (outcome.correct) ++recognition_correct_;
  }
}

void QoeAggregator::AddAll(const std::vector<RequestOutcome>& outcomes) {
  for (const auto& o : outcomes) Add(o);
}

double QoeAggregator::HitRate() const noexcept {
  const auto served = edge_hits_ + peer_hits_ + cloud_served_;
  return served == 0 ? 0
                     : static_cast<double>(edge_hits_ + peer_hits_) /
                           static_cast<double>(served);
}

double QoeAggregator::Accuracy() const noexcept {
  return recognition_total_ == 0
             ? 0
             : static_cast<double>(recognition_correct_) /
                   static_cast<double>(recognition_total_);
}

double QoeAggregator::ReductionPercentVs(const QoeAggregator& baseline) const {
  const double base = baseline.MeanLatencyMs();
  if (base <= 0) return 0;
  return (1.0 - MeanLatencyMs() / base) * 100.0;
}

namespace {

void AppendSampleJson(std::string& out, const Sample& sample) {
  out += "{\"count\": " + std::to_string(sample.count());
  out += ", \"mean_ms\": " + std::to_string(sample.mean());
  if (!sample.empty()) {
    out += ", \"p50_ms\": " + std::to_string(sample.Percentile(50));
    out += ", \"p95_ms\": " + std::to_string(sample.Percentile(95));
    out += ", \"p99_ms\": " + std::to_string(sample.Percentile(99));
  }
  out += '}';
}

const char* SourceName(proto::ResultSource source) noexcept {
  switch (source) {
    case proto::ResultSource::kEdgeCache:
      return "edge_cache";
    case proto::ResultSource::kCloud:
      return "cloud";
    case proto::ResultSource::kLocal:
      return "local";
    case proto::ResultSource::kPeerEdge:
      return "peer_edge";
  }
  return "unknown";
}

}  // namespace

std::string QoeAggregator::DumpJson() const {
  std::string out = "{\"count\": " + std::to_string(count_);
  out += ", \"errors\": " + std::to_string(errors_);
  out += ", \"hit_rate\": " + std::to_string(HitRate());
  out += ", \"accuracy\": " + std::to_string(Accuracy());
  out += ", \"latency_ms\": ";
  AppendSampleJson(out, latency_ms_);
  out += ", \"by_source\": {";
  bool first = true;
  for (const auto source :
       {proto::ResultSource::kEdgeCache, proto::ResultSource::kCloud,
        proto::ResultSource::kLocal, proto::ResultSource::kPeerEdge}) {
    const Sample& sample = latency_by_source_[SourceIndex(source)];
    if (sample.empty()) continue;
    if (!first) out += ", ";
    first = false;
    out += std::string("\"") + SourceName(source) + "\": ";
    AppendSampleJson(out, sample);
  }
  out += "}}";
  return out;
}

}  // namespace coic::core
