// QoE aggregation over RequestOutcome streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/client.h"

namespace coic::core {

/// Accumulates outcomes into the numbers the paper's figures report:
/// mean/percentile latency, hit rate, and reduction vs a baseline.
class QoeAggregator {
 public:
  void Add(const RequestOutcome& outcome);
  void AddAll(const std::vector<RequestOutcome>& outcomes);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::uint64_t edge_hits() const noexcept { return edge_hits_; }
  [[nodiscard]] std::uint64_t peer_hits() const noexcept { return peer_hits_; }
  [[nodiscard]] std::uint64_t cloud_served() const noexcept { return cloud_served_; }
  /// Fraction of served results that came out of an IC cache — local edge
  /// or a cooperating peer edge — rather than cloud compute.
  [[nodiscard]] double HitRate() const noexcept;
  /// Fraction of recognition outcomes whose label matched ground truth.
  [[nodiscard]] double Accuracy() const noexcept;

  [[nodiscard]] double MeanLatencyMs() const { return latency_ms_.mean(); }
  [[nodiscard]] double PercentileLatencyMs(double q) const {
    return latency_ms_.Percentile(q);
  }
  [[nodiscard]] const Sample& latencies_ms() const noexcept { return latency_ms_; }

  /// Latency reduction of `this` relative to `baseline` mean latency,
  /// in percent (the paper's "reduce up to 52.28%" metric).
  [[nodiscard]] double ReductionPercentVs(const QoeAggregator& baseline) const;

 private:
  Sample latency_ms_;
  std::uint64_t count_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t edge_hits_ = 0;
  std::uint64_t peer_hits_ = 0;
  std::uint64_t cloud_served_ = 0;
  std::uint64_t recognition_total_ = 0;
  std::uint64_t recognition_correct_ = 0;
};

}  // namespace coic::core
