// QoE aggregation over RequestOutcome streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/client.h"

namespace coic::core {

/// Accumulates outcomes into the numbers the paper's figures report:
/// mean/percentile latency, hit rate, and reduction vs a baseline.
class QoeAggregator {
 public:
  void Add(const RequestOutcome& outcome);
  void AddAll(const std::vector<RequestOutcome>& outcomes);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::uint64_t edge_hits() const noexcept { return edge_hits_; }
  [[nodiscard]] std::uint64_t peer_hits() const noexcept { return peer_hits_; }
  [[nodiscard]] std::uint64_t cloud_served() const noexcept { return cloud_served_; }
  /// Fraction of served results that came out of an IC cache — local edge
  /// or a cooperating peer edge — rather than cloud compute.
  [[nodiscard]] double HitRate() const noexcept;
  /// Fraction of recognition outcomes whose label matched ground truth.
  [[nodiscard]] double Accuracy() const noexcept;

  [[nodiscard]] double MeanLatencyMs() const { return latency_ms_.mean(); }
  [[nodiscard]] double PercentileLatencyMs(double q) const {
    return latency_ms_.Percentile(q);
  }
  [[nodiscard]] const Sample& latencies_ms() const noexcept { return latency_ms_; }

  /// Latency distribution of the outcomes served by one source — the
  /// where-did-the-time-go split of the overall curve: an edge hit is
  /// two LAN hops, a peer hit adds the probe round, a cloud trip the
  /// WAN. Empty Sample when no outcome had that source.
  [[nodiscard]] const Sample& latencies_ms_for(
      proto::ResultSource source) const {
    return latency_by_source_[SourceIndex(source)];
  }

  /// Latency reduction of `this` relative to `baseline` mean latency,
  /// in percent (the paper's "reduce up to 52.28%" metric).
  [[nodiscard]] double ReductionPercentVs(const QoeAggregator& baseline) const;

  /// {"count": N, "errors": N, "hit_rate": f, "accuracy": f, "latency_ms":
  /// {...}, "by_source": {"edge_cache": {...}, ...}} — sources with no
  /// outcomes are omitted; each {...} carries count/mean/p50/p95/p99.
  [[nodiscard]] std::string DumpJson() const;

 private:
  static constexpr int kSourceCount = 4;
  static int SourceIndex(proto::ResultSource source) noexcept {
    return static_cast<int>(source) & 3;
  }

  Sample latency_ms_;
  Sample latency_by_source_[kSourceCount];
  std::uint64_t count_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t edge_hits_ = 0;
  std::uint64_t peer_hits_ = 0;
  std::uint64_t cloud_served_ = 0;
  std::uint64_t recognition_total_ = 0;
  std::uint64_t recognition_correct_ = 0;
};

}  // namespace coic::core
