#include "core/prefetcher.h"

#include <cmath>

namespace coic::core {

PopularityTracker::PopularityTracker(Duration half_life) {
  COIC_CHECK_MSG(half_life > Duration::Zero(), "half-life must be positive");
  lambda_ = std::log(2.0) / static_cast<double>(half_life.micros());
}

double PopularityTracker::Decay(const DecayedCount& entry, SimTime now) const {
  const auto elapsed = static_cast<double>((now - entry.updated_at).micros());
  return elapsed <= 0 ? entry.score : entry.score * std::exp(-lambda_ * elapsed);
}

void PopularityTracker::Observe(std::uint64_t key, SimTime now) {
  auto& entry = scores_[key];
  entry.score = Decay(entry, now) + 1.0;
  entry.updated_at = now;
}

double PopularityTracker::ScoreAt(std::uint64_t key, SimTime now) const {
  const auto it = scores_.find(key);
  return it == scores_.end() ? 0.0 : Decay(it->second, now);
}

std::vector<std::uint64_t> PopularityTracker::TopK(std::size_t k,
                                                   SimTime now) const {
  std::vector<std::pair<double, std::uint64_t>> ranked;
  ranked.reserve(scores_.size());
  for (const auto& [key, entry] : scores_) {
    ranked.emplace_back(Decay(entry, now), key);
  }
  const std::size_t take = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(take),
                    ranked.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // deterministic tiebreak
                    });
  std::vector<std::uint64_t> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(ranked[i].second);
  return out;
}

void PopularityTracker::Compact(SimTime now, double threshold) {
  for (auto it = scores_.begin(); it != scores_.end();) {
    if (Decay(it->second, now) < threshold) {
      it = scores_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t EdgePrefetcher::WarmUp(cache::IcCache& cache, std::size_t k,
                                   SimTime now) {
  std::size_t inserted = 0;
  for (const std::uint64_t key : tracker_.TopK(k, now)) {
    ++fetches_;
    auto fetched = fetch_(key);
    if (!fetched.ok()) continue;  // content no longer available
    cache.Insert(fetched.value().descriptor, std::move(fetched.value().payload),
                 now);
    ++inserted;
  }
  return inserted;
}

}  // namespace coic::core
