// Popularity-driven edge prefetching.
//
// CoIC as published is purely reactive: the first user at a venue always
// pays the cloud miss. The edge, however, observes every descriptor that
// crosses it, so it can rank content by recent popularity and pull hot
// results *before* the next request — converting first-user misses into
// hits whenever popularity is stable (the stop-sign at the crossroads is
// requested every minute). This module is that ranking plus the cache
// warm-up hook; bench/tests quantify the first-request win.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/ic_cache.h"
#include "common/status.h"
#include "common/time.h"

namespace coic::core {

/// Exponentially-decayed popularity counter over opaque content keys
/// (model digests, panorama identities, descriptor sketch keys).
class PopularityTracker {
 public:
  /// `half_life`: time for a count to decay to half its weight.
  explicit PopularityTracker(Duration half_life = Duration::Seconds(60));

  /// Records one request for `key` at time `now` (non-decreasing).
  void Observe(std::uint64_t key, SimTime now);

  /// Decayed popularity score of `key` at `now`.
  [[nodiscard]] double ScoreAt(std::uint64_t key, SimTime now) const;

  /// The `k` hottest keys at `now`, most popular first.
  [[nodiscard]] std::vector<std::uint64_t> TopK(std::size_t k, SimTime now) const;

  [[nodiscard]] std::size_t tracked_keys() const noexcept { return scores_.size(); }

  /// Drops keys whose decayed score fell below `threshold` (compaction).
  void Compact(SimTime now, double threshold = 0.01);

 private:
  struct DecayedCount {
    double score = 0;
    SimTime updated_at;
  };
  [[nodiscard]] double Decay(const DecayedCount& entry, SimTime now) const;

  double lambda_;  ///< ln2 / half-life, per microsecond.
  std::unordered_map<std::uint64_t, DecayedCount> scores_;
};

/// Warm-up helper: given a popularity ranking and a fetch function that
/// produces the (descriptor, result payload) for a key, pushes the top-K
/// into an IcCache. The fetch function abstracts where the bytes come
/// from — the cloud registry in the benches, a peer edge in a deployment.
class EdgePrefetcher {
 public:
  struct Fetched {
    proto::FeatureDescriptor descriptor;
    ByteVec payload;
  };
  /// Returns the cacheable result for `key`, or kNotFound.
  using FetchFn = std::function<Result<Fetched>(std::uint64_t key)>;

  EdgePrefetcher(PopularityTracker& tracker, FetchFn fetch)
      : tracker_(tracker), fetch_(std::move(fetch)) {
    COIC_CHECK(fetch_ != nullptr);
  }

  /// Prefetches up to `k` hottest keys into `cache`; returns how many
  /// entries were actually inserted (keys already cached are counted —
  /// insert is idempotent for exact keys).
  std::size_t WarmUp(cache::IcCache& cache, std::size_t k, SimTime now);

  [[nodiscard]] std::uint64_t fetches_issued() const noexcept { return fetches_; }

 private:
  PopularityTracker& tracker_;
  FetchFn fetch_;
  std::uint64_t fetches_ = 0;
};

}  // namespace coic::core
