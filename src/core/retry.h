// Request-level retry policy for the unreliable-transport mode.
//
// The datagram path (netsim::DatagramConfig) loses frames; nothing below
// the request layer retransmits. Each hop that originates a request —
// client->edge and edge->cloud — owns a timeout with bounded exponential
// backoff and a retry budget. Defaults keep retries disabled (timeout =
// Infinite), which is the reliable-transport behavior every pre-loss
// bench row was measured under.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/time.h"

namespace coic::core {

struct RetryConfig {
  /// Time to wait for a reply before the first retransmission; Infinite
  /// (the default) disables timeouts and retries entirely.
  Duration timeout = Duration::Infinite();
  /// Retransmissions allowed after the initial send. When the budget is
  /// spent the request fails (client: error outcome; edge: leader-loss
  /// promotion + error to the leader's client) — a run always drains.
  std::uint32_t max_retries = 3;
  /// Timeout multiplier per attempt (attempt n waits timeout*backoff^n).
  double backoff = 2.0;
  /// Upper bound on any single attempt's timeout.
  Duration max_timeout = Duration::Millis(8000);

  [[nodiscard]] bool enabled() const noexcept {
    return timeout != Duration::Infinite();
  }

  /// Timeout for the given 0-based attempt: timeout * backoff^attempt,
  /// capped at max_timeout.
  [[nodiscard]] Duration TimeoutForAttempt(std::uint32_t attempt) const {
    double micros = static_cast<double>(timeout.micros()) *
                    std::pow(backoff, static_cast<double>(attempt));
    const double cap = static_cast<double>(max_timeout.micros());
    if (max_timeout != Duration::Infinite() && micros > cap) micros = cap;
    // With max_timeout == Infinite the product is uncapped and a deep
    // attempt count overflows int64 (the double->int cast would be UB);
    // kInt64Safe is the largest double below 2^63. The !(<=) form also
    // catches NaN/inf from an extreme backoff.
    constexpr double kInt64Safe = 9'223'372'036'854'774'784.0;
    if (!(micros <= kInt64Safe)) return Duration::Infinite();
    return Duration::Micros(static_cast<std::int64_t>(micros));
  }
};

}  // namespace coic::core
