#include "core/services.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "vision/image.h"

namespace coic::core {

using proto::Envelope;
using proto::MessageType;
using proto::OffloadMode;
using proto::ResultSource;

// ---------------------------------------------------------------------------
// CloudService
// ---------------------------------------------------------------------------

CloudService::CloudService(Config config, SendFn send, DelayFn delay)
    : config_(config), send_(std::move(send)), delay_(std::move(delay)),
      extractor_(config.extractor) {
  COIC_CHECK(config_.recognition_classes >= 1);
  std::vector<vision::ObjectClass> classes;
  classes.reserve(config_.recognition_classes);
  for (std::uint32_t c = 0; c < config_.recognition_classes; ++c) {
    // Scene ids 1..N; scene 0 is reserved as "never registered".
    classes.push_back({c + 1, LabelForScene(c + 1)});
  }
  recognition_ =
      std::make_unique<vision::RecognitionModel>(std::move(classes), extractor_);
}

std::string CloudService::LabelForScene(std::uint64_t scene_id) {
  return "object_" + std::to_string(scene_id);
}

void CloudService::RegisterModel(std::uint64_t model_id, Bytes serialized_size) {
  COIC_CHECK(models_.RegisterProcedural(model_id, serialized_size).ok());
}

void CloudService::Reply(MessageType type, std::uint64_t request_id,
                         const ByteVec& payload) {
  send_(Peer::kClient, proto::EncodeEnvelope(type, request_id, payload));
}

void CloudService::ReplyError(std::uint64_t request_id, StatusCode code,
                              const std::string& message) {
  proto::ErrorReply err;
  err.code = static_cast<std::uint16_t>(code);
  err.message = message;
  send_(Peer::kClient,
        proto::EncodeMessage(MessageType::kError, request_id, err));
}

void CloudService::OnFrame(ByteVec frame) {
  auto env = proto::DecodeEnvelope(frame);
  if (!env.ok()) {
    COIC_LOG(kWarn) << "cloud: dropping undecodable frame: "
                    << env.status().ToString();
    return;
  }
  switch (env.value().type) {
    case MessageType::kPing:
      Reply(MessageType::kPong, env.value().request_id, {});
      return;
    case MessageType::kRecognitionRequest:
      HandleRecognition(env.value());
      return;
    case MessageType::kRenderRequest:
      HandleRender(env.value());
      return;
    case MessageType::kPanoramaRequest:
      HandlePanorama(env.value());
      return;
    default:
      ReplyError(env.value().request_id, StatusCode::kUnimplemented,
                 "cloud does not handle this message type");
  }
}

void CloudService::HandleRecognition(const Envelope& env) {
  auto req = proto::DecodePayloadAs<proto::RecognitionRequest>(
      env, MessageType::kRecognitionRequest);
  if (!req.ok()) {
    ReplyError(env.request_id, req.status().code(), req.status().message());
    return;
  }
  const auto& request = req.value();
  ++tasks_executed_;

  vision::Recognition recognized;
  Duration compute;
  if (request.mode == OffloadMode::kOrigin) {
    // Full task: decode the uploaded frame and run the complete DNN.
    auto image = vision::SyntheticImage::DecodeWire(request.image);
    if (!image.ok()) {
      ReplyError(env.request_id, image.status().code(),
                 image.status().message());
      return;
    }
    recognized = recognition_->Classify(image.value());
    compute = config_.costs.recognition.cloud_full_inference;
  } else {
    if (request.descriptor.kind() != proto::DescriptorKind::kFeatureVector) {
      ReplyError(env.request_id, StatusCode::kInvalidArgument,
                 "recognition requires a feature-vector descriptor");
      return;
    }
    // Miss-forward: resume inference from the client's descriptor (the
    // DNN's upper layers only).
    recognized = recognition_->ClassifyDescriptor(request.descriptor.vector());
    compute = config_.costs.recognition.cloud_descriptor_inference;
  }

  proto::RecognitionResult result;
  result.frame_id = request.frame_id;
  result.label = recognized.label;
  result.confidence = recognized.confidence;
  result.source = ResultSource::kCloud;
  result.annotation = AnnotationFor(recognized.label);

  ByteWriter w(result.WireSize());
  result.Encode(w);
  delay_(compute, [this, request_id = env.request_id,
                   payload = w.TakeBytes()] {
    Reply(MessageType::kRecognitionResult, request_id, payload);
  });
}

const ByteVec& CloudService::AnnotationFor(const std::string& label) {
  BoundMemo(annotation_memo_, 256);
  const auto it = annotation_memo_.find(label);
  if (it != annotation_memo_.end()) return it->second;
  return annotation_memo_
      .emplace(label, vision::RecognitionModel::MakeAnnotation(
                          label, config_.costs.recognition.annotation_bytes))
      .first->second;
}

void CloudService::HandleRender(const Envelope& env) {
  auto req = proto::DecodePayloadAs<proto::RenderRequest>(
      env, MessageType::kRenderRequest);
  if (!req.ok()) {
    ReplyError(env.request_id, req.status().code(), req.status().message());
    return;
  }
  const auto& request = req.value();
  ++tasks_executed_;

  const auto model_id = models_.FindByDigest(request.descriptor.digest());
  if (!model_id) {
    ReplyError(env.request_id, StatusCode::kNotFound,
               "no model with requested digest");
    return;
  }

  BoundMemo(render_payload_memo_, 256);
  auto memo = render_payload_memo_.find(*model_id);
  if (memo == render_payload_memo_.end()) {
    const auto bytes = models_.BytesFor(*model_id);
    COIC_CHECK(bytes.ok());
    proto::RenderResult result;
    result.model_id = *model_id;
    result.source = ResultSource::kCloud;
    result.model_bytes.assign(bytes.value().begin(), bytes.value().end());
    ByteWriter w(result.WireSize());
    result.Encode(w);
    memo = render_payload_memo_
               .emplace(*model_id,
                        std::make_pair(result.model_bytes.size(),
                                       std::make_shared<const ByteVec>(
                                           w.TakeBytes())))
               .first;
  }

  const Duration load = config_.costs.CloudModelLoad(memo->second.first);
  delay_(load,
         [this, request_id = env.request_id, payload = memo->second.second] {
           Reply(MessageType::kRenderResult, request_id, *payload);
         });
}

void CloudService::HandlePanorama(const Envelope& env) {
  auto req = proto::DecodePayloadAs<proto::PanoramaRequest>(
      env, MessageType::kPanoramaRequest);
  if (!req.ok()) {
    ReplyError(env.request_id, req.status().code(), req.status().message());
    return;
  }
  const auto& request = req.value();
  ++tasks_executed_;

  BoundMemo(panorama_payload_memo_, 32);
  auto memo =
      panorama_payload_memo_.find({request.video_id, request.frame_index});
  if (memo == panorama_payload_memo_.end()) {
    const render::Panorama pano =
        render::Panorama::Generate(request.video_id, request.frame_index);
    proto::PanoramaResult result;
    result.video_id = request.video_id;
    result.frame_index = request.frame_index;
    result.source = ResultSource::kCloud;
    result.width = pano.width();
    result.height = pano.height();
    result.frame = pano.Encode();
    // Pad the encoded raster to the production 4K wire size so transfer
    // costs match the paper's regime.
    const Bytes target = config_.costs.panorama.frame_bytes;
    if (result.frame.size() < target) {
      const ByteVec pad = DeterministicBytes(
          target - result.frame.size(),
          request.video_id * 31 + request.frame_index);
      result.frame.insert(result.frame.end(), pad.begin(), pad.end());
    }
    ByteWriter w(result.WireSize());
    result.Encode(w);
    memo = panorama_payload_memo_
               .emplace(std::make_pair(request.video_id, request.frame_index),
                        std::make_shared<const ByteVec>(w.TakeBytes()))
               .first;
  }

  delay_(config_.costs.panorama.cloud_render,
         [this, request_id = env.request_id, payload = memo->second] {
           Reply(MessageType::kPanoramaResult, request_id, *payload);
         });
}

// ---------------------------------------------------------------------------
// EdgeService
// ---------------------------------------------------------------------------

EdgeService::EdgeService(Config config, SendFn send, DelayFn delay, NowFn now)
    : config_(config), send_(std::move(send)), delay_(std::move(delay)),
      now_(std::move(now)), cache_(config.cache) {}

void EdgeService::Park(std::uint64_t request_id, PendingForward pending) {
  COIC_CHECK_MSG(pending_.count(request_id) == 0,
                 "duplicate in-flight request id at edge");
  pending_.emplace(request_id, std::move(pending));
  peak_pending_ = std::max(peak_pending_, pending_.size());
}

std::vector<std::uint64_t> EdgeService::pending_request_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, fwd] : pending_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void EdgeService::ForwardToCloud(const Envelope& env, PendingForward pending) {
  Park(env.request_id, std::move(pending));
  ++forwards_;
  send_(Peer::kCloud,
        proto::EncodeEnvelope(env.type, env.request_id, env.payload));
}

ByteVec EdgeService::EncodePatchedResult(proto::MessageType type,
                                         std::uint64_t request_id,
                                         std::span<const std::uint8_t> payload,
                                         ResultSource source) {
  // Single copy: the payload lands in the envelope buffer once and the
  // source byte is patched there — no decode, no re-encode of the
  // (possibly multi-MB) result body on the cache-hit fast path.
  ByteVec frame = proto::EncodeEnvelope(type, request_id, payload);
  const bool ok = proto::PatchResultSourceInPlace(
      type,
      std::span<std::uint8_t>(frame).subspan(proto::kEnvelopeHeaderSize),
      source);
  COIC_CHECK_MSG(ok, "corrupt cached result payload");
  return frame;
}

bool EdgeService::TryServeFromCache(const proto::FeatureDescriptor& key,
                                    proto::MessageType reply_type,
                                    std::uint64_t request_id) {
  const auto outcome = cache_.Lookup(key, now_());
  if (!outcome.hit) return false;
  // Patch the cached result so the client sees the true source (edge,
  // not cloud).
  send_(Peer::kClient,
        EncodePatchedResult(reply_type, request_id, *outcome.payload,
                            ResultSource::kEdgeCache));
  return true;
}

void EdgeService::OnLocalMiss(proto::Envelope env,
                              proto::FeatureDescriptor descriptor,
                              proto::MessageType reply_type) {
  if (config_.cooperative) {
    // Federation mode asks the policy for candidates (best first) and
    // caps them by the probe budget; pairwise mode probes the single
    // anonymous neighbor, exactly the original protocol.
    std::vector<std::uint32_t> candidates;
    if (config_.peer_select) {
      candidates = config_.peer_select(descriptor);
      if (candidates.size() > config_.probe_budget) {
        candidates.resize(config_.probe_budget);
      }
    } else {
      candidates = {0};
    }
    if (!candidates.empty()) {
      proto::PeerLookupRequest query;
      query.descriptor = descriptor;
      query.reply_type = reply_type;
      const ByteVec frame = proto::EncodeMessage(
          MessageType::kPeerLookupRequest, env.request_id, query);
      PendingForward pending;
      pending.request_type = env.type;
      pending.insert_key = std::move(descriptor);
      pending.original = std::move(env);
      pending.at_peer = true;
      pending.probes_outstanding =
          static_cast<std::uint32_t>(candidates.size());
      const std::uint64_t request_id = pending.original.request_id;
      Park(request_id, std::move(pending));
      for (const std::uint32_t peer : candidates) {
        ++peer_probes_sent_;
        if (config_.peer_send) {
          config_.peer_send(peer, frame);
        } else {
          send_(Peer::kPeerEdge, frame);
        }
      }
      return;
    }
    // No candidate worth probing (e.g. every peer summary says "not
    // here"): skip the probe round trip entirely.
  }
  PendingForward pending;
  pending.request_type = env.type;
  pending.insert_key = std::move(descriptor);
  ForwardToCloud(env, std::move(pending));
}

void EdgeService::HandlePeerLookupRequest(
    const proto::Envelope& env, std::optional<std::uint32_t> from_peer) {
  auto req = proto::DecodePayloadAs<proto::PeerLookupRequest>(
      env, MessageType::kPeerLookupRequest);
  if (!req.ok()) {
    COIC_LOG(kWarn) << "edge: bad peer lookup request";
    return;
  }
  ++peer_queries_served_;
  auto descriptor = req.value().descriptor;
  auto reply_type = req.value().reply_type;
  delay_(config_.costs.edge.cache_lookup,
         [this, request_id = env.request_id, descriptor = std::move(descriptor),
          reply_type, from_peer] {
           proto::PeerLookupReply reply;
           reply.reply_type = reply_type;
           const auto outcome = cache_.Lookup(descriptor, now_());
           if (outcome.hit) {
             reply.found = true;
             reply.payload = *outcome.payload;
           }
           ByteVec frame = proto::EncodeMessage(MessageType::kPeerLookupReply,
                                                request_id, reply);
           if (from_peer && config_.peer_send) {
             config_.peer_send(*from_peer, std::move(frame));
           } else {
             send_(Peer::kPeerEdge, std::move(frame));
           }
         });
}

void EdgeService::HandlePeerLookupReply(const proto::Envelope& env) {
  auto reply = proto::DecodePayloadAs<proto::PeerLookupReply>(
      env, MessageType::kPeerLookupReply);
  if (!reply.ok()) {
    COIC_LOG(kWarn) << "edge: bad peer lookup reply";
    return;
  }
  const auto it = pending_.find(env.request_id);
  if (it == pending_.end() || !it->second.at_peer ||
      it->second.probes_outstanding == 0) {
    COIC_LOG(kWarn) << "edge: unexpected peer reply " << env.request_id;
    return;
  }
  PendingForward& pending = it->second;
  --pending.probes_outstanding;

  if (reply.value().found && !pending.served) {
    // First peer hit: adopt the result into the local cache, then serve
    // the client marked as a peer-edge result. The entry lingers (served
    // = true) until every fanned-out probe has answered.
    pending.served = true;
    ++peer_hits_;
    auto result = std::move(reply).value();
    delay_(config_.costs.edge.cache_insert,
           [this, request_id = env.request_id,
            key = std::move(*pending.insert_key),
            result = std::move(result)] {
             cache_.Insert(key, result.payload, now_());
             send_(Peer::kClient,
                   EncodePatchedResult(result.reply_type, request_id,
                                       result.payload,
                                       ResultSource::kPeerEdge));
           });
    pending.insert_key.reset();
    if (pending.probes_outstanding == 0) pending_.erase(it);
    return;
  }

  if (pending.probes_outstanding > 0) return;  // more probes in flight
  if (pending.served) {  // late misses (or duplicate hits) after a hit
    pending_.erase(it);
    return;
  }

  // Every probe missed: fall through to the cloud with the original
  // request. (The envelope is pulled out first: passing `moved.original`
  // and `std::move(moved)` in one call would read a moved-from field
  // under GCC's right-to-left argument evaluation.)
  PendingForward moved = std::move(it->second);
  pending_.erase(it);
  const Envelope original = std::move(moved.original);
  moved.at_peer = false;
  ForwardToCloud(original, std::move(moved));
}

void EdgeService::OnPeerFrame(ByteVec frame) {
  DispatchPeerFrame(std::nullopt, std::move(frame));
}

void EdgeService::OnPeerFrame(std::uint32_t from_peer, ByteVec frame) {
  DispatchPeerFrame(from_peer, std::move(frame));
}

void EdgeService::DispatchPeerFrame(std::optional<std::uint32_t> from_peer,
                                    ByteVec frame) {
  auto env_or = proto::DecodeEnvelope(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "edge: dropping undecodable peer frame";
    return;
  }
  const Envelope env = std::move(env_or).value();
  switch (env.type) {
    case MessageType::kPeerLookupRequest:
      HandlePeerLookupRequest(env, from_peer);
      return;
    case MessageType::kPeerLookupReply:
      HandlePeerLookupReply(env);
      return;
    default:
      COIC_LOG(kWarn) << "edge: unexpected peer message type";
  }
}

void EdgeService::OnClientFrame(ByteVec frame) {
  auto env_or = proto::DecodeEnvelope(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "edge: dropping undecodable client frame: "
                    << env_or.status().ToString();
    return;
  }
  Envelope env = std::move(env_or).value();

  switch (env.type) {
    case MessageType::kPing:
      send_(Peer::kClient,
            proto::EncodeEnvelope(MessageType::kPong, env.request_id, {}));
      return;

    case MessageType::kCacheStatsRequest: {
      proto::CacheStatsReply reply;
      const auto& s = cache_.stats();
      reply.hits = s.hits;
      reply.misses = s.misses;
      reply.insertions = s.insertions;
      reply.evictions = s.evictions;
      reply.bytes_used = cache_.bytes_used();
      reply.bytes_capacity = cache_.config().capacity_bytes;
      send_(Peer::kClient, proto::EncodeMessage(MessageType::kCacheStatsReply,
                                                env.request_id, reply));
      return;
    }

    case MessageType::kRecognitionRequest: {
      auto req = proto::DecodePayloadAs<proto::RecognitionRequest>(
          env, MessageType::kRecognitionRequest);
      if (!req.ok()) return;
      if (req.value().mode == OffloadMode::kOrigin) {
        // Baseline: pure relay, no cache involvement.
        PendingForward pending;
        pending.request_type = env.type;
        pending.mode = OffloadMode::kOrigin;
        ForwardToCloud(env, std::move(pending));
        return;
      }
      auto descriptor = req.value().descriptor;
      delay_(config_.costs.edge.cache_lookup,
             [this, env = std::move(env), descriptor = std::move(descriptor)] {
               if (!TryServeFromCache(descriptor,
                                      MessageType::kRecognitionResult,
                                      env.request_id)) {
                 OnLocalMiss(std::move(env), std::move(descriptor),
                             MessageType::kRecognitionResult);
               }
             });
      return;
    }

    case MessageType::kRenderRequest: {
      auto req = proto::DecodePayloadAs<proto::RenderRequest>(
          env, MessageType::kRenderRequest);
      if (!req.ok()) return;
      if (req.value().mode == OffloadMode::kOrigin) {
        PendingForward pending;
        pending.request_type = env.type;
        pending.mode = OffloadMode::kOrigin;
        ForwardToCloud(env, std::move(pending));
        return;
      }
      auto descriptor = req.value().descriptor;
      delay_(config_.costs.edge.cache_lookup,
             [this, env = std::move(env), descriptor = std::move(descriptor)] {
               if (!TryServeFromCache(descriptor, MessageType::kRenderResult,
                                      env.request_id)) {
                 OnLocalMiss(std::move(env), std::move(descriptor),
                             MessageType::kRenderResult);
               }
             });
      return;
    }

    case MessageType::kPanoramaRequest: {
      auto req = proto::DecodePayloadAs<proto::PanoramaRequest>(
          env, MessageType::kPanoramaRequest);
      if (!req.ok()) return;
      if (req.value().mode == OffloadMode::kOrigin) {
        PendingForward pending;
        pending.request_type = env.type;
        pending.mode = OffloadMode::kOrigin;
        ForwardToCloud(env, std::move(pending));
        return;
      }
      auto descriptor = req.value().descriptor;
      delay_(config_.costs.edge.cache_lookup,
             [this, env = std::move(env), descriptor = std::move(descriptor)] {
               if (!TryServeFromCache(descriptor, MessageType::kPanoramaResult,
                                      env.request_id)) {
                 OnLocalMiss(std::move(env), std::move(descriptor),
                             MessageType::kPanoramaResult);
               }
             });
      return;
    }

    default:
      COIC_LOG(kWarn) << "edge: unexpected client message type";
  }
}

void EdgeService::OnCloudFrame(ByteVec frame) {
  auto env_or = proto::DecodeEnvelope(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "edge: dropping undecodable cloud frame: "
                    << env_or.status().ToString();
    return;
  }
  Envelope env = std::move(env_or).value();

  const auto it = pending_.find(env.request_id);
  if (it == pending_.end()) {
    COIC_LOG(kWarn) << "edge: cloud reply for unknown request "
                    << env.request_id;
    return;
  }
  PendingForward pending = std::move(it->second);
  pending_.erase(it);

  const bool cacheable = pending.mode == OffloadMode::kCoic &&
                         pending.insert_key.has_value() &&
                         env.type != MessageType::kError;
  if (!cacheable) {
    send_(Peer::kClient,
          proto::EncodeEnvelope(env.type, env.request_id, env.payload));
    return;
  }

  // Figure 1: "the edge forwards the request to the cloud and inserts
  // the result to the edge cache" — insert, then relay to the client.
  delay_(config_.costs.edge.cache_insert,
         [this, env = std::move(env), key = std::move(*pending.insert_key)] {
           cache_.Insert(key, env.payload, now_());
           send_(Peer::kClient,
                 proto::EncodeEnvelope(env.type, env.request_id, env.payload));
         });
}

}  // namespace coic::core
