#include "core/services.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "vision/image.h"

namespace coic::core {

using proto::EnvelopeView;
using proto::MessageType;
using proto::OffloadMode;
using proto::ResultSource;

// ---------------------------------------------------------------------------
// CloudService
// ---------------------------------------------------------------------------

CloudService::CloudService(Config config, SendFn send, DelayFn delay)
    : config_(config), send_(std::move(send)), delay_(std::move(delay)),
      extractor_(config.extractor) {
  COIC_CHECK(config_.recognition_classes >= 1);
  std::vector<vision::ObjectClass> classes;
  classes.reserve(config_.recognition_classes);
  for (std::uint32_t c = 0; c < config_.recognition_classes; ++c) {
    // Scene ids 1..N; scene 0 is reserved as "never registered".
    classes.push_back({c + 1, LabelForScene(c + 1)});
  }
  recognition_ =
      std::make_unique<vision::RecognitionModel>(std::move(classes), extractor_);
}

std::string CloudService::LabelForScene(std::uint64_t scene_id) {
  return "object_" + std::to_string(scene_id);
}

void CloudService::RegisterModel(std::uint64_t model_id, Bytes serialized_size) {
  COIC_CHECK(models_.RegisterProcedural(model_id, serialized_size).ok());
}

void CloudService::Reply(MessageType type, std::uint64_t request_id,
                         std::span<const std::uint8_t> payload) {
  send_(Peer::kClient, proto::EncodeEnvelope(type, request_id, payload));
}

void CloudService::ReplyError(std::uint64_t request_id, StatusCode code,
                              const std::string& message) {
  proto::ErrorReply err;
  err.code = static_cast<std::uint16_t>(code);
  err.message = message;
  send_(Peer::kClient,
        proto::EncodeMessage(MessageType::kError, request_id, err));
}

void CloudService::OnFrame(Frame frame) {
  auto env = proto::DecodeEnvelopeView(frame);
  if (!env.ok()) {
    COIC_LOG(kWarn) << "cloud: dropping undecodable frame: "
                    << env.status().ToString();
    return;
  }
  switch (env.value().type) {
    case MessageType::kPing:
      Reply(MessageType::kPong, env.value().request_id, {});
      return;
    case MessageType::kRecognitionRequest:
      HandleRecognition(env.value());
      return;
    case MessageType::kRenderRequest:
      HandleRender(env.value());
      return;
    case MessageType::kPanoramaRequest:
      HandlePanorama(env.value());
      return;
    default:
      ReplyError(env.value().request_id, StatusCode::kUnimplemented,
                 "cloud does not handle this message type");
  }
}

void CloudService::HandleRecognition(const EnvelopeView& env) {
  auto req = proto::DecodePayloadAs<proto::RecognitionRequest>(
      env, MessageType::kRecognitionRequest);
  if (!req.ok()) {
    ReplyError(env.request_id, req.status().code(), req.status().message());
    return;
  }
  const auto& request = req.value();
  ++tasks_executed_;

  vision::Recognition recognized;
  Duration compute;
  if (request.mode == OffloadMode::kOrigin) {
    // Full task: decode the uploaded frame and run the complete DNN.
    auto image = vision::SyntheticImage::DecodeWire(request.image);
    if (!image.ok()) {
      ReplyError(env.request_id, image.status().code(),
                 image.status().message());
      return;
    }
    recognized = recognition_->Classify(image.value());
    compute = config_.costs.recognition.cloud_full_inference;
  } else {
    if (request.descriptor.kind() != proto::DescriptorKind::kFeatureVector) {
      ReplyError(env.request_id, StatusCode::kInvalidArgument,
                 "recognition requires a feature-vector descriptor");
      return;
    }
    // Miss-forward: resume inference from the client's descriptor (the
    // DNN's upper layers only).
    recognized = recognition_->ClassifyDescriptor(request.descriptor.vector());
    compute = config_.costs.recognition.cloud_descriptor_inference;
  }

  // Single-buffer reply: header + RecognitionResult fields written once,
  // with the memoized annotation frame blitted in directly — the old
  // path copied the annotation into a result struct, the struct into a
  // payload vector, and the payload into the envelope. Field order
  // mirrors RecognitionResult::Encode (pinned by a services test).
  const Frame annotation = AnnotationFor(recognized.label);
  ByteWriter w(proto::kEnvelopeHeaderSize + 8 + 4 + recognized.label.size() +
               4 + 1 + 4 + annotation.size());
  proto::AppendEnvelopeHeader(w, MessageType::kRecognitionResult,
                              env.request_id, 0);
  w.WriteU64(request.frame_id);
  w.WriteString(recognized.label);
  w.WriteF32(recognized.confidence);
  w.WriteU8(static_cast<std::uint8_t>(ResultSource::kCloud));
  w.WriteBlob(annotation.span());
  COIC_CHECK_MSG(w.size() - proto::kEnvelopeHeaderSize <=
                     proto::kMaxPayloadBytes,
                 "payload too large");
  w.PatchU32(16, static_cast<std::uint32_t>(w.size() -
                                            proto::kEnvelopeHeaderSize));
  delay_(compute, [this, reply = Frame(w.TakeBytes())]() mutable {
    send_(Peer::kClient, std::move(reply));
  });
}

Frame CloudService::AnnotationFor(const std::string& label) {
  BoundMemo(annotation_memo_, 256);
  const auto it = annotation_memo_.find(label);
  if (it != annotation_memo_.end()) return it->second;
  return annotation_memo_
      .emplace(label,
               Frame(vision::RecognitionModel::MakeAnnotation(
                   label, config_.costs.recognition.annotation_bytes)))
      .first->second;
}

void CloudService::HandleRender(const EnvelopeView& env) {
  auto req = proto::DecodePayloadAs<proto::RenderRequest>(
      env, MessageType::kRenderRequest);
  if (!req.ok()) {
    ReplyError(env.request_id, req.status().code(), req.status().message());
    return;
  }
  const auto& request = req.value();
  ++tasks_executed_;

  const auto model_id = models_.FindByDigest(request.descriptor.digest());
  if (!model_id) {
    ReplyError(env.request_id, StatusCode::kNotFound,
               "no model with requested digest");
    return;
  }

  BoundMemo(render_payload_memo_, 256);
  auto memo = render_payload_memo_.find(*model_id);
  if (memo == render_payload_memo_.end()) {
    const auto bytes = models_.BytesFor(*model_id);
    COIC_CHECK(bytes.ok());
    proto::RenderResult result;
    result.model_id = *model_id;
    result.source = ResultSource::kCloud;
    result.model_bytes.assign(bytes.value().begin(), bytes.value().end());
    ByteWriter w(result.WireSize());
    result.Encode(w);
    memo = render_payload_memo_
               .emplace(*model_id, std::make_pair(result.model_bytes.size(),
                                                  Frame(w.TakeBytes())))
               .first;
  }

  const Duration load = config_.costs.CloudModelLoad(memo->second.first);
  delay_(load,
         [this, request_id = env.request_id, payload = memo->second.second] {
           Reply(MessageType::kRenderResult, request_id, payload.span());
         });
}

void CloudService::HandlePanorama(const EnvelopeView& env) {
  auto req = proto::DecodePayloadAs<proto::PanoramaRequest>(
      env, MessageType::kPanoramaRequest);
  if (!req.ok()) {
    ReplyError(env.request_id, req.status().code(), req.status().message());
    return;
  }
  const auto& request = req.value();
  ++tasks_executed_;

  BoundMemo(panorama_payload_memo_, 32);
  auto memo =
      panorama_payload_memo_.find({request.video_id, request.frame_index});
  if (memo == panorama_payload_memo_.end()) {
    const render::Panorama pano =
        render::Panorama::Generate(request.video_id, request.frame_index);
    proto::PanoramaResult result;
    result.video_id = request.video_id;
    result.frame_index = request.frame_index;
    result.source = ResultSource::kCloud;
    result.width = pano.width();
    result.height = pano.height();
    result.frame = pano.Encode();
    // Pad the encoded raster to the production 4K wire size so transfer
    // costs match the paper's regime.
    const Bytes target = config_.costs.panorama.frame_bytes;
    if (result.frame.size() < target) {
      const ByteVec pad = DeterministicBytes(
          target - result.frame.size(),
          request.video_id * 31 + request.frame_index);
      result.frame.insert(result.frame.end(), pad.begin(), pad.end());
    }
    ByteWriter w(result.WireSize());
    result.Encode(w);
    memo = panorama_payload_memo_
               .emplace(std::make_pair(request.video_id, request.frame_index),
                        Frame(w.TakeBytes()))
               .first;
  }

  delay_(config_.costs.panorama.cloud_render,
         [this, request_id = env.request_id, payload = memo->second] {
           Reply(MessageType::kPanoramaResult, request_id, payload.span());
         });
}

// ---------------------------------------------------------------------------
// EdgeService
// ---------------------------------------------------------------------------

EdgeService::EdgeService(Config config, SendFn send, DelayFn delay, NowFn now)
    : config_(std::move(config)), send_(std::move(send)),
      delay_(std::move(delay)), now_(std::move(now)), cache_(config_.cache),
      own_metrics_(config_.metrics ? nullptr : new obs::MetricsRegistry()),
      tracer_(config_.tracer),
      forwards_(Metric("forwards")),
      peer_hits_(Metric("peer_hits")),
      peer_queries_served_(Metric("peer_queries_served")),
      peer_probes_sent_(Metric("peer_probes_sent")),
      coalesced_requests_(Metric("coalesced_requests")),
      cloud_retransmissions_(Metric("cloud_retransmissions")),
      cloud_timeouts_(Metric("cloud_timeouts")),
      probe_timeouts_(Metric("probe_timeouts")),
      leader_promotions_(Metric("leader_promotions")),
      duplicates_dropped_(Metric("duplicates_dropped")),
      replayed_from_memo_(Metric("replayed_from_memo")),
      grace_hits_(Metric("grace_hits")),
      overload_sheds_(Metric("overload_sheds")),
      deadline_sheds_(Metric("deadline_sheds")),
      breaker_opens_(Metric("breaker_opens")),
      breaker_sheds_(Metric("breaker_sheds")),
      peer_adoptions_skipped_(Metric("peer_adoptions_skipped")),
      peer_probes_parked_(Metric("peer_probes_parked")) {}

void EdgeService::Park(std::uint64_t request_id, PendingForward pending) {
  COIC_CHECK_MSG(pending_.count(request_id) == 0,
                 "duplicate in-flight request id at edge");
  pending_.emplace(request_id, std::move(pending));
  peak_pending_ = std::max(peak_pending_, pending_.size());
}

std::vector<std::uint64_t> EdgeService::pending_request_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, fwd] : pending_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::uint64_t EdgeService::CoalesceKey(
    const proto::FeatureDescriptor& key) noexcept {
  if (key.kind() == proto::DescriptorKind::kContentHash) {
    return key.IndexKey();
  }
  // Vector descriptors: FNV-1a over the raw float bits, with the task
  // folded into the seed. Exact re-extractions of the same scene
  // coalesce; merely similar vectors intentionally do not (approximate
  // matching is the cache's job — the wait-list must never serve a
  // near-miss).
  const auto v = key.vector();
  const std::uint64_t seed =
      0xcbf29ce484222325ull ^
      (0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(key.task()));
  return Fnv1a64(std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(v.data()),
                     v.size() * sizeof(float)),
                 seed);
}

void EdgeService::ReleaseCoalesceKey(const std::optional<std::uint64_t>& key) {
  if (key) inflight_keys_.erase(*key);
}

Frame EdgeService::EncodePeerLookupReplyFrame(
    std::uint64_t request_id, bool found, MessageType reply_type,
    std::span<const std::uint8_t> payload) {
  // Single-buffer encode of the PeerLookupReply envelope (field order
  // mirrors PeerLookupReply::Encode; pinned by a test) — the payload is
  // copied exactly once, onto the wire. With an arena configured the
  // buffer itself is recycled; wire bytes are identical either way.
  const std::size_t reserve =
      proto::kEnvelopeHeaderSize + 1 + 1 + 4 + payload.size();
  ByteWriter w = config_.frame_arena
                     ? ByteWriter(config_.frame_arena->Acquire(reserve))
                     : ByteWriter(reserve);
  proto::AppendEnvelopeHeader(
      w, MessageType::kPeerLookupReply, request_id,
      static_cast<std::uint32_t>(1 + 1 + 4 + payload.size()));
  w.WriteU8(found ? 1 : 0);
  w.WriteU8(static_cast<std::uint8_t>(reply_type));
  w.WriteBlob(payload);
  return config_.frame_arena ? config_.frame_arena->Seal(w.TakeBytes())
                             : Frame(w.TakeBytes());
}

void EdgeService::AnswerRemoteWaiters(const std::vector<RemoteWaiter>& waiters,
                                      bool found, const Frame& payload) {
  if (waiters.empty() || !config_.peer_send) return;
  for (const RemoteWaiter& rw : waiters) {
    // Each prober gets a reply under its own probe request id — exactly
    // the frame an immediate miss/hit answer would have produced.
    config_.peer_send(
        rw.peer, EncodePeerLookupReplyFrame(
                     rw.request_id, found, rw.reply_type,
                     found ? payload.span() : std::span<const std::uint8_t>{}));
  }
}

void EdgeService::NoteKeyUse(std::uint64_t coalesce_key) {
  if (config_.peer_hit_adopt_min_uses == 0) return;
  // Bounded: old keys age out FIFO, so a workload with more distinct
  // keys than the cap degrades toward "always adopt", never grows.
  constexpr std::size_t kKeyUseCapacity = 16384;
  const auto [it, inserted] = key_uses_.try_emplace(coalesce_key, 0u);
  ++it->second;
  if (inserted) {
    key_uses_fifo_.push_back(coalesce_key);
    while (key_uses_fifo_.size() > kKeyUseCapacity) {
      key_uses_.erase(key_uses_fifo_.front());
      key_uses_fifo_.pop_front();
    }
  }
}

std::uint32_t EdgeService::KeyUses(std::uint64_t coalesce_key) const noexcept {
  const auto it = key_uses_.find(coalesce_key);
  return it == key_uses_.end() ? 0u : it->second;
}

void EdgeService::ServeWaiters(const std::vector<std::uint64_t>& waiters,
                               const Frame& payload, ResultSource source) {
  for (const std::uint64_t id : waiters) {
    const auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.is_waiter) continue;
    const MessageType reply_type = it->second.reply_type;
    pending_.erase(it);
    ResolveToClient(id, reply_type, payload, source);
  }
}

void EdgeService::FailWaiters(const std::vector<std::uint64_t>& waiters,
                              std::span<const std::uint8_t> error_payload) {
  for (const std::uint64_t id : waiters) {
    const auto it = pending_.find(id);
    if (it == pending_.end() || !it->second.is_waiter) continue;
    pending_.erase(it);
    Frame reply(proto::EncodeEnvelope(MessageType::kError, id, error_payload));
    MemoizeResolved(id, {.reply = reply, .payload = {}});
    if (tracer_) tracer_->Transition(id, obs::Phase::kDownlink, now_());
    send_(Peer::kClient, std::move(reply));
  }
}

void EdgeService::MemoizeResolved(std::uint64_t request_id,
                                  ResolvedMemo memo) {
  if (config_.resolved_memo_capacity == 0) return;
  const auto [it, inserted] =
      resolved_memo_.insert_or_assign(request_id, std::move(memo));
  if (inserted) resolved_memo_fifo_.push_back(request_id);
  while (resolved_memo_fifo_.size() > config_.resolved_memo_capacity) {
    resolved_memo_.erase(resolved_memo_fifo_.front());
    resolved_memo_fifo_.pop_front();
  }
}

bool EdgeService::TryReplayFromMemo(std::uint64_t request_id) {
  const auto it = resolved_memo_.find(request_id);
  if (it == resolved_memo_.end()) return false;
  ++replayed_from_memo_;
  const ResolvedMemo& memo = it->second;
  if (!memo.reply.empty()) {
    send_(Peer::kClient, memo.reply);
  } else {
    SendResultToClient(memo.reply_type, request_id, memo.payload, memo.source);
  }
  return true;
}

void EdgeService::ShedToClient(std::uint64_t request_id, StatusCode code,
                               const char* message, const char* annotation) {
  proto::ErrorReply err;
  err.code = static_cast<std::uint16_t>(code);
  err.message = message;
  Frame reply(proto::EncodeMessage(MessageType::kError, request_id, err));
  MemoizeResolved(request_id, {.reply = reply, .payload = {}});
  if (tracer_) {
    tracer_->Annotate(request_id, annotation, now_());
    tracer_->Transition(request_id, obs::Phase::kDownlink, now_());
  }
  send_(Peer::kClient, std::move(reply));
}

void EdgeService::ShedPending(std::uint64_t request_id, PendingForward pending,
                              StatusCode code, const char* message,
                              const char* annotation) {
  ReleaseCoalesceKey(pending.coalesce_key);
  // Parked peer probes get a definitive miss so the prober falls
  // through to its own cloud path instead of timing out.
  AnswerRemoteWaiters(pending.remote_waiters, false, Frame());
  ShedToClient(request_id, code, message, annotation);
  if (pending.waiters.empty()) return;
  // Waiters inherit the shed verdict: their clients degrade locally the
  // same way the leader's does.
  proto::ErrorReply err;
  err.code = static_cast<std::uint16_t>(code);
  err.message = message;
  ByteWriter pw;
  err.Encode(pw);
  FailWaiters(pending.waiters, pw.bytes());
}

bool EdgeService::BreakerRefusesForward(std::uint64_t request_id) {
  if (config_.breaker_failure_threshold == 0 ||
      breaker_state_ == BreakerState::kClosed) {
    return false;
  }
  if (breaker_state_ == BreakerState::kOpen) {
    if (now_() < breaker_reopen_at_) return true;
    breaker_state_ = BreakerState::kHalfOpen;
    breaker_probe_inflight_ = false;
  }
  // Half-open: exactly one probe flies; everything else keeps shedding
  // until the probe's fate is known.
  if (breaker_probe_inflight_) return true;
  breaker_probe_inflight_ = true;
  if (tracer_) tracer_->Annotate(request_id, "breaker-probe", now_());
  return false;
}

void EdgeService::OnBreakerFailure(std::uint64_t request_id) {
  if (config_.breaker_failure_threshold == 0) return;
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // The probe died: back to open for another cooldown.
    breaker_state_ = BreakerState::kOpen;
    breaker_reopen_at_ = now_() + config_.breaker_open_duration;
    breaker_probe_inflight_ = false;
    ++breaker_opens_;
    if (tracer_) tracer_->Annotate(request_id, "breaker-reopen", now_());
    return;
  }
  if (breaker_state_ == BreakerState::kClosed &&
      ++consecutive_cloud_failures_ >= config_.breaker_failure_threshold) {
    breaker_state_ = BreakerState::kOpen;
    breaker_reopen_at_ = now_() + config_.breaker_open_duration;
    ++breaker_opens_;
    if (tracer_) tracer_->Annotate(request_id, "breaker-open", now_());
  }
}

void EdgeService::OnBreakerSuccess() {
  consecutive_cloud_failures_ = 0;
  if (breaker_state_ == BreakerState::kClosed) return;
  breaker_state_ = BreakerState::kClosed;
  breaker_probe_inflight_ = false;
}

void EdgeService::ForwardToCloud(Frame request_frame, PendingForward pending) {
  const std::uint64_t request_id = proto::PeekRequestId(request_frame.span());
  // Shed-before-spend: a request whose wire deadline already expired
  // while it queued / probed / parked can no longer use the result — an
  // immediate overload reply beats a wasted cloud round trip.
  if (pending.deadline_at && now_() > *pending.deadline_at) {
    ++deadline_sheds_;
    ShedPending(request_id, std::move(pending), StatusCode::kResourceExhausted,
                "deadline expired before cloud fetch", "deadline-shed");
    return;
  }
  // Open breaker: the cloud is presumed dead; fail fast instead of
  // arming another retry ladder and trapping coalesced waiters.
  if (BreakerRefusesForward(request_id)) {
    ++breaker_sheds_;
    ShedPending(request_id, std::move(pending), StatusCode::kUnavailable,
                "cloud circuit open", "breaker-shed");
    return;
  }
  const std::uint32_t attempt = pending.attempt;
  const bool retryable = config_.cloud_retry.enabled();
  if (retryable) {
    // Retain the request (a refcount bump) for retransmission.
    pending.original = request_frame;
  }
  Park(request_id, std::move(pending));
  ++forwards_;
  // Single cloud hook: direct forwards, probe-miss fallthrough, probe
  // timeouts and promoted waiters all funnel through here.
  if (tracer_) tracer_->Transition(request_id, obs::Phase::kCloudFetch, now_());
  // The original client frame is forwarded as-is — type, request id and
  // payload are exactly what a re-encode would produce, without copying
  // the (possibly multi-hundred-KB Origin-mode) payload.
  send_(Peer::kCloud, std::move(request_frame));
  if (retryable) ArmCloudRetryTimer(request_id, attempt);
}

void EdgeService::ArmCloudRetryTimer(std::uint64_t request_id,
                                     std::uint32_t attempt) {
  delay_(config_.cloud_retry.TimeoutForAttempt(attempt),
         [this, request_id, attempt] { OnCloudRetryTimer(request_id, attempt); });
}

void EdgeService::OnCloudRetryTimer(std::uint64_t request_id,
                                    std::uint32_t attempt) {
  const auto it = pending_.find(request_id);
  // Lazy disarm: the request resolved, became a waiter, moved back to
  // the probe phase, or a newer attempt superseded this timer.
  if (it == pending_.end() || it->second.is_waiter || it->second.at_peer ||
      it->second.attempt != attempt) {
    return;
  }
  if (attempt >= config_.cloud_retry.max_retries) {
    HandleCloudFetchFailure(request_id);
    return;
  }
  ++it->second.attempt;
  ++cloud_retransmissions_;
  if (tracer_) tracer_->Annotate(request_id, "cloud-retransmit", now_());
  send_(Peer::kCloud, it->second.original);
  ArmCloudRetryTimer(request_id, it->second.attempt);
}

void EdgeService::HandleCloudFetchFailure(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingForward dead = std::move(it->second);
  pending_.erase(it);
  ++cloud_timeouts_;
  OnBreakerFailure(request_id);

  proto::ErrorReply err;
  err.code = static_cast<std::uint16_t>(StatusCode::kTimeout);
  err.message = "cloud fetch timed out";
  ByteWriter pw;
  err.Encode(pw);
  const ByteVec err_payload = pw.TakeBytes();

  // The dead leader's own client gets an error — its retry budget is
  // spent, and a drained run beats an eternally parked one.
  Frame reply(
      proto::EncodeEnvelope(MessageType::kError, request_id, err_payload));
  MemoizeResolved(request_id, {.reply = reply, .payload = {}});
  if (tracer_) {
    tracer_->Annotate(request_id, "cloud-timeout", now_());
    tracer_->Transition(request_id, obs::Phase::kDownlink, now_());
  }
  send_(Peer::kClient, std::move(reply));

  // Leader-loss recovery: promote the oldest parked waiter to run its
  // own cloud fetch with a fresh retry budget. Without this, every
  // follower coalesced behind a dead leader was stranded forever.
  std::size_t pos = 0;
  std::uint64_t new_leader = 0;
  bool found = false;
  for (; pos < dead.waiters.size(); ++pos) {
    const auto w = pending_.find(dead.waiters[pos]);
    if (w != pending_.end() && w->second.is_waiter &&
        !w->second.original.empty()) {
      found = true;
      new_leader = dead.waiters[pos];
      break;
    }
  }
  if (!found) {
    ReleaseCoalesceKey(dead.coalesce_key);
    FailWaiters(dead.waiters, err_payload);
    AnswerRemoteWaiters(dead.remote_waiters, false, Frame());
    return;
  }
  ++leader_promotions_;
  if (tracer_) tracer_->Annotate(new_leader, "leader-promotion", now_());
  PendingForward promoted = std::move(pending_.at(new_leader));
  pending_.erase(new_leader);
  promoted.is_waiter = false;
  promoted.at_peer = false;
  promoted.attempt = 0;
  promoted.probes_outstanding = 0;
  promoted.coalesce_key = dead.coalesce_key;
  promoted.waiters.assign(dead.waiters.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                          dead.waiters.end());
  // Parked peer probes follow the key, not the dead leader: the
  // promoted fetch answers them when it resolves.
  promoted.remote_waiters = std::move(dead.remote_waiters);
  if (dead.coalesce_key) inflight_keys_[*dead.coalesce_key] = new_leader;
  Frame original = std::move(promoted.original);
  ForwardToCloud(std::move(original), std::move(promoted));
}

void EdgeService::OnProbeTimeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end() || !it->second.at_peer) return;
  if (it->second.served) {
    // The client was already served by a peer hit; the entry only
    // lingered for probe replies that are now presumed lost.
    pending_.erase(it);
    return;
  }
  if (it->second.probes_outstanding == 0) return;
  ++probe_timeouts_;
  if (tracer_) tracer_->Annotate(request_id, "probe-timeout", now_());
  PendingForward moved = std::move(it->second);
  pending_.erase(it);
  Frame original = std::move(moved.original);
  moved.at_peer = false;
  moved.probes_outstanding = 0;
  ForwardToCloud(std::move(original), std::move(moved));
}

Frame EdgeService::EncodePatchedResult(proto::MessageType type,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload,
                                       ResultSource source) {
  // Single copy: the payload lands in the envelope buffer once and the
  // source byte is patched there — no decode, no re-encode of the
  // (possibly multi-MB) result body on the cache-hit fast path.
  ByteVec frame = proto::EncodeEnvelope(type, request_id, payload);
  const bool ok = proto::PatchResultSourceInPlace(
      type,
      std::span<std::uint8_t>(frame).subspan(proto::kEnvelopeHeaderSize),
      source);
  COIC_CHECK_MSG(ok, "corrupt cached result payload");
  return Frame(std::move(frame));
}

void EdgeService::SendResultToClient(proto::MessageType reply_type,
                                     std::uint64_t request_id,
                                     const Frame& payload,
                                     ResultSource source) {
  // Single downlink hook for every reply shape (cache hit, grace hit,
  // waiter fan-out, peer-hit leader, cloud relay via memo replay).
  if (tracer_) tracer_->Transition(request_id, obs::Phase::kDownlink, now_());
  if (config_.gather_send) {
    // Copy-free reply: rewrite only the bytes up to and including the
    // source field into a small head, and share the (possibly multi-MB)
    // rest of the cached payload by reference. The transport fuses the
    // two at delivery; wire bytes match the fused encode exactly.
    const auto offset = proto::ResultSourceOffset(reply_type, payload.span());
    COIC_CHECK_MSG(offset.ok(), "corrupt cached result payload");
    COIC_CHECK_MSG(payload.size() <= proto::kMaxPayloadBytes,
                   "payload too large");
    const std::size_t pos = offset.value();
    ByteWriter w(proto::kEnvelopeHeaderSize + pos + 1);
    proto::AppendEnvelopeHeader(w, reply_type, request_id,
                                static_cast<std::uint32_t>(payload.size()));
    w.WriteRaw(payload.span().first(pos));
    w.WriteU8(static_cast<std::uint8_t>(source));
    Frame head(w.TakeBytes());
    if (pos + 1 < payload.size()) {
      config_.gather_send(Peer::kClient, std::move(head),
                          payload.Slice(pos + 1, payload.size() - pos - 1));
    } else {
      send_(Peer::kClient, std::move(head));
    }
    return;
  }
  send_(Peer::kClient,
        EncodePatchedResult(reply_type, request_id, payload.span(), source));
}

void EdgeService::ResolveToClient(std::uint64_t request_id,
                                  proto::MessageType reply_type,
                                  const Frame& payload, ResultSource source) {
  MemoizeResolved(request_id, {.reply = {},
                               .payload = payload,
                               .reply_type = reply_type,
                               .source = source});
  SendResultToClient(reply_type, request_id, payload, source);
}

bool EdgeService::TryServeFromCache(const proto::FeatureDescriptor& key,
                                    proto::MessageType reply_type,
                                    std::uint64_t request_id) {
  const auto outcome = cache_.Lookup(key, now_());
  if (!outcome.hit) return false;
  // Patch the cached result so the client sees the true source (edge,
  // not cloud). No memo: the cache itself re-serves a retransmit.
  SendResultToClient(reply_type, request_id, outcome.payload,
                     ResultSource::kEdgeCache);
  return true;
}

void EdgeService::OnLocalMiss(Frame frame,
                              proto::FeatureDescriptor descriptor,
                              proto::MessageType reply_type,
                              std::optional<SimTime> deadline_at) {
  const std::uint64_t request_id = proto::PeekRequestId(frame.span());
  const MessageType request_type = proto::PeekMessageType(frame.span());

  // Adoption-filter bookkeeping: every local miss counts as a use of
  // the key, including the one being processed right now.
  if (config_.peer_hit_adopt_min_uses > 0) NoteKeyUse(CoalesceKey(descriptor));

  // Admission control: a full pending queue sheds new misses up front —
  // an O(1) overload reply instead of another entry in a queue the edge
  // is already failing to drain. Cache hits never reach here, so an
  // overloaded edge keeps serving what it already has.
  if (config_.max_pending > 0 && pending_.size() >= config_.max_pending) {
    ++overload_sheds_;
    ShedToClient(request_id, StatusCode::kResourceExhausted,
                 "edge pending queue full", "overload-shed");
    return;
  }

  std::optional<std::uint64_t> coalesce_key;
  if (config_.coalesce_requests) {
    const std::uint64_t key = CoalesceKey(descriptor);
    if (const auto leader = inflight_keys_.find(key);
        leader != inflight_keys_.end()) {
      // A fetch for this key is already in flight: park on its wait-list
      // instead of paying another round of probes / a second cloud trip.
      // The waiter keeps its own request frame and insert key so it can
      // take over the fetch if the leader's retry budget dies.
      const std::uint64_t leader_id = leader->second;
      PendingForward waiter;
      waiter.request_type = request_type;
      waiter.reply_type = reply_type;
      waiter.insert_key = std::move(descriptor);
      waiter.original = std::move(frame);
      waiter.is_waiter = true;
      waiter.deadline_at = deadline_at;
      Park(request_id, std::move(waiter));
      pending_.at(leader_id).waiters.push_back(request_id);
      ++coalesced_requests_;
      if (tracer_) {
        tracer_->Transition(request_id, obs::Phase::kCoalescePark, now_());
        tracer_->Annotate(request_id, "coalesced", now_());
      }
      return;
    }
    if (config_.resolved_grace) {
      // Recently-resolved grace window: the leader for this key already
      // resolved but its delayed cache insert has not landed yet, so the
      // cache lookup above missed. Serve from the parked result instead
      // of starting a duplicate upstream fetch.
      if (const auto g = grace_.find(key); g != grace_.end()) {
        ++grace_hits_;
        if (tracer_) tracer_->Annotate(request_id, "grace-hit", now_());
        ResolveToClient(request_id, reply_type, g->second.payload,
                        ResultSource::kEdgeCache);
        return;
      }
    }
    inflight_keys_.emplace(key, request_id);
    coalesce_key = key;
  }

  if (config_.cooperative) {
    // Federation mode asks the policy for candidates (best first) and
    // caps them by the probe budget; pairwise mode probes the single
    // anonymous neighbor, exactly the original protocol.
    std::vector<std::uint32_t> candidates;
    if (config_.peer_select) {
      candidates = config_.peer_select(descriptor);
      if (candidates.size() > config_.probe_budget) {
        candidates.resize(config_.probe_budget);
      }
    } else {
      candidates = {0};
    }
    if (!candidates.empty()) {
      proto::PeerLookupRequest query;
      query.descriptor = descriptor;
      query.reply_type = reply_type;
      // Encoded once; every probe fans out the same refcounted buffer.
      // An arena recycles the probe's backing storage across requests.
      FrameArena* arena = config_.frame_arena;
      const Frame probe =
          arena ? arena->Seal(proto::EncodeMessageInto(
                      arena->Acquire(proto::kEnvelopeHeaderSize +
                                     static_cast<std::size_t>(query.WireSize())),
                      MessageType::kPeerLookupRequest, request_id, query))
                : Frame(proto::EncodeMessage(MessageType::kPeerLookupRequest,
                                             request_id, query));
      PendingForward pending;
      pending.request_type = request_type;
      pending.reply_type = reply_type;
      pending.insert_key = std::move(descriptor);
      pending.original = std::move(frame);
      pending.at_peer = true;
      pending.probes_outstanding =
          static_cast<std::uint32_t>(candidates.size());
      pending.coalesce_key = coalesce_key;
      pending.deadline_at = deadline_at;
      Park(request_id, std::move(pending));
      if (tracer_) {
        tracer_->Transition(request_id, obs::Phase::kPeerProbe, now_());
      }
      for (const std::uint32_t peer : candidates) {
        ++peer_probes_sent_;
        if (config_.peer_send) {
          config_.peer_send(peer, probe);
        } else {
          send_(Peer::kPeerEdge, probe);
        }
      }
      if (config_.peer_probe_timeout != Duration::Infinite()) {
        // Lost probes (or lost replies) must not strand the request:
        // when the round is still unresolved at the deadline, give up on
        // the peers and pay the cloud round trip.
        delay_(config_.peer_probe_timeout,
               [this, request_id] { OnProbeTimeout(request_id); });
      }
      return;
    }
    // No candidate worth probing (e.g. every peer summary says "not
    // here"): skip the probe round trip entirely.
  }
  PendingForward pending;
  pending.request_type = request_type;
  pending.reply_type = reply_type;
  pending.insert_key = std::move(descriptor);
  pending.coalesce_key = coalesce_key;
  pending.deadline_at = deadline_at;
  ForwardToCloud(std::move(frame), std::move(pending));
}

void EdgeService::HandlePeerLookupRequest(
    const EnvelopeView& env, std::optional<std::uint32_t> from_peer) {
  auto req = proto::DecodePayloadAs<proto::PeerLookupRequest>(
      env, MessageType::kPeerLookupRequest);
  if (!req.ok()) {
    COIC_LOG(kWarn) << "edge: bad peer lookup request";
    return;
  }
  ++peer_queries_served_;
  auto descriptor = std::move(req.value().descriptor);
  auto reply_type = req.value().reply_type;
  delay_(config_.costs.edge.cache_lookup,
         [this, request_id = env.request_id, descriptor = std::move(descriptor),
          reply_type, from_peer] {
           const auto outcome = cache_.Lookup(descriptor, now_());
           if (!outcome.hit && config_.park_peer_probes &&
               config_.coalesce_requests && from_peer && config_.peer_send) {
             // Probe-aware coalescing: we miss, but a same-key fetch of
             // ours is already in flight — park the probe on it and
             // answer from the result, instead of sending the prober to
             // the cloud for bytes that are already on the wire to us.
             const std::uint64_t key = CoalesceKey(descriptor);
             if (const auto leader = inflight_keys_.find(key);
                 leader != inflight_keys_.end()) {
               if (const auto lp = pending_.find(leader->second);
                   lp != pending_.end()) {
                 lp->second.remote_waiters.push_back(
                     {*from_peer, request_id, reply_type});
                 ++peer_probes_parked_;
                 return;
               }
             }
           }
           const std::span<const std::uint8_t> payload =
               outcome.hit ? outcome.payload.span()
                           : std::span<const std::uint8_t>{};
           COIC_CHECK_MSG(1 + 1 + 4 + payload.size() <=
                              proto::kMaxPayloadBytes,
                          "payload too large");
           if (outcome.hit && config_.gather_send &&
               !(from_peer && config_.peer_send)) {
             // Copy-free hit reply (pairwise transport): the fixed
             // fields go into a small head, the cached payload rides as
             // a shared tail. Field order mirrors the fused encode.
             ByteWriter w(proto::kEnvelopeHeaderSize + 1 + 1 + 4);
             proto::AppendEnvelopeHeader(
                 w, MessageType::kPeerLookupReply, request_id,
                 static_cast<std::uint32_t>(1 + 1 + 4 + payload.size()));
             w.WriteU8(1);
             w.WriteU8(static_cast<std::uint8_t>(reply_type));
             w.WriteU32(static_cast<std::uint32_t>(payload.size()));
             config_.gather_send(Peer::kPeerEdge, Frame(w.TakeBytes()),
                                 outcome.payload);
             return;
           }
           Frame reply = EncodePeerLookupReplyFrame(request_id, outcome.hit,
                                                    reply_type, payload);
           if (from_peer && config_.peer_send) {
             config_.peer_send(*from_peer, std::move(reply));
           } else {
             send_(Peer::kPeerEdge, std::move(reply));
           }
         });
}

void EdgeService::HandlePeerLookupReply(const Frame& frame,
                                        const EnvelopeView& env) {
  auto reply = proto::DecodePayloadAs<proto::PeerLookupReplyView>(
      env, MessageType::kPeerLookupReply);
  if (!reply.ok()) {
    COIC_LOG(kWarn) << "edge: bad peer lookup reply";
    return;
  }
  const auto it = pending_.find(env.request_id);
  if (it == pending_.end() || !it->second.at_peer ||
      it->second.probes_outstanding == 0) {
    // Normal under lossy transport: the probe round timed out (or was
    // otherwise resolved) before this straggler landed.
    COIC_LOG(kDebug) << "edge: late peer reply " << env.request_id;
    return;
  }
  PendingForward& pending = it->second;
  --pending.probes_outstanding;

  if (reply.value().found && !pending.served) {
    // First peer hit: adopt the result into the local cache, then serve
    // the client marked as a peer-edge result. The entry lingers (served
    // = true) until every fanned-out probe has answered. The payload is
    // a slice of the reply frame — cache adoption shares the buffer the
    // link just delivered, no copy.
    pending.served = true;
    ++peer_hits_;
    if (tracer_) {
      tracer_->Transition(env.request_id, obs::Phase::kCacheInsert, now_());
    }
    const Frame payload = frame.SliceOf(reply.value().payload);
    const MessageType reply_type = reply.value().reply_type;
    // The outcome is known: waiters ride this result, and later misses
    // must start a fresh fetch (the insert below completes after a
    // cache_insert delay).
    ReleaseCoalesceKey(pending.coalesce_key);
    std::uint64_t grace_key = 0;
    std::uint64_t grace_gen = 0;
    bool grace_armed = false;
    if (config_.resolved_grace && pending.coalesce_key) {
      // Park the result under its coalesce key until the delayed insert
      // lands — same-key misses in that window ride this entry.
      grace_key = *pending.coalesce_key;
      grace_gen = ++grace_gen_;
      grace_[grace_key] = {payload, grace_gen};
      grace_armed = true;
    }
    pending.coalesce_key.reset();
    // Adoption filter: peer-served results for low-reuse keys are not
    // copied into the local cache — a 1-hop neighbor already serves
    // them, and the insert would evict content only this edge holds.
    const bool adopt = config_.peer_hit_adopt_min_uses == 0 ||
                       KeyUses(CoalesceKey(*pending.insert_key)) >=
                           config_.peer_hit_adopt_min_uses;
    if (!adopt) ++peer_adoptions_skipped_;
    delay_(config_.costs.edge.cache_insert,
           [this, request_id = env.request_id,
            key = std::move(*pending.insert_key), payload, reply_type,
            waiters = std::move(pending.waiters),
            remote = std::move(pending.remote_waiters), adopt, grace_armed,
            grace_key, grace_gen] {
             if (adopt) cache_.Insert(key, payload, now_());
             if (grace_armed) {
               const auto g = grace_.find(grace_key);
               if (g != grace_.end() && g->second.gen == grace_gen) {
                 grace_.erase(g);
               }
             }
             ResolveToClient(request_id, reply_type, payload,
                             ResultSource::kPeerEdge);
             ServeWaiters(waiters, payload, ResultSource::kPeerEdge);
             AnswerRemoteWaiters(remote, true, payload);
           });
    pending.insert_key.reset();
    pending.waiters.clear();
    pending.remote_waiters.clear();
    if (pending.probes_outstanding == 0) pending_.erase(it);
    return;
  }

  if (pending.probes_outstanding > 0) return;  // more probes in flight
  if (pending.served) {  // late misses (or duplicate hits) after a hit
    pending_.erase(it);
    return;
  }

  // Every probe missed: fall through to the cloud with the original
  // request frame. (Pulled out first: passing `moved.original` and
  // `std::move(moved)` in one call would read a moved-from field under
  // GCC's right-to-left argument evaluation.)
  PendingForward moved = std::move(it->second);
  pending_.erase(it);
  Frame original = std::move(moved.original);
  moved.at_peer = false;
  ForwardToCloud(std::move(original), std::move(moved));
}

void EdgeService::OnPeerFrame(Frame frame) {
  DispatchPeerFrame(std::nullopt, std::move(frame));
}

void EdgeService::OnPeerFrame(std::uint32_t from_peer, Frame frame) {
  DispatchPeerFrame(from_peer, std::move(frame));
}

void EdgeService::DispatchPeerFrame(std::optional<std::uint32_t> from_peer,
                                    Frame frame) {
  auto env_or = proto::DecodeEnvelopeView(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "edge: dropping undecodable peer frame";
    return;
  }
  const EnvelopeView env = env_or.value();
  switch (env.type) {
    case MessageType::kPeerLookupRequest:
      HandlePeerLookupRequest(env, from_peer);
      return;
    case MessageType::kPeerLookupReply:
      HandlePeerLookupReply(frame, env);
      return;
    default:
      COIC_LOG(kWarn) << "edge: unexpected peer message type";
  }
}

void EdgeService::OnClientFrame(Frame frame) {
  auto env_or = proto::DecodeEnvelopeView(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "edge: dropping undecodable client frame: "
                    << env_or.status().ToString();
    return;
  }
  const EnvelopeView env = env_or.value();

  switch (env.type) {
    case MessageType::kPing:
      send_(Peer::kClient,
            proto::EncodeEnvelope(MessageType::kPong, env.request_id, {}));
      return;

    case MessageType::kCacheStatsRequest: {
      proto::CacheStatsReply reply;
      const auto& s = cache_.stats();
      reply.hits = s.hits;
      reply.misses = s.misses;
      reply.insertions = s.insertions;
      reply.evictions = s.evictions;
      reply.bytes_used = cache_.bytes_used();
      reply.bytes_capacity = cache_.config().capacity_bytes;
      send_(Peer::kClient, proto::EncodeMessage(MessageType::kCacheStatsReply,
                                                env.request_id, reply));
      return;
    }

    case MessageType::kRecognitionRequest:
    case MessageType::kRenderRequest:
    case MessageType::kPanoramaRequest: {
      // Idempotent duplicate handling (client retransmits under lossy
      // transport): an id still in flight is dropped — the in-flight
      // resolution will answer it — and an id resolved recently is
      // replayed from the memo instead of being fetched twice.
      if (pending_.count(env.request_id) > 0) {
        ++duplicates_dropped_;
        if (tracer_) {
          tracer_->Annotate(env.request_id, "duplicate-dropped", now_());
        }
        return;
      }
      if (TryReplayFromMemo(env.request_id)) return;
      const auto mode = proto::PeekRequestOffloadMode(env.type, env.payload);
      if (!mode.ok()) return;  // dropped, like any undecodable request
      if (mode.value() == OffloadMode::kOrigin) {
        // Baseline: pure relay, no cache involvement — the original
        // frame (with its possibly multi-hundred-KB camera image) is
        // forwarded untouched, never decoded at the edge; the cloud is
        // the authoritative validator of the rest of the payload.
        PendingForward pending;
        pending.request_type = env.type;
        pending.mode = OffloadMode::kOrigin;
        ForwardToCloud(std::move(frame), std::move(pending));
        return;
      }
      // CoIC mode: the descriptor must outlive this frame delivery, so
      // the request is fully (owning-)decoded.
      proto::FeatureDescriptor descriptor;
      MessageType reply_type;
      std::uint32_t deadline_ms = 0;
      switch (env.type) {
        case MessageType::kRecognitionRequest: {
          auto req = proto::DecodePayloadAs<proto::RecognitionRequest>(
              env, MessageType::kRecognitionRequest);
          if (!req.ok()) return;
          descriptor = std::move(req.value().descriptor);
          deadline_ms = req.value().deadline_ms;
          reply_type = MessageType::kRecognitionResult;
          break;
        }
        case MessageType::kRenderRequest: {
          auto req = proto::DecodePayloadAs<proto::RenderRequest>(
              env, MessageType::kRenderRequest);
          if (!req.ok()) return;
          descriptor = std::move(req.value().descriptor);
          deadline_ms = req.value().deadline_ms;
          reply_type = MessageType::kRenderResult;
          break;
        }
        default: {
          auto req = proto::DecodePayloadAs<proto::PanoramaRequest>(
              env, MessageType::kPanoramaRequest);
          if (!req.ok()) return;
          descriptor = std::move(req.value().descriptor);
          deadline_ms = req.value().deadline_ms;
          reply_type = MessageType::kPanoramaResult;
          break;
        }
      }
      // The wire deadline becomes an absolute expiry at edge arrival;
      // it rides the pending entry into every later shed decision.
      std::optional<SimTime> deadline_at;
      if (deadline_ms > 0) {
        deadline_at = now_() + Duration::Millis(deadline_ms);
      }
      if (tracer_) {
        tracer_->Transition(env.request_id, obs::Phase::kEdgeLookup, now_());
      }
      delay_(config_.costs.edge.cache_lookup,
             [this, frame = std::move(frame),
              descriptor = std::move(descriptor), reply_type,
              deadline_at]() mutable {
               if (!TryServeFromCache(descriptor, reply_type,
                                      proto::PeekRequestId(frame.span()))) {
                 OnLocalMiss(std::move(frame), std::move(descriptor),
                             reply_type, deadline_at);
               }
             });
      return;
    }

    default:
      COIC_LOG(kWarn) << "edge: unexpected client message type";
  }
}

void EdgeService::OnCloudFrame(Frame frame) {
  auto env_or = proto::DecodeEnvelopeView(frame);
  if (!env_or.ok()) {
    COIC_LOG(kWarn) << "edge: dropping undecodable cloud frame: "
                    << env_or.status().ToString();
    return;
  }
  const EnvelopeView env = env_or.value();

  const auto it = pending_.find(env.request_id);
  if (it == pending_.end()) {
    // Normal under lossy transport: a retransmitted forward makes the
    // cloud answer twice, and a reply that raced a timeout lands after
    // its request was already resolved or promoted.
    COIC_LOG(kDebug) << "edge: cloud reply for unknown request "
                     << env.request_id;
    return;
  }
  PendingForward pending = std::move(it->second);
  pending_.erase(it);
  // The leader's outcome is now known; same-key misses arriving from
  // here on start their own fetch.
  ReleaseCoalesceKey(pending.coalesce_key);
  // Any cloud reply — even an error — proves the path is alive.
  OnBreakerSuccess();

  const bool cacheable = pending.mode == OffloadMode::kCoic &&
                         pending.insert_key.has_value() &&
                         env.type != MessageType::kError;
  if (!cacheable) {
    // Error (or Origin-mode) reply: relay the original cloud frame and
    // propagate the failure to any coalesced waiters — they can never be
    // served now.
    if (env.type == MessageType::kError) {
      FailWaiters(pending.waiters, env.payload);
    }
    AnswerRemoteWaiters(pending.remote_waiters, false, Frame());
    MemoizeResolved(env.request_id, {.reply = frame, .payload = {}});
    if (tracer_) {
      tracer_->Transition(env.request_id, obs::Phase::kDownlink, now_());
    }
    send_(Peer::kClient, std::move(frame));
    return;
  }

  // Figure 1: "the edge forwards the request to the cloud and inserts
  // the result to the edge cache" — insert, then relay to the client.
  // The cache adopts a slice of the delivered frame (shared buffer) and
  // the client gets the original frame itself: zero payload copies on
  // the whole miss-return path.
  const Frame payload =
      frame.Slice(proto::kEnvelopeHeaderSize,
                  frame.size() - proto::kEnvelopeHeaderSize);
  MemoizeResolved(env.request_id, {.reply = {},
                                   .payload = payload,
                                   .reply_type = env.type,
                                   .source = ResultSource::kCloud});
  std::uint64_t grace_key = 0;
  std::uint64_t grace_gen = 0;
  bool grace_armed = false;
  if (config_.resolved_grace && config_.coalesce_requests &&
      pending.insert_key) {
    // Park the result under its coalesce key until the delayed insert
    // lands — same-key misses in that window ride this entry instead of
    // starting a duplicate cloud fetch (the key was just released).
    grace_key = CoalesceKey(*pending.insert_key);
    grace_gen = ++grace_gen_;
    grace_[grace_key] = {payload, grace_gen};
    grace_armed = true;
  }
  if (tracer_) {
    tracer_->Transition(env.request_id, obs::Phase::kCacheInsert, now_());
  }
  delay_(config_.costs.edge.cache_insert,
         [this, frame = std::move(frame), payload,
          request_id = env.request_id,
          key = std::move(*pending.insert_key),
          waiters = std::move(pending.waiters),
          remote = std::move(pending.remote_waiters), grace_armed, grace_key,
          grace_gen]() mutable {
           cache_.Insert(key, payload, now_());
           if (grace_armed) {
             const auto g = grace_.find(grace_key);
             if (g != grace_.end() && g->second.gen == grace_gen) {
               grace_.erase(g);
             }
           }
           if (tracer_) {
             tracer_->Transition(request_id, obs::Phase::kDownlink, now_());
           }
           send_(Peer::kClient, std::move(frame));
           // Waiters share the same upstream result; the cloud produced
           // it once for all of them.
           ServeWaiters(waiters, payload, ResultSource::kCloud);
           AnswerRemoteWaiters(remote, true, payload);
         });
}

}  // namespace coic::core
