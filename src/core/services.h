// EdgeService and CloudService — the two server-side actors of Figure 1.
//
// Both are transport-agnostic message processors: they consume decoded
// envelopes and emit reply envelopes through a SendFn, with compute
// latency injected through a DelayFn. The simulator binds SendFn to
// netsim::Network and DelayFn to the event scheduler; the real TCP
// transport binds SendFn to a socket write and DelayFn to an immediate
// call (host compute is real there). One implementation, two substrates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/ic_cache.h"
#include "common/frame.h"
#include "common/time.h"
#include "core/cost_model.h"
#include "core/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/envelope.h"
#include "render/panorama.h"
#include "render/registry.h"
#include "vision/recognition.h"

namespace coic::core {

/// Emits an encoded envelope toward a peer. `Peer` distinguishes the
/// directions an edge can talk (client side, cloud side, and — when
/// cooperation is enabled — a neighboring edge). Frames are refcounted
/// (common/frame.h): passing one is a pointer bump, never a payload
/// copy, so relays and fan-outs forward the original buffer.
enum class Peer : std::uint8_t { kClient = 0, kCloud = 1, kPeerEdge = 2 };
using SendFn = std::function<void(Peer to, Frame frame)>;

/// Optional scatter-gather emitter: `head` (a small rewritten envelope
/// prefix) and `tail` (a shared slice of a cached payload) travel as one
/// frame without the sender ever fusing them — the cache-hit reply path
/// uses this to stay copy-free. Null => the fused single-buffer encode.
using GatherSendFn = std::function<void(Peer to, Frame head, Frame tail)>;

/// Runs `fn` after simulated `delay` (scheduler-bound in the simulator,
/// immediate in the real transport).
using DelayFn = std::function<void(Duration delay, std::function<void()> fn)>;

/// Current simulated time (for cache TTL bookkeeping).
using NowFn = std::function<SimTime()>;

// ---------------------------------------------------------------------------
// CloudService
// ---------------------------------------------------------------------------

/// The cloud computing platform: executes complete IC tasks. Owns the
/// recognition DNN stand-in and the model/panorama stores.
class CloudService {
 public:
  struct Config {
    CostModel costs;
    std::uint32_t recognition_classes = 20;
    vision::FeatureExtractorConfig extractor;
  };

  CloudService(Config config, SendFn send, DelayFn delay);

  /// Registers a 3D model of exactly `serialized_size` bytes.
  void RegisterModel(std::uint64_t model_id, Bytes serialized_size);

  /// Entry point for frames arriving from the edge.
  void OnFrame(Frame frame);

  [[nodiscard]] const vision::RecognitionModel& recognition_model() const {
    return *recognition_;
  }
  [[nodiscard]] const render::ModelRegistry& model_registry() const {
    return models_;
  }
  [[nodiscard]] const vision::FeatureExtractor& extractor() const {
    return extractor_;
  }
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_;
  }

  /// Canonical label for a synthetic scene — what recognition should
  /// return when it gets the right answer.
  static std::string LabelForScene(std::uint64_t scene_id);

 private:
  void HandleRecognition(const proto::EnvelopeView& env);
  void HandleRender(const proto::EnvelopeView& env);
  void HandlePanorama(const proto::EnvelopeView& env);
  void Reply(proto::MessageType type, std::uint64_t request_id,
             std::span<const std::uint8_t> payload);
  void ReplyError(std::uint64_t request_id, StatusCode code,
                  const std::string& message);

  /// Deterministic-output memos. Annotations, encoded render payloads
  /// and encoded panorama payloads depend only on (label / model id /
  /// video+frame), so regenerating the multi-hundred-KB body per task is
  /// pure waste under open-loop request storms. Values are byte-identical
  /// to a fresh generation; the caches only trade memory for wall time,
  /// and are bounded by clearing when they outgrow `cap` (re-filled on
  /// demand, still deterministic). Values are shared Frames: handing one
  /// out is a refcount bump, and each reply's delay_ lambda captures the
  /// frame, not a copy of the body.
  Frame AnnotationFor(const std::string& label);
  template <typename Map>
  static void BoundMemo(Map& memo, std::size_t cap) {
    if (memo.size() > cap) memo.clear();
  }

  Config config_;
  SendFn send_;
  DelayFn delay_;
  vision::FeatureExtractor extractor_;
  std::unique_ptr<vision::RecognitionModel> recognition_;
  render::ModelRegistry models_;
  std::uint64_t tasks_executed_ = 0;
  std::unordered_map<std::string, Frame> annotation_memo_;
  /// model id -> (model byte size, encoded RenderResult payload).
  std::unordered_map<std::uint64_t, std::pair<Bytes, Frame>>
      render_payload_memo_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, Frame>
      panorama_payload_memo_;
};

// ---------------------------------------------------------------------------
// EdgeService
// ---------------------------------------------------------------------------

/// The mobile-edge node: terminates client requests, owns the IC cache,
/// and forwards misses to the cloud (Figure 1's lookup/forward/insert
/// state machine). Origin-mode requests pass through untouched — the
/// baseline shares the topology but never consults the cache.
class EdgeService {
 public:
  /// Federation hooks. `PeerSendFn` delivers an encoded frame to the
  /// peer edge with the given cluster index; `PeerSelectFn` returns the
  /// ordered probe candidates for a descriptor (best first). When both
  /// are installed the edge runs in N-edge federation mode; otherwise a
  /// single anonymous peer is assumed (the original pairwise protocol).
  using PeerSendFn = std::function<void(std::uint32_t peer, Frame frame)>;
  using PeerSelectFn =
      std::function<std::vector<std::uint32_t>(const proto::FeatureDescriptor&)>;

  struct Config {
    CostModel costs;
    cache::IcCacheConfig cache;
    /// When true, a local miss probes peer edge caches before paying the
    /// cloud WAN round trip. Pairwise mode routes the single probe via
    /// SendFn(Peer::kPeerEdge); federation mode (peer_send + peer_select
    /// set) fans out to the selected candidates instead.
    bool cooperative = false;
    PeerSendFn peer_send;      ///< Null => pairwise mode.
    PeerSelectFn peer_select;  ///< Null => pairwise mode.
    /// Per-request cap on peer probes in federation mode; candidates
    /// beyond the budget are dropped (policy order is preserved).
    std::uint32_t probe_budget = 1;
    /// Same-key request coalescing: while a CoIC miss for a descriptor
    /// is in flight (peer probes or cloud forward), later misses on the
    /// same key park on a wait-list and are served from the leader's
    /// result instead of paying their own upstream fetch. Invisible in
    /// the closed loop (never more than one request in flight); under an
    /// open-loop storm it collapses N concurrent same-object misses into
    /// one cloud fetch.
    bool coalesce_requests = true;
    /// Edge->cloud timeout/retry policy for the unreliable-transport
    /// mode. Disabled by default (reliable transport never loses the
    /// forward or the reply).
    RetryConfig cloud_retry;
    /// How long to wait for peer-probe replies before giving up on the
    /// probe round and falling through to the cloud. Infinite (default)
    /// waits forever — correct only on a lossless transport.
    Duration peer_probe_timeout = Duration::Infinite();
    /// Recently-resolved grace entries: after a coalescing leader
    /// resolves, its result is kept keyed by coalesce key until the
    /// delayed cache insert lands, so a same-key miss arriving in that
    /// window is served from the grace entry instead of starting a
    /// duplicate upstream fetch. On by default — the window is a bug,
    /// not a feature.
    bool resolved_grace = true;
    /// Idempotent-replay memo: the last N resolved request ids keep
    /// their reply so a retransmitted request whose reply was lost is
    /// answered from the memo, never re-fetched. 0 (default) disables;
    /// enable alongside client retries.
    std::size_t resolved_memo_capacity = 0;
    /// Admission control: when set (> 0), a CoIC miss arriving while
    /// `max_pending` requests are already parked is shed immediately
    /// with a kError reply carrying StatusCode::kResourceExhausted
    /// instead of joining the queue — the overloaded edge answers in
    /// O(1) and the client degrades to its local-compute fallback
    /// rather than burning its retry budget against a drowning edge.
    /// 0 (default) disables: the edge accepts everything, as before.
    std::size_t max_pending = 0;
    /// Circuit breaker on the edge->cloud path: after this many
    /// consecutive cloud-fetch failures (retry budgets spent without a
    /// reply) the breaker opens and cloud forwards fail fast with
    /// StatusCode::kUnavailable — a dead cloud stops consuming retry
    /// budgets and coalescing leaders. After `breaker_open_duration`
    /// the next forward runs as a half-open probe: success closes the
    /// breaker, failure re-opens it. 0 (default) disables.
    std::uint32_t breaker_failure_threshold = 0;
    Duration breaker_open_duration = Duration::Millis(2000);
    /// Optional scatter-gather sender for result replies (see
    /// GatherSendFn). Wire bytes are identical to the fused path.
    GatherSendFn gather_send;
    /// Observability: when set, this edge's counters live in the shared
    /// registry under `metrics_prefix` (e.g. "edge.0."); when null the
    /// edge owns a private registry. Either way the counter accessors
    /// below keep working unchanged.
    obs::MetricsRegistry* metrics = nullptr;
    std::string metrics_prefix = "edge.";
    /// Request-lifecycle tracer; null => tracing disabled, and every
    /// instrumentation site reduces to one pointer test.
    obs::RequestTracer* tracer = nullptr;
    /// Peer-hit adoption filter: a miss answered by a peer is only
    /// inserted into the local cache when the key has been requested
    /// here at least this many times (counting the current miss). 0
    /// (default) adopts everything, as before. With peers one hop away,
    /// adopting single-use content merely duplicates what the
    /// federation already serves — and the insert may evict an entry
    /// only this edge holds.
    std::uint32_t peer_hit_adopt_min_uses = 0;
    /// Probe-aware coalescing: a peer lookup that misses here while a
    /// same-key fetch of ours is in flight parks on that fetch and is
    /// answered from its result, instead of replying "miss" and sending
    /// the prober to the cloud for bytes already on the wire. Requires
    /// coalesce_requests; off by default.
    bool park_peer_probes = false;
    /// Buffer recycler for small control frames (probes, probe replies,
    /// summary acks). Null => plain allocation, byte-identical wire.
    FrameArena* frame_arena = nullptr;
  };

  EdgeService(Config config, SendFn send, DelayFn delay, NowFn now);

  /// Frames arriving from the mobile client.
  void OnClientFrame(Frame frame);

  /// Frames arriving back from the cloud.
  void OnCloudFrame(Frame frame);

  /// Frames arriving from the cooperating peer edge (lookup requests we
  /// answer, and replies to lookups we issued). The anonymous overload
  /// serves pairwise mode; federation substrates pass the sender's
  /// cluster index so replies can be routed back.
  void OnPeerFrame(Frame frame);
  void OnPeerFrame(std::uint32_t from_peer, Frame frame);

  [[nodiscard]] const cache::IcCache& cache() const noexcept { return cache_; }
  [[nodiscard]] cache::IcCache& mutable_cache() noexcept { return cache_; }

  /// Number of requests forwarded to the cloud.
  [[nodiscard]] std::uint64_t forwards() const noexcept { return forwards_.value(); }
  /// Number of misses answered by a peer edge.
  [[nodiscard]] std::uint64_t peer_hits() const noexcept { return peer_hits_.value(); }
  /// Peer lookup queries answered for neighbors.
  [[nodiscard]] std::uint64_t peer_queries_served() const noexcept {
    return peer_queries_served_.value();
  }
  /// PeerLookupRequests this edge issued (the probe-traffic metric the
  /// federation policies trade against hit rate).
  [[nodiscard]] std::uint64_t peer_probes_sent() const noexcept {
    return peer_probes_sent_.value();
  }
  /// Misses that coalesced onto an already-in-flight fetch for the same
  /// key instead of paying their own peer probes / cloud round trip.
  [[nodiscard]] std::uint64_t coalesced_requests() const noexcept {
    return coalesced_requests_.value();
  }
  /// Requests currently parked (awaiting a cloud reply or peer probes).
  [[nodiscard]] std::size_t pending_inflight() const noexcept {
    return pending_.size();
  }
  /// High-water mark of parked requests — the queueing depth open-loop
  /// replay drives; stays at 1 in the closed-loop regime.
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }
  /// Ids of the requests currently parked, ascending — the stranded-
  /// workload diagnostics name these when an open-loop run fails to
  /// drain.
  [[nodiscard]] std::vector<std::uint64_t> pending_request_ids() const;

  // Unreliable-transport counters (all zero when retries are disabled).
  /// Cloud forwards retransmitted after a timeout.
  [[nodiscard]] std::uint64_t cloud_retransmissions() const noexcept {
    return cloud_retransmissions_.value();
  }
  /// Cloud fetches abandoned after the retry budget was spent.
  [[nodiscard]] std::uint64_t cloud_timeouts() const noexcept {
    return cloud_timeouts_.value();
  }
  /// Peer-probe rounds abandoned on timeout (fell through to the cloud).
  [[nodiscard]] std::uint64_t probe_timeouts() const noexcept {
    return probe_timeouts_.value();
  }
  /// Coalescing waiters promoted to leader after their leader's fetch
  /// died (the leader-loss recovery path).
  [[nodiscard]] std::uint64_t leader_promotions() const noexcept {
    return leader_promotions_.value();
  }
  /// Retransmitted requests dropped because the original is still in
  /// flight (without this, a duplicate id would double-park).
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return duplicates_dropped_.value();
  }
  /// Retransmitted requests answered from the resolved-reply memo.
  [[nodiscard]] std::uint64_t replayed_from_memo() const noexcept {
    return replayed_from_memo_.value();
  }
  /// Misses served from a recently-resolved grace entry (the cache-
  /// insert-delay window that previously caused duplicate fetches).
  [[nodiscard]] std::uint64_t grace_hits() const noexcept {
    return grace_hits_.value();
  }

  // Overload-control counters (all zero with the controls disabled).
  /// Misses shed at admission because the pending queue was full.
  [[nodiscard]] std::uint64_t overload_sheds() const noexcept {
    return overload_sheds_.value();
  }
  /// Requests shed before a cloud fetch because their wire deadline had
  /// already expired while they queued / probed / parked.
  [[nodiscard]] std::uint64_t deadline_sheds() const noexcept {
    return deadline_sheds_.value();
  }
  /// Times the cloud circuit breaker opened (including re-opens after a
  /// failed half-open probe).
  [[nodiscard]] std::uint64_t breaker_opens() const noexcept {
    return breaker_opens_.value();
  }
  /// Cloud forwards failed fast because the breaker was open.
  [[nodiscard]] std::uint64_t breaker_sheds() const noexcept {
    return breaker_sheds_.value();
  }

  /// Peer-hit results not adopted into the local cache because the key
  /// had fewer than `peer_hit_adopt_min_uses` local requests.
  [[nodiscard]] std::uint64_t peer_adoptions_skipped() const noexcept {
    return peer_adoptions_skipped_.value();
  }
  /// Peer lookups that missed locally but parked on an in-flight
  /// same-key fetch (answered from its result, not sent away empty).
  [[nodiscard]] std::uint64_t peer_probes_parked() const noexcept {
    return peer_probes_parked_.value();
  }

  /// Cloud-path circuit-breaker state (exposed for tests/diagnostics).
  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
  [[nodiscard]] BreakerState breaker_state() const noexcept {
    return breaker_state_;
  }

 private:
  /// A peer lookup parked on this edge's in-flight fetch (probe-aware
  /// coalescing): when the fetch resolves, the prober is answered with
  /// a PeerLookupReply under its own probe request id.
  struct RemoteWaiter {
    std::uint32_t peer = 0;
    std::uint64_t request_id = 0;
    proto::MessageType reply_type = proto::MessageType::kRecognitionResult;
  };

  struct PendingForward {
    proto::MessageType request_type = proto::MessageType::kPing;
    proto::OffloadMode mode = proto::OffloadMode::kCoic;
    /// Result envelope type this request will be answered with (CoIC
    /// mode; serves coalesced waiters without re-deriving it).
    proto::MessageType reply_type = proto::MessageType::kRecognitionResult;
    /// Cache key to insert the result under (CoIC mode only).
    std::optional<proto::FeatureDescriptor> insert_key;
    /// Original client request frame, kept while the request is parked
    /// at the peer (a peer miss falls through to the cloud), while a
    /// cloud retry policy is armed (retransmissions resend it), and for
    /// waiters (leader promotion re-forwards it) — as-is, never
    /// re-encoded.
    Frame original;
    bool at_peer = false;
    /// Cloud-forward attempt number (0 = initial send); stale retry
    /// timers compare against it and disarm.
    std::uint32_t attempt = 0;
    /// Probes still in flight (federation mode fans out to several).
    std::uint32_t probes_outstanding = 0;
    /// A probe already hit; late replies are drained without effect.
    bool served = false;
    /// Leader bookkeeping for same-key coalescing: the key this request
    /// holds in inflight_keys_ (released when its result arrives) and
    /// the request ids waiting on that result.
    std::optional<std::uint64_t> coalesce_key;
    std::vector<std::uint64_t> waiters;
    /// True for a parked waiter: no upstream fetch of its own; it is
    /// served (or failed) when its leader completes.
    bool is_waiter = false;
    /// Absolute expiry of the wire deadline the request carried
    /// (deadline_ms, stamped by the client at send); nullopt = none.
    /// Checked at ForwardToCloud: already-expired work is shed instead
    /// of paying a cloud round trip it can no longer use.
    std::optional<SimTime> deadline_at;
    /// Peer probes parked on this fetch (probe-aware coalescing);
    /// answered — found or not — when the fetch resolves, and handed to
    /// the promoted leader on leader loss.
    std::vector<RemoteWaiter> remote_waiters;
  };

  /// Registers an in-flight request; CHECK-fails on a duplicate id. The
  /// single parking point for both the cloud-forward and peer-probe paths.
  void Park(std::uint64_t request_id, PendingForward pending);

  /// Runs the Figure 1 lookup for a CoIC request; returns true and sends
  /// the reply if it hit.
  bool TryServeFromCache(const proto::FeatureDescriptor& key,
                         proto::MessageType reply_type,
                         std::uint64_t request_id);
  /// Handles the local-miss path: coalesce onto an in-flight same-key
  /// fetch when possible, else peer probe(s) if cooperative, else cloud.
  void OnLocalMiss(Frame frame, proto::FeatureDescriptor descriptor,
                   proto::MessageType reply_type,
                   std::optional<SimTime> deadline_at);
  void ForwardToCloud(Frame request_frame, PendingForward pending);
  void DispatchPeerFrame(std::optional<std::uint32_t> from_peer, Frame frame);
  void HandlePeerLookupRequest(const proto::EnvelopeView& env,
                               std::optional<std::uint32_t> from_peer);
  void HandlePeerLookupReply(const Frame& frame,
                             const proto::EnvelopeView& env);

  /// Same-key coalescing identity of a descriptor: content-hash keys use
  /// their index key, vector keys a hash of the raw float bits (exact
  /// re-extractions coalesce; merely similar vectors do not — those are
  /// the cache's approximate-match job, not the wait-list's).
  static std::uint64_t CoalesceKey(const proto::FeatureDescriptor& key) noexcept;

  /// Serves waiter requests with the leader's result payload, each under
  /// its own reply envelope type with `source` patched in (the result
  /// was produced once upstream and fanned out at the edge). Waiters are
  /// unparked as they are served.
  void ServeWaiters(const std::vector<std::uint64_t>& waiters,
                    const Frame& payload, proto::ResultSource source);
  /// Fails waiter requests with the leader's error payload.
  void FailWaiters(const std::vector<std::uint64_t>& waiters,
                   std::span<const std::uint8_t> error_payload);
  /// Answers parked peer probes with the leader's outcome: a
  /// PeerLookupReply per waiter under its probe request id — found=1
  /// with the result payload, or found=0 (empty payload) so the prober
  /// falls through to its remaining peers / the cloud.
  void AnswerRemoteWaiters(const std::vector<RemoteWaiter>& waiters,
                           bool found, const Frame& payload);
  /// Encodes a PeerLookupReply, recycling an arena buffer when one is
  /// configured. Wire bytes match the plain path exactly.
  [[nodiscard]] Frame EncodePeerLookupReplyFrame(
      std::uint64_t request_id, bool found, proto::MessageType reply_type,
      std::span<const std::uint8_t> payload);
  /// Records a local request for `coalesce_key` (bounded map; counts
  /// feed the peer-hit adoption filter). No-op unless the filter is on.
  void NoteKeyUse(std::uint64_t coalesce_key);
  [[nodiscard]] std::uint32_t KeyUses(std::uint64_t coalesce_key) const noexcept;
  /// Drops the in-flight marker for `key` (no-op for nullopt). Done the
  /// moment the leader's outcome is known: later same-key misses start a
  /// fresh fetch instead of waiting on a resolved leader.
  void ReleaseCoalesceKey(const std::optional<std::uint64_t>& key);

  /// Wraps a cached result payload in a reply envelope with `source`
  /// stamped in place (one copy; the result body is never decoded).
  static Frame EncodePatchedResult(proto::MessageType type,
                                   std::uint64_t request_id,
                                   std::span<const std::uint8_t> payload,
                                   proto::ResultSource source);

  /// Sends a result payload to the client under `reply_type` with
  /// `source` stamped in. With gather_send configured the payload tail
  /// is shared by reference (copy-free hit replies); otherwise it falls
  /// back to the fused one-copy EncodePatchedResult. Wire bytes are
  /// identical either way.
  void SendResultToClient(proto::MessageType reply_type,
                          std::uint64_t request_id, const Frame& payload,
                          proto::ResultSource source);
  /// SendResultToClient plus resolved-memo bookkeeping — the terminal
  /// resolution of a fetched (leader/waiter/grace) request.
  void ResolveToClient(std::uint64_t request_id,
                       proto::MessageType reply_type, const Frame& payload,
                       proto::ResultSource source);

  /// The registry cell backing counter `name` (shared registry under the
  /// configured prefix, or the private fallback). Constructor-only.
  [[nodiscard]] obs::Counter& Metric(const char* name) {
    return (config_.metrics ? *config_.metrics : *own_metrics_)
        .GetCounter(config_.metrics_prefix + name);
  }

  /// Replay memo for resolved requests (idempotent duplicate handling).
  /// Either a complete pre-encoded reply frame, or a payload re-wrapped
  /// per replay.
  struct ResolvedMemo {
    Frame reply;
    Frame payload;
    proto::MessageType reply_type = proto::MessageType::kRecognitionResult;
    proto::ResultSource source = proto::ResultSource::kEdgeCache;
  };
  void MemoizeResolved(std::uint64_t request_id, ResolvedMemo memo);
  /// Serves a retransmitted request from the memo; false if unknown.
  bool TryReplayFromMemo(std::uint64_t request_id);

  // Cloud-forward retry machinery (no-ops unless cloud_retry.enabled()).
  void ArmCloudRetryTimer(std::uint64_t request_id, std::uint32_t attempt);
  void OnCloudRetryTimer(std::uint64_t request_id, std::uint32_t attempt);
  /// Retry budget spent: error the leader's client and promote the
  /// oldest parked waiter to run its own fetch (leader-loss recovery).
  void HandleCloudFetchFailure(std::uint64_t request_id);
  /// Peer-probe round abandoned: fall through to the cloud.
  void OnProbeTimeout(std::uint64_t request_id);

  /// Sends an immediate kError reply with `code` (the shed contract the
  /// client's degradation path keys on), memoized for duplicate replay.
  void ShedToClient(std::uint64_t request_id, StatusCode code,
                    const char* message, const char* annotation);
  /// Sheds a not-yet-parked request plus its coalesced waiters; the
  /// single exit for the breaker / deadline fail-fast paths.
  void ShedPending(std::uint64_t request_id, PendingForward pending,
                   StatusCode code, const char* message,
                   const char* annotation);
  /// True when the breaker currently refuses this forward (also runs
  /// the open -> half-open transition and claims the probe slot).
  [[nodiscard]] bool BreakerRefusesForward(std::uint64_t request_id);
  /// Breaker bookkeeping for a cloud-fetch failure / success.
  void OnBreakerFailure(std::uint64_t request_id);
  void OnBreakerSuccess();

  Config config_;
  SendFn send_;
  DelayFn delay_;
  NowFn now_;
  cache::IcCache cache_;
  std::unordered_map<std::uint64_t, PendingForward> pending_;
  /// Coalesce key -> leader request id, for keys with a fetch in flight.
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_keys_;
  /// Recently-resolved results awaiting their delayed cache insert,
  /// keyed by coalesce key. `gen` disambiguates re-resolutions of the
  /// same key so a stale erase cannot drop a newer entry.
  struct GraceEntry {
    Frame payload;
    std::uint64_t gen = 0;
  };
  std::unordered_map<std::uint64_t, GraceEntry> grace_;
  std::uint64_t grace_gen_ = 0;
  /// Bounded FIFO of resolved replies for duplicate replay.
  std::unordered_map<std::uint64_t, ResolvedMemo> resolved_memo_;
  std::deque<std::uint64_t> resolved_memo_fifo_;
  /// Private registry backing the counters when no shared one is
  /// configured. Declared before the Counter& members: they bind to it
  /// in the constructor initializer list.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  obs::RequestTracer* tracer_ = nullptr;
  obs::Counter& forwards_;
  obs::Counter& peer_hits_;
  obs::Counter& peer_queries_served_;
  obs::Counter& peer_probes_sent_;
  obs::Counter& coalesced_requests_;
  obs::Counter& cloud_retransmissions_;
  obs::Counter& cloud_timeouts_;
  obs::Counter& probe_timeouts_;
  obs::Counter& leader_promotions_;
  obs::Counter& duplicates_dropped_;
  obs::Counter& replayed_from_memo_;
  obs::Counter& grace_hits_;
  obs::Counter& overload_sheds_;
  obs::Counter& deadline_sheds_;
  obs::Counter& breaker_opens_;
  obs::Counter& breaker_sheds_;
  obs::Counter& peer_adoptions_skipped_;
  obs::Counter& peer_probes_parked_;
  /// Bounded per-key local request counts backing the peer-hit adoption
  /// filter (FIFO-evicted; empty unless peer_hit_adopt_min_uses > 0).
  std::unordered_map<std::uint64_t, std::uint32_t> key_uses_;
  std::deque<std::uint64_t> key_uses_fifo_;
  std::size_t peak_pending_ = 0;
  // Cloud-path circuit breaker (inert unless breaker_failure_threshold
  // is set). Consecutive counts only full fetch failures — retry
  // budgets spent without any cloud reply.
  BreakerState breaker_state_ = BreakerState::kClosed;
  std::uint32_t consecutive_cloud_failures_ = 0;
  SimTime breaker_reopen_at_ = SimTime::Epoch();
  bool breaker_probe_inflight_ = false;
};

}  // namespace coic::core
