#include "core/sim_pipeline.h"

namespace coic::core {

SimPipeline::SimPipeline(PipelineConfig config)
    : config_(config), net_(sched_) {
  mobile_ = net_.AddNode("mobile");
  edge_node_ = net_.AddNode("edge");
  cloud_node_ = net_.AddNode("cloud");

  netsim::LinkConfig wifi;
  wifi.bandwidth = config.network.mobile_edge;
  wifi.propagation = config.mobile_edge_propagation;
  netsim::LinkConfig wan;
  wan.bandwidth = config.network.edge_cloud;
  wan.propagation = config.edge_cloud_propagation;
  net_.Connect(mobile_, edge_node_, wifi);
  net_.Connect(edge_node_, cloud_node_, wan);

  const DelayFn delay = [this](Duration d, std::function<void()> fn) {
    sched_.ScheduleAfter(d, std::move(fn));
  };
  const NowFn now = [this] { return sched_.now(); };

  CloudService::Config cloud_config;
  cloud_config.costs = config.costs;
  cloud_config.recognition_classes = config.recognition_classes;
  cloud_config.extractor = config.extractor;
  cloud_ = std::make_unique<CloudService>(
      cloud_config,
      [this](Peer /*to*/, Frame frame) {
        // The cloud only ever talks to the edge.
        net_.Send(cloud_node_, edge_node_, std::move(frame));
      },
      delay);

  EdgeService::Config edge_config;
  edge_config.costs = config.costs;
  edge_config.cache = config.cache;
  edge_ = std::make_unique<EdgeService>(
      edge_config,
      [this](Peer to, Frame frame) {
        net_.Send(edge_node_, to == Peer::kClient ? mobile_ : cloud_node_,
                  std::move(frame));
      },
      delay, now);

  CoicClient::Config client_config;
  client_config.costs = config.costs;
  client_config.mode = config.mode;
  client_config.extractor = config.extractor;
  client_ = std::make_unique<CoicClient>(
      client_config,
      [this](Frame frame) {
        net_.Send(mobile_, edge_node_, std::move(frame));
      },
      delay, now);

  net_.SetHandler(mobile_, [this](netsim::NodeId /*from*/, Frame frame) {
    client_->OnEdgeFrame(std::move(frame));
  });
  net_.SetHandler(edge_node_, [this](netsim::NodeId from, Frame frame) {
    if (from == mobile_) {
      edge_->OnClientFrame(std::move(frame));
    } else {
      edge_->OnCloudFrame(std::move(frame));
    }
  });
  net_.SetHandler(cloud_node_, [this](netsim::NodeId /*from*/, Frame frame) {
    cloud_->OnFrame(std::move(frame));
  });
}

Digest128 SimPipeline::RegisterModel(std::uint64_t model_id,
                                     Bytes serialized_size) {
  cloud_->RegisterModel(model_id, serialized_size);
  const auto digest = cloud_->model_registry().DigestFor(model_id);
  COIC_CHECK(digest.ok());
  model_digests_[model_id] = digest.value();
  return digest.value();
}

void SimPipeline::EnqueueRecognition(const vision::SceneParams& scene) {
  ops_.push_back([this, scene](CoicClient::CompletionFn done) {
    client_->StartRecognition(scene, CloudService::LabelForScene(scene.scene_id),
                              std::move(done));
  });
}

void SimPipeline::EnqueueRender(std::uint64_t model_id) {
  const auto it = model_digests_.find(model_id);
  COIC_CHECK_MSG(it != model_digests_.end(),
                 "EnqueueRender before RegisterModel");
  const Digest128 digest = it->second;
  ops_.push_back([this, model_id, digest](CoicClient::CompletionFn done) {
    client_->StartRender(model_id, digest, std::move(done));
  });
}

void SimPipeline::EnqueuePanorama(std::uint64_t video_id,
                                  std::uint32_t frame_index,
                                  const proto::Viewport& viewport) {
  ops_.push_back(
      [this, video_id, frame_index, viewport](CoicClient::CompletionFn done) {
        client_->StartPanorama(video_id, frame_index, viewport, std::move(done));
      });
}

void SimPipeline::IssueNext() {
  if (ops_.empty()) return;
  Op op = std::move(ops_.front());
  ops_.pop_front();
  op([this](RequestOutcome outcome) {
    outcomes_.push_back(std::move(outcome));
    IssueNext();
  });
}

std::vector<RequestOutcome> SimPipeline::Run() {
  outcomes_.clear();
  IssueNext();
  sched_.Run();
  COIC_CHECK_MSG(ops_.empty(), "pipeline drained with operations unissued");
  COIC_CHECK_MSG(client_->inflight() == 0,
                 "pipeline drained with requests in flight");
  return std::move(outcomes_);
}

}  // namespace coic::core
