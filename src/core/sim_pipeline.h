// SimPipeline — the whole testbed in one object.
//
// Wires a CoicClient, EdgeService and CloudService onto a three-node
// netsim topology (mobile —WiFi— edge —WAN— cloud) with the bandwidths
// of one network condition, then replays a queue of IC operations
// sequentially (one outstanding request at a time — the latency-study
// regime of Figures 2a/2b) and returns per-request outcomes.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "cache/ic_cache.h"
#include "core/client.h"
#include "core/cost_model.h"
#include "core/services.h"
#include "netsim/network.h"
#include "netsim/scheduler.h"

namespace coic::core {

struct PipelineConfig {
  NetworkCondition network{Bandwidth::Mbps(400), Bandwidth::Mbps(40)};
  proto::OffloadMode mode = proto::OffloadMode::kCoic;
  CostModel costs;
  cache::IcCacheConfig cache;
  vision::FeatureExtractorConfig extractor;
  std::uint32_t recognition_classes = 20;
  Duration mobile_edge_propagation = kMobileEdgePropagation;
  Duration edge_cloud_propagation = kEdgeCloudPropagation;
};

class SimPipeline {
 public:
  explicit SimPipeline(PipelineConfig config);

  /// Registers a model with the cloud store (needed before EnqueueRender
  /// for that id). Returns its content digest — the cache key.
  Digest128 RegisterModel(std::uint64_t model_id, Bytes serialized_size);

  /// Queues operations; they run back-to-back when Run() is called.
  void EnqueueRecognition(const vision::SceneParams& scene);
  void EnqueueRender(std::uint64_t model_id);
  void EnqueuePanorama(std::uint64_t video_id, std::uint32_t frame_index,
                       const proto::Viewport& viewport = {});

  /// Runs all queued operations to completion; outcomes are returned in
  /// issue order. Callable repeatedly (cache state persists across
  /// calls, which is how warm-cache series are measured).
  std::vector<RequestOutcome> Run();

  [[nodiscard]] const cache::IcCacheStats& edge_cache_stats() const {
    return edge_->cache().stats();
  }
  [[nodiscard]] EdgeService& edge() noexcept { return *edge_; }
  [[nodiscard]] CloudService& cloud() noexcept { return *cloud_; }
  [[nodiscard]] CoicClient& client() noexcept { return *client_; }
  [[nodiscard]] netsim::EventScheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] netsim::Network& network() noexcept { return net_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  using Op = std::function<void(CoicClient::CompletionFn)>;

  void IssueNext();

  PipelineConfig config_;
  netsim::EventScheduler sched_;
  netsim::Network net_;
  netsim::NodeId mobile_ = 0;
  netsim::NodeId edge_node_ = 0;
  netsim::NodeId cloud_node_ = 0;
  std::unique_ptr<CloudService> cloud_;
  std::unique_ptr<EdgeService> edge_;
  std::unique_ptr<CoicClient> client_;
  std::unordered_map<std::uint64_t, Digest128> model_digests_;
  std::deque<Op> ops_;
  std::vector<RequestOutcome> outcomes_;
};

}  // namespace coic::core
