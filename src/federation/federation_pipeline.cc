#include "federation/federation_pipeline.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <string>

#include "common/log.h"

namespace coic::federation {
namespace {

using core::CloudService;
using core::CoicClient;
using core::EdgeService;
using proto::MessageType;
using proto::PeekMessageType;
using proto::PeekRequestId;

}  // namespace

FederationTransportConfig FederationTransportConfig::Lossy(double loss_rate) {
  FederationTransportConfig t;
  t.datagram = true;
  t.loss_rate = loss_rate;
  // Timeouts sit well above the lossless worst-case response time (a
  // multi-MB model over a 10 Mbps WAN takes seconds), so a slow reply is
  // never mistaken for a lost one — spurious retransmits would inflate
  // load and distort the sweep. Lost frames pay the timeout; that is the
  // p99 story the loss bench tells.
  t.client_retry.timeout = Duration::Millis(10'000);
  t.client_retry.max_retries = 4;
  t.client_retry.max_timeout = Duration::Millis(40'000);
  t.cloud_retry.timeout = Duration::Millis(4'000);
  t.cloud_retry.max_retries = 3;
  t.cloud_retry.max_timeout = Duration::Millis(16'000);
  t.peer_probe_timeout = Duration::Millis(500);
  t.summary_ack = true;
  return t;
}

FederationPipelineConfig FederationPipeline::ApplyTransport(
    FederationPipelineConfig config) {
  // Peer-link loss has to be stamped before BuildTopology snapshots the
  // link configs into the Topology (the constructor's init order).
  const double loss = config.transport.loss_rate;
  if (loss > 0) {
    config.peer_link.loss_rate = loss;
    for (TopologyLink& l : config.custom_links) l.link.loss_rate = loss;
  }
  return config;
}

Topology FederationPipeline::BuildTopology(
    const FederationPipelineConfig& config) {
  switch (config.topology) {
    case TopologyKind::kStar:
      return Topology::Star(config.venues, config.peer_link);
    case TopologyKind::kRing:
      return Topology::Ring(config.venues, config.peer_link);
    case TopologyKind::kFullMesh:
      return Topology::FullMesh(config.venues, config.peer_link);
    case TopologyKind::kCustom:
      return Topology::Custom(config.venues, config.custom_links);
  }
  COIC_CHECK_MSG(false, "unknown topology kind");
  return Topology::FullMesh(config.venues, config.peer_link);
}

FederationPipeline::FederationPipeline(FederationPipelineConfig config)
    : config_(ApplyTransport(std::move(config))),
      topology_(BuildTopology(config_)) {
  COIC_CHECK(config_.venues >= 1);
  COIC_CHECK(config_.mobiles_per_venue >= 1);
  COIC_CHECK(config_.probe_budget >= 1);
  if (config_.delta_gossip && config_.cache.journal_capacity == 0) {
    // Delta gossip needs the cache change journal; without one every
    // send would fall back to a full summary. Journaling is off by
    // default so non-delta caches pay nothing — enable a window deep
    // enough to cover any realistic gossip period here.
    config_.cache.journal_capacity = 4096;
  }

  // Execution plan: venue v (its edge, its mobiles, every link those
  // nodes send on) lives on shard v % S; the cloud and its outbound
  // links live on shard 0. One shard = the classic single-thread engine.
  const std::uint32_t shard_count =
      config_.execution.workers <= 1
          ? 1u
          : std::min(config_.execution.workers, config_.venues);
  shards_.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<ShardState>(config_.trace));
  }
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    ShardOf(v).venues.push_back(v);
  }

  // Every shard's Network replica adds ALL nodes in the same order, so a
  // node id names the same endpoint on every shard (cross-shard messages
  // carry ids verbatim); node_shard_ records the owner.
  const auto add_node = [this](const std::string& name, std::uint32_t shard) {
    netsim::NodeId id = 0;
    for (auto& sh : shards_) id = sh->net.AddNode(name);
    node_shard_.push_back(shard);
    return id;
  };

  cloud_node_ = add_node("cloud", 0);
  edge_nodes_.reserve(config_.venues);
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    edge_nodes_.push_back(
        add_node("edge" + std::to_string(v), ShardIndexOf(v)));
  }
  mobile_nodes_.resize(
      static_cast<std::size_t>(config_.venues) * config_.mobiles_per_venue);
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    for (std::uint32_t m = 0; m < config_.mobiles_per_venue; ++m) {
      mobile_nodes_[ClientIndex(v, m)] =
          add_node("mobile" + std::to_string(v) + "_" + std::to_string(m),
                   ShardIndexOf(v));
    }
  }

  netsim::LinkConfig wifi;
  wifi.bandwidth = config_.network.mobile_edge;
  wifi.propagation = config_.mobile_edge_propagation;
  netsim::LinkConfig wan;
  wan.bandwidth = config_.network.edge_cloud;
  wan.propagation = config_.edge_cloud_propagation;
  if (config_.transport.loss_rate > 0) {
    // Per-link rng decorrelation happens inside Network::ConnectOneWay.
    wifi.loss_rate = config_.transport.loss_rate;
    wan.loss_rate = config_.transport.loss_rate;
  }
  // A directed link is created only on the shard that owns its *sender*:
  // the sending side runs the link model (serialization, loss, delivery
  // stamp); cross-shard frames are handed over already stamped. Link rng
  // seeds mix only the directed node pair, so the per-shard split seeds
  // identically to the single-network engine. Creation order matches the
  // old single-network Connect expansion exactly (same links_ insertion
  // order, hence identical ForEachLink iteration for chaos all_links).
  const auto connect = [this](netsim::NodeId from, netsim::NodeId to,
                              const netsim::LinkConfig& link) {
    shards_[node_shard_[from]]->net.ConnectOneWay(from, to, link);
  };
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    connect(edge_nodes_[v], cloud_node_, wan);
    connect(cloud_node_, edge_nodes_[v], wan);
    for (std::uint32_t m = 0; m < config_.mobiles_per_venue; ++m) {
      connect(mobile_nodes_[ClientIndex(v, m)], edge_nodes_[v], wifi);
      connect(edge_nodes_[v], mobile_nodes_[ClientIndex(v, m)], wifi);
    }
  }
  for (const TopologyLink& l : topology_.links()) {
    connect(edge_nodes_[l.a], edge_nodes_[l.b], l.link);
    connect(edge_nodes_[l.b], edge_nodes_[l.a], l.link);
  }
  if (config_.transport.datagram) {
    for (auto& sh : shards_) {
      sh->net.EnableDatagram(config_.transport.datagram_mtu);
    }
  }

  if (shards_.size() > 1) {
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      ShardState& sh = *shards_[s];
      for (std::uint32_t n = 0;
           n < static_cast<std::uint32_t>(node_shard_.size()); ++n) {
        if (node_shard_[n] != s) sh.net.MarkRemote(n);
      }
      sh.net.SetRemoteDispatch([this, s](netsim::NodeId from, netsim::NodeId to,
                                         SimTime deliver_at, Frame payload) {
        COIC_CHECK_MSG(runner_ != nullptr,
                       "cross-shard traffic outside RunOpenLoop");
        runner_->Send(s, node_shard_[to],
                      netsim::ShardMessage{from, to, deliver_at,
                                           std::move(payload)});
      });
    }
  }

  reachable_.resize(config_.venues);
  client_routes_.resize(config_.venues);
  summary_versions_.assign(config_.venues, 0);
  summary_frames_.resize(config_.venues);
  summary_mutations_.assign(config_.venues, 0);
  summaries_.resize(config_.venues);
  summary_cursors_.assign(config_.venues, 0);
  if (Hierarchical()) {
    std::uint32_t regions = config_.region.regions;
    if (regions == 0) {
      // floor(sqrt(venues)): minimizes per-round traffic, which is
      // O(venues/regions) intra-region fulls + O(regions) digests.
      while ((regions + 1) * (regions + 1) <= config_.venues) ++regions;
      if (regions == 0) regions = 1;
    }
    region_map_ = RegionMap(config_.venues, regions);
    digest_tables_.assign(config_.venues,
                          RegionDigestTable(region_map_.regions()));
    digest_built_versions_.assign(config_.venues, 0);
    digest_frames_.resize(config_.venues);
    digest_signatures_.assign(config_.venues, 0);
    digest_sent_version_.assign(
        config_.venues, std::vector<std::uint64_t>(config_.venues, 0));
    region_rounds_.assign(config_.venues, 0);
    own_head_view_.resize(config_.venues);
    for (std::uint32_t v = 0; v < config_.venues; ++v) {
      // Everyone starts believing the rank-0 member heads their region.
      own_head_view_[v] = region_map_.members(region_map_.region_of(v)).front();
    }
  }
  // UINT64_MAX = "never acked": the very first piggybacked ack always
  // goes out, even when the held version is 0 — that zero-ack is how a
  // peer learns its first gossip frame was lost.
  ack_sent_version_.assign(
      config_.venues,
      std::vector<std::uint64_t>(config_.venues, UINT64_MAX));
  summary_received_at_.assign(
      config_.venues, std::vector<SimTime>(config_.venues, SimTime::Epoch()));
  next_ack_resend_at_.assign(
      config_.venues, std::vector<SimTime>(config_.venues, SimTime::Epoch()));
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    reachable_[v] = topology_.ReachableWithin(v, config_.hop_limit);
    summary_tables_.emplace_back(config_.venues);
    PeerSelectConfig policy = config_.policy;
    policy.seed = config_.policy.seed ^ (0x9E37u + v);  // decorrelate edges
    policies_.push_back(MakePeerSelectPolicy(policy));
  }

  WireCloud();
  edges_.resize(config_.venues);
  clients_.resize(mobile_nodes_.size());
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    WireVenue(v);
    for (std::uint32_t m = 0; m < config_.mobiles_per_venue; ++m) {
      WireClient(v, m);
    }
  }

  // Samplers over counters whose storage already lives elsewhere: read at
  // Snapshot() time, zero cost on the hot paths that maintain them. The
  // frame-stat and cloud samplers are cluster-global (atomic counters /
  // shard-0 state), so they live on shard 0's registry only; per-network
  // stats register on their own shard and sum in MergedMetricsSnapshot.
  obs::MetricsRegistry& root = *shards_.front()->metrics;
  root.RegisterSampler("frame.copies", [] { return frame_stats().copies(); });
  root.RegisterSampler("frame.bytes_copied",
                       [] { return frame_stats().bytes_copied(); });
  root.RegisterSampler("cloud.tasks_executed",
                       [this] { return cloud_->tasks_executed(); });
  for (auto& sh : shards_) {
    netsim::Network* const net = &sh->net;
    obs::MetricsRegistry& m = *sh->metrics;
    m.RegisterSampler("net.datagram.messages_fragmented", [net] {
      return net->datagram_stats().messages_fragmented;
    });
    m.RegisterSampler("net.datagram.chunks_sent", [net] {
      return net->datagram_stats().chunks_sent;
    });
    m.RegisterSampler("net.datagram.messages_reassembled", [net] {
      return net->datagram_stats().messages_reassembled;
    });
    m.RegisterSampler("net.datagram.partials_discarded", [net] {
      return net->datagram_stats().partials_discarded;
    });
    m.RegisterSampler("net.links.frames_lost", [net] {
      std::uint64_t lost = 0;
      net->ForEachLink([&lost](const netsim::Link& l) {
        lost += l.stats().frames_dropped_loss;
      });
      return lost;
    });
    m.RegisterSampler("net.links.down_drops", [net] {
      std::uint64_t down = 0;
      net->ForEachLink([&down](const netsim::Link& l) {
        down += l.stats().frames_dropped_down;
      });
      return down;
    });
  }

  ArmChaos();
}

void FederationPipeline::ArmChaos() {
  if (config_.chaos.empty()) return;
  const auto shard_total = static_cast<std::uint32_t>(shards_.size());

  // Split the schedule. Every fault is armed *counted* on its home shard
  // — the one owning the faulted venue's state, which takes the metrics
  // bumps, trace marks and (for crashes) the cache wipe — and *silent*
  // on every other shard, so each replica of an affected link changes
  // state at the same instant. Single-shard runs get one counted engine
  // holding the whole schedule: exactly the old behavior.
  std::vector<netsim::FaultSchedule> counted(shard_total);
  std::vector<netsim::FaultSchedule> silent(shard_total);
  const auto place = [&](std::uint32_t home, const auto& fault, auto member) {
    for (std::uint32_t s = 0; s < shard_total; ++s) {
      ((s == home ? counted[s] : silent[s]).*member).push_back(fault);
    }
  };
  for (const auto& c : config_.chaos.crashes) {
    place(ShardIndexOf(c.venue), c, &netsim::FaultSchedule::crashes);
  }
  for (const auto& p : config_.chaos.partitions) {
    std::uint32_t home = 0;
    if (!p.island.empty()) {
      home = ShardIndexOf(*std::min_element(p.island.begin(), p.island.end()));
    }
    place(home, p, &netsim::FaultSchedule::partitions);
  }
  for (const auto& b : config_.chaos.brownouts) {
    place(ShardIndexOf(b.venue), b, &netsim::FaultSchedule::brownouts);
  }
  for (const auto& l : config_.chaos.loss_bursts) {
    place(0, l, &netsim::FaultSchedule::loss_bursts);
  }
  // A silent crash must not wipe the cache: the wipe happens exactly
  // once, on the shard that owns the edge.
  for (auto& sched : silent) {
    for (auto& c : sched.crashes) c.wipe_cache = false;
  }

  // netsim knows links, not venues: the binding resolves venue-scoped
  // fault groups to directed Links. Per-shard networks hold only the
  // directions their own nodes send on, so the pair visitor takes
  // whichever of the two exists locally.
  const auto make_binding = [this](std::uint32_t s) {
    netsim::Network* const net = &shards_[s]->net;
    const auto both_ways = [net](netsim::NodeId a, netsim::NodeId b,
                                 const netsim::ChaosBinding::LinkVisitor& fn) {
      if (net->Adjacent(a, b)) fn(net->LinkBetween(a, b));
      if (net->Adjacent(b, a)) fn(net->LinkBetween(b, a));
    };
    netsim::ChaosBinding binding;
    binding.venue_links =
        [this, both_ways](std::uint32_t venue,
                          const netsim::ChaosBinding::LinkVisitor& fn) {
          COIC_CHECK(venue < config_.venues);
          const netsim::NodeId self = edge_nodes_[venue];
          for (std::uint32_t m = 0; m < config_.mobiles_per_venue; ++m) {
            both_ways(mobile_nodes_[ClientIndex(venue, m)], self, fn);
          }
          both_ways(self, cloud_node_, fn);
          for (std::uint32_t peer = 0; peer < config_.venues; ++peer) {
            if (peer != venue && topology_.Adjacent(venue, peer)) {
              both_ways(self, edge_nodes_[peer], fn);
            }
          }
        };
    binding.cut_links =
        [this, both_ways](const std::vector<std::uint32_t>& island,
                          const netsim::ChaosBinding::LinkVisitor& fn) {
          std::vector<bool> inside(config_.venues, false);
          for (const std::uint32_t v : island) {
            COIC_CHECK(v < config_.venues);
            inside[v] = true;
          }
          for (std::uint32_t a = 0; a < config_.venues; ++a) {
            if (!inside[a]) continue;
            for (std::uint32_t b = 0; b < config_.venues; ++b) {
              if (inside[b] || !topology_.Adjacent(a, b)) continue;
              both_ways(edge_nodes_[a], edge_nodes_[b], fn);
            }
          }
        };
    binding.wan_links =
        [this, both_ways](std::uint32_t venue,
                          const netsim::ChaosBinding::LinkVisitor& fn) {
          COIC_CHECK(venue < config_.venues);
          both_ways(edge_nodes_[venue], cloud_node_, fn);
        };
    binding.all_links = [net](const netsim::ChaosBinding::LinkVisitor& fn) {
      net->ForEachMutableLink(fn);
    };
    binding.wipe_cache = [this](std::uint32_t venue) {
      COIC_CHECK(venue < config_.venues);
      edges_[venue]->mutable_cache().Clear();
    };
    return binding;
  };

  counted_chaos_.reserve(shard_total);
  for (std::uint32_t s = 0; s < shard_total; ++s) {
    ShardState& sh = *shards_[s];
    // One counted engine per shard even when its slice is empty, so
    // counted_chaos_[s] stays index-aligned with shards_.
    auto engine = std::make_unique<netsim::ChaosEngine>(
        sh.sched, make_binding(s), sh.metrics.get(), sh.tracer.get());
    engine->Apply(std::move(counted[s]));
    counted_chaos_.push_back(std::move(engine));
    if (!silent[s].empty()) {
      auto quiet = std::make_unique<netsim::ChaosEngine>(
          sh.sched, make_binding(s), /*metrics=*/nullptr, /*tracer=*/nullptr);
      quiet->Apply(std::move(silent[s]));
      silent_chaos_.push_back(std::move(quiet));
    }
  }
}

void FederationPipeline::WireCloud() {
  // The cloud lives on shard 0, as do the links it sends on.
  const core::DelayFn delay = [this](Duration d, std::function<void()> fn) {
    shards_.front()->sched.ScheduleAfter(d, std::move(fn));
  };

  CloudService::Config cloud_config;
  cloud_config.costs = config_.costs;
  cloud_config.recognition_classes = config_.recognition_classes;
  cloud_config.extractor = config_.extractor;
  // One shared cloud; replies route to whichever edge forwarded the
  // request (looked up by request id at send time).
  auto routes =
      std::make_shared<std::unordered_map<std::uint64_t, netsim::NodeId>>();
  // Under retries the cloud can process one request id twice (the edge
  // retransmitted; both copies arrived) and produce two replies for one
  // recorded route — the second is dropped here, and the edge's own
  // duplicate handling absorbs whichever one lands. With the reliable
  // transport a missing route still means a wiring bug, so keep the
  // CHECK there.
  const bool lossy = LossyTransport();
  cloud_ = std::make_unique<CloudService>(
      cloud_config,
      [this, routes, lossy](core::Peer /*to*/, Frame frame) {
        const std::uint64_t id = PeekRequestId(frame.span());
        const auto it = routes->find(id);
        if (it == routes->end()) {
          COIC_CHECK_MSG(lossy, "cloud reply with no route");
          return;
        }
        const netsim::NodeId target = it->second;
        routes->erase(it);
        shards_.front()->net.Send(cloud_node_, target, std::move(frame));
      },
      delay);
  shards_.front()->net.SetHandler(
      cloud_node_, [this, routes](netsim::NodeId from, Frame frame) {
        (*routes)[PeekRequestId(frame.span())] = from;
        cloud_->OnFrame(std::move(frame));
      });
}

void FederationPipeline::WireVenue(std::uint32_t venue) {
  // Everything this venue touches — scheduler, network, metrics, tracer
  // — belongs to its owning shard; the lambdas re-resolve through
  // `this` so they stay valid for the pipeline's whole lifetime.
  ShardState& shard = ShardOf(venue);
  const core::DelayFn delay = [this, venue](Duration d,
                                            std::function<void()> fn) {
    SchedOf(venue).ScheduleAfter(d, std::move(fn));
  };
  const core::NowFn now = [this, venue] { return SchedOf(venue).now(); };

  EdgeService::Config edge_config;
  edge_config.costs = config_.costs;
  edge_config.cache = config_.cache;
  edge_config.metrics = shard.metrics.get();
  edge_config.metrics_prefix = "edge." + std::to_string(venue) + ".";
  edge_config.tracer = shard.tracer.get();
  edge_config.cooperative = config_.cooperative && config_.venues > 1;
  edge_config.probe_budget = config_.probe_budget;
  edge_config.coalesce_requests = config_.coalesce_requests;
  edge_config.peer_hit_adopt_min_uses = config_.peer_hit_adopt_min_uses;
  edge_config.park_peer_probes =
      config_.park_peer_probes && config_.coalesce_requests;
  // Small control frames (probes, probe replies) recycle through the
  // shard arena instead of hitting the allocator per miss.
  edge_config.frame_arena = &shard.arena;
  if (config_.peer_aware_eviction && edge_config.cooperative) {
    // Peer-aware eviction: an entry some 1-hop neighbor also advertises
    // is recoverable at peer-link cost, so evict it ahead of
    // cluster-unique content. Bloom false positives only mis-order the
    // victim scan; they never evict more than capacity demands.
    edge_config.cache.replicated_hint = [this, venue](std::uint64_t key) {
      for (const std::uint32_t peer : reachable_[venue]) {
        if (topology_.HopDistance(venue, peer) != 1) continue;
        const CacheSummary* summary = summary_tables_[venue].For(peer);
        if (summary != nullptr && summary->bloom().MayContain(key)) {
          return true;
        }
      }
      return false;
    };
  }
  edge_config.cloud_retry = config_.transport.cloud_retry;
  edge_config.peer_probe_timeout = config_.transport.peer_probe_timeout;
  edge_config.max_pending = config_.transport.edge_max_pending;
  edge_config.breaker_failure_threshold =
      config_.transport.breaker_failure_threshold;
  edge_config.breaker_open_duration = config_.transport.breaker_open_duration;
  if (config_.transport.client_retry.enabled()) {
    // Client retransmits only help if the edge can replay a reply whose
    // first copy was lost instead of re-fetching.
    edge_config.resolved_memo_capacity = 256;
  }
  edge_config.peer_send = [this, venue](std::uint32_t peer, Frame frame) {
    // Gossip ack/nack rides on lookup traffic: before any peer-bound
    // probe or reply, tell that peer which version of its summary we
    // hold (deduplicated, so steady state adds no frames).
    MaybeSendSummaryAck(venue, peer, /*force=*/false);
    SendEdgeToEdge(venue, peer, std::move(frame));
  };
  if (Hierarchical()) {
    // Two-tier selection: member summaries intra-region, digests + the
    // believed head cross-region. Targets outside the hop limit are
    // dropped (SendEdgeToEdge cannot route them, and an unroutable probe
    // would hang its miss until the probe timeout).
    edge_config.peer_select =
        [this, venue](const proto::FeatureDescriptor& key) {
          std::vector<std::uint32_t> heads(region_map_.regions());
          for (std::uint32_t r = 0; r < region_map_.regions(); ++r) {
            heads[r] = HeadOf(venue, r);
          }
          auto targets = SelectHierarchical(
              key, venue, region_map_, summary_tables_[venue],
              digest_tables_[venue], heads, config_.policy.directed_fanout,
              config_.region.cross_fanout);
          std::erase_if(targets, [this, venue](std::uint32_t target) {
            return !std::binary_search(reachable_[venue].begin(),
                                       reachable_[venue].end(), target);
          });
          return targets;
        };
  } else {
    edge_config.peer_select =
        [this, venue](const proto::FeatureDescriptor& key) {
          return policies_[venue]->Select(key, reachable_[venue],
                                          summary_tables_[venue]);
        };
  }
  const netsim::NodeId self = edge_nodes_[venue];
  const bool lossy = LossyTransport();
  // Scatter-gather client replies: the per-request envelope head and the
  // shared cached payload travel as one wire frame without the edge ever
  // fusing them (wire bytes identical to the fused path).
  edge_config.gather_send = [this, venue, self, lossy](core::Peer to,
                                                       Frame head,
                                                       Frame tail) {
    COIC_CHECK_MSG(to == core::Peer::kClient,
                   "federation gather replies serve clients only");
    auto& routes = client_routes_[venue];
    const auto it = routes.find(PeekRequestId(head.span()));
    if (it == routes.end()) {
      COIC_CHECK_MSG(lossy, "edge reply with no client route");
      return;
    }
    const netsim::NodeId target = it->second;
    routes.erase(it);
    NetOf(venue).SendGather(self, target, std::move(head), std::move(tail));
  };
  edges_[venue] = std::make_unique<EdgeService>(
      edge_config,
      [this, venue, self, lossy](core::Peer to, Frame frame) {
        COIC_CHECK_MSG(to != core::Peer::kPeerEdge,
                       "federation edges route peers via peer_send");
        if (to == core::Peer::kCloud) {
          NetOf(venue).Send(self, cloud_node_, std::move(frame));
          return;
        }
        // Client replies: several mobiles share this edge, so route by
        // the request id recorded when the request came in. A missing
        // route under retries means a duplicate reply raced a lost
        // request — drop it; the client's own retry recovers.
        auto& routes = client_routes_[venue];
        const auto it = routes.find(PeekRequestId(frame.span()));
        if (it == routes.end()) {
          COIC_CHECK_MSG(lossy, "edge reply with no client route");
          return;
        }
        const netsim::NodeId target = it->second;
        routes.erase(it);
        NetOf(venue).Send(self, target, std::move(frame));
      },
      delay, now);

  shard.metrics->RegisterSampler(
      "edge." + std::to_string(venue) + ".pending_inflight",
      [this, venue] { return edges_[venue]->pending_inflight(); });
  shard.metrics->RegisterSampler(
      "edge." + std::to_string(venue) + ".peak_pending",
      [this, venue] { return edges_[venue]->peak_pending(); });

  shard.net.SetHandler(self, [this, venue](netsim::NodeId from, Frame frame) {
    if (from == cloud_node_) {
      edges_[venue]->OnCloudFrame(std::move(frame));
      return;
    }
    for (std::uint32_t m = 0; m < config_.mobiles_per_venue; ++m) {
      if (mobile_nodes_[ClientIndex(venue, m)] == from) {
        client_routes_[venue][PeekRequestId(frame.span())] = from;
        edges_[venue]->OnClientFrame(std::move(frame));
        return;
      }
    }
    for (std::uint32_t peer = 0; peer < config_.venues; ++peer) {
      if (edge_nodes_[peer] == from) {
        OnPeerEdgeFrame(venue, peer, std::move(frame));
        return;
      }
    }
    COIC_CHECK_MSG(false, "edge frame from unknown node");
  });
}

void FederationPipeline::WireClient(std::uint32_t venue, std::uint32_t mobile) {
  const core::DelayFn delay = [this, venue](Duration d,
                                            std::function<void()> fn) {
    SchedOf(venue).ScheduleAfter(d, std::move(fn));
  };
  const core::NowFn now = [this, venue] { return SchedOf(venue).now(); };
  const std::uint32_t index = ClientIndex(venue, mobile);
  const netsim::NodeId client_node = mobile_nodes_[index];
  const netsim::NodeId edge_node = edge_nodes_[venue];
  ShardState& shard = ShardOf(venue);

  CoicClient::Config client_config;
  client_config.costs = config_.costs;
  client_config.mode = proto::OffloadMode::kCoic;
  client_config.extractor = config_.extractor;
  client_config.user_id = index + 1;
  // Disjoint id spaces so concurrent clients' requests never collide at
  // the shared cloud or in the per-venue client routes.
  client_config.first_request_id = (std::uint64_t{index} << 40) | 1;
  client_config.retry = config_.transport.client_retry;
  client_config.metrics = shard.metrics.get();
  client_config.metrics_prefix = "client." + std::to_string(venue) + "." +
                                 std::to_string(mobile) + ".";
  client_config.tracer = shard.tracer.get();
  client_config.trace_track = venue;
  client_config.deadline = config_.transport.client_deadline;
  client_config.local_fallback = config_.transport.client_local_fallback;
  clients_[index] = std::make_unique<CoicClient>(
      client_config,
      [this, venue, client_node, edge_node](Frame frame) {
        NetOf(venue).Send(client_node, edge_node, std::move(frame));
      },
      delay, now);
  shard.net.SetHandler(client_node,
                       [this, index](netsim::NodeId, Frame frame) {
                         clients_[index]->OnEdgeFrame(std::move(frame));
                       });
}

// ---------------------------------------------------------------------------
// Edge-to-edge routing and federation control frames
// ---------------------------------------------------------------------------

void FederationPipeline::SendEdgeToEdge(std::uint32_t from, std::uint32_t to,
                                        Frame frame) {
  COIC_CHECK(from != to && from < config_.venues && to < config_.venues);
  if (topology_.Adjacent(from, to)) {
    NetOf(from).Send(edge_nodes_[from], edge_nodes_[to], std::move(frame));
    return;
  }
  const std::uint32_t dist = topology_.HopDistance(from, to);
  if (dist == Topology::kUnreachable) {
    COIC_LOG(kWarn) << "federation: dropping frame for unreachable venue "
                    << to;
    return;
  }
  NetOf(from).Send(edge_nodes_[from],
                   edge_nodes_[topology_.NextHop(from, to)],
                   proto::EncodeRelayFrame(
                       from, to, static_cast<std::uint8_t>(dist - 1),
                       frame.span()));  // forwards after hop 1
}

void FederationPipeline::OnPeerEdgeFrame(std::uint32_t venue,
                                         std::uint32_t src_index,
                                         Frame frame) {
  switch (PeekMessageType(frame.span())) {
    case MessageType::kFederatedRelay:
      HandleRelayFrame(venue, std::move(frame));
      return;
    case MessageType::kSummaryUpdate:
    case MessageType::kSummaryDeltaUpdate:
      HandleSummaryFrame(venue, frame);
      return;
    case MessageType::kSummaryAck:
      HandleSummaryAck(venue, frame);
      return;
    case MessageType::kRegionDigestUpdate:
      HandleRegionDigestFrame(venue, frame);
      return;
    default:
      // Head-side probe resolution intercepts *directly arrived*
      // cross-region lookups only. Relay-delivered probes (a head's
      // forward among them) enter through HandleRelayFrame's terminal
      // hop, never here — so a probe is forwarded at most once and can
      // never cycle between divergent head views.
      if (Hierarchical() &&
          PeekMessageType(frame.span()) == MessageType::kPeerLookupRequest &&
          !region_map_.SameRegion(src_index, venue) &&
          MaybeForwardProbeAsHead(venue, src_index, frame)) {
        return;
      }
      edges_[venue]->OnPeerFrame(src_index, std::move(frame));
  }
}

void FederationPipeline::HandleRelayFrame(std::uint32_t venue, Frame frame) {
  // Hot path: relay forwarding never decodes the (possibly large) inner
  // envelope. Peek the routing fields in place; an intermediate hop
  // patches the TTL byte of the uniquely-held buffer and forwards it,
  // the terminal hop strips the wrapper by slicing (both zero-copy).
  // Byte-for-byte equivalent to the old decode → mutate → re-encode
  // (covered by a proto test).
  const auto view = proto::PeekRelayFrame(frame.span());
  if (!view.ok() || view.value().dest_edge >= config_.venues ||
      view.value().src_edge >= config_.venues ||
      view.value().inner_size < proto::kEnvelopeHeaderSize) {
    COIC_LOG(kWarn) << "federation: bad relay frame";
    return;
  }
  const proto::RelayFrameView relay = view.value();
  obs::RequestTracer* const tracer = TracerOf(venue);
  if (relay.dest_edge == venue) {
    // Terminal hop: unwrap and dispatch as if it arrived directly from
    // the logical source.
    Frame inner = proto::UnwrapRelay(frame, relay);
    const MessageType inner_type = PeekMessageType(inner.span());
    if (tracer && (inner_type == MessageType::kPeerLookupRequest ||
                   inner_type == MessageType::kPeerLookupReply)) {
      // Request-scoped only: summary/ack relays reuse the id field for
      // versions, which would collide with live request timelines.
      tracer->Annotate(PeekRequestId(inner.span()), "relay-delivered",
                       SchedOf(venue).now());
    }
    if (inner_type == MessageType::kSummaryUpdate ||
        inner_type == MessageType::kSummaryDeltaUpdate) {
      HandleSummaryFrame(venue, inner);
    } else if (inner_type == MessageType::kSummaryAck) {
      HandleSummaryAck(venue, inner);
    } else if (inner_type == MessageType::kRegionDigestUpdate) {
      HandleRegionDigestFrame(venue, inner);
    } else {
      edges_[venue]->OnPeerFrame(relay.src_edge, std::move(inner));
    }
    return;
  }
  if (relay.ttl == 0) {
    COIC_LOG(kWarn) << "federation: relay TTL expired at venue " << venue;
    return;
  }
  if (tracer) {
    // Peek the inner envelope through a temporary slice, released before
    // DecrementRelayTtl needs the buffer uniquely held.
    const Frame inner = proto::UnwrapRelay(frame, relay);
    const MessageType inner_type = PeekMessageType(inner.span());
    if (inner_type == MessageType::kPeerLookupRequest ||
        inner_type == MessageType::kPeerLookupReply) {
      tracer->Annotate(PeekRequestId(inner.span()), "relay-hop",
                       SchedOf(venue).now());
    }
  }
  proto::DecrementRelayTtl(frame);
  ++Gc(venue).relay_forwards;
  NetOf(venue).Send(edge_nodes_[venue],
                    edge_nodes_[topology_.NextHop(venue, relay.dest_edge)],
                    std::move(frame));
}

void FederationPipeline::HandleSummaryFrame(std::uint32_t venue,
                                            const Frame& frame) {
  // Stale-version fast drop: a duplicate or outdated update — the
  // common case once summaries are only rebuilt on cache change — is
  // discarded without decoding the bloom bits / key list and centroid
  // vectors. Mirrors SummaryTable::Update's `<=` staleness rule; works
  // for full and delta frames alike (shared leading layout).
  if (const auto header = proto::PeekSummaryFrame(frame.span());
      header.ok() && header.value().edge_id < config_.venues) {
    // Any summary frame — fresh, stale or unusable — proves the sender
    // is alive; the age-out sweep keys off this stamp.
    summary_received_at_[venue][header.value().edge_id] = SchedOf(venue).now();
    const CacheSummary* current =
        summary_tables_[venue].For(header.value().edge_id);
    if (current != nullptr && header.value().version <= current->version()) {
      return;
    }
  }
  if (PeekMessageType(frame.span()) == MessageType::kSummaryDeltaUpdate) {
    // Base-version fast drop: a delta only applies on top of exactly its
    // base. A mismatch (missed frame on a lossy link) is not an error —
    // the table keeps its current view, which is merely stale, until the
    // sender's next full resend resynchronizes.
    const auto header = proto::PeekSummaryDeltaFrame(frame.span());
    if (!header.ok() || header.value().edge_id >= config_.venues) {
      COIC_LOG(kWarn) << "federation: bad summary-delta frame";
      return;
    }
    const CacheSummary* current =
        summary_tables_[venue].For(header.value().edge_id);
    if (current == nullptr ||
        current->version() != header.value().base_version) {
      COIC_LOG(kDebug) << "federation: delta base mismatch at venue " << venue
                       << " for edge " << header.value().edge_id;
      // Nack: tell the sender which version we actually hold (0 when
      // none) so it resends the full summary instead of stranding us on
      // a base we lost. Forced past the dedup — the sender believes we
      // are current, so only an explicit ack corrects it.
      if (header.value().edge_id != venue) {
        MaybeSendSummaryAck(venue, header.value().edge_id, /*force=*/true);
      }
      return;
    }
    auto env = proto::DecodeEnvelopeView(frame.span());
    if (!env.ok()) {
      COIC_LOG(kWarn) << "federation: undecodable summary-delta frame";
      return;
    }
    auto wire = proto::DecodePayloadAs<proto::SummaryDeltaUpdate>(
        env.value(), MessageType::kSummaryDeltaUpdate);
    if (!wire.ok()) {
      COIC_LOG(kWarn) << "federation: bad summary-delta payload";
      return;
    }
    if (const Status applied = summary_tables_[venue].ApplyDelta(wire.value());
        !applied.ok()) {
      COIC_LOG(kWarn) << "federation: unusable summary delta: "
                      << applied.ToString();
    }
    return;
  }
  auto env = proto::DecodeEnvelopeView(frame.span());
  if (!env.ok()) {
    COIC_LOG(kWarn) << "federation: undecodable summary frame";
    return;
  }
  auto wire = proto::DecodePayloadAs<proto::SummaryUpdate>(
      env.value(), MessageType::kSummaryUpdate);
  if (!wire.ok() || wire.value().edge_id >= config_.venues) {
    COIC_LOG(kWarn) << "federation: bad summary frame";
    return;
  }
  auto summary = CacheSummary::FromWire(wire.value());
  if (!summary.ok()) {
    COIC_LOG(kWarn) << "federation: unusable summary: "
                    << summary.status().ToString();
    return;
  }
  summary_tables_[venue].Update(std::move(summary).value());
}

void FederationPipeline::MaybeSendSummaryAck(std::uint32_t venue,
                                             std::uint32_t peer, bool force) {
  if (!config_.transport.summary_ack || peer == venue ||
      peer >= config_.venues) {
    return;
  }
  // Hierarchical mode gossips full summaries intra-region only; an ack
  // to a cross-region peer would trigger exactly the cross-region
  // full-summary resend the two-tier topology exists to avoid.
  if (Hierarchical() && !region_map_.SameRegion(venue, peer)) return;
  const CacheSummary* held = summary_tables_[venue].For(peer);
  const std::uint64_t version = held != nullptr ? held->version() : 0;
  if (!force && ack_sent_version_[venue][peer] == version) return;
  ack_sent_version_[venue][peer] = version;
  ++Gc(venue).summary_acks_sent;
  proto::SummaryAck ack;
  ack.acker_edge = venue;
  ack.subject_edge = peer;
  ack.version = version;
  FrameArena& arena = ArenaOf(venue);
  SendEdgeToEdge(venue, peer,
                 arena.Seal(proto::EncodeMessageInto(
                     arena.Acquire(proto::kEnvelopeHeaderSize +
                                   static_cast<std::size_t>(ack.WireSize())),
                     MessageType::kSummaryAck, version, ack)));
}

void FederationPipeline::HandleSummaryAck(std::uint32_t venue,
                                          const Frame& frame) {
  auto env = proto::DecodeEnvelopeView(frame.span());
  if (!env.ok()) {
    COIC_LOG(kWarn) << "federation: undecodable summary ack";
    return;
  }
  auto ack = proto::DecodePayloadAs<proto::SummaryAck>(
      env.value(), MessageType::kSummaryAck);
  if (!ack.ok() || ack.value().subject_edge != venue ||
      ack.value().acker_edge >= config_.venues) {
    COIC_LOG(kWarn) << "federation: bad summary ack at venue " << venue;
    return;
  }
  const std::uint32_t acker = ack.value().acker_edge;
  // Mirror of the send-side gate: never let a cross-region ack trigger a
  // cross-region full-summary resend in hierarchical mode.
  if (Hierarchical() && !region_map_.SameRegion(venue, acker)) return;
  auto& sent = summary_tables_[venue].sent_to(acker);
  if (sent.version == 0 || ack.value().version >= sent.version) {
    // Nothing ever sent, or the acker is current (>= covers acks that
    // raced a newer send) — no repair needed.
    return;
  }
  // The acker holds an older version than what we already sent: a gossip
  // frame was lost (or the peer aged our summary out). Resend the full
  // summary, at most once per gossip period per peer so an ack burst
  // cannot amplify into a resend storm.
  if (SchedOf(venue).now() < next_ack_resend_at_[venue][acker]) return;
  next_ack_resend_at_[venue][acker] =
      SchedOf(venue).now() + (GossipEnabled() ? config_.gossip_period
                                              : Duration::Millis(250));
  RefreshSummary(venue);
  const Frame& full = summary_frames_[venue];
  GossipCounters& gc = Gc(venue);
  ++gc.summary_updates_sent;
  ++gc.summary_ack_resends;
  gc.summary_bytes_full += full.size();
  sent.version = summary_versions_[venue];
  sent.journal_cursor = summary_cursors_[venue];
  sent.rounds_since_full = 0;
  SendEdgeToEdge(venue, acker, full);
}

void FederationPipeline::AgeOutSummaries(std::uint32_t venue) {
  if (config_.transport.summary_max_age == Duration::Infinite()) return;
  const SimTime now = SchedOf(venue).now();
  for (const std::uint32_t peer : reachable_[venue]) {
    if (summary_tables_[venue].For(peer) == nullptr) continue;
    if (now - summary_received_at_[venue][peer] >
        config_.transport.summary_max_age) {
      // The peer has gone silent (crashed or partitioned): stop steering
      // probes at it. If it is merely slow, its next frame after our
      // erase is a full-version install or a delta whose base we no
      // longer hold — the nack/full-resend path rebuilds the view.
      summary_tables_[venue].Erase(peer);
      // Force the next piggybacked ack to announce "holding nothing".
      ack_sent_version_[venue][peer] = UINT64_MAX;
      ++Gc(venue).summaries_aged_out;
    }
  }
}

bool FederationPipeline::GossipEnabled() const noexcept {
  return config_.cooperative && config_.venues >= 2 &&
         config_.gossip_period != Duration::Infinite();
}

void FederationPipeline::RefreshSummary(std::uint32_t venue) {
  // Rebuild + re-encode only when the cache content changed since the
  // last round (IcCache's monotonic mutation counter as the signal);
  // otherwise the memoized frame under the same version stands. Wire
  // sizes are unchanged either way (version is fixed-width), so link
  // timing — and with it every closed-loop latency — is identical to
  // rebuilding each round.
  const std::uint64_t mutations = edges_[venue]->cache().mutation_count();
  if (!summary_frames_[venue].empty() &&
      summary_mutations_[venue] == mutations) {
    return;
  }
  CacheSummary summary = CacheSummary::Build(
      venue, ++summary_versions_[venue], edges_[venue]->cache(),
      config_.bloom);
  summary_frames_[venue] = Frame(proto::EncodeMessage(
      MessageType::kSummaryUpdate, summary.version(), summary.ToWire()));
  summary_mutations_[venue] = mutations;
  // Where the next delta slice starts for a peer based on this version.
  summary_cursors_[venue] = edges_[venue]->cache().journal_cursor();
  // Delta frames read the summary object back (centroids + absolute key
  // count); hierarchical heads union it into region digests and score
  // probes against it. Full-gossip flat pipelines keep only the frame.
  if (config_.delta_gossip || Hierarchical()) {
    summaries_[venue] = std::move(summary);
  }
}

void FederationPipeline::GossipEdge(std::uint32_t venue) {
  AgeOutSummaries(venue);
  if (Hierarchical()) {
    GossipEdgeHierarchical(venue);
    return;
  }
  if (config_.delta_gossip) {
    GossipEdgeDelta(venue);
    return;
  }
  RefreshSummary(venue);
  const Frame& frame = summary_frames_[venue];
  GossipCounters& gc = Gc(venue);
  for (const std::uint32_t peer : reachable_[venue]) {
    ++gc.summary_updates_sent;
    gc.summary_bytes_full += frame.size();
    // One buffer for the whole broadcast: each peer gets a refcount on
    // the memoized frame, never a payload copy.
    SendEdgeToEdge(venue, peer, frame);
  }
}

void FederationPipeline::GossipEdgeDelta(std::uint32_t venue) {
  RefreshSummary(venue);
  const Frame& full_frame = summary_frames_[venue];
  const std::uint64_t version = summary_versions_[venue];
  const cache::IcCache& cache = edges_[venue]->cache();
  GossipCounters& gc = Gc(venue);
  // In steady state every peer shares the same base version (they all
  // applied the previous send), so the delta frame is built once per
  // distinct base and copied per peer — mirroring the memoized full
  // frame. An empty memo slot records that no viable delta exists from
  // that base (journal gap, erasure in the interval, or not smaller
  // than the full frame). The memo is keyed by base version alone:
  // sent.journal_cursor is snapshotted together with sent.version, so
  // equal versions imply equal cursors.
  std::unordered_map<std::uint64_t, Frame> delta_memo;
  for (const std::uint32_t peer : reachable_[venue]) {
    auto& sent = summary_tables_[venue].sent_to(peer);
    const bool refresh_due =
        config_.delta_full_refresh_rounds != 0 &&
        sent.rounds_since_full + 1 >= config_.delta_full_refresh_rounds;
    if (sent.version == version && !refresh_due) {
      // Peer is (believed) current: say nothing — but keep counting
      // rounds, so a due refresh still reaches a peer that a lost frame
      // left stale while the cache quiesced.
      ++sent.rounds_since_full;
      continue;
    }
    // A delta applies only when the peer holds a known base, the journal
    // still covers the interval, and nothing was erased in it (Bloom
    // bits compose under insertion only); it is sent only when actually
    // smaller than re-shipping the full bit array.
    const Frame* delta_frame = nullptr;
    if (sent.version != 0 && sent.version != version && !refresh_due &&
        cache.config().journal_capacity != 0) {
      const auto [memo, first_look] = delta_memo.try_emplace(sent.version);
      if (first_look) {
        std::vector<std::uint64_t> inserted;
        bool erased = false;
        const bool covered = cache.ForEachJournaled(
            sent.journal_cursor, [&](const cache::CacheJournalEntry& entry) {
              if (entry.erased) {
                erased = true;
              } else {
                inserted.push_back(entry.index_key);
              }
            });
        if (covered && !erased) {
          const proto::SummaryDeltaUpdate delta =
              summaries_[venue].ToWireDelta(sent.version, std::move(inserted));
          if (proto::kEnvelopeHeaderSize + delta.WireSize() <
              full_frame.size()) {
            memo->second = Frame(proto::EncodeMessage(
                MessageType::kSummaryDeltaUpdate, version, delta));
          }
        }
      }
      if (!memo->second.empty()) delta_frame = &memo->second;
    }
    if (delta_frame != nullptr) {
      ++gc.summary_deltas_sent;
      gc.summary_bytes_delta += delta_frame->size();
      sent.version = version;
      sent.journal_cursor = summary_cursors_[venue];
      ++sent.rounds_since_full;
      SendEdgeToEdge(venue, peer, *delta_frame);
    } else {
      ++gc.summary_updates_sent;
      gc.summary_bytes_full += full_frame.size();
      sent.version = version;
      sent.journal_cursor = summary_cursors_[venue];
      sent.rounds_since_full = 0;
      SendEdgeToEdge(venue, peer, full_frame);
    }
  }
}

// ---------------------------------------------------------------------------
// Two-tier federation (RegionConfig::hierarchical)
// ---------------------------------------------------------------------------

std::uint32_t FederationPipeline::HeadOf(std::uint32_t venue,
                                         std::uint32_t region) const {
  if (!Hierarchical()) return venue;
  const auto members = region_map_.members(region);
  if (region_map_.region_of(venue) == region) {
    // Own region: the lowest-ranked member believed alive. Members are
    // ascending by id, which is ascending succession rank; "alive" means
    // self, or a member whose summary is currently held (the max-age
    // sweep erases crashed peers' summaries, which is what demotes a
    // dead head and promotes the next rank).
    for (const std::uint32_t member : members) {
      if (member == venue || summary_tables_[venue].For(member) != nullptr) {
        return member;
      }
    }
    return venue;  // unreachable: venue is always its own live member
  }
  // Foreign region: whoever signed the accepted digest; before any
  // digest arrives, the static rank-0 default.
  if (const RegionDigest* digest = digest_tables_[venue].For(region)) {
    return digest->head_edge();
  }
  return members.front();
}

void FederationPipeline::GossipEdgeHierarchical(std::uint32_t venue) {
  const std::uint32_t own_region = region_map_.region_of(venue);
  const std::uint32_t head_now = HeadOf(venue, own_region);
  if (head_now != own_head_view_[venue]) {
    // Failover accounting: counted exactly once per succession, by the
    // member that promotes *itself* (every member notices the change,
    // but only the new head's self-promotion is the failover event).
    if (head_now == venue) ++Rc(venue).failovers;
    own_head_view_[venue] = head_now;
  }

  // Tier 1: full per-peer summaries stay inside the region, and only
  // move when the version does — members of one region see each other
  // exactly as flat gossip peers would, minus redundant resends.
  RefreshSummary(venue);
  const Frame& full = summary_frames_[venue];
  const std::uint64_t version = summary_versions_[venue];
  GossipCounters& gc = Gc(venue);
  for (const std::uint32_t peer : reachable_[venue]) {
    if (!region_map_.SameRegion(venue, peer)) continue;
    auto& sent = summary_tables_[venue].sent_to(peer);
    if (sent.version == version) continue;
    sent.version = version;
    sent.journal_cursor = summary_cursors_[venue];
    sent.rounds_since_full = 0;
    ++gc.summary_updates_sent;
    gc.summary_bytes_full += full.size();
    SendEdgeToEdge(venue, peer, full);
  }

  // Tier 2: the head aggregates the region every digest_period_rounds-th
  // round and fans the digest to *every* reachable venue — foreign
  // venues steer probes by it; own members track its version so a
  // promoted successor resumes the version chain instead of restarting
  // below what the cluster already accepted.
  const std::uint32_t period =
      std::max<std::uint32_t>(1, config_.region.digest_period_rounds);
  const bool digest_due = region_rounds_[venue]++ % period == 0;
  if (!digest_due || head_now != venue) return;

  // Rebuild only when some member's summary version moved (own version
  // included): the signature is order-sensitive over (edge, version),
  // and members enter ascending so it is deterministic.
  std::uint64_t signature = 0x9E3779B97F4A7C15ull;
  const auto mix = [&signature](std::uint64_t x) {
    signature ^= x + 0x9E3779B97F4A7C15ull + (signature << 6) +
                 (signature >> 2);
  };
  std::vector<const CacheSummary*> member_summaries;
  for (const std::uint32_t member : region_map_.members(own_region)) {
    const CacheSummary* summary = member == venue
                                      ? &summaries_[venue]
                                      : summary_tables_[venue].For(member);
    if (summary == nullptr) continue;
    mix(member);
    mix(summary->version());
    member_summaries.push_back(summary);
  }
  if (digest_signatures_[venue] != signature || digest_frames_[venue].empty()) {
    // Version continuity across successions: a promoted head has seen
    // the old head's digests (heads broadcast to their own members too),
    // so resuming past the accepted own-region version makes receivers
    // accept the succession by plain comparison.
    std::uint64_t base = digest_built_versions_[venue];
    if (const RegionDigest* held = digest_tables_[venue].For(own_region)) {
      base = std::max(base, held->version());
    }
    const std::uint64_t next_version = base + 1;
    RegionDigest digest =
        RegionDigest::Build(own_region, venue, next_version, member_summaries,
                            config_.bloom);
    const proto::RegionDigestUpdate wire = digest.ToWire();
    FrameArena& arena = ArenaOf(venue);
    digest_frames_[venue] = arena.Seal(proto::EncodeMessageInto(
        arena.Acquire(proto::kEnvelopeHeaderSize +
                      static_cast<std::size_t>(wire.WireSize())),
        MessageType::kRegionDigestUpdate, next_version, wire));
    digest_built_versions_[venue] = next_version;
    digest_signatures_[venue] = signature;
    digest_tables_[venue].Update(std::move(digest), region_map_.rank_of(venue));
  }

  const std::uint64_t built = digest_built_versions_[venue];
  RegionCounters& rc = Rc(venue);
  for (const std::uint32_t peer : reachable_[venue]) {
    if (digest_sent_version_[venue][peer] >= built) continue;
    digest_sent_version_[venue][peer] = built;
    ++rc.digests_sent;
    rc.digest_bytes += digest_frames_[venue].size();
    SendEdgeToEdge(venue, peer, digest_frames_[venue]);
  }
}

void FederationPipeline::HandleRegionDigestFrame(std::uint32_t venue,
                                                 const Frame& frame) {
  if (!Hierarchical()) return;
  RegionCounters& rc = Rc(venue);
  // Stale fast-drop before the Bloom bits / centroids decode, mirroring
  // the summary path. Only same-head duplicates drop here: a different
  // claimed head must go through the full succession rule.
  if (const auto header = proto::PeekRegionDigestFrame(frame.span());
      header.ok()) {
    if (const RegionDigest* held =
            digest_tables_[venue].For(header.value().region_id);
        held != nullptr && held->head_edge() == header.value().head_edge &&
        header.value().version <= held->version()) {
      ++rc.digest_stale_drops;
      return;
    }
  }
  auto env = proto::DecodeEnvelopeView(frame.span());
  if (!env.ok()) {
    COIC_LOG(kWarn) << "federation: undecodable region digest";
    return;
  }
  auto wire = proto::DecodePayloadAs<proto::RegionDigestUpdate>(
      env.value(), MessageType::kRegionDigestUpdate);
  if (!wire.ok() || wire.value().region_id >= region_map_.regions() ||
      wire.value().head_edge >= config_.venues ||
      region_map_.region_of(wire.value().head_edge) !=
          wire.value().region_id) {
    COIC_LOG(kWarn) << "federation: bad region digest at venue " << venue;
    return;
  }
  auto digest = RegionDigest::FromWire(wire.value());
  if (!digest.ok()) {
    COIC_LOG(kWarn) << "federation: unusable region digest: "
                    << digest.status().ToString();
    return;
  }
  if (digest_tables_[venue].Update(
          std::move(digest).value(),
          region_map_.rank_of(wire.value().head_edge))) {
    ++rc.digests_applied;
  } else {
    ++rc.digest_stale_drops;
  }
}

bool FederationPipeline::MaybeForwardProbeAsHead(std::uint32_t venue,
                                                 std::uint32_t src,
                                                 const Frame& frame) {
  const std::uint32_t own_region = region_map_.region_of(venue);
  if (HeadOf(venue, own_region) != venue) return false;
  auto env = proto::DecodeEnvelopeView(frame.span());
  if (!env.ok()) return false;
  const auto wire = proto::DecodePayloadAs<proto::PeerLookupRequest>(
      env.value(), MessageType::kPeerLookupRequest);
  if (!wire.ok()) return false;
  const proto::FeatureDescriptor& key = wire.value().descriptor;
  RegionCounters& rc = Rc(venue);
  // Region -> member: hand the probe to the best-scoring member when one
  // strictly beats the head's own summary (ties serve locally — it is
  // the cheaper hop, and the head's view of itself is freshest).
  const double own_score = summaries_[venue].MatchScore(key);
  double best_score = own_score;
  std::uint32_t best_member = venue;
  for (const std::uint32_t member : region_map_.members(own_region)) {
    if (member == venue) continue;
    const CacheSummary* summary = summary_tables_[venue].For(member);
    if (summary == nullptr) continue;
    const double score = summary->MatchScore(key);
    if (score > best_score ||
        (score == best_score && best_member != venue && member < best_member)) {
      best_score = score;
      best_member = member;
    }
  }
  if (best_member == venue) {
    ++rc.head_self_serves;
    return false;
  }
  const std::uint32_t dist = topology_.HopDistance(venue, best_member);
  if (dist == Topology::kUnreachable) {
    ++rc.head_self_serves;
    return false;
  }
  // Relay-wrap with the ORIGINAL requester as source — even for an
  // adjacent member — so the member sees the probe as src's and its
  // reply routes straight back to src. HandlePeerLookupReply matches by
  // request id alone, so the reply from a peer src never probed still
  // resolves src's accounting; and relay-delivered probes are never
  // re-intercepted, so this is the probe's only forward.
  ++rc.head_forwards;
  NetOf(venue).Send(edge_nodes_[venue],
                    edge_nodes_[topology_.NextHop(venue, best_member)],
                    proto::EncodeRelayFrame(src, best_member,
                                            static_cast<std::uint8_t>(dist - 1),
                                            frame.span()));
  return true;
}

void FederationPipeline::MaybeGossip() {
  // Closed-loop only (single shard): shard 0's clock is the clock.
  if (!GossipEnabled()) return;
  if (shards_.front()->sched.now() < next_gossip_) return;
  next_gossip_ = shards_.front()->sched.now() + config_.gossip_period;
  for (std::uint32_t v = 0; v < config_.venues; ++v) GossipEdge(v);
}

void FederationPipeline::ArmGossipTimer() {
  // One batched timer for the whole (single-shard) cluster, gossiping
  // venues in ascending order each period. N per-venue timers armed in
  // venue order fired in exactly that order at the same instants, so the
  // batch is bit-identical to them at 1/N the scheduler events.
  ShardState& sh = *shards_.front();
  gossip_timers_[0] = sh.sched.ScheduleAfter(config_.gossip_period, [this] {
    ShardState& sh = *shards_.front();
    // Stranded-workload guard: a dropped frame (lossy link, overflowing
    // queue) parks its client forever, and without it the timer would
    // re-arm and spin the scheduler for eternity. Two triggers, either
    // sufficient: (a) precise — nothing else is pending inside this
    // firing, so nothing can complete; (b) backstop for configs where
    // in-flight summary frames always overlap the next round
    // (gossip_period below peer-link latency) — no completion across a
    // deep stretch of rounds. Stopping lets RunOpenLoop drain and
    // report the stall via its completion CHECK instead of hanging.
    // (Sharded runs use ArmGossipTimerSharded; the runner detects
    // stalls itself.)
    constexpr std::uint64_t kStallRoundsLimit = 100'000;
    if (sh.completed == stall_completed_mark_) {
      ++stall_rounds_;
    } else {
      stall_completed_mark_ = sh.completed;
      stall_rounds_ = 0;
    }
    if (sh.completed < expected_ &&
        (sh.sched.pending() == 0 || stall_rounds_ >= kStallRoundsLimit)) {
      COIC_LOG(kWarn) << "federation: open-loop workload stalled with "
                      << (expected_ - sh.completed)
                      << " operations incomplete; stopping gossip";
      StopGossipTimers();
      return;
    }
    for (std::uint32_t v = 0; v < config_.venues; ++v) {
      ++open_loop_.gossip_rounds;  // still counts per-edge firings
      GossipEdge(v);
    }
    ArmGossipTimer();
  });
}

void FederationPipeline::StopGossipTimers() {
  for (const netsim::EventId id : gossip_timers_) {
    if (id != 0) shards_.front()->sched.Cancel(id);
  }
  gossip_timers_.clear();
}

void FederationPipeline::ArmGossipTimerSharded(std::uint32_t shard) {
  // Free-running batched timer per shard, gossiping the shard's venues
  // (ascending — the order their per-venue timers fired in) on the
  // shard's own clock. No stall bookkeeping here: the ShardRunner's
  // decide barrier detects cluster-wide stalls (idle-floor match or
  // no-progress backstop) and quiesces through StopGossipTimersShard.
  ShardState& sh = *shards_[shard];
  gossip_timers_[shard] =
      sh.sched.ScheduleAfter(config_.gossip_period, [this, shard] {
        ShardState& sh = *shards_[shard];
        for (const std::uint32_t v : sh.venues) {
          ++sh.gossip_rounds;
          GossipEdge(v);
        }
        ArmGossipTimerSharded(shard);
      });
}

void FederationPipeline::StopGossipTimersShard(std::uint32_t shard) {
  if (gossip_timers_.empty()) return;  // never armed (expected_ == 0)
  if (gossip_timers_[shard] != 0) {
    shards_[shard]->sched.Cancel(gossip_timers_[shard]);
    gossip_timers_[shard] = 0;
  }
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

core::EdgeService& FederationPipeline::edge(std::uint32_t venue) {
  COIC_CHECK(venue < config_.venues);
  return *edges_[venue];
}

std::uint64_t FederationPipeline::total_peer_probes() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->peer_probes_sent();
  return total;
}

std::uint64_t FederationPipeline::total_peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->peer_hits();
  return total;
}

std::uint64_t FederationPipeline::total_coalesced_requests() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->coalesced_requests();
  return total;
}

std::uint64_t FederationPipeline::total_cloud_forwards() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->forwards();
  return total;
}

std::uint64_t FederationPipeline::total_client_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->retransmissions();
  return total;
}

std::uint64_t FederationPipeline::total_client_timeouts() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->timeouts();
  return total;
}

std::uint64_t FederationPipeline::total_cloud_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->cloud_retransmissions();
  return total;
}

std::uint64_t FederationPipeline::total_cloud_timeouts() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->cloud_timeouts();
  return total;
}

std::uint64_t FederationPipeline::total_leader_promotions() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->leader_promotions();
  return total;
}

std::uint64_t FederationPipeline::total_overload_sheds() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) {
    total += e->overload_sheds() + e->deadline_sheds() + e->breaker_sheds();
  }
  return total;
}

std::uint64_t FederationPipeline::total_overload_rejects() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->overload_rejects();
  return total;
}

std::uint64_t FederationPipeline::total_grace_hits() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) total += e->grace_hits();
  return total;
}

// Gossip counters live in per-shard registry cells; the cluster-wide
// view is their sum (one non-zero cell per venue's home shard).
std::uint64_t FederationPipeline::summary_updates_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->gossip.summary_updates_sent.value();
  }
  return total;
}

std::uint64_t FederationPipeline::summary_deltas_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->gossip.summary_deltas_sent.value();
  }
  return total;
}

std::uint64_t FederationPipeline::summary_bytes_full() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->gossip.summary_bytes_full.value();
  return total;
}

std::uint64_t FederationPipeline::summary_bytes_delta() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->gossip.summary_bytes_delta.value();
  }
  return total;
}

std::uint64_t FederationPipeline::relay_forwards() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->gossip.relay_forwards.value();
  return total;
}

std::uint64_t FederationPipeline::summary_acks_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->gossip.summary_acks_sent.value();
  return total;
}

std::uint64_t FederationPipeline::summary_ack_resends() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->gossip.summary_ack_resends.value();
  }
  return total;
}

std::uint64_t FederationPipeline::summaries_aged_out() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->gossip.summaries_aged_out.value();
  }
  return total;
}

std::uint64_t FederationPipeline::region_digests_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->region.digests_sent.value();
  return total;
}

std::uint64_t FederationPipeline::region_digest_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->region.digest_bytes.value();
  return total;
}

std::uint64_t FederationPipeline::region_digests_applied() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->region.digests_applied.value();
  return total;
}

std::uint64_t FederationPipeline::region_digest_stale_drops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->region.digest_stale_drops.value();
  }
  return total;
}

std::uint64_t FederationPipeline::region_head_forwards() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->region.head_forwards.value();
  return total;
}

std::uint64_t FederationPipeline::region_head_self_serves() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->region.head_self_serves.value();
  }
  return total;
}

std::uint64_t FederationPipeline::region_failovers() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->region.failovers.value();
  return total;
}

std::uint64_t FederationPipeline::arena_reuses() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->arena.reuses();
  return total;
}

std::uint64_t FederationPipeline::arena_allocations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->arena.allocations();
  return total;
}

std::uint64_t FederationPipeline::chaos_events_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& e : counted_chaos_) total += e->events_fired();
  return total;
}

std::uint64_t FederationPipeline::TotalCompleted() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->completed;
  return total;
}

obs::MetricsSnapshot FederationPipeline::MergedMetricsSnapshot() const {
  obs::MetricsSnapshot merged = shards_.front()->metrics->Snapshot();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    for (const auto& [path, value] : shards_[s]->metrics->Snapshot().values) {
      merged.values[path] += value;
    }
  }
  return merged;
}

std::string FederationPipeline::DumpChromeTrace() const {
  if (shards_.front()->tracer == nullptr) return "{}";
  if (shards_.size() == 1) return shards_.front()->tracer->DumpChromeTrace();
  // Merge every shard's {"traceEvents": [...]} onto one timeline by
  // splicing the array bodies: sim clocks share one virtual time, so
  // the stamps compose without adjustment.
  std::string merged = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& sh : shards_) {
    if (sh->tracer == nullptr) continue;
    const std::string dump = sh->tracer->DumpChromeTrace();
    const std::size_t open = dump.find('[');
    const std::size_t close = dump.rfind(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open + 1) {
      continue;
    }
    const std::string body = dump.substr(open + 1, close - open - 1);
    if (body.find_first_not_of(" \t\n") == std::string::npos) continue;
    if (!first) merged += ", ";
    merged += body;
    first = false;
  }
  merged += "]}";
  return merged;
}

Digest128 FederationPipeline::RegisterModel(std::uint64_t model_id,
                                            Bytes serialized_size) {
  cloud_->RegisterModel(model_id, serialized_size);
  const auto digest = cloud_->model_registry().DigestFor(model_id);
  COIC_CHECK(digest.ok());
  model_digests_[model_id] = digest.value();
  return digest.value();
}

void FederationPipeline::EnqueueRecognitionAt(std::uint32_t venue,
                                              const vision::SceneParams& scene,
                                              std::uint32_t mobile,
                                              SimTime at) {
  const std::uint32_t index = ClientIndex(venue, mobile);
  COIC_CHECK(venue < config_.venues && mobile < config_.mobiles_per_venue);
  ops_.push_back(
      {venue, at, [this, index, scene](CoicClient::CompletionFn done) {
         clients_[index]->StartRecognition(
             scene, CloudService::LabelForScene(scene.scene_id),
             std::move(done));
       }});
}

void FederationPipeline::EnqueueRenderAt(std::uint32_t venue,
                                         std::uint64_t model_id,
                                         std::uint32_t mobile, SimTime at) {
  const std::uint32_t index = ClientIndex(venue, mobile);
  COIC_CHECK(venue < config_.venues && mobile < config_.mobiles_per_venue);
  const auto it = model_digests_.find(model_id);
  COIC_CHECK_MSG(it != model_digests_.end(),
                 "EnqueueRenderAt before RegisterModel");
  const Digest128 digest = it->second;
  ops_.push_back(
      {venue, at,
       [this, index, model_id, digest](CoicClient::CompletionFn done) {
         clients_[index]->StartRender(model_id, digest, std::move(done));
       }});
}

void FederationPipeline::EnqueuePanoramaAt(std::uint32_t venue,
                                           std::uint64_t video_id,
                                           std::uint32_t frame_index,
                                           std::uint32_t mobile, SimTime at) {
  const std::uint32_t index = ClientIndex(venue, mobile);
  COIC_CHECK(venue < config_.venues && mobile < config_.mobiles_per_venue);
  ops_.push_back({venue, at,
                  [this, index, video_id,
                   frame_index](CoicClient::CompletionFn done) {
                    clients_[index]->StartPanorama(video_id, frame_index, {},
                                                   std::move(done));
                  }});
}

void FederationPipeline::EnqueuePlaced(const trace::PlacedRecord& placed) {
  const std::uint32_t mobile =
      placed.record.user_id % config_.mobiles_per_venue;
  switch (placed.record.type) {
    case trace::IcTaskType::kRecognition:
      EnqueueRecognitionAt(placed.venue, placed.record.scene, mobile,
                           placed.record.at);
      return;
    case trace::IcTaskType::kRender:
      EnqueueRenderAt(placed.venue, placed.record.model_id, mobile,
                      placed.record.at);
      return;
    case trace::IcTaskType::kPanorama:
      EnqueuePanoramaAt(placed.venue, placed.record.video_id,
                        placed.record.frame_index, mobile, placed.record.at);
      return;
  }
  COIC_CHECK_MSG(false, "unknown trace record type");
}

void FederationPipeline::IssueNext() {
  if (ops_.empty()) return;
  MaybeGossip();
  Op op = std::move(ops_.front());
  ops_.pop_front();
  const std::uint32_t venue = op.venue;
  op.start([this, venue](core::RequestOutcome outcome) {
    ShardState& sh = *shards_.front();
    sh.outcomes.push_back({venue, std::move(outcome), sh.sched.now()});
    IssueNext();
  });
}

std::vector<FederationOutcome> FederationPipeline::Run() {
  COIC_CHECK_MSG(shards_.size() == 1,
                 "closed-loop Run is one-request-at-a-time by definition; "
                 "sharded pipelines must use RunOpenLoop");
  ShardState& sh = *shards_.front();
  sh.outcomes.clear();
  IssueNext();
  sh.sched.Run();
  COIC_CHECK_MSG(ops_.empty(), "pipeline drained with operations unissued");
  return std::move(sh.outcomes);
}

std::string FederationPipeline::StrandedDiagnostic() const {
  // A stranded open-loop run (dropped frame, lossy link) used to fail
  // with a bare count; naming the stuck request ids and where they are
  // parked turns the CHECK into a directly actionable report.
  std::string msg = "open-loop drained with " +
                    std::to_string(expected_ - TotalCompleted()) + " of " +
                    std::to_string(expected_) + " operations incomplete:";
  constexpr std::size_t kMaxIdsNamed = 8;
  const auto append_ids = [&msg](const std::vector<std::uint64_t>& ids) {
    msg += " [ids";
    for (std::size_t i = 0; i < ids.size() && i < kMaxIdsNamed; ++i) {
      msg += ' ' + std::to_string(ids[i]);
    }
    if (ids.size() > kMaxIdsNamed) {
      msg += " +" + std::to_string(ids.size() - kMaxIdsNamed) + " more";
    }
    msg += ']';
  };
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    std::vector<std::uint64_t> client_ids;
    for (std::uint32_t m = 0; m < config_.mobiles_per_venue; ++m) {
      const auto ids = clients_[ClientIndex(v, m)]->inflight_request_ids();
      client_ids.insert(client_ids.end(), ids.begin(), ids.end());
    }
    const auto edge_ids = edges_[v]->pending_request_ids();
    if (client_ids.empty() && edge_ids.empty()) continue;
    msg += " venue " + std::to_string(v) + ": " +
           std::to_string(client_ids.size()) + " awaiting reply at clients";
    append_ids(client_ids);
    msg += ", " + std::to_string(edge_ids.size()) + " parked at edge";
    append_ids(edge_ids);
    msg += ';';
    if (obs::RequestTracer* const tracer = ShardOf(v).tracer.get()) {
      // With tracing on, say exactly which phase each stuck request is
      // parked in and for how long — "phase=cloud_fetch since=+8123ms"
      // beats grepping the scheduler for where a request went quiet.
      for (std::size_t i = 0; i < client_ids.size() && i < kMaxIdsNamed;
           ++i) {
        const std::string live = tracer->DescribeLive(client_ids[i]);
        if (!live.empty()) {
          msg += " id " + std::to_string(client_ids[i]) + " " + live + ';';
        }
      }
    }
  }
  return msg;
}

std::vector<FederationOutcome> FederationPipeline::RunOpenLoop() {
  if (shards_.size() > 1) return RunOpenLoopSharded();
  ShardState& sh = *shards_.front();
  sh.outcomes.clear();
  open_loop_ = OpenLoopStats{};
  open_loop_.operations = ops_.size();
  open_loop_.first_arrival = sh.sched.now();
  open_loop_.last_completion = sh.sched.now();
  sh.outcomes.reserve(ops_.size());
  expected_ = ops_.size();
  sh.completed = 0;
  sh.inflight = 0;
  sh.max_inflight = 0;
  stall_completed_mark_ = 0;
  stall_rounds_ = 0;
  const std::uint64_t fired_before = sh.sched.total_fired();

  if (GossipEnabled() && expected_ > 0) {
    // Round 0 at the start mirrors the closed loop's gossip-before-first-
    // op; afterwards each edge refreshes on its own free-running timer,
    // decoupled from operation progress.
    for (std::uint32_t v = 0; v < config_.venues; ++v) {
      ++open_loop_.gossip_rounds;
      GossipEdge(v);
    }
    gossip_timers_.assign(1, 0);
    ArmGossipTimer();
  }

  // Schedule every operation at its trace arrival time — the open-loop
  // regime: arrivals do not wait for completions, so queueing and
  // probe/link contention show up exactly as offered load dictates.
  bool first_set = false;
  while (!ops_.empty()) {
    Op op = std::move(ops_.front());
    ops_.pop_front();
    const SimTime at = std::max(op.at, sh.sched.now());
    if (!first_set || at < open_loop_.first_arrival) {
      open_loop_.first_arrival = at;
      first_set = true;
    }
    sh.sched.ScheduleAt(at, [this, &sh, op = std::move(op)]() mutable {
      ++sh.inflight;
      open_loop_.max_inflight =
          std::max(open_loop_.max_inflight, sh.inflight);
      const std::uint32_t venue = op.venue;
      op.start([this, &sh, venue](core::RequestOutcome outcome) {
        sh.outcomes.push_back({venue, std::move(outcome), sh.sched.now()});
        --sh.inflight;
        ++sh.completed;
        open_loop_.last_completion = sh.sched.now();
        if (sh.completed == expected_) {
          // Drain condition: the workload is done, so the free-running
          // timers stop re-arming and the scheduler empties.
          StopGossipTimers();
        }
      });
    });
  }

  sh.sched.Run();
  StopGossipTimers();  // expected_ == 0: timers were never armed; no-op
  COIC_CHECK_MSG(sh.completed == expected_, StrandedDiagnostic());
  open_loop_.events_fired = sh.sched.total_fired() - fired_before;
  open_loop_.per_worker_events_fired = {open_loop_.events_fired};
  return std::move(sh.outcomes);
}

Duration FederationPipeline::CrossShardLookahead() const {
  // The conservative window: the smallest propagation delay on any link
  // whose endpoints are owned by different shards. Wifi links never
  // cross (a venue's mobiles live with their edge); WAN links cross for
  // every venue not homed on shard 0 (the cloud's shard); peer links
  // cross per the venue->shard map. Brownout LinkConditionSteps cannot
  // shrink propagation (no such field), so the minimum holds mid-chaos.
  std::int64_t lookahead = INT64_MAX;
  for (std::uint32_t v = 0; v < config_.venues; ++v) {
    if (ShardIndexOf(v) != 0) {
      lookahead =
          std::min(lookahead, config_.edge_cloud_propagation.micros());
    }
  }
  for (const TopologyLink& l : topology_.links()) {
    if (ShardIndexOf(l.a) != ShardIndexOf(l.b)) {
      lookahead = std::min(lookahead, l.link.propagation.micros());
    }
  }
  COIC_CHECK_MSG(lookahead != INT64_MAX,
                 "sharded run with no cross-shard links");
  COIC_CHECK_MSG(lookahead > 0,
                 "deterministic sharding needs nonzero cross-shard "
                 "propagation for a conservative window");
  return Duration::Micros(lookahead);
}

std::vector<FederationOutcome> FederationPipeline::RunOpenLoopSharded() {
  const std::size_t shard_total = shards_.size();
  open_loop_ = OpenLoopStats{};
  open_loop_.operations = ops_.size();
  expected_ = ops_.size();
  stall_completed_mark_ = 0;
  stall_rounds_ = 0;
  std::vector<std::uint64_t> fired_before(shard_total);
  for (std::size_t s = 0; s < shard_total; ++s) {
    ShardState& sh = *shards_[s];
    sh.outcomes.clear();
    sh.inflight = 0;
    sh.max_inflight = 0;
    sh.completed = 0;
    sh.gossip_rounds = 0;
    sh.last_completion = sh.sched.now();
    fired_before[s] = sh.sched.total_fired();
  }
  open_loop_.first_arrival = shards_.front()->sched.now();
  open_loop_.last_completion = open_loop_.first_arrival;

  if (GossipEnabled() && expected_ > 0) {
    // Round 0 runs as the first event on each shard, gossiping its
    // venues ascending (the single-thread engine runs it inline before
    // the first op — same relative order, since op events scheduled
    // later at the same instant fire after it).
    gossip_timers_.assign(shard_total, 0);
    for (std::uint32_t s = 0; s < shard_total; ++s) {
      if (shards_[s]->venues.empty()) continue;
      shards_[s]->sched.ScheduleAt(SimTime::Epoch(), [this, s] {
        ShardState& sh = *shards_[s];
        for (const std::uint32_t v : sh.venues) {
          ++sh.gossip_rounds;
          GossipEdge(v);
        }
        ArmGossipTimerSharded(s);
      });
    }
  }

  bool first_set = false;
  while (!ops_.empty()) {
    Op op = std::move(ops_.front());
    ops_.pop_front();
    ShardState& sh = ShardOf(op.venue);
    const SimTime at = std::max(op.at, sh.sched.now());
    if (!first_set || at < open_loop_.first_arrival) {
      open_loop_.first_arrival = at;
      first_set = true;
    }
    sh.sched.ScheduleAt(at, [this, &sh, op = std::move(op)]() mutable {
      ++sh.inflight;
      sh.max_inflight = std::max(sh.max_inflight, sh.inflight);
      const std::uint32_t venue = op.venue;
      op.start([&sh, venue](core::RequestOutcome outcome) {
        sh.outcomes.push_back({venue, std::move(outcome), sh.sched.now()});
        --sh.inflight;
        ++sh.completed;
        sh.last_completion = sh.sched.now();
      });
    });
  }

  const bool deterministic =
      config_.execution.mode == ExecutionConfig::Mode::kDeterministic;
  std::vector<netsim::ShardHooks> hooks(shard_total);
  for (std::size_t s = 0; s < shard_total; ++s) {
    ShardState& sh = *shards_[s];
    hooks[s].sched = &sh.sched;
    hooks[s].deliver = [&sh, deterministic](netsim::ShardMessage msg) {
      SimTime at = msg.deliver_at;
      if (deterministic) {
        // The sender stamped this inside window k; with window <=
        // lookahead it cannot land before the receiver's clock (which
        // sits at the window edge during the drain phase).
        COIC_CHECK_MSG(at.micros() >= sh.sched.now().micros(),
                       "cross-shard delivery in the receiver's past "
                       "(window wider than the lookahead?)");
      } else if (at.micros() < sh.sched.now().micros()) {
        // Fast mode: clamp to now. Latency shifts by < one window;
        // aggregate conservation invariants are unaffected.
        at = sh.sched.now();
      }
      sh.sched.ScheduleAt(at, [&sh, msg = std::move(msg)]() mutable {
        sh.net.DeliverRemote(msg.from, msg.to, std::move(msg.payload));
      });
    };
    hooks[s].completed = [&sh] { return sh.completed; };
    hooks[s].idle_floor = [this, s] {
      // One batched timer per shard: the shard's idle floor is 1 while
      // it is armed, 0 once quiesced.
      if (gossip_timers_.empty()) return std::uint64_t{0};
      return std::uint64_t{gossip_timers_[s] != 0 ? 1u : 0u};
    };
    hooks[s].quiesce = [this, s] {
      StopGossipTimersShard(static_cast<std::uint32_t>(s));
    };
  }

  netsim::ShardRunnerConfig runner_config;
  runner_config.window = deterministic ? CrossShardLookahead()
                                       : config_.execution.fast_window;
  runner_config.expected_completions = expected_;

  netsim::ShardRunner runner(runner_config, std::move(hooks));
  runner_ = &runner;
  const netsim::ShardRunner::Result result = runner.Run();
  runner_ = nullptr;
  gossip_timers_.clear();

  COIC_CHECK_MSG(TotalCompleted() == expected_, StrandedDiagnostic());

  open_loop_.sync_windows = result.windows;
  open_loop_.cross_shard_messages = result.cross_messages;
  open_loop_.per_worker_events_fired.resize(shard_total);
  std::vector<FederationOutcome> merged;
  merged.reserve(expected_);
  bool any_completion = false;
  for (std::size_t s = 0; s < shard_total; ++s) {
    ShardState& sh = *shards_[s];
    const std::uint64_t fired = sh.sched.total_fired() - fired_before[s];
    open_loop_.per_worker_events_fired[s] = fired;
    open_loop_.events_fired += fired;
    open_loop_.max_inflight += sh.max_inflight;
    open_loop_.gossip_rounds += sh.gossip_rounds;
    if (sh.completed > 0 &&
        (!any_completion ||
         open_loop_.last_completion < sh.last_completion)) {
      open_loop_.last_completion = sh.last_completion;
      any_completion = true;
    }
    merged.insert(merged.end(), std::make_move_iterator(sh.outcomes.begin()),
                  std::make_move_iterator(sh.outcomes.end()));
    sh.outcomes.clear();
  }
  // Canonical completion order: per-shard streams are each in completion
  // order already; interleave them on (completed_at, venue). Venue
  // breaks ties deterministically because any one venue's outcomes come
  // from a single shard (stable_sort keeps their relative order).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FederationOutcome& a, const FederationOutcome& b) {
                     if (a.completed_at.micros() != b.completed_at.micros()) {
                       return a.completed_at.micros() < b.completed_at.micros();
                     }
                     return a.venue < b.venue;
                   });
  return merged;
}

}  // namespace coic::federation
