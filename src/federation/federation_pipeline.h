// FederationPipeline — an N-edge cooperative cluster on the netsim
// substrate.
//
// Generalizes the pairwise CoopPipeline to K venues × M mobiles each,
// sharing one cloud. Venues are joined by a Topology (star / ring /
// full mesh / custom); each edge periodically gossips a CacheSummary of
// its content, and on a local miss a PeerSelectPolicy picks which peers
// to probe (broadcast-all, summary-directed, or random-k) within a
// per-edge probe budget and hop limit. Frames between non-adjacent
// venues ride FederatedRelay envelopes hop by hop along shortest paths.
//
//   mobile(v,m) —wifi— edge(v) —peer links per Topology— edge(u) ...
//                        \________ WAN ________ cloud ______/
//
// EdgeService and CloudService are reused unchanged apart from the new
// message kinds; the pipeline owns only topology, routing, gossip and
// policy wiring.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/retry.h"
#include "core/services.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "federation/peer_select.h"
#include "federation/summary.h"
#include "federation/topology.h"
#include "netsim/chaos.h"
#include "netsim/network.h"
#include "netsim/shard.h"
#include "trace/workload.h"

namespace coic::federation {

enum class TopologyKind : std::uint8_t {
  kStar = 0,
  kRing = 1,
  kFullMesh = 2,
  kCustom = 3,
};

/// The metro-LAN link regular topologies use between venues.
inline netsim::LinkConfig DefaultPeerLink() noexcept {
  netsim::LinkConfig link;
  link.bandwidth = Bandwidth::Gbps(1);
  link.propagation = Duration::Millis(1);
  return link;
}

/// Unreliable-transport knobs for the cluster. Everything defaults to
/// the reliable PR 5 wire behavior (no loss, no datagrams, no retries,
/// no acks) so existing configs stay bit-identical; `Lossy()` flips the
/// whole recovery stack on at a given loss rate.
struct FederationTransportConfig {
  /// Route frames larger than `datagram_mtu` as sequenced DatagramChunk
  /// trains with FIFO in-order reassembly (netsim::DatagramConfig) — any
  /// lost chunk loses the whole message, the realistic failure unit.
  bool datagram = false;
  Bytes datagram_mtu = 16 * 1024;
  /// Bernoulli per-frame loss applied to every link in the cluster
  /// (wifi, WAN and peer links alike — the paper's `tc netem` analogue).
  double loss_rate = 0;
  /// Client->edge timeout/retry (CoicClient::Config::retry). Disabled
  /// retries with loss_rate > 0 means lost requests never complete —
  /// only do that in tests that drive recovery by hand.
  core::RetryConfig client_retry;
  /// Edge->cloud timeout/retry (EdgeService::Config::cloud_retry). On
  /// budget exhaustion the edge promotes the oldest parked follower of
  /// the coalesced group to leader and retries its fetch.
  core::RetryConfig cloud_retry;
  /// Edge peer-probe timeout (EdgeService::Config::peer_probe_timeout):
  /// a miss whose probes all vanish falls back to the cloud instead of
  /// hanging. Infinite keeps the reply/decline accounting authoritative.
  Duration peer_probe_timeout = Duration::Infinite();
  /// Gossip ack/nack: edges piggyback SummaryAck frames (the version of
  /// the peer's summary they hold) on PeerLookup traffic; a sender that
  /// learns a peer is behind resends the full summary, rate-limited to
  /// one resend per gossip period per peer. A delta arriving over an
  /// unknown/mismatched base nacks immediately (version-0 ack).
  bool summary_ack = false;
  /// Edge admission bound (EdgeService::Config::max_pending): misses
  /// beyond this many in-flight forwards are shed with an early
  /// kResourceExhausted reply instead of queued. 0 = unbounded.
  std::size_t edge_max_pending = 0;
  /// Edge->cloud circuit breaker (EdgeService::Config): this many
  /// consecutive cloud-fetch failures open the circuit for
  /// `breaker_open_duration`, then a single half-open probe decides
  /// between closing and re-opening. 0 = breaker off.
  std::uint32_t breaker_failure_threshold = 0;
  Duration breaker_open_duration = Duration::Millis(2000);
  /// Per-request latency budget stamped on the wire by every client
  /// (CoicClient::Config::deadline); the edge sheds expired work before
  /// spending a cloud fetch on it. Zero = no deadlines.
  Duration client_deadline = Duration::Zero();
  /// Clients degrade overload/breaker rejects into on-device results
  /// (ResultSource::kLocal) instead of error outcomes.
  bool client_local_fallback = false;
  /// Age out a peer's summary when nothing has been received from it for
  /// this long (checked each gossip round) — the crashed-edge seam:
  /// probes stop chasing a dead venue, and its rejoin starts from a
  /// full-summary first contact. Infinite never ages.
  Duration summary_max_age = Duration::Infinite();

  /// Everything enabled, tuned for the loss sweep: datagram mode,
  /// conservative client/cloud retries (timeouts sized to sit above the
  /// lossless worst-case response so a slow reply is never mistaken for
  /// a lost one), probe timeout, and summary acks.
  static FederationTransportConfig Lossy(double loss_rate);
};

/// Multi-core execution knobs. With workers == 1 (default) the pipeline
/// is the familiar single-thread engine, bit-identical to every earlier
/// PR. With workers > 1 the cluster is sharded: venue v (its edge, its
/// mobiles, their wifi links and every link the venue's nodes *send* on)
/// lives on shard v % S, each shard with its own EventScheduler, Network,
/// MetricsRegistry and tracer, synchronized by the conservative
/// time-window protocol in netsim/shard.h. Only RunOpenLoop supports
/// sharding (the closed loop is one-request-at-a-time by definition).
struct ExecutionConfig {
  /// Worker threads; clamped to the venue count (a shard owns >= 1
  /// venue). 1 = classic single-thread engine.
  std::uint32_t workers = 1;
  enum class Mode : std::uint8_t {
    /// Window = the cluster's cross-shard lookahead (min propagation of
    /// any cross-shard link): outcomes are bit-identical to the
    /// single-thread engine.
    kDeterministic = 0,
    /// Window = `fast_window`, typically much wider than the lookahead:
    /// cross-shard arrivals that land in the receiver's past are clamped
    /// to "now", so per-request latencies shift by up to one window;
    /// only aggregate invariants (ops completed, conservation counts)
    /// are pinned. Fewer barriers -> higher events/sec.
    kFast = 1,
  };
  Mode mode = Mode::kDeterministic;
  Duration fast_window = Duration::Millis(8);
};

/// Two-tier federation knobs. Flat gossip sends every venue's summary to
/// every reachable peer — O(N²) frames per round, which stops scaling
/// past a few dozen venues. Hierarchical mode assigns venue v to region
/// v % regions (aligned with the shard map, so a sharded run can put one
/// region per shard); full per-peer gossip stays *intra-region*, and the
/// region's head — the lowest-ranked member believed alive — aggregates
/// its members' summaries into a compact RegionDigest (Bloom union +
/// merged centroids + member hints) gossiped cross-region instead.
/// Miss-path probing resolves region → member in two steps: the
/// summary-directed policy matches digests and probes the believed head,
/// which relays the probe to its best-matching member (or serves from
/// its own cache); digest false positives fall through to the cloud
/// exactly like flat-mode Bloom false positives.
struct RegionConfig {
  /// Master switch; off = flat PR 3 gossip, bit-identical.
  bool hierarchical = false;
  /// Region count; venue v belongs to region v % regions. 0 = auto
  /// (floor(sqrt(venues)), the gossip-minimizing split). Clamped to
  /// [1, venues].
  std::uint32_t regions = 0;
  /// A head rebuilds + sends its region digest every Nth gossip round
  /// (round 0 included): member summaries churn every round during cache
  /// warmup, and re-broadcasting the union at full gossip cadence would
  /// give back much of the byte savings. Minimum 1.
  std::uint32_t digest_period_rounds = 4;
  /// Foreign-region heads probed per miss (best digest scores first).
  std::uint32_t cross_fanout = 1;
};

struct FederationPipelineConfig {
  /// Venues (edges) in the cluster.
  std::uint32_t venues = 4;
  /// Mobiles attached to each venue.
  std::uint32_t mobiles_per_venue = 1;
  /// Per-venue access + WAN bandwidths (venues symmetric).
  core::NetworkCondition network{Bandwidth::Mbps(100), Bandwidth::Mbps(10)};
  TopologyKind topology = TopologyKind::kFullMesh;
  /// Edge-to-edge link used by the regular topologies.
  netsim::LinkConfig peer_link = DefaultPeerLink();
  /// kCustom adjacency (per-link bandwidth/propagation).
  std::vector<TopologyLink> custom_links;
  /// Disable to measure the non-cooperative baseline on an identical
  /// topology (misses go straight to the cloud).
  bool cooperative = true;
  PeerSelectConfig policy;
  /// Per-request cap on peer probes at each edge.
  std::uint32_t probe_budget = 8;
  /// Same-key request coalescing at every edge (see EdgeService::Config)
  /// — N concurrent misses on one object share a single peer-probe round
  /// / cloud fetch. Invisible in the closed loop; under open-loop storms
  /// it cuts duplicate upstream traffic.
  bool coalesce_requests = true;
  /// Peers farther than this many topology hops are never probed or
  /// gossiped to.
  std::uint32_t hop_limit = 8;
  /// Cache-summary gossip period; Infinite disables gossip entirely
  /// (summary-directed selection then degenerates to cloud-only misses).
  /// Gossip rounds are driven from the operation loop, so summaries are
  /// refreshed at most once per period and never keep the scheduler
  /// alive after the workload drains.
  Duration gossip_period = Duration::Millis(250);
  BloomFilterConfig bloom;
  /// Delta gossip: when true, an edge whose peer already holds its
  /// previous summary version sends a SummaryDeltaUpdate (just the
  /// content-hash keys inserted since, plus replacement centroid
  /// sketches) instead of re-shipping the whole Bloom bit array, and
  /// skips the send entirely when the peer is already current. Falls
  /// back to a full SummaryUpdate per peer when the base version is
  /// unknown (first contact), the cache change journal overflowed or is
  /// disabled, any key was erased since the base (Bloom bits only
  /// compose under insertion), a periodic refresh is due, or the delta
  /// would not be smaller than the full frame. Off by default — full
  /// gossip is the PR 3 wire behavior, kept bit-identical.
  bool delta_gossip = false;
  /// With delta gossip on lossy links a dropped frame would strand a
  /// peer on an old base forever: sent-state is sent-not-acked, so the
  /// sender believes the peer is current, skips it every round, and —
  /// once the cache quiesces — never sends again. Forcing a full
  /// summary every Nth gossip *round* per peer (counting quiet rounds,
  /// which is exactly when a stranded peer would otherwise be
  /// unreachable) bounds that divergence; 0 (default) never forces —
  /// the netsim peer links are reliable.
  std::uint32_t delta_full_refresh_rounds = 0;
  /// Two-tier federation (see RegionConfig). Defaults to flat gossip.
  RegionConfig region;
  /// Peer-aware eviction: wire each edge cache's replicated-entry hint
  /// to the 1-hop neighbors' gossiped Bloom filters, so eviction prefers
  /// victims some adjacent peer also advertises over cluster-unique
  /// entries (which would cost a cloud fetch to recover). Off by
  /// default — byte-identical victim choice to every earlier PR.
  bool peer_aware_eviction = false;
  /// Peer-hit adoption filter (EdgeService::Config::peer_hit_adopt_min_uses):
  /// skip the local cache insert when a peer hit resolves a key this
  /// edge has seen fewer than this many times — low-reuse content stays
  /// single-copy in the cluster instead of being replicated on first
  /// touch. 0 (default) always adopts, the original behavior.
  std::uint32_t peer_hit_adopt_min_uses = 0;
  /// Probe-aware coalescing (EdgeService::Config::park_peer_probes): a
  /// probed peer that misses but has an in-flight fetch for the same key
  /// parks the probe and answers it from that fetch's result — the
  /// requester joins the earliest in-flight fetch among its peers
  /// instead of always riding its own leader's cloud trip. Off by
  /// default.
  bool park_peer_probes = false;
  /// Loss / datagram / retry / ack behavior; defaults are the reliable
  /// PR 5 transport, bit-identical outcomes included.
  FederationTransportConfig transport;
  /// Request-lifecycle tracing (obs::RequestTracer). Disabled by default:
  /// no tracer is constructed at all and every instrumentation site in
  /// the client/edge hot paths pays a single null-pointer test.
  obs::TraceConfig trace;
  /// Scripted fault injection (crashes, partitions, brownouts, loss
  /// bursts), armed on the scheduler at construction. Empty = no chaos.
  netsim::FaultSchedule chaos;
  /// Multi-core sharding (see ExecutionConfig). Defaults to one worker.
  ExecutionConfig execution;
  core::CostModel costs;
  cache::IcCacheConfig cache;
  vision::FeatureExtractorConfig extractor;
  std::uint32_t recognition_classes = 20;
  Duration mobile_edge_propagation = core::kMobileEdgePropagation;
  Duration edge_cloud_propagation = core::kEdgeCloudPropagation;
};

/// A RequestOutcome tagged with the venue that issued it.
struct FederationOutcome {
  std::uint32_t venue = 0;
  core::RequestOutcome outcome;
  /// Sim time the outcome was delivered — the chaos soak derives
  /// post-heal recovery curves from the completion stream.
  SimTime completed_at;
};

/// Counters from the most recent RunOpenLoop (the throughput regime).
struct OpenLoopStats {
  /// Operations replayed.
  std::uint64_t operations = 0;
  /// Cluster-wide high-water mark of concurrently in-flight operations —
  /// the queueing depth the closed loop (always 1) never exercises.
  /// Sharded runs report the *sum of per-shard maxima* (each shard
  /// tracks its own high-water mark; the instants need not coincide), an
  /// upper bound on the true cluster-wide mark.
  std::uint32_t max_inflight = 0;
  /// Per-edge gossip firings, including the round-0 warmup.
  std::uint64_t gossip_rounds = 0;
  /// First scheduled arrival and last operation completion, for
  /// achieved-throughput computation.
  SimTime first_arrival;
  SimTime last_completion;
  /// Scheduler actions executed during the run (simulator work, for
  /// wall-clock events/sec reporting). Sharded: summed over workers.
  std::uint64_t events_fired = 0;
  /// Scheduler actions per worker thread (one entry per shard; a single
  /// entry equal to events_fired for the single-thread engine).
  std::vector<std::uint64_t> per_worker_events_fired;
  /// Sharded runs only: synchronization barrier rounds and frames that
  /// crossed a shard boundary (both 0 for the single-thread engine).
  std::uint64_t sync_windows = 0;
  std::uint64_t cross_shard_messages = 0;
};

class FederationPipeline {
 public:
  explicit FederationPipeline(FederationPipelineConfig config);

  /// Registers a model with the shared cloud store; returns its digest.
  Digest128 RegisterModel(std::uint64_t model_id, Bytes serialized_size);

  /// Enqueue operations. `at` is the trace arrival time: RunOpenLoop
  /// issues the operation at that instant; the closed-loop Run ignores it
  /// (operations go one at a time, back to back).
  void EnqueueRecognitionAt(std::uint32_t venue,
                            const vision::SceneParams& scene,
                            std::uint32_t mobile = 0,
                            SimTime at = SimTime::Epoch());
  void EnqueueRenderAt(std::uint32_t venue, std::uint64_t model_id,
                       std::uint32_t mobile = 0,
                       SimTime at = SimTime::Epoch());
  void EnqueuePanoramaAt(std::uint32_t venue, std::uint64_t video_id,
                         std::uint32_t frame_index, std::uint32_t mobile = 0,
                         SimTime at = SimTime::Epoch());

  /// Queues a cluster-trace record at its placed venue (arrival time
  /// preserved for open-loop replay); render records must reference a
  /// registered model.
  void EnqueuePlaced(const trace::PlacedRecord& placed);

  /// Closed loop: runs all queued operations one at a time (the paper's
  /// latency-study regime); outcomes in issue order. Gossip rounds are
  /// driven from the operation loop.
  std::vector<FederationOutcome> Run();

  /// Open loop: schedules every queued operation at its arrival time —
  /// many requests in flight per venue and per mobile — with cache
  /// summaries gossiped on free-running per-edge timers. Timers are
  /// cancelled when the last operation completes, so the scheduler
  /// drains fully (pending() == 0 afterwards). Outcomes are in
  /// completion order; open_loop_stats() reports concurrency, gossip
  /// rounds and events fired.
  std::vector<FederationOutcome> RunOpenLoop();

  [[nodiscard]] const OpenLoopStats& open_loop_stats() const noexcept {
    return open_loop_;
  }

  [[nodiscard]] core::EdgeService& edge(std::uint32_t venue);
  [[nodiscard]] core::CloudService& cloud() noexcept { return *cloud_; }
  /// Shard 0's scheduler (the only one for the single-thread engine).
  [[nodiscard]] netsim::EventScheduler& scheduler() noexcept {
    return shards_.front()->sched;
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const FederationPipelineConfig& config() const noexcept {
    return config_;
  }

  /// Probe traffic across the whole cluster (sum of per-edge counters).
  [[nodiscard]] std::uint64_t total_peer_probes() const;
  [[nodiscard]] std::uint64_t total_peer_hits() const;
  /// Misses that coalesced onto an in-flight same-key fetch, cluster-wide.
  [[nodiscard]] std::uint64_t total_coalesced_requests() const;
  /// Requests forwarded to the cloud, cluster-wide (the traffic request
  /// coalescing exists to cut).
  [[nodiscard]] std::uint64_t total_cloud_forwards() const;
  /// SummaryUpdate messages sent (gossip overhead). With delta gossip
  /// this counts full summaries only; deltas are tallied separately.
  /// Summed over shards in sharded runs, as are all gossip counters
  /// below.
  [[nodiscard]] std::uint64_t summary_updates_sent() const noexcept;
  /// SummaryDeltaUpdate messages sent (delta gossip only).
  [[nodiscard]] std::uint64_t summary_deltas_sent() const noexcept;
  /// Encoded bytes of full-summary / delta-summary frames handed to the
  /// peer links (relay wrappers excluded) — the wire cost the delta
  /// ablation compares.
  [[nodiscard]] std::uint64_t summary_bytes_full() const noexcept;
  [[nodiscard]] std::uint64_t summary_bytes_delta() const noexcept;
  /// Venue `venue`'s view of its peers' summaries (tests compare delta-
  /// built tables against full-gossip tables byte for byte).
  [[nodiscard]] const SummaryTable& summary_table(std::uint32_t venue) const {
    return summary_tables_.at(venue);
  }
  /// Relay forwards performed by intermediate venues.
  [[nodiscard]] std::uint64_t relay_forwards() const noexcept;

  // Hierarchical-federation counters (all zero in flat mode; summed over
  // shards like the gossip counters).
  /// RegionDigestUpdate frames heads handed to the peer links.
  [[nodiscard]] std::uint64_t region_digests_sent() const noexcept;
  /// Encoded bytes of those digest frames — with intra-region summary
  /// bytes, the hierarchical side of the flat-vs-hierarchical gossip
  /// byte comparison.
  [[nodiscard]] std::uint64_t region_digest_bytes() const noexcept;
  /// Digests accepted into a RegionDigestTable (fresh version or head
  /// succession) vs. dropped as stale.
  [[nodiscard]] std::uint64_t region_digests_applied() const noexcept;
  [[nodiscard]] std::uint64_t region_digest_stale_drops() const noexcept;
  /// Cross-region probes a head relayed to its best-matching member vs.
  /// answered from its own cache.
  [[nodiscard]] std::uint64_t region_head_forwards() const noexcept;
  [[nodiscard]] std::uint64_t region_head_self_serves() const noexcept;
  /// Times a member promoted itself to region head after the previous
  /// head's summary aged out (the crash-failover path).
  [[nodiscard]] std::uint64_t region_failovers() const noexcept;
  /// The venue → region map (identity-free default when flat).
  [[nodiscard]] const RegionMap& region_map() const noexcept {
    return region_map_;
  }
  /// Venue `venue`'s accepted view of foreign-region digests.
  [[nodiscard]] const RegionDigestTable& region_digest_table(
      std::uint32_t venue) const {
    return digest_tables_.at(venue);
  }
  /// `venue`'s current belief of who heads `region` (self-view included).
  [[nodiscard]] std::uint32_t head_of(std::uint32_t venue,
                                      std::uint32_t region) const {
    return HeadOf(venue, region);
  }
  /// Arena recycling stats summed over shards (bench_micro rows).
  [[nodiscard]] std::uint64_t arena_reuses() const noexcept;
  [[nodiscard]] std::uint64_t arena_allocations() const noexcept;

  /// SummaryAck frames piggybacked on peer traffic (transport.summary_ack).
  [[nodiscard]] std::uint64_t summary_acks_sent() const noexcept;
  /// Targeted full-summary resends triggered by a behind/zero ack.
  [[nodiscard]] std::uint64_t summary_ack_resends() const noexcept;
  /// Peer summaries dropped by the max-age sweep.
  [[nodiscard]] std::uint64_t summaries_aged_out() const noexcept;

  /// The cluster-wide metrics registry: every edge/client/gossip counter
  /// under a dotted path ("edge.2.forwards", "client.0.3.timeouts",
  /// "gossip.relay_forwards"), plus samplers over storage that lives
  /// elsewhere ("net.datagram.*", "net.links.frames_lost", "frame.*",
  /// "cloud.tasks_executed"). Snapshot()/DiffSince replace the manual
  /// record-before/subtract-after dance in benches.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return *shards_.front()->metrics;
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept {
    return *shards_.front()->metrics;
  }
  /// Counter values summed per path across every shard's registry — the
  /// cluster-wide view. Identical to metrics().Snapshot() for the
  /// single-thread engine.
  [[nodiscard]] obs::MetricsSnapshot MergedMetricsSnapshot() const;
  /// The request tracer, or nullptr when config.trace.enabled is false.
  /// Shard 0's ring in sharded runs; DumpChromeTrace() merges all shards.
  [[nodiscard]] obs::RequestTracer* tracer() noexcept {
    return shards_.front()->tracer.get();
  }
  /// Chrome trace-event JSON with every shard's spans on one timeline
  /// (sim clocks are a shared virtual time, so stamps compose directly).
  /// "{}" when tracing is disabled.
  [[nodiscard]] std::string DumpChromeTrace() const;

  /// Cluster-wide transport counters (sums over clients / edges).
  [[nodiscard]] std::uint64_t total_client_retransmissions() const;
  [[nodiscard]] std::uint64_t total_client_timeouts() const;
  [[nodiscard]] std::uint64_t total_cloud_retransmissions() const;
  [[nodiscard]] std::uint64_t total_cloud_timeouts() const;
  [[nodiscard]] std::uint64_t total_leader_promotions() const;
  [[nodiscard]] std::uint64_t total_grace_hits() const;

  /// Cluster-wide overload-control counters: edge-side sheds (admission
  /// + deadline + breaker) and client-side overload rejects received.
  [[nodiscard]] std::uint64_t total_overload_sheds() const;
  [[nodiscard]] std::uint64_t total_overload_rejects() const;

  /// Shard 0's counted chaos engine, or nullptr when config.chaos is
  /// empty. The full schedule for the single-thread engine; sharded runs
  /// split the schedule, so use chaos_events_fired() for cluster totals.
  [[nodiscard]] netsim::ChaosEngine* chaos() noexcept {
    return counted_chaos_.empty() ? nullptr : counted_chaos_.front().get();
  }
  /// Chaos events fired cluster-wide (summed over the counted engines).
  [[nodiscard]] std::uint64_t chaos_events_fired() const noexcept;

  /// Shards in the execution plan (1 = single-thread engine).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Simulator access for fault-injection tests (ForceDropNext / SetDown
  /// on specific links) and the loss-sweep bench. Shard 0's network.
  [[nodiscard]] netsim::Network& network() noexcept {
    return shards_.front()->net;
  }
  [[nodiscard]] netsim::NodeId cloud_node() const noexcept {
    return cloud_node_;
  }
  [[nodiscard]] netsim::NodeId edge_node(std::uint32_t venue) const {
    return edge_nodes_.at(venue);
  }
  [[nodiscard]] netsim::NodeId mobile_node(std::uint32_t venue,
                                           std::uint32_t mobile) const {
    return mobile_nodes_.at(ClientIndex(venue, mobile));
  }
  [[nodiscard]] core::CoicClient& client(std::uint32_t venue,
                                         std::uint32_t mobile) {
    return *clients_.at(ClientIndex(venue, mobile));
  }

 private:
  struct Op {
    std::uint32_t venue;
    SimTime at;  ///< Arrival time; only RunOpenLoop honors it.
    std::function<void(core::CoicClient::CompletionFn)> start;
  };

  /// One shard's gossip counter cells, bound once at shard construction
  /// (same paths as ever; the public accessors sum the cells over
  /// shards).
  struct GossipCounters {
    explicit GossipCounters(obs::MetricsRegistry& m)
        : summary_updates_sent(m.GetCounter("gossip.summary_updates_sent")),
          summary_deltas_sent(m.GetCounter("gossip.summary_deltas_sent")),
          summary_bytes_full(m.GetCounter("gossip.summary_bytes_full")),
          summary_bytes_delta(m.GetCounter("gossip.summary_bytes_delta")),
          relay_forwards(m.GetCounter("gossip.relay_forwards")),
          summary_acks_sent(m.GetCounter("gossip.summary_acks_sent")),
          summary_ack_resends(m.GetCounter("gossip.summary_ack_resends")),
          summaries_aged_out(m.GetCounter("gossip.summaries_aged_out")) {}
    obs::Counter& summary_updates_sent;
    obs::Counter& summary_deltas_sent;
    obs::Counter& summary_bytes_full;
    obs::Counter& summary_bytes_delta;
    obs::Counter& relay_forwards;
    obs::Counter& summary_acks_sent;
    obs::Counter& summary_ack_resends;
    obs::Counter& summaries_aged_out;
  };

  /// One shard's hierarchical-federation counter cells ("region.*"),
  /// bound at shard construction like GossipCounters. All zero in flat
  /// mode.
  struct RegionCounters {
    explicit RegionCounters(obs::MetricsRegistry& m)
        : digests_sent(m.GetCounter("region.digests_sent")),
          digest_bytes(m.GetCounter("region.digest_bytes")),
          digests_applied(m.GetCounter("region.digests_applied")),
          digest_stale_drops(m.GetCounter("region.digest_stale_drops")),
          head_forwards(m.GetCounter("region.head_forwards")),
          head_self_serves(m.GetCounter("region.head_self_serves")),
          failovers(m.GetCounter("region.failovers")) {}
    obs::Counter& digests_sent;
    obs::Counter& digest_bytes;
    obs::Counter& digests_applied;
    obs::Counter& digest_stale_drops;
    obs::Counter& head_forwards;
    obs::Counter& head_self_serves;
    obs::Counter& failovers;
  };

  /// Everything one worker thread owns: a scheduler, a full replica of
  /// the cluster Network (every shard adds all nodes in the same order,
  /// so node ids match; it only *creates* the links its own nodes send
  /// on), a metrics shard, a tracer ring, and the live run counters. The
  /// single-thread engine is exactly one of these.
  struct ShardState {
    explicit ShardState(const obs::TraceConfig& trace)
        : metrics(std::make_unique<obs::MetricsRegistry>()),
          tracer(trace.enabled ? std::make_unique<obs::RequestTracer>(trace)
                               : nullptr),
          gossip(*metrics),
          region(*metrics) {}
    netsim::EventScheduler sched;
    netsim::Network net{sched};
    /// unique_ptrs: edges and clients bind Counter& cells (and hold the
    /// tracer pointer) for their whole lifetime, so both need stable
    /// addresses that outlive the actors.
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::RequestTracer> tracer;
    GossipCounters gossip;
    RegionCounters region;
    /// Recycles the small control-frame buffers (probes, acks, digests)
    /// this shard's venues encode. The deleter-based free list is
    /// thread-safe, so a frame whose last reference drops on another
    /// shard still recycles here without a race.
    FrameArena arena;
    std::vector<std::uint32_t> venues;  ///< Venues homed on this shard.
    std::vector<FederationOutcome> outcomes;
    std::uint32_t inflight = 0;
    std::uint32_t max_inflight = 0;
    std::uint64_t completed = 0;
    std::uint64_t gossip_rounds = 0;
    SimTime last_completion;
  };

  /// Venue -> owning shard: v % shard_count(). The venue's edge, its
  /// mobiles, and every link those nodes send on live there; cloud state
  /// (and the links the cloud sends on) is on shard 0.
  [[nodiscard]] std::uint32_t ShardIndexOf(std::uint32_t venue) const noexcept {
    return venue % static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] ShardState& ShardOf(std::uint32_t venue) noexcept {
    return *shards_[ShardIndexOf(venue)];
  }
  [[nodiscard]] const ShardState& ShardOf(std::uint32_t venue) const noexcept {
    return *shards_[ShardIndexOf(venue)];
  }
  [[nodiscard]] netsim::EventScheduler& SchedOf(std::uint32_t venue) noexcept {
    return ShardOf(venue).sched;
  }
  [[nodiscard]] netsim::Network& NetOf(std::uint32_t venue) noexcept {
    return ShardOf(venue).net;
  }
  [[nodiscard]] GossipCounters& Gc(std::uint32_t venue) noexcept {
    return ShardOf(venue).gossip;
  }
  [[nodiscard]] RegionCounters& Rc(std::uint32_t venue) noexcept {
    return ShardOf(venue).region;
  }
  [[nodiscard]] FrameArena& ArenaOf(std::uint32_t venue) noexcept {
    return ShardOf(venue).arena;
  }
  [[nodiscard]] obs::RequestTracer* TracerOf(std::uint32_t venue) noexcept {
    return ShardOf(venue).tracer.get();
  }

  static Topology BuildTopology(const FederationPipelineConfig& config);

  void WireCloud();
  void WireVenue(std::uint32_t venue);
  void WireClient(std::uint32_t venue, std::uint32_t mobile);

  /// Routes an edge-to-edge frame: direct when adjacent, otherwise
  /// wrapped in a FederatedRelay along the shortest path. Broadcast
  /// callers pass the same refcounted Frame for every destination.
  void SendEdgeToEdge(std::uint32_t from, std::uint32_t to, Frame frame);
  void OnPeerEdgeFrame(std::uint32_t venue, std::uint32_t src_index,
                       Frame frame);
  /// Forwards or terminates a relay frame. Intermediate hops patch the
  /// TTL in the uniquely-held buffer and forward it (no decode, no
  /// re-encode, no copy); the terminal hop unwraps by slicing.
  /// Stamps the transport config onto the link configs (peer links must
  /// carry the loss rate before BuildTopology snapshots them).
  static FederationPipelineConfig ApplyTransport(
      FederationPipelineConfig config);

  void HandleRelayFrame(std::uint32_t venue, Frame frame);
  void HandleSummaryFrame(std::uint32_t venue, const Frame& frame);
  /// Gossip ack/nack (transport.summary_ack): `venue` tells `peer` which
  /// version of peer's summary it holds (0 = none — a nack). Piggybacked
  /// on every peer-bound lookup frame, deduplicated by last version
  /// acked; `force` bypasses the dedup (delta-over-bad-base nacks).
  void MaybeSendSummaryAck(std::uint32_t venue, std::uint32_t peer,
                           bool force);
  /// Handles a SummaryAck about `venue`'s own summary: when the acker
  /// holds an older version than what was already sent, the gossip frame
  /// was lost — resend the full summary, rate-limited per peer.
  void HandleSummaryAck(std::uint32_t venue, const Frame& frame);
  /// Drops peer summaries older than transport.summary_max_age (the
  /// crashed-edge aging sweep); runs at each gossip round.
  void AgeOutSummaries(std::uint32_t venue);

  /// True when the two-tier topology is active (hierarchical flag set
  /// on a gossiping multi-venue cluster).
  [[nodiscard]] bool Hierarchical() const noexcept {
    return config_.region.hierarchical && config_.venues >= 2 &&
           config_.cooperative;
  }
  /// `venue`'s current belief of region `region`'s head. Own region:
  /// the lowest-ranked member believed alive (self, or a member whose
  /// summary is held — aged-out summaries demote crashed heads). Foreign
  /// region: the head named by the accepted digest, else the rank-0
  /// member (the static default before any digest arrives).
  [[nodiscard]] std::uint32_t HeadOf(std::uint32_t venue,
                                     std::uint32_t region) const;
  /// Hierarchical gossip round for `venue`: version-gated full-summary
  /// sends to same-region peers, then — when `venue` believes itself
  /// head and the digest round is due — rebuild-on-change + version-
  /// gated fan-out of the region digest to every reachable venue.
  void GossipEdgeHierarchical(std::uint32_t venue);
  /// Accepts a RegionDigestUpdate frame into `venue`'s digest table
  /// (stale fast-drop via PeekRegionDigestFrame; head-succession rule in
  /// RegionDigestTable::Update).
  void HandleRegionDigestFrame(std::uint32_t venue, const Frame& frame);
  /// Head-side probe resolution: a cross-region kPeerLookupRequest that
  /// arrived *directly* (never relay-delivered — that is the anti-cycle
  /// guarantee) at a venue that believes itself head is relayed to the
  /// best-matching member, with the original requester as relay source
  /// so the member's reply routes straight back. Returns false when the
  /// probe should be served locally instead (not head, no better member,
  /// undecodable).
  bool MaybeForwardProbeAsHead(std::uint32_t venue, std::uint32_t src,
                               const Frame& frame);

  /// Builds and gossips `venue`'s cache summary to its reachable peers.
  void GossipEdge(std::uint32_t venue);
  /// Delta-gossip counterpart: rebuilds on change like GossipEdge, then
  /// chooses delta vs. full per peer from the journal and each peer's
  /// last-sent base version (skipping peers that are already current).
  void GossipEdgeDelta(std::uint32_t venue);
  /// Rebuilds venue's summary + memoized full frame if the cache changed
  /// since the last build; shared by both gossip modes.
  void RefreshSummary(std::uint32_t venue);
  /// Diagnostic for a stranded open-loop workload: names the stuck
  /// request ids and per-venue pending counts.
  [[nodiscard]] std::string StrandedDiagnostic() const;
  /// Runs a gossip round if the period elapsed (called between ops).
  void MaybeGossip();
  /// True when the config calls for summary gossip at all.
  [[nodiscard]] bool GossipEnabled() const noexcept;
  /// True when the transport can lose or duplicate frames — reply-route
  /// misses are then expected races, not wiring bugs.
  [[nodiscard]] bool LossyTransport() const noexcept {
    return config_.transport.loss_rate > 0 ||
           config_.transport.client_retry.enabled() ||
           config_.transport.cloud_retry.enabled();
  }
  /// Free-running batched gossip timer (open-loop regime): one timer
  /// per scheduler gossips every owned venue in ascending order — the
  /// same per-venue send order N per-venue timers armed in venue order
  /// produced, at 1/N the scheduler events.
  void ArmGossipTimer();
  void StopGossipTimers();
  void IssueNext();

  /// Splits config_.chaos across shards: each fault is armed *counted*
  /// on its home shard (with that shard's metrics/tracer and, for
  /// crashes, the cache wipe) and *silent* on every other shard that
  /// replicates one of its links.
  void ArmChaos();
  /// Smallest propagation delay of any link whose endpoints live on
  /// different shards — the conservative synchronization window.
  [[nodiscard]] Duration CrossShardLookahead() const;
  [[nodiscard]] std::uint64_t TotalCompleted() const noexcept;
  /// Open-loop body for shard_count() > 1: builds a netsim::ShardRunner
  /// and drives every shard's scheduler on its own worker thread.
  std::vector<FederationOutcome> RunOpenLoopSharded();
  /// Sharded batched gossip timer: one per shard, gossiping the shard's
  /// venues in ascending order; same cadence as ArmGossipTimer minus the
  /// stall bookkeeping (the runner detects cluster-wide stalls itself).
  void ArmGossipTimerSharded(std::uint32_t shard);
  /// Cancels `shard`'s batched timer only (a scheduler may only be
  /// touched from its owning worker thread).
  void StopGossipTimersShard(std::uint32_t shard);

  [[nodiscard]] std::uint32_t ClientIndex(std::uint32_t venue,
                                          std::uint32_t mobile) const {
    return venue * config_.mobiles_per_venue + mobile;
  }

  FederationPipelineConfig config_;
  Topology topology_;
  /// Execution shards, built before any actor. Exactly one for the
  /// single-thread engine. unique_ptrs: ShardState pins the addresses of
  /// its scheduler/network/registry, which everything else binds.
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Owning shard of every node id (ids are identical across the shard
  /// network replicas).
  std::vector<std::uint32_t> node_shard_;
  netsim::NodeId cloud_node_ = 0;
  std::vector<netsim::NodeId> edge_nodes_;
  std::vector<netsim::NodeId> mobile_nodes_;  ///< Indexed by ClientIndex.
  std::unique_ptr<core::CloudService> cloud_;
  /// Per-shard chaos engines (empty without a schedule); see ArmChaos().
  std::vector<std::unique_ptr<netsim::ChaosEngine>> counted_chaos_;
  std::vector<std::unique_ptr<netsim::ChaosEngine>> silent_chaos_;
  /// Non-null only inside RunOpenLoopSharded: the shard networks'
  /// remote-dispatch hooks feed it.
  netsim::ShardRunner* runner_ = nullptr;
  std::vector<std::unique_ptr<core::EdgeService>> edges_;
  std::vector<std::unique_ptr<core::CoicClient>> clients_;
  /// Peers each venue may probe (within hop_limit), ascending.
  std::vector<std::vector<std::uint32_t>> reachable_;
  std::vector<SummaryTable> summary_tables_;
  std::vector<std::unique_ptr<PeerSelectPolicy>> policies_;
  /// request id -> issuing mobile node, per venue (several mobiles share
  /// one edge, so client replies are routed like cloud replies are).
  std::vector<std::unordered_map<std::uint64_t, netsim::NodeId>> client_routes_;
  std::vector<std::uint64_t> summary_versions_;
  /// Per-edge memo of the last encoded SummaryUpdate frame and the cache
  /// insert+evict count it digested; rebuilt only when that count moves.
  /// A gossip round fans the same refcounted buffer to every peer.
  std::vector<Frame> summary_frames_;
  std::vector<std::uint64_t> summary_mutations_;
  /// Delta-gossip state per edge: the last built summary (delta frames
  /// draw centroids and the absolute key count from it) and the cache
  /// journal cursor snapshotted at that build — where the next delta
  /// slice starts for a peer based on this version.
  std::vector<CacheSummary> summaries_;
  std::vector<std::uint64_t> summary_cursors_;
  /// Two-tier federation state (sized only when Hierarchical()).
  RegionMap region_map_;
  /// Per-venue view of foreign-region digests (indexed by venue).
  std::vector<RegionDigestTable> digest_tables_;
  /// Head-side digest build state per venue: version of the digest this
  /// venue last *built* as head (succession continuity comes from
  /// max()ing with the version last *seen* for the own region), the
  /// memoized encoded frame, and the member-version signature it
  /// digested (rebuild only when a member summary version moved).
  std::vector<std::uint64_t> digest_built_versions_;
  std::vector<Frame> digest_frames_;
  std::vector<std::uint64_t> digest_signatures_;
  /// venues x venues [venue][peer]: digest version venue last sent peer.
  std::vector<std::vector<std::uint64_t>> digest_sent_version_;
  /// Gossip rounds per venue (digest_period_rounds cadence).
  std::vector<std::uint64_t> region_rounds_;
  /// venue's last-believed head of its own region, for failover
  /// accounting (counted once, by the member that promotes itself).
  std::vector<std::uint32_t> own_head_view_;
  std::unordered_map<std::uint64_t, Digest128> model_digests_;
  SimTime next_gossip_ = SimTime::Epoch();
  /// Ack/nack + aging state, venues x venues row-major ([venue][peer]):
  /// last version of peer's summary that venue acked (dedup; UINT64_MAX
  /// = "must ack next chance"), when venue last received a summary frame
  /// from peer, and the earliest time venue may ack-resend to peer.
  std::vector<std::vector<std::uint64_t>> ack_sent_version_;
  std::vector<std::vector<SimTime>> summary_received_at_;
  std::vector<std::vector<SimTime>> next_ack_resend_at_;
  std::deque<Op> ops_;
  /// Open-loop state: one armed batched timer per shard (0 = none).
  /// Each entry is written only by its owning shard — distinct vector
  /// elements are distinct objects, so no cross-thread race. Live run
  /// counters and outcomes live per shard (ShardState) and merge after
  /// the run.
  std::vector<netsim::EventId> gossip_timers_;
  OpenLoopStats open_loop_;
  std::uint64_t expected_ = 0;
  /// Stranded-workload detection (see ArmGossipTimer): completion count
  /// at the last timer firing, and consecutive firings without progress.
  std::uint64_t stall_completed_mark_ = 0;
  std::uint64_t stall_rounds_ = 0;
};

}  // namespace coic::federation
