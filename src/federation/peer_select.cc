#include "federation/peer_select.h"

#include <algorithm>

namespace coic::federation {
namespace {

class BroadcastAllPolicy final : public PeerSelectPolicy {
 public:
  std::vector<std::uint32_t> Select(const proto::FeatureDescriptor&,
                                    std::span<const std::uint32_t> reachable,
                                    const SummaryTable&) override {
    return {reachable.begin(), reachable.end()};
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "broadcast-all";
  }
};

class SummaryDirectedPolicy final : public PeerSelectPolicy {
 public:
  explicit SummaryDirectedPolicy(std::uint32_t fanout) : fanout_(fanout) {}

  std::vector<std::uint32_t> Select(const proto::FeatureDescriptor& key,
                                    std::span<const std::uint32_t> reachable,
                                    const SummaryTable& summaries) override {
    struct Scored {
      double score;
      std::uint32_t peer;
    };
    std::vector<Scored> scored;
    for (const std::uint32_t peer : reachable) {
      const CacheSummary* summary = summaries.For(peer);
      if (summary == nullptr) continue;  // no gossip yet => assume empty
      const double score = summary->MatchScore(key);
      if (score > 0) scored.push_back({score, peer});
    }
    // Best first; ties broken by peer id so runs are deterministic.
    std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.peer < b.peer;
    });
    if (scored.size() > fanout_) scored.resize(fanout_);
    std::vector<std::uint32_t> result;
    result.reserve(scored.size());
    for (const auto& s : scored) result.push_back(s.peer);
    return result;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "summary-directed";
  }

 private:
  std::uint32_t fanout_;
};

class RandomKPolicy final : public PeerSelectPolicy {
 public:
  RandomKPolicy(std::uint32_t k, std::uint64_t seed) : k_(k), rng_(seed) {}

  std::vector<std::uint32_t> Select(const proto::FeatureDescriptor&,
                                    std::span<const std::uint32_t> reachable,
                                    const SummaryTable&) override {
    std::vector<std::uint32_t> pool(reachable.begin(), reachable.end());
    // Partial Fisher–Yates: the first k slots become the sample.
    const std::size_t take = std::min<std::size_t>(k_, pool.size());
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t j = i + rng_.NextBelow(pool.size() - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(take);
    return pool;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "random-k";
  }

 private:
  std::uint32_t k_;
  Rng rng_;
};

}  // namespace

std::string_view PeerSelectKindName(PeerSelectKind kind) noexcept {
  switch (kind) {
    case PeerSelectKind::kBroadcastAll: return "broadcast-all";
    case PeerSelectKind::kSummaryDirected: return "summary-directed";
    case PeerSelectKind::kRandomK: return "random-k";
  }
  return "unknown";
}

std::vector<std::uint32_t> SelectHierarchical(
    const proto::FeatureDescriptor& key, std::uint32_t self,
    const RegionMap& regions, const SummaryTable& summaries,
    const RegionDigestTable& digests,
    std::span<const std::uint32_t> head_of_region, std::uint32_t intra_fanout,
    std::uint32_t cross_fanout) {
  struct Scored {
    double score;
    std::uint32_t target;
  };
  const auto by_score = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.target < b.target;
  };

  const std::uint32_t own_region = regions.region_of(self);
  std::vector<Scored> intra;
  for (const std::uint32_t member : regions.members(own_region)) {
    if (member == self) continue;
    const CacheSummary* summary = summaries.For(member);
    if (summary == nullptr) continue;  // no gossip yet => assume empty
    const double score = summary->MatchScore(key);
    if (score > 0) intra.push_back({score, member});
  }
  std::sort(intra.begin(), intra.end(), by_score);
  if (intra.size() > intra_fanout) intra.resize(intra_fanout);

  std::vector<Scored> cross;
  for (std::uint32_t r = 0; r < regions.regions(); ++r) {
    if (r == own_region) continue;
    const RegionDigest* digest = digests.For(r);
    if (digest == nullptr) continue;  // no digest yet => assume empty
    std::uint64_t hinted = 0;
    for (const std::uint64_t keys : digest->member_keys()) hinted += keys;
    const bool vector_key =
        key.kind() != proto::DescriptorKind::kContentHash;
    // The member hint covers hash keys only; an all-zero hint still
    // matters for vector keys, where the centroid sketch decides.
    if (hinted == 0 && !vector_key) continue;
    const double score = digest->MatchScore(key);
    if (score <= 0) continue;
    const std::uint32_t head = head_of_region[r];
    if (head == self) continue;  // inconsistent view; never self-probe
    cross.push_back({score, head});
  }
  std::sort(cross.begin(), cross.end(), by_score);
  if (cross.size() > cross_fanout) cross.resize(cross_fanout);

  std::vector<std::uint32_t> result;
  result.reserve(intra.size() + cross.size());
  for (const auto& s : intra) result.push_back(s.target);
  for (const auto& s : cross) result.push_back(s.target);
  return result;
}

std::unique_ptr<PeerSelectPolicy> MakePeerSelectPolicy(
    const PeerSelectConfig& config) {
  switch (config.kind) {
    case PeerSelectKind::kBroadcastAll:
      return std::make_unique<BroadcastAllPolicy>();
    case PeerSelectKind::kSummaryDirected:
      return std::make_unique<SummaryDirectedPolicy>(config.directed_fanout);
    case PeerSelectKind::kRandomK:
      return std::make_unique<RandomKPolicy>(config.random_k, config.seed);
  }
  return std::make_unique<BroadcastAllPolicy>();
}

}  // namespace coic::federation
