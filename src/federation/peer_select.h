// Peer-selection policies — who gets probed on a local miss.
//
// The policy is the knob the federation bench sweeps: broadcast-all is
// the hit-rate ceiling (and probe-traffic worst case), summary-directed
// uses gossiped CacheSummaries to probe only the likeliest holders, and
// random-k is the summary-free middle ground. All policies see only the
// peers within the configured hop limit; the edge's probe budget caps
// whatever they return.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "federation/summary.h"
#include "federation/topology.h"
#include "proto/descriptor.h"

namespace coic::federation {

enum class PeerSelectKind : std::uint8_t {
  kBroadcastAll = 0,     ///< Probe every reachable peer (baseline).
  kSummaryDirected = 1,  ///< Probe the best summary matches only.
  kRandomK = 2,          ///< Probe k uniformly random reachable peers.
};

std::string_view PeerSelectKindName(PeerSelectKind kind) noexcept;

struct PeerSelectConfig {
  PeerSelectKind kind = PeerSelectKind::kSummaryDirected;
  /// kRandomK: probes per miss.
  std::uint32_t random_k = 2;
  /// kSummaryDirected: how many positive-scoring peers to probe. 1 is the
  /// directed ideal; 2 buys insurance against Bloom false positives and
  /// summary staleness at double the probe cost.
  std::uint32_t directed_fanout = 1;
  std::uint64_t seed = 0xFEDE;
};

class PeerSelectPolicy {
 public:
  virtual ~PeerSelectPolicy() = default;

  /// Ordered probe candidates (best first) for `key`, drawn from
  /// `reachable`. `summaries` holds the freshest gossip per peer; peers
  /// without a summary are treated as empty by summary-aware policies.
  virtual std::vector<std::uint32_t> Select(
      const proto::FeatureDescriptor& key,
      std::span<const std::uint32_t> reachable,
      const SummaryTable& summaries) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

std::unique_ptr<PeerSelectPolicy> MakePeerSelectPolicy(
    const PeerSelectConfig& config);

/// Region-aware summary-directed selection for two-tier federation.
/// Intra-region candidates come from the member summaries exactly as
/// SummaryDirected would pick them (best `intra_fanout` positive
/// scores); cross-region candidates are the heads of the best
/// `cross_fanout` foreign regions whose digest matches `key` — the head
/// resolves region → member on arrival (it holds its members' full
/// summaries), so the requester's probe accounting stays 1 probe →
/// 1 reply. Regions whose digest advertises no keys at all (member
/// hint sums to zero) are skipped without spending a probe. Targets are
/// ordered intra first (local links are cheaper and fresher), then
/// foreign heads by descending digest score; ties break on id so runs
/// are deterministic.
///
/// `head_of_region[r]` is the caller's current belief of region r's
/// head (the pipeline derives it from digests + failover state).
std::vector<std::uint32_t> SelectHierarchical(
    const proto::FeatureDescriptor& key, std::uint32_t self,
    const RegionMap& regions, const SummaryTable& summaries,
    const RegionDigestTable& digests,
    std::span<const std::uint32_t> head_of_region, std::uint32_t intra_fanout,
    std::uint32_t cross_fanout);

}  // namespace coic::federation
