#include "federation/summary.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace coic::federation {
namespace {

/// SplitMix64 finalizer — the same avalanche the content digest uses;
/// gives two independent probe streams from one 64-bit key.
constexpr std::uint64_t Mix(std::uint64_t x, std::uint64_t seed) noexcept {
  x += seed;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(BloomFilterConfig config)
    : hashes_(config.hashes), bits_((config.bits + 7) / 8, 0) {
  COIC_CHECK(config.bits >= 8);
  COIC_CHECK(config.hashes >= 1 && config.hashes <= 16);
}

BloomFilter::BloomFilter(std::uint32_t hashes, ByteVec bits,
                         std::uint64_t inserted)
    : hashes_(hashes), inserted_(inserted), bits_(std::move(bits)) {
  COIC_CHECK(hashes_ >= 1 && hashes_ <= 16);
  COIC_CHECK(!bits_.empty());
}

void BloomFilter::Insert(std::uint64_t key) {
  const std::uint64_t h1 = Mix(key, 0x9E3779B97F4A7C15ULL);
  // An even/zero stride would cycle through a subset of positions; force
  // it odd so the probe sequence covers the whole array.
  const std::uint64_t h2 = Mix(key, 0xC2B2AE3D27D4EB4FULL) | 1;
  const std::uint64_t m = bit_count();
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % m;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  ++inserted_;
}

bool BloomFilter::MayContain(std::uint64_t key) const {
  const std::uint64_t h1 = Mix(key, 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = Mix(key, 0xC2B2AE3D27D4EB4FULL) | 1;
  const std::uint64_t m = bit_count();
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % m;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::EstimatedFpRate() const noexcept {
  const double k = hashes_;
  const double n = static_cast<double>(inserted_);
  const double m = bit_count();
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

bool BloomFilter::UnionWith(const BloomFilter& other) {
  if (other.bits_.size() != bits_.size() || other.hashes_ != hashes_) {
    return false;
  }
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  inserted_ += other.inserted_;
  return true;
}

// ------------------------------- CacheSummary ------------------------------

CacheSummary CacheSummary::Build(std::uint32_t edge_id, std::uint64_t version,
                                 const cache::IcCache& cache,
                                 const BloomFilterConfig& bloom_config) {
  CacheSummary s;
  s.edge_id_ = edge_id;
  s.version_ = version;
  s.bloom_ = BloomFilter(bloom_config);

  std::array<std::vector<double>, 3> sums;
  cache.ForEachKey([&](const proto::FeatureDescriptor& key) {
    if (key.kind() == proto::DescriptorKind::kContentHash) {
      s.bloom_.Insert(key.IndexKey());
      return;
    }
    auto& sketch = s.sketches_[static_cast<std::size_t>(key.task())];
    auto& sum = sums[static_cast<std::size_t>(key.task())];
    const auto vec = key.vector();
    if (sum.empty()) sum.resize(vec.size(), 0.0);
    if (sum.size() != vec.size()) return;  // mixed dims: keep first family
    for (std::size_t i = 0; i < vec.size(); ++i) sum[i] += vec[i];
    ++sketch.count;
  });
  for (std::size_t t = 0; t < 3; ++t) {
    auto& sketch = s.sketches_[t];
    if (sketch.count == 0) continue;
    sketch.centroid.resize(sums[t].size());
    for (std::size_t i = 0; i < sums[t].size(); ++i) {
      sketch.centroid[i] = static_cast<float>(sums[t][i] / sketch.count);
    }
  }
  return s;
}

namespace {

/// Shared scoring for per-edge summaries and region digests: 1/0 on the
/// Bloom filter for content-hash keys, 1/(1 + L2 to centroid) for
/// vector keys.
double SketchedMatchScore(const BloomFilter& bloom,
                          const std::array<CentroidSketch, 3>& sketches,
                          const proto::FeatureDescriptor& key) {
  if (key.kind() == proto::DescriptorKind::kContentHash) {
    return bloom.MayContain(key.IndexKey()) ? 1.0 : 0.0;
  }
  const auto& sketch = sketches[static_cast<std::size_t>(key.task())];
  if (sketch.count == 0 || sketch.centroid.size() != key.vector().size()) {
    return 0.0;
  }
  double sq = 0;
  const auto vec = key.vector();
  for (std::size_t i = 0; i < vec.size(); ++i) {
    const double d = static_cast<double>(vec[i]) - sketch.centroid[i];
    sq += d * d;
  }
  return 1.0 / (1.0 + std::sqrt(sq));
}

}  // namespace

double CacheSummary::MatchScore(const proto::FeatureDescriptor& key) const {
  return SketchedMatchScore(bloom_, sketches_, key);
}

proto::SummaryUpdate CacheSummary::ToWire() const {
  proto::SummaryUpdate wire;
  wire.edge_id = edge_id_;
  wire.version = version_;
  wire.bloom_hashes = bloom_.hashes();
  wire.bloom_inserted = bloom_.inserted();
  wire.bloom_bits = bloom_.bits();
  for (std::size_t t = 0; t < 3; ++t) {
    wire.centroids[t].count = sketches_[t].count;
    wire.centroids[t].centroid = sketches_[t].centroid;
  }
  return wire;
}

proto::SummaryDeltaUpdate CacheSummary::ToWireDelta(
    std::uint64_t base_version,
    std::vector<std::uint64_t> keys_inserted) const {
  proto::SummaryDeltaUpdate wire;
  wire.edge_id = edge_id_;
  wire.version = version_;
  wire.base_version = base_version;
  wire.bloom_inserted = bloom_.inserted();
  wire.keys_inserted = std::move(keys_inserted);
  for (std::size_t t = 0; t < 3; ++t) {
    wire.centroids[t].count = sketches_[t].count;
    wire.centroids[t].centroid = sketches_[t].centroid;
  }
  return wire;
}

Status CacheSummary::ApplyDelta(const proto::SummaryDeltaUpdate& wire) {
  if (wire.edge_id != edge_id_) {
    return Status(StatusCode::kInvalidArgument, "delta names another edge");
  }
  if (wire.base_version != version_) {
    return Status(StatusCode::kFailedPrecondition,
                  "delta base does not match held version");
  }
  if (wire.bloom_inserted != bloom_.inserted() + wire.keys_inserted.size()) {
    return Status(StatusCode::kDataLoss,
                  "delta key count does not compose with held summary");
  }
  for (const std::uint64_t key : wire.keys_inserted) bloom_.Insert(key);
  for (std::size_t t = 0; t < 3; ++t) {
    sketches_[t].count = wire.centroids[t].count;
    sketches_[t].centroid = wire.centroids[t].centroid;
  }
  version_ = wire.version;
  return Status::Ok();
}

Result<CacheSummary> CacheSummary::FromWire(const proto::SummaryUpdate& wire) {
  if (wire.bloom_bits.empty()) {
    return Status(StatusCode::kDataLoss, "summary with empty bloom filter");
  }
  if (wire.bloom_hashes < 1 || wire.bloom_hashes > 16) {
    return Status(StatusCode::kDataLoss, "summary with bad hash count");
  }
  CacheSummary s;
  s.edge_id_ = wire.edge_id;
  s.version_ = wire.version;
  s.bloom_ = BloomFilter(wire.bloom_hashes, wire.bloom_bits,
                         wire.bloom_inserted);
  for (std::size_t t = 0; t < 3; ++t) {
    s.sketches_[t].count = wire.centroids[t].count;
    s.sketches_[t].centroid = wire.centroids[t].centroid;
  }
  return s;
}

// ------------------------------- RegionDigest ------------------------------

RegionDigest RegionDigest::Build(std::uint32_t region_id,
                                 std::uint32_t head_edge,
                                 std::uint64_t version,
                                 std::span<const CacheSummary* const> members,
                                 const BloomFilterConfig& bloom_config) {
  RegionDigest d;
  d.region_id_ = region_id;
  d.head_edge_ = head_edge;
  d.version_ = version;
  d.bloom_ = BloomFilter(bloom_config);

  std::array<std::vector<double>, 3> sums;
  for (const CacheSummary* member : members) {
    if (member == nullptr) continue;
    if (!d.bloom_.UnionWith(member->bloom())) continue;  // foreign geometry
    d.member_edges_.push_back(member->edge_id());
    d.member_keys_.push_back(member->bloom().inserted());
    for (std::size_t t = 0; t < 3; ++t) {
      const auto& sketch = member->sketch(static_cast<proto::TaskKind>(t));
      if (sketch.count == 0) continue;
      auto& sum = sums[t];
      if (sum.empty()) sum.resize(sketch.centroid.size(), 0.0);
      if (sum.size() != sketch.centroid.size()) continue;  // mixed dims
      for (std::size_t i = 0; i < sum.size(); ++i) {
        sum[i] += static_cast<double>(sketch.centroid[i]) * sketch.count;
      }
      d.sketches_[t].count += sketch.count;
    }
  }
  for (std::size_t t = 0; t < 3; ++t) {
    auto& sketch = d.sketches_[t];
    if (sketch.count == 0) continue;
    sketch.centroid.resize(sums[t].size());
    for (std::size_t i = 0; i < sums[t].size(); ++i) {
      sketch.centroid[i] = static_cast<float>(sums[t][i] / sketch.count);
    }
  }
  return d;
}

double RegionDigest::MatchScore(const proto::FeatureDescriptor& key) const {
  return SketchedMatchScore(bloom_, sketches_, key);
}

proto::RegionDigestUpdate RegionDigest::ToWire() const {
  proto::RegionDigestUpdate wire;
  wire.region_id = region_id_;
  wire.head_edge = head_edge_;
  wire.version = version_;
  wire.bloom_hashes = bloom_.hashes();
  wire.bloom_inserted = bloom_.inserted();
  wire.bloom_bits = bloom_.bits();
  for (std::size_t t = 0; t < 3; ++t) {
    wire.centroids[t].count = sketches_[t].count;
    wire.centroids[t].centroid = sketches_[t].centroid;
  }
  wire.member_edges = member_edges_;
  wire.member_keys = member_keys_;
  return wire;
}

Result<RegionDigest> RegionDigest::FromWire(
    const proto::RegionDigestUpdate& wire) {
  if (wire.bloom_bits.empty()) {
    return Status(StatusCode::kDataLoss, "digest with empty bloom filter");
  }
  if (wire.bloom_hashes < 1 || wire.bloom_hashes > 16) {
    return Status(StatusCode::kDataLoss, "digest with bad hash count");
  }
  RegionDigest d;
  d.region_id_ = wire.region_id;
  d.head_edge_ = wire.head_edge;
  d.version_ = wire.version;
  d.bloom_ = BloomFilter(wire.bloom_hashes, wire.bloom_bits,
                         wire.bloom_inserted);
  for (std::size_t t = 0; t < 3; ++t) {
    d.sketches_[t].count = wire.centroids[t].count;
    d.sketches_[t].centroid = wire.centroids[t].centroid;
  }
  d.member_edges_ = wire.member_edges;
  d.member_keys_ = wire.member_keys;
  return d;
}

// ---------------------------- RegionDigestTable ----------------------------

bool RegionDigestTable::Update(RegionDigest digest, std::uint32_t head_rank) {
  COIC_CHECK(digest.region_id() < slots_.size());
  auto& slot = slots_[digest.region_id()];
  if (slot.has_value()) {
    const bool same_head = slot->digest.head_edge() == digest.head_edge();
    if (same_head) {
      if (digest.version() <= slot->digest.version()) return false;
    } else if (head_rank >= slot->head_rank &&
               digest.version() <= slot->digest.version()) {
      // A higher-ranked head (promoted successor) must beat the held
      // version; a lower-ranked head reasserting wins unconditionally.
      return false;
    }
  }
  slot = Slot{std::move(digest), head_rank};
  return true;
}

const RegionDigest* RegionDigestTable::For(std::uint32_t region) const {
  COIC_CHECK(region < slots_.size());
  const auto& slot = slots_[region];
  return slot.has_value() ? &slot->digest : nullptr;
}

// ------------------------------- SummaryTable ------------------------------

bool SummaryTable::Update(CacheSummary summary) {
  COIC_CHECK(summary.edge_id() < summaries_.size());
  auto& slot = summaries_[summary.edge_id()];
  if (slot.has_value() && slot->version() >= summary.version()) return false;
  slot = std::move(summary);
  return true;
}

Status SummaryTable::ApplyDelta(const proto::SummaryDeltaUpdate& wire) {
  if (wire.edge_id >= summaries_.size()) {
    return Status(StatusCode::kInvalidArgument, "delta from unknown edge");
  }
  auto& slot = summaries_[wire.edge_id];
  if (!slot.has_value()) {
    return Status(StatusCode::kFailedPrecondition,
                  "delta without a base summary");
  }
  return slot->ApplyDelta(wire);
}

const CacheSummary* SummaryTable::For(std::uint32_t edge) const {
  COIC_CHECK(edge < summaries_.size());
  const auto& slot = summaries_[edge];
  return slot.has_value() ? &*slot : nullptr;
}

SummaryTable::SentState& SummaryTable::sent_to(std::uint32_t peer) {
  COIC_CHECK(peer < sent_.size());
  return sent_[peer];
}

}  // namespace coic::federation
