// Cache-content summaries — the directory service of edge federation.
//
// Broadcasting a PeerLookupRequest to every venue scales probe traffic
// as O(N) per miss. Instead each edge periodically gossips a compact
// CacheSummary of what it holds:
//
//   * content-hash descriptors (render / panorama results) go into a
//     Bloom filter over FeatureDescriptor::IndexKey() — no false
//     negatives, so "not in the filter" is a safe reason to skip a peer;
//   * feature-vector descriptors (recognition results) are sketched per
//     task as an entry count plus the mean descriptor vector, so a
//     querier can rank peers by centroid proximity.
//
// A SummaryTable holds the freshest summary per peer; the peer-select
// policies consult it to direct probes. Staleness is bounded by the
// gossip period: content cached since the last update is simply not yet
// advertised (a missed peer-hit opportunity, never a wrong answer).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cache/ic_cache.h"
#include "common/bytes.h"
#include "proto/descriptor.h"
#include "proto/messages.h"

namespace coic::federation {

struct BloomFilterConfig {
  /// Bit-array size; rounded up to a whole byte. 8192 bits ≈ 1 KiB on the
  /// wire and holds ~570 keys at a 1% false-positive rate with 4 hashes.
  std::uint32_t bits = 8192;
  std::uint32_t hashes = 4;
};

/// Plain Bloom filter with double hashing (Kirsch–Mitzenmacher): probe i
/// lands at (h1 + i*h2) mod bits.
class BloomFilter {
 public:
  explicit BloomFilter(BloomFilterConfig config);
  /// Reconstructs a filter received on the wire.
  BloomFilter(std::uint32_t hashes, ByteVec bits, std::uint64_t inserted);

  void Insert(std::uint64_t key);
  [[nodiscard]] bool MayContain(std::uint64_t key) const;
  void Clear();

  /// Keys inserted so far (n in the false-positive formula).
  [[nodiscard]] std::uint64_t inserted() const noexcept { return inserted_; }
  [[nodiscard]] std::uint32_t bit_count() const noexcept {
    return static_cast<std::uint32_t>(bits_.size() * 8);
  }
  [[nodiscard]] std::uint32_t hashes() const noexcept { return hashes_; }
  [[nodiscard]] const ByteVec& bits() const noexcept { return bits_; }

  /// Expected false-positive rate at the current load:
  /// (1 - e^(-k*n/m))^k.
  [[nodiscard]] double EstimatedFpRate() const noexcept;

  /// Bitwise-OR of `other` into this filter — Bloom insertion composes
  /// under union, so the result answers MayContain for every key either
  /// filter held (plus their combined false positives). Returns false
  /// without mutating when the geometries (bit size or hash count)
  /// differ. `inserted` becomes the sum, an upper bound on distinct keys.
  bool UnionWith(const BloomFilter& other);

 private:
  std::uint32_t hashes_ = 4;
  std::uint64_t inserted_ = 0;
  ByteVec bits_;  ///< LSB-first within each byte.
};

/// Coarse sketch of one task family's vector-keyed entries.
struct CentroidSketch {
  std::uint32_t count = 0;
  std::vector<float> centroid;  ///< Mean descriptor; empty when count == 0.
};

/// One edge's advertised cache digest.
class CacheSummary {
 public:
  /// An empty summary (matches nothing).
  CacheSummary() : bloom_(BloomFilterConfig{}) {}

  /// Digests the current content of `cache`.
  static CacheSummary Build(std::uint32_t edge_id, std::uint64_t version,
                            const cache::IcCache& cache,
                            const BloomFilterConfig& bloom_config);

  /// How strongly this summary suggests the owning edge can serve `key`:
  /// 0 = definitely not / unknown; content-hash keys return 1 on a Bloom
  /// match; vector keys return 1/(1 + L2(key, centroid)) when the task
  /// has entries. Policies rank peers by this score.
  [[nodiscard]] double MatchScore(const proto::FeatureDescriptor& key) const;

  [[nodiscard]] proto::SummaryUpdate ToWire() const;
  static Result<CacheSummary> FromWire(const proto::SummaryUpdate& wire);

  /// Incremental form: the delta that takes a receiver holding
  /// `base_version` of this edge's summary to this summary's version.
  /// `keys_inserted` is the journal slice of content-hash IndexKeys
  /// inserted in between (caller guarantees no erasures in the interval —
  /// Bloom bits only compose under insertion); centroid sketches ride
  /// along whole.
  [[nodiscard]] proto::SummaryDeltaUpdate ToWireDelta(
      std::uint64_t base_version,
      std::vector<std::uint64_t> keys_inserted) const;

  /// Applies a delta in place. Validates before mutating: the delta must
  /// name this edge, extend exactly this summary's version, and its
  /// absolute key count must equal ours plus the inserted list — the
  /// insert-only composition invariant that makes the result
  /// byte-identical to the sender's freshly built summary.
  Status ApplyDelta(const proto::SummaryDeltaUpdate& wire);

  [[nodiscard]] std::uint32_t edge_id() const noexcept { return edge_id_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const BloomFilter& bloom() const noexcept { return bloom_; }
  [[nodiscard]] const CentroidSketch& sketch(proto::TaskKind task) const {
    return sketches_[static_cast<std::size_t>(task)];
  }

 private:
  std::uint32_t edge_id_ = 0;
  std::uint64_t version_ = 0;
  BloomFilter bloom_;
  std::array<CentroidSketch, 3> sketches_;
};

/// A region head's aggregate of its members' CacheSummaries — the unit
/// of cross-region gossip in two-tier federation. The Bloom union keeps
/// the no-false-negative property ("not in the digest" safely skips the
/// whole region); centroid sketches merge as weighted means; the member
/// hint (edge id + advertised key count per merged member) lets foreign
/// venues weight probe routing without holding per-member summaries.
class RegionDigest {
 public:
  RegionDigest() : bloom_(BloomFilterConfig{}) {}

  /// Unions `members` (the head passes its own summary plus every member
  /// summary it holds) into one digest. Members whose Bloom geometry
  /// disagrees with `bloom_config` are skipped — the cluster shares one
  /// config, so a mismatch means a stale or foreign frame.
  static RegionDigest Build(std::uint32_t region_id, std::uint32_t head_edge,
                            std::uint64_t version,
                            std::span<const CacheSummary* const> members,
                            const BloomFilterConfig& bloom_config);

  /// Same scale as CacheSummary::MatchScore, against the region union.
  [[nodiscard]] double MatchScore(const proto::FeatureDescriptor& key) const;

  [[nodiscard]] proto::RegionDigestUpdate ToWire() const;
  static Result<RegionDigest> FromWire(const proto::RegionDigestUpdate& wire);

  [[nodiscard]] std::uint32_t region_id() const noexcept { return region_id_; }
  [[nodiscard]] std::uint32_t head_edge() const noexcept { return head_edge_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const BloomFilter& bloom() const noexcept { return bloom_; }
  [[nodiscard]] const std::vector<std::uint32_t>& member_edges() const noexcept {
    return member_edges_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& member_keys() const noexcept {
    return member_keys_;
  }

 private:
  std::uint32_t region_id_ = 0;
  std::uint32_t head_edge_ = 0;
  std::uint64_t version_ = 0;
  BloomFilter bloom_;
  std::array<CentroidSketch, 3> sketches_;
  std::vector<std::uint32_t> member_edges_;
  std::vector<std::uint64_t> member_keys_;
};

/// Freshest digest per region with the head-succession acceptance rule.
/// `head_rank` is the sending head's succession rank (RegionMap::rank_of):
/// a digest from the head already on file needs a higher version; a
/// digest from a *lower-ranked* head wins immediately (the original head
/// recovered and reasserted); a higher-ranked head (a promoted
/// successor) must beat the held version — which it does by resuming at
/// last-seen + 1, since heads gossip digests to their own members too.
class RegionDigestTable {
 public:
  explicit RegionDigestTable(std::uint32_t regions = 0)
      : slots_(regions) {}

  /// Installs per the acceptance rule above; returns true if installed.
  bool Update(RegionDigest digest, std::uint32_t head_rank);

  /// Latest digest for `region`, or nullptr if none accepted yet.
  [[nodiscard]] const RegionDigest* For(std::uint32_t region) const;

  void Erase(std::uint32_t region) {
    if (region < slots_.size()) slots_[region].reset();
  }

  [[nodiscard]] std::uint32_t regions() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

 private:
  struct Slot {
    RegionDigest digest;
    std::uint32_t head_rank = 0;
  };
  std::vector<std::optional<Slot>> slots_;
};

/// Freshest summary per peer edge, keyed by cluster index. Also the home
/// of the per-peer version bookkeeping delta gossip needs on both sides:
/// received summaries carry their version (the base a delta must extend),
/// and the owning edge records what it last *sent* each peer so it can
/// choose delta vs. full per peer.
class SummaryTable {
 public:
  explicit SummaryTable(std::uint32_t cluster_size)
      : summaries_(cluster_size), sent_(cluster_size) {}

  /// Installs `summary` unless a newer version is already present.
  /// Returns true if installed.
  bool Update(CacheSummary summary);

  /// Applies an incremental update to the stored summary for its edge.
  /// Fails (leaving the table untouched) when no summary is held for
  /// that edge or the held version is not exactly the delta's base —
  /// the caller drops the frame and waits for a full resend.
  Status ApplyDelta(const proto::SummaryDeltaUpdate& wire);

  /// Latest summary for `edge`, or nullptr if none received yet.
  [[nodiscard]] const CacheSummary* For(std::uint32_t edge) const;

  /// Forgets the held summary for `edge` (no-op if none). Used to age
  /// out summaries from peers that have gone silent — a crashed edge's
  /// stale advertisement would otherwise direct probes at a dead venue
  /// forever. The next frame from that edge must be a full summary
  /// (deltas have no base to extend).
  void Erase(std::uint32_t edge) {
    if (edge < summaries_.size()) summaries_[edge].reset();
  }

  [[nodiscard]] std::uint32_t cluster_size() const noexcept {
    return static_cast<std::uint32_t>(summaries_.size());
  }

  /// Sender-side tracking: what this edge last gossiped to `peer`.
  /// `version` 0 means nothing sent yet (first contact is always a full
  /// summary); `journal_cursor` is the owning cache's journal position
  /// snapshotted when that version was built, i.e. where the next delta
  /// slice starts; `rounds_since_full` drives the optional periodic
  /// full refresh — it counts gossip *rounds* (including quiet ones
  /// where the peer was already current and nothing was sent), because
  /// sent-state is sent-not-acked: after a lost frame the peer needs a
  /// resend precisely when the sender believes it is current and the
  /// cache has quiesced, i.e. when no further send would ever happen.
  struct SentState {
    std::uint64_t version = 0;
    std::uint64_t journal_cursor = 0;
    std::uint32_t rounds_since_full = 0;
  };
  [[nodiscard]] SentState& sent_to(std::uint32_t peer);

 private:
  std::vector<std::optional<CacheSummary>> summaries_;
  std::vector<SentState> sent_;
};

}  // namespace coic::federation
