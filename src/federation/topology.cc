#include "federation/topology.h"

#include <algorithm>
#include <deque>

#include "common/log.h"

namespace coic::federation {

Topology Topology::Star(std::uint32_t venues, const netsim::LinkConfig& link) {
  COIC_CHECK(venues >= 1);
  std::vector<TopologyLink> links;
  links.reserve(venues > 0 ? venues - 1 : 0);
  for (std::uint32_t v = 1; v < venues; ++v) {
    links.push_back({0, v, link});
  }
  return Topology(venues, std::move(links));
}

Topology Topology::Ring(std::uint32_t venues, const netsim::LinkConfig& link) {
  COIC_CHECK(venues >= 1);
  std::vector<TopologyLink> links;
  if (venues == 2) {
    links.push_back({0, 1, link});  // a 2-ring degenerates to one link
  } else if (venues > 2) {
    for (std::uint32_t v = 0; v < venues; ++v) {
      links.push_back({v, (v + 1) % venues, link});
    }
  }
  return Topology(venues, std::move(links));
}

Topology Topology::FullMesh(std::uint32_t venues,
                            const netsim::LinkConfig& link) {
  COIC_CHECK(venues >= 1);
  std::vector<TopologyLink> links;
  for (std::uint32_t a = 0; a < venues; ++a) {
    for (std::uint32_t b = a + 1; b < venues; ++b) {
      links.push_back({a, b, link});
    }
  }
  return Topology(venues, std::move(links));
}

Topology Topology::Custom(std::uint32_t venues,
                          std::vector<TopologyLink> links) {
  return Topology(venues, std::move(links));
}

Topology::Topology(std::uint32_t venues, std::vector<TopologyLink> links)
    : venues_(venues), links_(std::move(links)), neighbors_(venues) {
  COIC_CHECK(venues_ >= 1);
  for (const auto& l : links_) {
    COIC_CHECK_MSG(l.a < venues_ && l.b < venues_, "link names unknown venue");
    COIC_CHECK_MSG(l.a != l.b, "self-loop link");
    COIC_CHECK_MSG(std::find(neighbors_[l.a].begin(), neighbors_[l.a].end(),
                             l.b) == neighbors_[l.a].end(),
                   "duplicate link");
    neighbors_[l.a].push_back(l.b);
    neighbors_[l.b].push_back(l.a);
  }
  for (auto& n : neighbors_) std::sort(n.begin(), n.end());

  // All-pairs BFS; clusters are small (tens of venues), so O(V * (V+E))
  // at construction beats per-send path searches.
  dist_.assign(static_cast<std::size_t>(venues_) * venues_, kUnreachable);
  next_hop_.assign(static_cast<std::size_t>(venues_) * venues_, kUnreachable);
  for (std::uint32_t src = 0; src < venues_; ++src) {
    dist_[Cell(src, src)] = 0;
    std::deque<std::uint32_t> frontier{src};
    while (!frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      for (const std::uint32_t n : neighbors_[v]) {
        if (dist_[Cell(src, n)] != kUnreachable) continue;
        dist_[Cell(src, n)] = dist_[Cell(src, v)] + 1;
        // First hop from src toward n: inherit v's first hop, unless v is
        // src itself (then n is the first hop).
        next_hop_[Cell(src, n)] = v == src ? n : next_hop_[Cell(src, v)];
        frontier.push_back(n);
      }
    }
  }
}

bool Topology::Adjacent(std::uint32_t a, std::uint32_t b) const {
  COIC_CHECK(a < venues_ && b < venues_);
  return std::binary_search(neighbors_[a].begin(), neighbors_[a].end(), b);
}

std::span<const std::uint32_t> Topology::Neighbors(std::uint32_t v) const {
  COIC_CHECK(v < venues_);
  return neighbors_[v];
}

std::uint32_t Topology::HopDistance(std::uint32_t a, std::uint32_t b) const {
  COIC_CHECK(a < venues_ && b < venues_);
  return dist_[Cell(a, b)];
}

std::uint32_t Topology::NextHop(std::uint32_t from, std::uint32_t to) const {
  COIC_CHECK(from < venues_ && to < venues_);
  const std::uint32_t hop = next_hop_[Cell(from, to)];
  COIC_CHECK_MSG(hop != kUnreachable, "NextHop between unreachable venues");
  return hop;
}

std::vector<std::uint32_t> Topology::ReachableWithin(
    std::uint32_t from, std::uint32_t max_hops) const {
  COIC_CHECK(from < venues_);
  std::vector<std::uint32_t> result;
  for (std::uint32_t v = 0; v < venues_; ++v) {
    if (v == from) continue;
    const std::uint32_t d = dist_[Cell(from, v)];
    if (d != kUnreachable && d <= max_hops) result.push_back(v);
  }
  return result;
}

void Topology::ApplyTo(netsim::Network& net,
                       std::span<const netsim::NodeId> edge_nodes) const {
  COIC_CHECK(edge_nodes.size() == venues_);
  for (const auto& l : links_) {
    net.Connect(edge_nodes[l.a], edge_nodes[l.b], l.link);
  }
}

RegionMap::RegionMap(std::uint32_t venues, std::uint32_t regions)
    : venues_(venues) {
  COIC_CHECK(venues > 0);
  if (regions == 0) regions = 1;
  if (regions > venues) regions = venues;
  members_.resize(regions);
  for (std::uint32_t v = 0; v < venues; ++v) {
    members_[v % regions].push_back(v);
  }
}

std::span<const std::uint32_t> RegionMap::members(std::uint32_t r) const {
  COIC_CHECK(r < members_.size());
  return members_[r];
}

}  // namespace coic::federation
