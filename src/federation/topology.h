// Federation topology — which edge venues are wired to which.
//
// The pairwise CoopPipeline hard-codes a single LAN link; a metro-scale
// cluster needs an explicit graph. A Topology holds the peer links of an
// N-venue cluster (star / ring / full mesh / custom adjacency, each link
// with its own Bandwidth and propagation), precomputes all-pairs
// shortest paths, and can stamp itself onto a netsim::Network. Frames
// between non-adjacent venues are source-routed hop by hop along
// NextHop() by the federation pipeline's relay layer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "netsim/link.h"
#include "netsim/network.h"

namespace coic::federation {

/// One duplex peer link between venues `a` and `b` (both directions get
/// the same LinkConfig).
struct TopologyLink {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  netsim::LinkConfig link;
};

class Topology {
 public:
  static constexpr std::uint32_t kUnreachable = 0xFFFFFFFF;

  /// Hub-and-spoke: venue 0 is the hub, venues 1..n-1 link to it.
  static Topology Star(std::uint32_t venues, const netsim::LinkConfig& link);
  /// Cycle: venue i links to (i+1) mod n.
  static Topology Ring(std::uint32_t venues, const netsim::LinkConfig& link);
  /// Every pair of venues directly linked.
  static Topology FullMesh(std::uint32_t venues,
                           const netsim::LinkConfig& link);
  /// Arbitrary adjacency; per-link Bandwidth/propagation. Links must name
  /// venues < `venues`, no self-loops, no duplicate pairs.
  static Topology Custom(std::uint32_t venues,
                         std::vector<TopologyLink> links);

  [[nodiscard]] std::uint32_t venues() const noexcept { return venues_; }
  [[nodiscard]] const std::vector<TopologyLink>& links() const noexcept {
    return links_;
  }

  [[nodiscard]] bool Adjacent(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::span<const std::uint32_t> Neighbors(std::uint32_t v) const;

  /// Hops on the shortest path a -> b; 0 for a == b, kUnreachable if the
  /// venues are in different components.
  [[nodiscard]] std::uint32_t HopDistance(std::uint32_t a,
                                          std::uint32_t b) const;
  /// First hop on the shortest path from -> to. Precondition: reachable
  /// and from != to.
  [[nodiscard]] std::uint32_t NextHop(std::uint32_t from,
                                      std::uint32_t to) const;

  /// All venues other than `from` within `max_hops`, ascending by id.
  [[nodiscard]] std::vector<std::uint32_t> ReachableWithin(
      std::uint32_t from, std::uint32_t max_hops) const;

  /// Connects `edge_nodes[a] <-> edge_nodes[b]` for every link.
  /// `edge_nodes` must hold one netsim node per venue.
  void ApplyTo(netsim::Network& net,
               std::span<const netsim::NodeId> edge_nodes) const;

 private:
  Topology(std::uint32_t venues, std::vector<TopologyLink> links);

  [[nodiscard]] std::size_t Cell(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * venues_ + b;
  }

  std::uint32_t venues_ = 1;
  std::vector<TopologyLink> links_;
  std::vector<std::vector<std::uint32_t>> neighbors_;
  /// Row-major venues_ x venues_ BFS products.
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> next_hop_;
};

/// Two-tier region assignment for hierarchical federation. Venue v
/// belongs to region v % regions — the same modulus the sharded engine
/// uses for venue → shard, so "one region per shard" is the default
/// alignment, every region has venues on consecutive ids' shards, and
/// the mapping needs no wire exchange: every venue derives it locally.
///
/// Head election is rank-based: the lowest-ranked member a venue
/// believes alive is the head. rank_of(v) is v's position in its
/// region's ascending member list, so rank 0 is the default head and
/// succession order is deterministic cluster-wide.
class RegionMap {
 public:
  /// Flat (no regions): every venue is its own region head.
  RegionMap() = default;
  /// `regions` is clamped to [1, venues].
  RegionMap(std::uint32_t venues, std::uint32_t regions);

  [[nodiscard]] std::uint32_t venues() const noexcept { return venues_; }
  [[nodiscard]] std::uint32_t regions() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }
  [[nodiscard]] std::uint32_t region_of(std::uint32_t v) const noexcept {
    return v % static_cast<std::uint32_t>(members_.empty() ? 1 : members_.size());
  }
  /// Members of region r, ascending by venue id.
  [[nodiscard]] std::span<const std::uint32_t> members(std::uint32_t r) const;
  /// v's position within its region's ascending member list.
  [[nodiscard]] std::uint32_t rank_of(std::uint32_t v) const noexcept {
    return v / static_cast<std::uint32_t>(members_.empty() ? 1 : members_.size());
  }
  [[nodiscard]] bool SameRegion(std::uint32_t a, std::uint32_t b) const noexcept {
    return region_of(a) == region_of(b);
  }

 private:
  std::uint32_t venues_ = 0;
  std::vector<std::vector<std::uint32_t>> members_;
};

}  // namespace coic::federation
