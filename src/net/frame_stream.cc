#include "net/frame_stream.h"

namespace coic::net {

Status WriteFrame(TcpStream& stream, std::span<const std::uint8_t> frame) {
  // Sanity: refuse to emit bytes the peer would reject.
  auto size = proto::PeekFrameSize(frame);
  if (!size.ok()) return size.status();
  if (size.value() != frame.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "frame length disagrees with its header");
  }
  return stream.WriteAll(frame);
}

Result<ByteVec> ReadFrame(TcpStream& stream) {
  ByteVec frame(proto::kEnvelopeHeaderSize);
  COIC_RETURN_IF_ERROR(stream.ReadExact(frame));
  auto total = proto::PeekFrameSize(frame);
  if (!total.ok()) return total.status();
  COIC_CHECK(total.value() >= proto::kEnvelopeHeaderSize);
  const std::size_t payload = total.value() - proto::kEnvelopeHeaderSize;
  frame.resize(total.value());
  if (payload > 0) {
    COIC_RETURN_IF_ERROR(stream.ReadExact(
        std::span(frame.data() + proto::kEnvelopeHeaderSize, payload)));
  }
  return frame;
}

}  // namespace coic::net
