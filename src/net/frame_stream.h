// Envelope framing over a TcpStream.
//
// The wire format is identical to the simulator's: a 20-byte envelope
// header (with an explicit payload length) followed by the payload, so a
// tcpdump of the live demo decodes with the same proto functions the
// tests exercise.
#pragma once

#include "common/bytes.h"
#include "net/socket.h"
#include "proto/envelope.h"

namespace coic::net {

/// Writes one full envelope frame.
Status WriteFrame(TcpStream& stream, std::span<const std::uint8_t> frame);

/// Reads one full envelope frame (header, then exactly the advertised
/// payload). kUnavailable on orderly close between frames.
Result<ByteVec> ReadFrame(TcpStream& stream);

}  // namespace coic::net
