#include "net/servers.h"

#include <chrono>
#include <random>

#include "common/log.h"

namespace coic::net {
namespace {

/// DelayFn for live services: optionally sleep the calibrated duration,
/// then run inline on the calling thread.
core::DelayFn MakeDelayFn(bool simulate) {
  return [simulate](Duration d, std::function<void()> fn) {
    if (simulate && d > Duration::Zero()) {
      std::this_thread::sleep_for(std::chrono::microseconds(d.micros()));
    }
    fn();
  };
}

core::NowFn MakeNowFn() {
  return [] { return LiveClient::WallClock(); };
}

using proto::PeekRequestId;

}  // namespace

SimTime LiveClient::WallClock() noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return SimTime::FromMicros(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

// ---------------------------------------------------------------------------
// CloudServer
// ---------------------------------------------------------------------------

CloudServer::CloudServer(ServerOptions options,
                         core::CloudService::Config service_config)
    : options_(options) {
  service_ = std::make_unique<core::CloudService>(
      service_config,
      [this](core::Peer /*to*/, Frame frame) {
        // Replies go to whichever connection is being served; the
        // service mutex is held for the whole request, so the target is
        // stable here.
        COIC_CHECK(current_reply_target_ != nullptr);
        const Status status = WriteFrame(*current_reply_target_, frame.span());
        if (!status.ok()) {
          COIC_LOG(kWarn) << "cloud: reply write failed: " << status.ToString();
        }
      },
      MakeDelayFn(options.simulate_compute_delays));
}

CloudServer::~CloudServer() { Stop(); }

Status CloudServer::Start() {
  auto listener = TcpListener::Bind(options_.listen);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<TcpListener>(std::move(listener).value());
  port_ = listener_->bound_port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void CloudServer::AcceptLoop() {
  for (;;) {
    auto stream = listener_->Accept();
    if (!stream.ok()) return;  // listener closed
    auto shared = std::make_shared<TcpStream>(std::move(stream).value());
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (stopping_.load()) return;
    active_streams_.push_back(shared);
    connection_threads_.emplace_back(
        [this, shared] { ServeConnection(shared); });
  }
}

void CloudServer::ServeConnection(const std::shared_ptr<TcpStream>& stream) {
  for (;;) {
    auto frame = ReadFrame(*stream);
    if (!frame.ok()) return;  // peer closed or transport error
    std::lock_guard<std::mutex> lock(service_mutex_);
    current_reply_target_ = stream.get();
    service_->OnFrame(Frame::Own(std::move(frame).value()));
    current_reply_target_ = nullptr;
  }
}

void CloudServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listener_) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
    // Unblock threads parked in recv() on still-open connections.
    for (auto& weak : active_streams_) {
      if (const auto stream = weak.lock()) stream->ShutdownBoth();
    }
    active_streams_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

// ---------------------------------------------------------------------------
// EdgeServer
// ---------------------------------------------------------------------------

EdgeServer::EdgeServer(ServerOptions options,
                       core::EdgeService::Config service_config,
                       SocketAddress cloud_address)
    : options_(options), service_config_(service_config),
      cloud_address_(cloud_address) {}

EdgeServer::~EdgeServer() { Stop(); }

Status EdgeServer::Start() {
  auto upstream = TcpStream::Connect(cloud_address_);
  if (!upstream.ok()) return upstream.status();
  upstream_ = std::move(upstream).value();

  service_ = std::make_unique<core::EdgeService>(
      service_config_,
      [this](core::Peer to, Frame frame) {
        if (to == core::Peer::kCloud) {
          std::lock_guard<std::mutex> lock(upstream_write_mutex_);
          const Status status = WriteFrame(upstream_, frame.span());
          if (!status.ok()) {
            COIC_LOG(kWarn) << "edge: upstream write failed: "
                            << status.ToString();
          }
        } else {
          RouteToClient(frame);
        }
      },
      MakeDelayFn(options_.simulate_compute_delays), MakeNowFn());

  auto listener = TcpListener::Bind(options_.listen);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<TcpListener>(std::move(listener).value());
  port_ = listener_->bound_port();

  cloud_reply_thread_ = std::thread([this] { CloudReplyLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void EdgeServer::AcceptLoop() {
  for (;;) {
    auto stream = listener_->Accept();
    if (!stream.ok()) return;
    std::lock_guard<std::mutex> lock(threads_mutex_);
    if (stopping_.load()) return;
    auto shared = std::make_shared<TcpStream>(std::move(stream).value());
    active_streams_.push_back(shared);
    connection_threads_.emplace_back(
        [this, shared] { ServeClient(shared); });
  }
}

void EdgeServer::ServeClient(std::shared_ptr<TcpStream> stream) {
  for (;;) {
    auto frame = ReadFrame(*stream);
    if (!frame.ok()) return;
    // Register the reply route before the service can answer.
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      routes_[PeekRequestId(frame.value())] = stream;
    }
    std::lock_guard<std::mutex> lock(service_mutex_);
    service_->OnClientFrame(Frame::Own(std::move(frame).value()));
  }
}

void EdgeServer::RouteToClient(const Frame& frame) {
  const std::uint64_t request_id = PeekRequestId(frame.span());
  std::shared_ptr<TcpStream> target;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(request_id);
    if (it != routes_.end()) {
      target = it->second;
      routes_.erase(it);  // one reply per request
    }
  }
  if (!target) {
    COIC_LOG(kWarn) << "edge: no route for reply " << request_id;
    return;
  }
  const Status status = WriteFrame(*target, frame.span());
  if (!status.ok()) {
    COIC_LOG(kWarn) << "edge: client write failed: " << status.ToString();
  }
}

void EdgeServer::CloudReplyLoop() {
  for (;;) {
    auto frame = ReadFrame(upstream_);
    if (!frame.ok()) return;  // upstream closed
    std::lock_guard<std::mutex> lock(service_mutex_);
    service_->OnCloudFrame(Frame::Own(std::move(frame).value()));
  }
}

void EdgeServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listener_) listener_->Close();
  upstream_.ShutdownBoth();  // unblocks CloudReplyLoop's recv
  if (accept_thread_.joinable()) accept_thread_.join();
  if (cloud_reply_thread_.joinable()) cloud_reply_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
    for (auto& weak : active_streams_) {
      if (const auto stream = weak.lock()) stream->ShutdownBoth();
    }
    active_streams_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

// ---------------------------------------------------------------------------
// LiveClient
// ---------------------------------------------------------------------------

LiveClient::LiveClient(TcpStream stream) : stream_(std::move(stream)) {}

Result<std::unique_ptr<LiveClient>> LiveClient::Connect(Options options) {
  auto stream = TcpStream::Connect(options.edge);
  if (!stream.ok()) return stream.status();

  auto live = std::unique_ptr<LiveClient>(
      new LiveClient(std::move(stream).value()));

  if (options.client.first_request_id == 1) {
    // Randomize the id space so concurrent clients never collide at the
    // edge's reply router.
    std::random_device rd;
    options.client.first_request_id =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }
  LiveClient* raw = live.get();
  live->client_ = std::make_unique<core::CoicClient>(
      options.client,
      [raw](Frame frame) {
        const Status status = WriteFrame(raw->stream_, frame.span());
        if (!status.ok()) raw->transport_error_ = status;
      },
      MakeDelayFn(/*simulate=*/false), MakeNowFn());
  return live;
}

Result<core::RequestOutcome> LiveClient::AwaitCompletion() {
  while (!done_) {
    if (!transport_error_.ok()) return transport_error_;
    auto frame = ReadFrame(stream_);
    if (!frame.ok()) return frame.status();
    client_->OnEdgeFrame(Frame::Own(std::move(frame).value()));
  }
  done_ = false;
  return outcome_;
}

Result<core::RequestOutcome> LiveClient::Recognize(
    const vision::SceneParams& scene, std::string expected_label) {
  client_->StartRecognition(scene, std::move(expected_label),
                            [this](core::RequestOutcome outcome) {
                              outcome_ = std::move(outcome);
                              done_ = true;
                            });
  return AwaitCompletion();
}

Result<core::RequestOutcome> LiveClient::LoadModel(std::uint64_t model_id,
                                                   const Digest128& digest) {
  client_->StartRender(model_id, digest, [this](core::RequestOutcome outcome) {
    outcome_ = std::move(outcome);
    done_ = true;
  });
  return AwaitCompletion();
}

Result<core::RequestOutcome> LiveClient::FetchPanorama(
    std::uint64_t video_id, std::uint32_t frame_index,
    const proto::Viewport& viewport) {
  client_->StartPanorama(video_id, frame_index, viewport,
                         [this](core::RequestOutcome outcome) {
                           outcome_ = std::move(outcome);
                           done_ = true;
                         });
  return AwaitCompletion();
}

}  // namespace coic::net
