// Live CoIC deployment: the cloud and edge processes, and a blocking
// client — the same EdgeService/CloudService logic as the simulator,
// bound to real TCP sockets.
//
// Topology mirrors the paper's testbed: clients connect to the edge; the
// edge keeps one upstream connection to the cloud and multiplexes
// forwarded requests over it (replies are routed back to the issuing
// client by request id, which clients randomize at connect time).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/client.h"
#include "core/services.h"
#include "net/frame_stream.h"
#include "net/socket.h"

namespace coic::net {

/// Shared server options.
struct ServerOptions {
  SocketAddress listen{"127.0.0.1", 0};  ///< Port 0 = ephemeral.
  /// When true, DelayFn sleeps for the cost-model duration, giving the
  /// live system the calibrated compute times (demo mode). When false,
  /// handlers run at host speed (test mode).
  bool simulate_compute_delays = false;
};

/// The cloud process: executes complete IC tasks for the edge.
class CloudServer {
 public:
  CloudServer(ServerOptions options, core::CloudService::Config service_config);
  ~CloudServer();

  CloudServer(const CloudServer&) = delete;
  CloudServer& operator=(const CloudServer&) = delete;

  /// Binds and starts the accept loop.
  Status Start();
  /// Stops accepting and joins all connection threads.
  void Stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] core::CloudService& service() noexcept { return *service_; }

 private:
  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<TcpStream>& stream);

  ServerOptions options_;
  std::unique_ptr<core::CloudService> service_;
  std::mutex service_mutex_;
  TcpStream* current_reply_target_ = nullptr;  // guarded by service_mutex_
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::weak_ptr<TcpStream>> active_streams_;  // guarded by threads_mutex_
  std::atomic<bool> stopping_{false};
};

/// The edge process: owns the IC cache, terminates clients, forwards
/// misses upstream.
class EdgeServer {
 public:
  EdgeServer(ServerOptions options, core::EdgeService::Config service_config,
             SocketAddress cloud_address);
  ~EdgeServer();

  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  /// Connects upstream, binds, and starts serving.
  Status Start();
  void Stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] core::EdgeService& service() noexcept { return *service_; }

 private:
  void AcceptLoop();
  void ServeClient(std::shared_ptr<TcpStream> stream);
  void CloudReplyLoop();
  void RouteToClient(const Frame& frame);

  ServerOptions options_;
  core::EdgeService::Config service_config_;
  SocketAddress cloud_address_;
  std::unique_ptr<core::EdgeService> service_;
  std::mutex service_mutex_;
  TcpStream upstream_;
  std::mutex upstream_write_mutex_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::thread cloud_reply_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::weak_ptr<TcpStream>> active_streams_;  // guarded by threads_mutex_
  /// request id -> client connection awaiting the reply.
  std::mutex routes_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TcpStream>> routes_;
  std::atomic<bool> stopping_{false};
};

/// Blocking client for the live deployment. Single-threaded: each call
/// sends one request and pumps the socket until its reply arrives.
class LiveClient {
 public:
  struct Options {
    SocketAddress edge;
    core::CoicClient::Config client;
  };

  /// Connects; randomizes the request-id base unless the caller pinned
  /// one (first_request_id != 1).
  static Result<std::unique_ptr<LiveClient>> Connect(Options options);

  Result<core::RequestOutcome> Recognize(const vision::SceneParams& scene,
                                         std::string expected_label = "");
  Result<core::RequestOutcome> LoadModel(std::uint64_t model_id,
                                         const Digest128& digest);
  Result<core::RequestOutcome> FetchPanorama(std::uint64_t video_id,
                                             std::uint32_t frame_index,
                                             const proto::Viewport& viewport = {});

  /// Wall-clock time observed by the client (monotonic).
  static SimTime WallClock() noexcept;

 private:
  explicit LiveClient(TcpStream stream);

  /// Pumps frames until the pending request completes.
  Result<core::RequestOutcome> AwaitCompletion();

  TcpStream stream_;
  std::unique_ptr<core::CoicClient> client_;
  bool done_ = false;
  core::RequestOutcome outcome_;
  Status transport_error_ = Status::Ok();
};

}  // namespace coic::net
