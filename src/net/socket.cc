#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coic::net {
namespace {

Status ErrnoStatus(StatusCode code, const std::string& what) {
  return Status(code, what + ": " + std::strerror(errno));
}

Result<sockaddr_in> ParseAddress(const SocketAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument,
                  "bad IPv4 address: " + addr.host);
  }
  return sa;
}

}  // namespace

void FdHandle::Reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpStream> TcpStream::Connect(const SocketAddress& addr) {
  auto sa = ParseAddress(addr);
  if (!sa.ok()) return sa.status();

  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus(StatusCode::kInternal, "socket");

  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa.value()),
                sizeof(sockaddr_in)) != 0) {
    return ErrnoStatus(StatusCode::kUnavailable,
                       "connect to " + addr.ToString());
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(fd));
}

Status TcpStream::WriteAll(std::span<const std::uint8_t> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(StatusCode::kUnavailable, "send");
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status TcpStream::ReadExact(std::span<std::uint8_t> data) {
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_.get(), data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(StatusCode::kUnavailable, "recv");
    }
    if (n == 0) {
      return got == 0 ? Status(StatusCode::kUnavailable, "peer closed")
                      : Status(StatusCode::kDataLoss, "peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void TcpStream::ShutdownWrite() noexcept {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

void TcpStream::ShutdownBoth() noexcept {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_RDWR);
}

Result<TcpListener> TcpListener::Bind(const SocketAddress& addr) {
  auto sa = ParseAddress(addr);
  if (!sa.ok()) return sa.status();

  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus(StatusCode::kInternal, "socket");

  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa.value()),
             sizeof(sockaddr_in)) != 0) {
    return ErrnoStatus(StatusCode::kUnavailable, "bind " + addr.ToString());
  }
  if (::listen(fd.get(), 16) != 0) {
    return ErrnoStatus(StatusCode::kInternal, "listen");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return ErrnoStatus(StatusCode::kInternal, "getsockname");
  }
  return TcpListener(std::move(fd), ntohs(bound.sin_port));
}

void TcpListener::Close() noexcept {
  if (fd_.valid()) {
    (void)::shutdown(fd_.get(), SHUT_RDWR);
    fd_.Reset();
  }
}

Result<TcpStream> TcpListener::Accept() {
  if (!fd_.valid()) {
    return Status(StatusCode::kUnavailable, "listener closed");
  }
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(FdHandle(client));
    }
    if (errno == EINTR) continue;
    return ErrnoStatus(StatusCode::kUnavailable, "accept");
  }
}

}  // namespace coic::net
