// RAII POSIX sockets (IPv4, blocking I/O).
//
// The live transport deliberately uses blocking sockets with one thread
// per connection: the deployment unit is an edge box serving a handful
// of mobile clients, where thread-per-connection is simpler to reason
// about than an event loop and performs identically. All descriptors are
// owned by FdHandle (Core Guidelines R.1: RAII for every resource).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace coic::net {

/// Owning file descriptor. Move-only; closes on destruction.
class FdHandle {
 public:
  FdHandle() noexcept = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { Reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(other.Release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int get() const noexcept { return fd_; }

  /// Relinquishes ownership.
  int Release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes now (idempotent).
  void Reset() noexcept;

 private:
  int fd_ = -1;
};

/// IPv4 endpoint.
struct SocketAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// A connected TCP stream with exact-length read/write helpers.
class TcpStream {
 public:
  TcpStream() noexcept = default;
  explicit TcpStream(FdHandle fd) noexcept : fd_(std::move(fd)) {}

  /// Connects to `addr` (blocking). TCP_NODELAY is set: the protocol is
  /// request/response and Nagle only adds latency.
  static Result<TcpStream> Connect(const SocketAddress& addr);

  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  /// Writes the entire buffer (loops over partial writes / EINTR).
  Status WriteAll(std::span<const std::uint8_t> data);

  /// Reads exactly `data.size()` bytes. kUnavailable on orderly peer
  /// close at a frame boundary (0 bytes read so far), kDataLoss on close
  /// mid-buffer.
  Status ReadExact(std::span<std::uint8_t> data);

  /// Half-closes the write side, unblocking a peer's read loop.
  void ShutdownWrite() noexcept;

  /// Shuts down both directions, unblocking any thread parked in recv()
  /// on this stream (used by server shutdown paths).
  void ShutdownBoth() noexcept;

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }

 private:
  FdHandle fd_;
};

/// A listening TCP socket.
class TcpListener {
 public:
  /// Binds and listens on `addr` with SO_REUSEADDR; port 0 picks an
  /// ephemeral port (read back via bound_port()).
  static Result<TcpListener> Bind(const SocketAddress& addr);

  /// Blocks until a client connects. kUnavailable once Close() is called.
  Result<TcpStream> Accept();

  [[nodiscard]] std::uint16_t bound_port() const noexcept { return port_; }

  /// Unblocks pending Accept calls and closes the socket. (Plain close()
  /// does NOT wake a thread blocked in accept() on Linux; shutdown()
  /// does, making Accept return with an error.)
  void Close() noexcept;

 private:
  TcpListener(FdHandle fd, std::uint16_t port) noexcept
      : fd_(std::move(fd)), port_(port) {}

  FdHandle fd_;
  std::uint16_t port_ = 0;
};

}  // namespace coic::net
