#include "netsim/chaos.h"

#include <string>
#include <utility>

#include "common/log.h"

namespace coic::netsim {

ChaosEngine::ChaosEngine(EventScheduler& sched, ChaosBinding binding,
                         obs::MetricsRegistry* metrics,
                         obs::RequestTracer* tracer)
    : sched_(sched),
      binding_(std::move(binding)),
      metrics_(metrics),
      tracer_(tracer) {}

void ChaosEngine::Record(const char* counter, const char* mark,
                         std::uint32_t track) {
  ++events_fired_;
  if (metrics_ != nullptr) {
    ++metrics_->GetCounter(std::string("fault.") + counter);
  }
  if (tracer_ != nullptr) tracer_->Mark(track, mark, sched_.now());
}

void ChaosEngine::Apply(FaultSchedule schedule) {
  const SimTime now = sched_.now();

  for (const FaultSchedule::Crash& crash : schedule.crashes) {
    COIC_CHECK_MSG(binding_.venue_links != nullptr,
                   "crash schedule needs a venue_links binding");
    COIC_CHECK_MSG(crash.down_at >= now, "crash lies in the simulated past");
    COIC_CHECK_MSG(!crash.restart || crash.up_at > crash.down_at,
                   "crash restart must come after the crash");
    COIC_CHECK_MSG(!crash.wipe_cache || binding_.wipe_cache != nullptr,
                   "cache wipe needs a wipe_cache binding");
    sched_.ScheduleAt(crash.down_at, [this, crash] {
      binding_.venue_links(crash.venue,
                           [](Link& link) { link.SetDown(true); });
      Record("crashes", "fault-crash", crash.venue);
    });
    if (!crash.restart) continue;
    sched_.ScheduleAt(crash.up_at, [this, crash] {
      if (crash.wipe_cache) {
        binding_.wipe_cache(crash.venue);
        Record("cache_wipes", "fault-cache-wipe", crash.venue);
      }
      binding_.venue_links(crash.venue,
                           [](Link& link) { link.SetDown(false); });
      Record("restarts", "fault-restart", crash.venue);
    });
  }

  for (const FaultSchedule::Partition& part : schedule.partitions) {
    COIC_CHECK_MSG(binding_.cut_links != nullptr,
                   "partition schedule needs a cut_links binding");
    COIC_CHECK_MSG(!part.island.empty(), "partition island must be nonempty");
    COIC_CHECK_MSG(part.at >= now, "partition lies in the simulated past");
    COIC_CHECK_MSG(part.heal_at > part.at,
                   "partition heal must come after the cut");
    sched_.ScheduleAt(part.at, [this, island = part.island] {
      binding_.cut_links(island, [](Link& link) { link.SetDown(true); });
      Record("partitions", "fault-partition", 0);
    });
    sched_.ScheduleAt(part.heal_at, [this, island = part.island] {
      binding_.cut_links(island, [](Link& link) { link.SetDown(false); });
      Record("heals", "fault-heal", 0);
    });
  }

  for (FaultSchedule::Brownout& brownout : schedule.brownouts) {
    COIC_CHECK_MSG(binding_.wan_links != nullptr,
                   "brownout schedule needs a wan_links binding");
    COIC_CHECK_MSG(!brownout.steps.empty(), "brownout without steps");
    // The steps themselves ride LinkConditionScheduler (which validates
    // ordering); the engine adds one fault event at activation.
    sched_.ScheduleAt(brownout.steps.front().at, [this, venue = brownout.venue] {
      Record("brownouts", "fault-brownout", venue);
    });
    binding_.wan_links(brownout.venue, [this, &brownout](Link& link) {
      LinkConditionScheduler::Apply(sched_, link, brownout.steps);
    });
  }

  for (const FaultSchedule::LossBurst& burst : schedule.loss_bursts) {
    COIC_CHECK_MSG(binding_.all_links != nullptr,
                   "loss-burst schedule needs an all_links binding");
    COIC_CHECK_MSG(burst.at >= now, "loss burst lies in the simulated past");
    COIC_CHECK_MSG(burst.end_at > burst.at,
                   "loss burst must end after it starts");
    GilbertElliottConfig model = burst.model;
    model.enabled = true;
    sched_.ScheduleAt(burst.at, [this, model] {
      binding_.all_links([&model](Link& link) { link.SetBurstLoss(model); });
      Record("loss_bursts", "fault-loss-burst", 0);
    });
    sched_.ScheduleAt(burst.end_at, [this] {
      binding_.all_links(
          [](Link& link) { link.SetBurstLoss(GilbertElliottConfig{}); });
      Record("loss_burst_ends", "fault-loss-burst-end", 0);
    });
  }
}

}  // namespace coic::netsim
