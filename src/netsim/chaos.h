// Chaos schedule engine — declarative, deterministic fault injection.
//
// The paper's testbed reshapes links with `tc` between runs; a
// production edge must survive faults *mid-run*. A FaultSchedule scripts
// compound fault scenarios — edge crash/restart, topology partitions,
// WAN brownouts, bursty-loss windows — and ChaosEngine arms every event
// through the EventScheduler, so identical seeds + schedules replay
// bit-identically (fault events interleave with traffic at exact,
// reproducible instants).
//
// Layering: netsim knows links, not venues. The substrate owner
// (FederationPipeline) hands the engine a ChaosBinding that resolves
// venue-scoped groups ("all of venue 2's links", "links crossing the
// partition") to directed Links and owns side effects like cache wipes.
// Every fault event bumps a `fault.*` counter in the shared
// MetricsRegistry and stamps a global instant mark on the RequestTracer
// timeline, so storms and traces show exactly when the world broke.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "netsim/link.h"
#include "netsim/schedule.h"
#include "netsim/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace coic::netsim {

/// A declarative compound-fault script. Times are absolute sim times and
/// must not lie in the simulated past at Apply.
struct FaultSchedule {
  /// Edge crash: every directed link touching the venue's edge goes down
  /// at `down_at`; at `up_at` the links come back (optionally after the
  /// edge's cache is wiped — a cold restart instead of a warm rejoin).
  struct Crash {
    std::uint32_t venue = 0;
    SimTime down_at;
    SimTime up_at;            ///< Ignored when restart is false.
    bool restart = true;      ///< false = the edge stays dark forever.
    bool wipe_cache = false;  ///< Cold restart: cache cleared on rejoin.
  };

  /// Topology partition: the peer links crossing island <-> complement
  /// go down at `at` and heal at `heal_at`. Client wifi and WAN links
  /// are untouched — each side keeps serving, they just cannot gossip
  /// or probe across the cut.
  struct Partition {
    std::vector<std::uint32_t> island;  ///< Venues cut off from the rest.
    SimTime at;
    SimTime heal_at;
  };

  /// WAN brownout: a LinkConditionScheduler step sequence applied to
  /// both directions of the venue's edge<->cloud links (bandwidth dips,
  /// loss spikes, scripted down/up windows — whatever the steps say).
  struct Brownout {
    std::uint32_t venue = 0;
    std::vector<LinkConditionStep> steps;
  };

  /// Cluster-wide bursty loss: every link switches to the given
  /// Gilbert–Elliott model at `at` and back to pure Bernoulli at
  /// `end_at`.
  struct LossBurst {
    SimTime at;
    SimTime end_at;
    GilbertElliottConfig model;  ///< `enabled` is forced true at `at`.
  };

  std::vector<Crash> crashes;
  std::vector<Partition> partitions;
  std::vector<Brownout> brownouts;
  std::vector<LossBurst> loss_bursts;

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && partitions.empty() && brownouts.empty() &&
           loss_bursts.empty();
  }
};

/// How the engine reaches the substrate it faults. Only the resolvers a
/// schedule actually needs must be set (Apply CHECKs).
struct ChaosBinding {
  using LinkVisitor = std::function<void(Link&)>;

  /// Visits every directed link touching `venue`'s edge node (wifi both
  /// directions per mobile, WAN both directions, peer links both
  /// directions).
  std::function<void(std::uint32_t venue, const LinkVisitor&)> venue_links;
  /// Visits the directed peer links crossing island <-> complement.
  std::function<void(const std::vector<std::uint32_t>& island,
                     const LinkVisitor&)>
      cut_links;
  /// Visits the venue's edge<->cloud links (both directions).
  std::function<void(std::uint32_t venue, const LinkVisitor&)> wan_links;
  /// Visits every directed link in the cluster.
  std::function<void(const LinkVisitor&)> all_links;
  /// Clears the venue's edge cache (crash-with-cold-restart semantics).
  std::function<void(std::uint32_t venue)> wipe_cache;
};

class ChaosEngine {
 public:
  /// `metrics` and `tracer` may be null (no counters / no marks).
  ChaosEngine(EventScheduler& sched, ChaosBinding binding,
              obs::MetricsRegistry* metrics, obs::RequestTracer* tracer);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Validates `schedule` and arms every fault event on the scheduler.
  /// The engine must outlive the run (events call back into it).
  void Apply(FaultSchedule schedule);

  /// Fault events fired so far (crashes + restarts + partitions + heals
  /// + brownouts + bursts + wipes) — a cheap liveness probe for tests.
  [[nodiscard]] std::uint64_t events_fired() const noexcept {
    return events_fired_;
  }

 private:
  /// Bumps `fault.<name>` and stamps a "fault-…" instant mark.
  void Record(const char* counter, const char* mark, std::uint32_t track);

  EventScheduler& sched_;
  ChaosBinding binding_;
  obs::MetricsRegistry* metrics_;
  obs::RequestTracer* tracer_;
  std::uint64_t events_fired_ = 0;
};

}  // namespace coic::netsim
