#include "netsim/link.h"

#include <utility>

namespace coic::netsim {

Link::Link(EventScheduler& sched, std::string name, LinkConfig config)
    : sched_(sched), name_(std::move(name)), config_(config), rng_(config.seed) {
  COIC_CHECK_MSG(config.bandwidth.bps() > 0, "link bandwidth must be positive");
  COIC_CHECK_MSG(config.loss_rate >= 0 && config.loss_rate < 1,
                 "loss rate must be in [0, 1)");
}

void Link::DrainSerialized() const noexcept {
  const SimTime now = sched_.now();
  while (!serializing_.empty() && serializing_.front().done_at <= now) {
    COIC_CHECK(backlog_bytes_ >= serializing_.front().size);
    backlog_bytes_ -= serializing_.front().size;
    serializing_.pop_front();
  }
}

void Link::Send(Frame payload, DeliverFn on_delivered, DropFn on_dropped) {
  SendImpl(std::move(payload), Frame(), std::move(on_delivered),
           std::move(on_dropped));
}

void Link::SendGather(Frame head, Frame tail, DeliverFn on_delivered,
                      DropFn on_dropped) {
  COIC_CHECK_MSG(!tail.empty(), "gather send without a tail segment");
  SendImpl(std::move(head), std::move(tail), std::move(on_delivered),
           std::move(on_dropped));
}

namespace {

/// Joins a gather pair into the single contiguous frame the receiver
/// sees. Models the receiver's socket read materializing the writev'd
/// bytes, so it is deliberately not counted in frame_stats() (the same
/// convention as ByteWriter encode copies).
/// `head` is taken by value: the delivery path moves it in, so a plain
/// (tail-less) send hands the receiver the sender's reference itself —
/// the handler may then mutate a uniquely-held buffer in place (relay
/// TTL patching) without tripping copy-on-write.
Frame FlattenGather(Frame head, const Frame& tail) {
  if (tail.empty()) return head;
  ByteWriter w(head.size() + tail.size());
  w.WriteRaw(head.span());
  w.WriteRaw(tail.span());
  return Frame(w.TakeBytes());
}

}  // namespace

Link::Admission Link::Admit(Bytes size) {
  const SimTime now = sched_.now();
  const SimTime start = std::max(now, busy_until_);
  const Duration tx = config_.bandwidth.TransmitTime(size);
  busy_until_ = start + tx;
  backlog_bytes_ += size;
  ++stats_.frames_sent;
  stats_.busy_time += tx;

  // Forced drops (test seam / link down) take precedence but still
  // consume the frame's ordinary loss draws, so injecting one never
  // shifts which of the surrounding frames the loss processes kill.
  Admission a;
  a.down = down_;
  a.forced = a.down;
  if (!a.forced && force_drop_next_ > 0) {
    if (force_drop_skip_ > 0) {
      --force_drop_skip_;
    } else {
      --force_drop_next_;
      a.forced = true;
    }
  }
  bool random_loss = config_.loss_rate > 0 && rng_.NextBool(config_.loss_rate);
  if (config_.burst_loss.enabled) {
    // Gilbert–Elliott chain: one transition draw, then the per-state
    // loss draw, both per accepted frame.
    const double flip = burst_bad_ ? config_.burst_loss.bad_to_good
                                   : config_.burst_loss.good_to_bad;
    if (flip > 0 && rng_.NextBool(flip)) burst_bad_ = !burst_bad_;
    const double p = burst_bad_ ? config_.burst_loss.bad_loss_rate
                                : config_.burst_loss.good_loss_rate;
    if (p > 0 && rng_.NextBool(p)) random_loss = true;
  }
  a.lost = a.forced || random_loss;
  Duration extra = config_.propagation;
  if (config_.jitter > Duration::Zero()) {
    extra += Duration::Micros(static_cast<std::int64_t>(
        rng_.NextDouble() * static_cast<double>(config_.jitter.micros())));
  }
  const SimTime serialized_at = busy_until_;
  a.deliver_at = serialized_at + extra;

  // Queue space frees at serialization completion; drained lazily at the
  // next Send/backlog call instead of costing a scheduled event.
  serializing_.push_back({serialized_at, size});
  return a;
}

void Link::SendImpl(Frame head, Frame tail, DeliverFn on_delivered,
                    DropFn on_dropped) {
  COIC_CHECK(on_delivered != nullptr);
  const Bytes size = head.size() + tail.size();

  DrainSerialized();
  if (config_.queue_capacity != 0 &&
      backlog_bytes_ + size > config_.queue_capacity) {
    ++stats_.frames_dropped_queue;
    if (on_dropped) {
      on_dropped(DropReason::kQueueOverflow, FlattenGather(head, tail));
    }
    return;
  }

  const Admission a = Admit(size);

  // Delivery (or loss) after propagation — the only scheduled event.
  auto deliver = [this, size, a, head = std::move(head),
                  tail = std::move(tail),
                  on_delivered = std::move(on_delivered),
                  on_dropped = std::move(on_dropped)]() mutable {
    if (a.lost) {
      ++stats_.frames_dropped_loss;
      if (a.down) ++stats_.frames_dropped_down;
      if (on_dropped) {
        const DropReason reason = a.down      ? DropReason::kLinkDown
                                  : a.forced ? DropReason::kForced
                                             : DropReason::kRandomLoss;
        on_dropped(reason, FlattenGather(head, tail));
      }
      return;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += size;
    on_delivered(FlattenGather(std::move(head), tail));
  };
  sched_.ScheduleAt(a.deliver_at, std::move(deliver));
}

void Link::SendTimed(Frame payload, TimedDeliverFn on_delivered,
                     DropFn on_dropped) {
  COIC_CHECK(on_delivered != nullptr);
  const Bytes size = payload.size();

  DrainSerialized();
  if (config_.queue_capacity != 0 &&
      backlog_bytes_ + size > config_.queue_capacity) {
    ++stats_.frames_dropped_queue;
    if (on_dropped) on_dropped(DropReason::kQueueOverflow, std::move(payload));
    return;
  }

  const Admission a = Admit(size);
  if (a.lost) {
    // Loss bookkeeping lands at send time here (at delivery time on the
    // event path); final counter totals are identical either way.
    ++stats_.frames_dropped_loss;
    if (a.down) ++stats_.frames_dropped_down;
    if (on_dropped) {
      const DropReason reason = a.down      ? DropReason::kLinkDown
                                : a.forced ? DropReason::kForced
                                           : DropReason::kRandomLoss;
      on_dropped(reason, std::move(payload));
    }
    return;
  }
  ++stats_.frames_delivered;
  stats_.bytes_delivered += size;
  on_delivered(a.deliver_at, std::move(payload));
}

double Link::Utilization() const noexcept {
  const std::int64_t elapsed = sched_.now().micros();
  if (elapsed <= 0) return 0;
  const double busy = static_cast<double>(stats_.busy_time.micros());
  const double util = busy / static_cast<double>(elapsed);
  return util > 1.0 ? 1.0 : util;
}

}  // namespace coic::netsim
