// Point-to-point link model.
//
// A Link is a unidirectional pipe with the classic store-and-forward
// delay decomposition the paper's testbed exhibits physically:
//
//   delivery = serialization (bytes*8/bandwidth, FIFO behind earlier
//              frames) + propagation + (optional) jitter
//
// plus a byte-capacity drop-tail queue and Bernoulli loss, which is what
// `tc netem`/`tbf` impose in the paper's experiment ("We use tc to tune
// the network condition to simulate real wireless/mobile network").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/frame.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "netsim/scheduler.h"

namespace coic::netsim {

/// Why a frame failed to deliver.
enum class DropReason : std::uint8_t {
  kQueueOverflow = 0,  ///< Drop-tail: queue byte capacity exceeded.
  kRandomLoss = 1,     ///< Bernoulli or burst (Gilbert–Elliott) wire loss.
  kForced = 2,         ///< ForceDropNext test seam.
  kLinkDown = 3,       ///< Link was down (crash/partition outage).
};

/// Two-state Gilbert–Elliott bursty-loss model. The chain steps once per
/// frame accepted for transmission: first the state-transition draw,
/// then a per-state Bernoulli loss draw. Complements (does not replace)
/// LinkConfig::loss_rate — both processes can be active; a frame is lost
/// if either kills it. All draws come from the link's seeded Rng, so a
/// given seed + send sequence replays bit-identically.
struct GilbertElliottConfig {
  bool enabled = false;
  double good_to_bad = 0.0;     ///< P(good -> bad) per frame.
  double bad_to_good = 0.0;     ///< P(bad -> good) per frame.
  double good_loss_rate = 0.0;  ///< Loss probability while in good state.
  double bad_loss_rate = 0.0;   ///< Loss probability while in bad state.
};

struct LinkConfig {
  Bandwidth bandwidth = Bandwidth::Mbps(100);
  Duration propagation = Duration::Millis(2);
  /// Byte capacity of the drop-tail queue of frames that have not yet
  /// begun serialization. 0 means unlimited (the Figure 2a/2b latency
  /// experiments use unlimited queues, as the testbed's buffers never
  /// overflowed at one-request-at-a-time load).
  Bytes queue_capacity = 0;
  /// Bernoulli per-frame loss probability in [0, 1).
  double loss_rate = 0;
  /// Uniform extra delay in [0, jitter] added to propagation.
  Duration jitter = Duration::Zero();
  /// Seed for loss/jitter draws (loss and jitter are deterministic given
  /// the seed and send sequence).
  std::uint64_t seed = 0x51CA9E;
  /// Optional bursty-loss overlay on top of the Bernoulli draw.
  GilbertElliottConfig burst_loss;
};

/// Aggregate link counters (exact, not sampled).
struct LinkStats {
  std::uint64_t frames_sent = 0;      ///< Accepted for transmission.
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped_queue = 0;
  std::uint64_t frames_dropped_loss = 0;
  /// Subset of frames_dropped_loss killed because the link was down —
  /// outage loss stays attributable next to wire loss in snapshots.
  std::uint64_t frames_dropped_down = 0;
  Bytes bytes_delivered = 0;
  Duration busy_time = Duration::Zero();  ///< Total serialization time.
};

class Link {
 public:
  /// Payloads travel as refcounted Frames: a broadcast sender hands the
  /// same buffer to every link, and delivery moves the reference to the
  /// receiving handler without ever copying the bytes.
  using DeliverFn = std::function<void(Frame payload)>;
  using DropFn = std::function<void(DropReason, Frame payload)>;

  Link(EventScheduler& sched, std::string name, LinkConfig config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Queues `payload` for transmission. `on_delivered` runs at delivery
  /// time with the payload moved in; `on_dropped` (optional) runs
  /// immediately on queue overflow or at would-be delivery time on loss.
  void Send(Frame payload, DeliverFn on_delivered, DropFn on_dropped = nullptr);

  /// Conservative-PDES form of Send for cross-shard traffic: runs the
  /// exact admission path of Send (queue capacity, serialization FIFO,
  /// loss and jitter draws, in the same rng order), but instead of
  /// scheduling the delivery event it synchronously hands `on_delivered`
  /// the computed delivery time together with the frame, at send time.
  /// The sharded Network forwards the pair to the owning shard, which
  /// schedules the arrival on its own clock — the handoff must happen at
  /// send time so the receiver learns of the frame one full lookahead
  /// window before it is due. Lost frames never reach `on_delivered`;
  /// `on_dropped` and the loss counters fire at send time instead of at
  /// would-be delivery time, which shifts bookkeeping, never an outcome.
  using TimedDeliverFn = std::function<void(SimTime deliver_at, Frame payload)>;
  void SendTimed(Frame payload, TimedDeliverFn on_delivered,
                 DropFn on_dropped = nullptr);

  /// Scatter-gather form of Send: transmits `head` and `tail` as one
  /// frame of head.size() + tail.size() bytes (one serialization slot,
  /// one loss draw, one delivery), flattening them into a single buffer
  /// only at delivery time — the simulator analogue of writev(2) into
  /// the receiver's socket read buffer. Lets a sender fuse a tiny
  /// per-request header with a large shared payload without copying the
  /// payload on its own hot path; the delivery-side flatten is receive
  /// materialization, not a sender copy, so it is not counted in
  /// frame_stats() (the same convention as ByteWriter encodes).
  void SendGather(Frame head, Frame tail, DeliverFn on_delivered,
                  DropFn on_dropped = nullptr);

  /// Reconfigures bandwidth/propagation on the fly (the `tc` analogue —
  /// the bench sweeps call this between conditions). In-flight frames
  /// keep the schedule they were assigned at send time.
  void SetBandwidth(Bandwidth bw) noexcept { config_.bandwidth = bw; }
  void SetPropagation(Duration d) noexcept { config_.propagation = d; }
  void SetLossRate(double p) noexcept { config_.loss_rate = p; }

  /// Switches the Gilbert–Elliott bursty-loss overlay on/off mid-run
  /// (the chaos engine's loss-burst lever). The chain state resets to
  /// good on every reconfiguration so a burst window always starts from
  /// the same state regardless of earlier bursts.
  void SetBurstLoss(const GilbertElliottConfig& ge) noexcept {
    config_.burst_loss = ge;
    burst_bad_ = false;
  }

  /// Deterministic loss seam for tests: the next `n` frames accepted for
  /// transmission are dropped (DropReason::kForced) at their would-be
  /// delivery time, independent of loss_rate.
  void ForceDropNext(std::uint64_t n = 1) noexcept { force_drop_next_ += n; }

  /// Like ForceDropNext, but lets `skip` frames through first — targets
  /// a specific frame of an already-queued burst (e.g. the middle chunk
  /// of a datagram train, which a prefix counter cannot reach).
  void ForceDropAfter(std::uint64_t skip, std::uint64_t n = 1) noexcept {
    force_drop_skip_ += skip;
    force_drop_next_ += n;
  }

  /// Takes the link down (every frame sent while down is dropped with
  /// DropReason::kLinkDown) or back up — the crash/partition seam for
  /// the edge-failure scenarios. Frames already in flight still deliver.
  /// State *transitions* notify the down observer (see SetDownObserver).
  void SetDown(bool down) {
    if (down_ == down) return;
    down_ = down;
    if (down_observer_) down_observer_(down);
  }
  [[nodiscard]] bool down() const noexcept { return down_; }

  /// Observer invoked on every up<->down transition (with the new state).
  /// The Network installs one per link to flush datagram reassembly
  /// state when a crash/partition takes the link down mid-train —
  /// without it a Partial whose tail chunks died with the link leaks
  /// until the next message on that directed pair.
  using DownObserver = std::function<void(bool down)>;
  void SetDownObserver(DownObserver observer) {
    down_observer_ = std::move(observer);
  }

  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Bytes accepted but not yet fully serialized.
  [[nodiscard]] Bytes backlog() const noexcept {
    DrainSerialized();
    return backlog_bytes_;
  }

  /// Link utilization over the sim so far: busy serialization time / now.
  [[nodiscard]] double Utilization() const noexcept;

 private:
  /// Retires frames whose serialization completed by now(). Backlog is
  /// maintained lazily (drained at Send and backlog() queries) instead of
  /// via a scheduled event per frame — that event was half of all link
  /// events and pure bookkeeping, which caps open-loop replay speed.
  void DrainSerialized() const noexcept;

  struct Serializing {
    SimTime done_at;
    Bytes size;
  };

  /// Outcome of admitting one frame for transmission: the loss draws and
  /// the computed delivery time. Shared by the event-scheduling (Send)
  /// and synchronous (SendTimed) delivery paths so both consume the rng
  /// identically.
  struct Admission {
    bool lost = false;
    bool forced = false;
    bool down = false;
    SimTime deliver_at;
  };

  /// Books `size` bytes through the serialization FIFO, runs the forced/
  /// Bernoulli/burst loss draws and the jitter draw (in that order), and
  /// returns the verdict. Updates frames_sent/busy_time/backlog.
  Admission Admit(Bytes size);

  /// Shared body of Send/SendGather; `tail` is empty for plain sends.
  void SendImpl(Frame head, Frame tail, DeliverFn on_delivered,
                DropFn on_dropped);

  EventScheduler& sched_;
  std::string name_;
  LinkConfig config_;
  LinkStats stats_;
  Rng rng_;
  DownObserver down_observer_;
  std::uint64_t force_drop_next_ = 0;
  std::uint64_t force_drop_skip_ = 0;
  bool down_ = false;
  bool burst_bad_ = false;  ///< Gilbert–Elliott chain state (bad = bursty).
  SimTime busy_until_ = SimTime::Epoch();
  /// In-serialization frames, FIFO by done_at (busy_until_ is monotone).
  mutable std::deque<Serializing> serializing_;
  mutable Bytes backlog_bytes_ = 0;
};

}  // namespace coic::netsim
