#include "netsim/network.h"

#include <algorithm>
#include <memory>

#include "proto/envelope.h"

namespace coic::netsim {

NodeId Network::AddNode(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeState{std::move(name), nullptr});
  return id;
}

void Network::SetHandler(NodeId node, MessageHandler handler) {
  COIC_CHECK(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void Network::Connect(NodeId a, NodeId b, const LinkConfig& a_to_b,
                      const LinkConfig& b_to_a) {
  ConnectOneWay(a, b, a_to_b);
  ConnectOneWay(b, a, b_to_a);
}

void Network::ConnectOneWay(NodeId from, NodeId to, const LinkConfig& config) {
  COIC_CHECK(from < nodes_.size() && to < nodes_.size());
  COIC_CHECK_MSG(from != to, "self-links are not supported");
  COIC_CHECK_MSG(links_.count(EdgeKey(from, to)) == 0,
                 "nodes already connected");
  // Decorrelate the loss/jitter rng per directed link: many links are
  // stamped from one shared LinkConfig (every wifi link, every peer link
  // of a regular topology), and with a shared seed they would drop
  // exactly the same frame indices — every probe of a broadcast round
  // lost together, which no real network exhibits. Links that never draw
  // (loss 0, jitter 0) are unaffected. The mix depends only on the
  // directed pair, so per-shard networks (which build one direction per
  // link) seed identically to the single-thread engine.
  LinkConfig mixed = config;
  mixed.seed ^= 0x9E3779B97F4A7C15ULL * (EdgeKey(from, to) + 1);
  auto link = std::make_unique<Link>(
      sched_, nodes_[from].name + "->" + nodes_[to].name, mixed);
  // A crash/partition that takes the link down kills the tail of any
  // datagram train mid-flight; drop the receiver's partial immediately
  // instead of leaking it until the next message on this pair (which,
  // after a crash, may never come).
  link->SetDownObserver([this, from, to](bool down) {
    if (down) FlushPartial(from, to);
  });
  links_[EdgeKey(from, to)] = std::move(link);
}

void Network::MarkRemote(NodeId node) {
  COIC_CHECK(node < nodes_.size());
  nodes_[node].remote = true;
}

Link& Network::LinkBetween(NodeId from, NodeId to) {
  const auto it = links_.find(EdgeKey(from, to));
  COIC_CHECK_MSG(it != links_.end(), "nodes are not adjacent");
  return *it->second;
}

bool Network::Adjacent(NodeId from, NodeId to) const {
  return links_.count(EdgeKey(from, to)) > 0;
}

void Network::EnableDatagram(Bytes mtu) {
  COIC_CHECK_MSG(mtu > 0, "datagram mtu must be positive");
  datagram_.enabled = true;
  datagram_.mtu = mtu;
}

void Network::Dispatch(NodeId from, NodeId to, Frame payload) {
  COIC_CHECK(to < nodes_.size());
  COIC_CHECK_MSG(!nodes_[to].remote,
                 "local dispatch to a remote node (send path missed the "
                 "remote divert)");
  auto& handler = nodes_[to].handler;
  COIC_CHECK_MSG(handler != nullptr,
                 "frame delivered to node without a handler");
  handler(from, std::move(payload));
}

void Network::DeliverRemote(NodeId from, NodeId to, Frame payload) {
  COIC_CHECK(to < nodes_.size());
  COIC_CHECK_MSG(!nodes_[to].remote,
                 "cross-shard frame arrived at a node this shard does not own");
  auto& handler = nodes_[to].handler;
  COIC_CHECK_MSG(handler != nullptr,
                 "frame delivered to node without a handler");
  handler(from, std::move(payload));
}

void Network::FlushPartial(NodeId from, NodeId to) {
  const auto it = partials_.find(EdgeKey(from, to));
  if (it == partials_.end()) return;
  ++datagram_stats_.partials_discarded;
  partials_.erase(it);
}

void Network::Send(NodeId from, NodeId to, Frame payload,
                   Link::DropFn on_dropped) {
  if (datagram_.enabled && payload.size() > datagram_.mtu) {
    SendChunked(from, to, std::move(payload), std::move(on_dropped));
    return;
  }
  Link& link = LinkBetween(from, to);
  if (nodes_[to].remote) {
    COIC_CHECK_MSG(remote_dispatch_ != nullptr,
                   "send to a remote node without a dispatch hook");
    link.SendTimed(std::move(payload),
                   [this, from, to](SimTime at, Frame delivered) {
                     remote_dispatch_(from, to, at, std::move(delivered));
                   },
                   std::move(on_dropped));
    return;
  }
  link.Send(std::move(payload),
            [this, from, to](Frame delivered) {
              Dispatch(from, to, std::move(delivered));
            },
            std::move(on_dropped));
}

void Network::SendGather(NodeId from, NodeId to, Frame head, Frame tail,
                         Link::DropFn on_dropped) {
  if (datagram_.enabled && head.size() + tail.size() > datagram_.mtu) {
    // Over-MTU gather falls back to flatten + fragment (receive-side
    // materialization would have fused the segments anyway).
    ByteWriter w(head.size() + tail.size());
    w.WriteRaw(head.span());
    w.WriteRaw(tail.span());
    SendChunked(from, to, Frame(w.TakeBytes()), std::move(on_dropped));
    return;
  }
  if (nodes_[to].remote) {
    // Cross-shard gather flattens eagerly: the segments would be fused
    // at receive time anyway, and the timed handoff wants one frame.
    ByteWriter w(head.size() + tail.size());
    w.WriteRaw(head.span());
    w.WriteRaw(tail.span());
    Send(from, to, Frame(w.TakeBytes()), std::move(on_dropped));
    return;
  }
  Link& link = LinkBetween(from, to);
  link.SendGather(std::move(head), std::move(tail),
                  [this, from, to](Frame delivered) {
                    Dispatch(from, to, std::move(delivered));
                  },
                  std::move(on_dropped));
}

void Network::SendChunked(NodeId from, NodeId to, Frame payload,
                          Link::DropFn on_dropped) {
  Link& link = LinkBetween(from, to);
  const std::uint64_t seq = ++next_seq_[EdgeKey(from, to)];
  const std::size_t total = payload.size();
  const std::size_t mtu = datagram_.mtu;
  const std::size_t count = (total + mtu - 1) / mtu;
  COIC_CHECK_MSG(count <= 0xFFFF, "payload needs more than 65535 chunks");

  ++datagram_stats_.messages_fragmented;

  // The caller's drop handler fires at most once, with the original
  // (unfragmented) payload — losing any chunk loses the whole message.
  std::shared_ptr<bool> reported;
  Link::DropFn chunk_drop;
  if (on_dropped) {
    reported = std::make_shared<bool>(false);
    chunk_drop = [reported, payload, on_dropped = std::move(on_dropped)](
                     DropReason reason, Frame /*chunk*/) {
      if (*reported) return;
      *reported = true;
      on_dropped(reason, payload);
    };
  }

  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off = i * mtu;
    const std::size_t len = std::min(mtu, total - off);
    // Hand-rolled chunk encode: envelope header + index/count + blob,
    // written straight from the payload slice (no DatagramChunk struct
    // detour, no intermediate ByteVec).
    ByteWriter w(proto::kEnvelopeHeaderSize + 2 + 2 + 4 + len);
    proto::AppendEnvelopeHeader(w, proto::MessageType::kDatagramChunk, seq, 0);
    w.WriteU16(static_cast<std::uint16_t>(i));
    w.WriteU16(static_cast<std::uint16_t>(count));
    w.WriteBlob(payload.span().subspan(off, len));
    w.PatchU32(16, static_cast<std::uint32_t>(w.size() -
                                              proto::kEnvelopeHeaderSize));
    ++datagram_stats_.chunks_sent;
    if (nodes_[to].remote) {
      // Chunk trains to a remote node reassemble here on the sender's
      // shard, synchronously in send order (links are FIFO, so send
      // order is delivery order); the completed message rides the
      // remote hook stamped with the last chunk's delivery time.
      link.SendTimed(Frame(w.TakeBytes()),
                     [this, from, to](SimTime at, Frame delivered) {
                       OnChunkDelivered(from, to, delivered, at);
                     },
                     chunk_drop);
    } else {
      link.Send(Frame(w.TakeBytes()),
                [this, from, to](Frame delivered) {
                  OnChunkDelivered(from, to, delivered, sched_.now());
                },
                chunk_drop);
    }
  }
}

void Network::OnChunkDelivered(NodeId from, NodeId to,
                               const Frame& chunk_frame, SimTime deliver_at) {
  const auto env = proto::DecodeEnvelopeView(chunk_frame.span());
  COIC_CHECK_MSG(env.ok(), "malformed datagram chunk envelope");
  const auto chunk = proto::DecodePayloadAs<proto::DatagramChunkView>(
      env.value(), proto::MessageType::kDatagramChunk);
  COIC_CHECK_MSG(chunk.ok(), "malformed datagram chunk payload");
  const std::uint64_t seq = env.value().request_id;
  const proto::DatagramChunkView& v = chunk.value();

  const std::uint64_t key = EdgeKey(from, to);
  auto it = partials_.find(key);

  if (v.chunk_index == 0) {
    // First chunk of a message. An active partial here means its tail
    // was lost (links are FIFO) — abandon it.
    if (it != partials_.end()) {
      ++datagram_stats_.partials_discarded;
      partials_.erase(it);
    }
    Partial p;
    p.seq = seq;
    p.next_index = 0;
    p.count = v.chunk_count;
    p.assembled = ByteWriter(static_cast<std::size_t>(v.chunk_count) *
                             v.data.size());
    it = partials_.emplace(key, std::move(p)).first;
  } else if (it == partials_.end() || it->second.seq != seq ||
             it->second.next_index != v.chunk_index ||
             it->second.count != v.chunk_count) {
    // Orphan or out-of-run chunk: some earlier chunk was lost. Drop it,
    // and any partial it no longer continues.
    if (it != partials_.end()) {
      ++datagram_stats_.partials_discarded;
      partials_.erase(it);
    }
    return;
  }

  Partial& p = it->second;
  p.assembled.WriteRaw(v.data);
  ++p.next_index;
  if (p.next_index == p.count) {
    Frame message(p.assembled.TakeBytes());
    partials_.erase(it);
    ++datagram_stats_.messages_reassembled;
    if (nodes_[to].remote) {
      COIC_CHECK_MSG(remote_dispatch_ != nullptr,
                     "send to a remote node without a dispatch hook");
      remote_dispatch_(from, to, deliver_at, std::move(message));
    } else {
      Dispatch(from, to, std::move(message));
    }
  }
}

const std::string& Network::NodeName(NodeId id) const {
  COIC_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

}  // namespace coic::netsim
