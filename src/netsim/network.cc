#include "netsim/network.h"

namespace coic::netsim {

NodeId Network::AddNode(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeState{std::move(name), nullptr});
  return id;
}

void Network::SetHandler(NodeId node, MessageHandler handler) {
  COIC_CHECK(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void Network::Connect(NodeId a, NodeId b, const LinkConfig& a_to_b,
                      const LinkConfig& b_to_a) {
  COIC_CHECK(a < nodes_.size() && b < nodes_.size());
  COIC_CHECK_MSG(a != b, "self-links are not supported");
  COIC_CHECK_MSG(links_.count(EdgeKey(a, b)) == 0, "nodes already connected");
  links_[EdgeKey(a, b)] = std::make_unique<Link>(
      sched_, nodes_[a].name + "->" + nodes_[b].name, a_to_b);
  links_[EdgeKey(b, a)] = std::make_unique<Link>(
      sched_, nodes_[b].name + "->" + nodes_[a].name, b_to_a);
}

Link& Network::LinkBetween(NodeId from, NodeId to) {
  const auto it = links_.find(EdgeKey(from, to));
  COIC_CHECK_MSG(it != links_.end(), "nodes are not adjacent");
  return *it->second;
}

bool Network::Adjacent(NodeId from, NodeId to) const {
  return links_.count(EdgeKey(from, to)) > 0;
}

void Network::Send(NodeId from, NodeId to, Frame payload,
                   Link::DropFn on_dropped) {
  Link& link = LinkBetween(from, to);
  link.Send(std::move(payload),
            [this, from, to](Frame delivered) {
              COIC_CHECK(to < nodes_.size());
              auto& handler = nodes_[to].handler;
              COIC_CHECK_MSG(handler != nullptr,
                             "frame delivered to node without a handler");
              handler(from, std::move(delivered));
            },
            std::move(on_dropped));
}

const std::string& Network::NodeName(NodeId id) const {
  COIC_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

}  // namespace coic::netsim
