// Network topology: named nodes joined by duplex link pairs, with
// handler-based message dispatch.
//
// This is the substrate the CoIC pipelines run on. The three-tier layout
// of the paper (mobile -> edge -> cloud) is just a Network with three
// nodes and two duplex links whose bandwidths are swept per Figure 2a's
// x-axis (B_M->E, B_E->C).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/frame.h"
#include "netsim/link.h"
#include "netsim/scheduler.h"

namespace coic::netsim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/// Receives frames addressed to a node. `from` is the sending node.
using MessageHandler = std::function<void(NodeId from, Frame payload)>;

/// Datagram (unreliable, MTU-bounded) transport mode. Off by default:
/// the reliable mode delivers any frame size in one piece, which is the
/// stream-transport model every pre-loss bench row was measured under.
/// When enabled, frames larger than `mtu` are fragmented into
/// kDatagramChunk envelopes that share a per-directed-pair sequence
/// number; links are FIFO so the receiver reassembles in order, and a
/// lost chunk silently discards the whole message — exactly the UDP
/// failure mode the request-level retry layer above is built to absorb.
struct DatagramConfig {
  bool enabled = false;
  /// Maximum chunk *data* bytes. A frame whose total size is <= mtu
  /// rides unfragmented (no chunk header overhead on small frames).
  Bytes mtu = 16 * 1024;
};

/// Aggregate datagram-mode counters.
struct DatagramStats {
  std::uint64_t messages_fragmented = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t messages_reassembled = 0;
  /// Partials abandoned because a chunk went missing (detected when the
  /// next message's first chunk arrives or a gap breaks the sequence)
  /// or because the link went down mid-train (flushed immediately — a
  /// crashed pair may never see a next message).
  std::uint64_t partials_discarded = 0;
};

class Network {
 public:
  explicit Network(EventScheduler& sched) : sched_(sched) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; name is used in link names and diagnostics.
  NodeId AddNode(std::string name);

  /// Installs (or replaces) the frame handler for `node`.
  void SetHandler(NodeId node, MessageHandler handler);

  /// Connects a and b with a pair of unidirectional links.
  void Connect(NodeId a, NodeId b, const LinkConfig& a_to_b,
               const LinkConfig& b_to_a);

  /// Symmetric convenience overload.
  void Connect(NodeId a, NodeId b, const LinkConfig& both) {
    Connect(a, b, both, both);
  }

  /// Creates only the directed from->to link. The sharded engine builds
  /// each shard's Network with exactly the links whose *sender* the
  /// shard owns; the per-link rng seed mixing is identical to Connect's,
  /// so a sharded cluster draws the same loss/jitter sequence per link
  /// as the single-thread engine.
  void ConnectOneWay(NodeId from, NodeId to, const LinkConfig& config);

  /// Marks `node` as owned by another shard: frames sent to it still run
  /// the full local link model (serialization, loss, jitter), but the
  /// surviving frame is handed to the remote-dispatch hook synchronously
  /// at *send* time, stamped with its computed delivery time — the
  /// conservative-PDES handoff that gives the receiving shard a full
  /// lookahead window of warning. Reassembled datagram trains cross as
  /// one message; chunks never ride the hook.
  void MarkRemote(NodeId node);
  [[nodiscard]] bool IsRemote(NodeId node) const {
    return nodes_.at(node).remote;
  }
  /// One hook per Network: receives (from, to, deliver_at, payload) for
  /// every surviving frame addressed to a remote node. The sharded
  /// engine enqueues it on the owning shard's inbox; that shard
  /// schedules the arrival at deliver_at on its own clock.
  using RemoteDispatchFn =
      std::function<void(NodeId from, NodeId to, SimTime deliver_at,
                         Frame payload)>;
  void SetRemoteDispatch(RemoteDispatchFn fn) {
    remote_dispatch_ = std::move(fn);
  }

  /// Entry point for frames arriving from another shard: invokes `to`'s
  /// local handler directly. The sending shard already modeled the link
  /// (this is the receiving half of the remote-dispatch hook), so no
  /// further delay applies here.
  void DeliverRemote(NodeId from, NodeId to, Frame payload);

  /// The directed link from->to. CHECK-fails if the nodes are not
  /// adjacent; topology is static after setup by design.
  Link& LinkBetween(NodeId from, NodeId to);
  [[nodiscard]] bool Adjacent(NodeId from, NodeId to) const;

  /// Sends `payload` from->to through the connecting link. Delivery
  /// invokes the destination handler at the simulated delivery time.
  /// Drops (loss/overflow) invoke `on_dropped` if provided. The frame is
  /// shared, not copied: broadcast senders pass the same Frame to many
  /// Send calls.
  void Send(NodeId from, NodeId to, Frame payload,
            Link::DropFn on_dropped = nullptr);

  /// Scatter-gather Send: `head` and `tail` travel as one frame without
  /// the sender ever fusing them (see Link::SendGather). Under datagram
  /// mode a combined size above the MTU falls back to flatten+fragment.
  void SendGather(NodeId from, NodeId to, Frame head, Frame tail,
                  Link::DropFn on_dropped = nullptr);

  /// Switches every node pair to datagram transport (see DatagramConfig).
  /// Call during setup, before traffic flows.
  void EnableDatagram(Bytes mtu);
  [[nodiscard]] const DatagramConfig& datagram_config() const noexcept {
    return datagram_;
  }
  [[nodiscard]] const DatagramStats& datagram_stats() const noexcept {
    return datagram_stats_;
  }

  /// Visits every directed link once (stats aggregation in benches and
  /// diagnostics; iteration order is unspecified).
  void ForEachLink(const std::function<void(const Link&)>& fn) const {
    for (const auto& [key, link] : links_) fn(*link);
  }

  /// Mutable visit — the chaos engine's lever for cluster-wide condition
  /// changes (burst-loss windows touch every link at once). Distinct
  /// name: an overload would make const-visitor lambdas ambiguous.
  void ForEachMutableLink(const std::function<void(Link&)>& fn) {
    for (auto& [key, link] : links_) fn(*link);
  }

  [[nodiscard]] const std::string& NodeName(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] EventScheduler& scheduler() noexcept { return sched_; }

 private:
  struct NodeState {
    std::string name;
    MessageHandler handler;
    /// Owned by another shard: deliveries route via remote_dispatch_.
    bool remote = false;
  };

  /// In-progress reassembly for one directed pair. Links are FIFO, so at
  /// most one message is ever mid-reassembly per pair; anything that
  /// breaks the in-order chunk run means loss, and the partial is
  /// discarded.
  struct Partial {
    std::uint64_t seq = 0;
    std::uint16_t next_index = 0;
    std::uint16_t count = 0;
    ByteWriter assembled;
  };

  static std::uint64_t EdgeKey(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Delivers a frame to `to`'s local handler (terminal step of every
  /// local Send; remote destinations divert to the hook before this).
  void Dispatch(NodeId from, NodeId to, Frame payload);

  /// Fragments `payload` into kDatagramChunk frames on the from->to link.
  void SendChunked(NodeId from, NodeId to, Frame payload,
                   Link::DropFn on_dropped);

  /// Feeds a delivered kDatagramChunk into the pair's reassembly state;
  /// dispatches the original message when the last chunk lands (to the
  /// remote hook, stamped `deliver_at`, when `to` is remote — chunk
  /// trains reassemble entirely on the sender's shard).
  void OnChunkDelivered(NodeId from, NodeId to, const Frame& chunk_frame,
                        SimTime deliver_at);

  /// Abandons the directed pair's in-progress reassembly (link went
  /// down: the train's remaining chunks are dead). Counted in
  /// partials_discarded.
  void FlushPartial(NodeId from, NodeId to);

  EventScheduler& sched_;
  std::vector<NodeState> nodes_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  RemoteDispatchFn remote_dispatch_;
  DatagramConfig datagram_;
  DatagramStats datagram_stats_;
  /// Per directed pair: next fragmentation sequence number (sender side)
  /// and the current partial (receiver side).
  std::unordered_map<std::uint64_t, std::uint64_t> next_seq_;
  std::unordered_map<std::uint64_t, Partial> partials_;
};

}  // namespace coic::netsim
