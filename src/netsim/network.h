// Network topology: named nodes joined by duplex link pairs, with
// handler-based message dispatch.
//
// This is the substrate the CoIC pipelines run on. The three-tier layout
// of the paper (mobile -> edge -> cloud) is just a Network with three
// nodes and two duplex links whose bandwidths are swept per Figure 2a's
// x-axis (B_M->E, B_E->C).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/frame.h"
#include "netsim/link.h"
#include "netsim/scheduler.h"

namespace coic::netsim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/// Receives frames addressed to a node. `from` is the sending node.
using MessageHandler = std::function<void(NodeId from, Frame payload)>;

class Network {
 public:
  explicit Network(EventScheduler& sched) : sched_(sched) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; name is used in link names and diagnostics.
  NodeId AddNode(std::string name);

  /// Installs (or replaces) the frame handler for `node`.
  void SetHandler(NodeId node, MessageHandler handler);

  /// Connects a and b with a pair of unidirectional links.
  void Connect(NodeId a, NodeId b, const LinkConfig& a_to_b,
               const LinkConfig& b_to_a);

  /// Symmetric convenience overload.
  void Connect(NodeId a, NodeId b, const LinkConfig& both) {
    Connect(a, b, both, both);
  }

  /// The directed link from->to. CHECK-fails if the nodes are not
  /// adjacent; topology is static after setup by design.
  Link& LinkBetween(NodeId from, NodeId to);
  [[nodiscard]] bool Adjacent(NodeId from, NodeId to) const;

  /// Sends `payload` from->to through the connecting link. Delivery
  /// invokes the destination handler at the simulated delivery time.
  /// Drops (loss/overflow) invoke `on_dropped` if provided. The frame is
  /// shared, not copied: broadcast senders pass the same Frame to many
  /// Send calls.
  void Send(NodeId from, NodeId to, Frame payload,
            Link::DropFn on_dropped = nullptr);

  [[nodiscard]] const std::string& NodeName(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] EventScheduler& scheduler() noexcept { return sched_; }

 private:
  struct NodeState {
    std::string name;
    MessageHandler handler;
  };

  static std::uint64_t EdgeKey(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  EventScheduler& sched_;
  std::vector<NodeState> nodes_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
};

}  // namespace coic::netsim
