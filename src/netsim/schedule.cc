#include "netsim/schedule.h"

namespace coic::netsim {

void LinkConditionScheduler::Apply(EventScheduler& sched, Link& link,
                                   std::vector<LinkConditionStep> steps) {
  SimTime previous = sched.now();
  for (const LinkConditionStep& step : steps) {
    COIC_CHECK_MSG(step.at >= previous, "schedule steps must be sorted");
    COIC_CHECK_MSG(step.bandwidth.bps() >= 0, "bandwidth must be nonnegative");
    COIC_CHECK_MSG(
        step.bandwidth.bps() > 0 || step.loss_rate >= 0 || step.down >= 0,
        "a schedule step must change bandwidth, loss or down state");
    previous = step.at;
    sched.ScheduleAt(step.at, [&link, step] {
      if (step.bandwidth.bps() > 0) link.SetBandwidth(step.bandwidth);
      if (step.loss_rate >= 0) link.SetLossRate(step.loss_rate);
      if (step.down >= 0) link.SetDown(step.down != 0);
    });
  }
}

std::vector<LinkConditionStep> LinkConditionScheduler::SawtoothTrace(
    SimTime start, Duration period, Bandwidth high, Bandwidth low, int cycles,
    int steps_per_ramp) {
  COIC_CHECK(cycles >= 1 && steps_per_ramp >= 2);
  COIC_CHECK(high.bps() > low.bps());
  std::vector<LinkConditionStep> steps;
  const Duration step_len =
      Duration::Micros(period.micros() / (2 * steps_per_ramp));
  SimTime t = start;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (int leg = 0; leg < 2; ++leg) {       // 0: down-ramp, 1: up-ramp
      for (int i = 0; i < steps_per_ramp; ++i) {
        const double frac = static_cast<double>(i) / (steps_per_ramp - 1);
        const double mix = leg == 0 ? 1.0 - frac : frac;
        const std::int64_t bps =
            low.bps() +
            static_cast<std::int64_t>(mix * static_cast<double>(high.bps() - low.bps()));
        steps.push_back({t, Bandwidth::BitsPerSecond(bps)});
        t = t + step_len;
      }
    }
  }
  return steps;
}

}  // namespace coic::netsim
