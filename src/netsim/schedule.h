// Time-varying link conditions — the scripted-`tc` analogue.
//
// The paper's testbed re-runs `tc` to change link bandwidth between (and
// during) experiments. LinkConditionScheduler applies a piecewise
// schedule of (time, bandwidth[, loss]) steps to a Link through the
// event scheduler, so a single simulation can traverse a whole bandwidth
// trace (e.g. a user walking away from the AP) instead of one fixed
// condition per run.
#pragma once

#include <vector>

#include "netsim/link.h"
#include "netsim/scheduler.h"

namespace coic::netsim {

/// One step of a link-condition schedule.
struct LinkConditionStep {
  SimTime at;
  Bandwidth bandwidth;
  /// Negative = leave the loss rate unchanged.
  double loss_rate = -1.0;
};

class LinkConditionScheduler {
 public:
  /// Schedules every step against `link`. Steps must be sorted by time
  /// and not lie in the simulated past. The scheduler object may be
  /// destroyed after Apply; the events stand on their own.
  static void Apply(EventScheduler& sched, Link& link,
                    std::vector<LinkConditionStep> steps);

  /// A sawtooth WiFi walk-away/walk-back trace: bandwidth ramps from
  /// `high` down to `low` over `period` and back, for `cycles` cycles of
  /// `steps_per_ramp` discrete steps — a convenient stress schedule.
  static std::vector<LinkConditionStep> SawtoothTrace(
      SimTime start, Duration period, Bandwidth high, Bandwidth low,
      int cycles, int steps_per_ramp = 8);
};

}  // namespace coic::netsim
