// Time-varying link conditions — the scripted-`tc` analogue.
//
// The paper's testbed re-runs `tc` to change link bandwidth between (and
// during) experiments. LinkConditionScheduler applies a piecewise
// schedule of (time, bandwidth[, loss][, down]) steps to a Link through
// the event scheduler, so a single simulation can traverse a whole
// bandwidth trace (e.g. a user walking away from the AP) — or script an
// outage window — instead of one fixed condition per run.
#pragma once

#include <vector>

#include "netsim/link.h"
#include "netsim/scheduler.h"

namespace coic::netsim {

/// One step of a link-condition schedule. A step may reshape bandwidth,
/// retune loss, toggle the link down/up, or any combination; fields left
/// at their "unchanged" sentinel are not touched. A step must change at
/// least one thing (zero bandwidth + negative loss + down == -1 is a
/// programming error and CHECK-fails at Apply).
struct LinkConditionStep {
  SimTime at;
  /// Zero bps = leave the bandwidth unchanged (down-only steps).
  Bandwidth bandwidth;
  /// Negative = leave the loss rate unchanged.
  double loss_rate = -1.0;
  /// -1 = leave the up/down state unchanged; 0 = bring the link up;
  /// 1 = take it down (every frame sent while down is dropped with
  /// DropReason::kLinkDown).
  int down = -1;
};

class LinkConditionScheduler {
 public:
  /// Schedules every step against `link`. Steps must be sorted by time
  /// and not lie in the simulated past. The scheduler object may be
  /// destroyed after Apply; the events stand on their own.
  static void Apply(EventScheduler& sched, Link& link,
                    std::vector<LinkConditionStep> steps);

  /// A sawtooth WiFi walk-away/walk-back trace: bandwidth ramps from
  /// `high` down to `low` over `period` and back, for `cycles` cycles of
  /// `steps_per_ramp` discrete steps — a convenient stress schedule.
  static std::vector<LinkConditionStep> SawtoothTrace(
      SimTime start, Duration period, Bandwidth high, Bandwidth low,
      int cycles, int steps_per_ramp = 8);
};

}  // namespace coic::netsim
