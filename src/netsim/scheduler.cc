#include "netsim/scheduler.h"

#include <utility>

namespace coic::netsim {

EventId EventScheduler::ScheduleAt(SimTime when, Action action) {
  CheckOwner();
  COIC_CHECK_MSG(when >= now_, "cannot schedule into the simulated past");
  COIC_CHECK(action != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(action)});
  state_.push_back(kPending);
  return id;
}

bool EventScheduler::Cancel(EventId id) {
  CheckOwner();
  if (id == 0 || id >= next_id_) return false;
  if (id <= state_base_) return false;  // compacted away: already fired
  std::uint8_t& state = state_[SlotFor(id)];
  if (state != kPending) return false;  // fired or already cancelled
  state = kCancelled;
  ++cancelled_count_;
  return true;
}

void EventScheduler::MaybeCompact() {
  if (retired_floor_ < kCompactMin || retired_floor_ < state_.size() / 2) {
    return;
  }
  std::vector<std::uint8_t> live(state_.begin() +
                                     static_cast<std::ptrdiff_t>(retired_floor_),
                                 state_.end());
  state_ = std::move(live);
  state_base_ += retired_floor_;
  retired_floor_ = 0;
  ++compactions_;
}

bool EventScheduler::FireTop() {
  // const_cast is safe: the element is removed before the action runs.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  const std::size_t slot = SlotFor(ev.id);
  std::uint8_t& state = state_[slot];
  const bool was_cancelled = state == kCancelled;
  state = kRetired;
  if (slot == retired_floor_) {
    // Advance the watermark over every contiguously-retired slot, then
    // compact if the retired prefix dominates. Amortized O(1) per event:
    // each slot is scanned once and copied at most once per compaction.
    while (retired_floor_ < state_.size() &&
           state_[retired_floor_] == kRetired) {
      ++retired_floor_;
    }
    MaybeCompact();
  }
  if (was_cancelled) {
    --cancelled_count_;
    return false;  // cancelled: clock still advances, action does not run
  }
  ++total_fired_;
  ev.action();
  return true;
}

bool EventScheduler::Step() {
  CheckOwner();
  // Skip over cancelled events so Step() observably fires one action.
  while (!queue_.empty()) {
    if (FireTop()) return true;
  }
  return false;
}

std::uint64_t EventScheduler::Run() {
  CheckOwner();
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    if (FireTop()) ++fired;
  }
  return fired;
}

std::uint64_t EventScheduler::RunUntil(SimTime deadline) {
  CheckOwner();
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (FireTop()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace coic::netsim
