#include "netsim/scheduler.h"

namespace coic::netsim {

EventId EventScheduler::ScheduleAt(SimTime when, Action action) {
  COIC_CHECK_MSG(when >= now_, "cannot schedule into the simulated past");
  COIC_CHECK(action != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(action)});
  state_.push_back(kPending);
  return id;
}

bool EventScheduler::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  std::uint8_t& state = state_[id - 1];
  if (state != kPending) return false;  // fired or already cancelled
  state = kCancelled;
  ++cancelled_count_;
  return true;
}

bool EventScheduler::FireTop() {
  // const_cast is safe: the element is removed before the action runs.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  std::uint8_t& state = state_[ev.id - 1];
  const bool was_cancelled = state == kCancelled;
  state = kRetired;
  if (was_cancelled) {
    --cancelled_count_;
    return false;  // cancelled: clock still advances, action does not run
  }
  ++total_fired_;
  ev.action();
  return true;
}

bool EventScheduler::Step() {
  // Skip over cancelled events so Step() observably fires one action.
  while (!queue_.empty()) {
    if (FireTop()) return true;
  }
  return false;
}

std::uint64_t EventScheduler::Run() {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    if (FireTop()) ++fired;
  }
  return fired;
}

std::uint64_t EventScheduler::RunUntil(SimTime deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (FireTop()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace coic::netsim
