#include "netsim/scheduler.h"

namespace coic::netsim {

EventId EventScheduler::ScheduleAt(SimTime when, Action action) {
  COIC_CHECK_MSG(when >= now_, "cannot schedule into the simulated past");
  COIC_CHECK(action != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(action)});
  live_.insert(id);
  return id;
}

bool EventScheduler::Cancel(EventId id) {
  if (live_.count(id) == 0) return false;
  if (cancelled_.insert(id).second) {
    ++cancelled_count_;
    return true;
  }
  return false;
}

void EventScheduler::FireTop() {
  // const_cast is safe: the element is removed before the action runs.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  live_.erase(ev.id);
  now_ = ev.when;
  if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
    cancelled_.erase(it);
    --cancelled_count_;
    return;  // cancelled: clock still advances, action does not run
  }
  ev.action();
}

bool EventScheduler::Step() {
  // Skip over cancelled events so Step() observably fires one action.
  while (!queue_.empty()) {
    const bool was_cancelled = cancelled_.count(queue_.top().id) > 0;
    FireTop();
    if (!was_cancelled) return true;
  }
  return false;
}

std::uint64_t EventScheduler::Run() {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    const bool was_cancelled = cancelled_.count(queue_.top().id) > 0;
    FireTop();
    if (!was_cancelled) ++fired;
  }
  return fired;
}

std::uint64_t EventScheduler::RunUntil(SimTime deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    const bool was_cancelled = cancelled_.count(queue_.top().id) > 0;
    FireTop();
    if (!was_cancelled) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace coic::netsim
