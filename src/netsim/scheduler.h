// Discrete-event scheduler — the heart of the network simulator.
//
// Single-threaded by design: the paper's experiment is a latency study,
// and a sequential event loop with a virtual clock gives bit-reproducible
// latencies. Events at equal timestamps fire in scheduling order
// (monotonic sequence number tiebreak), which makes every test
// deterministic without sleeps or real time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace coic::netsim {

/// Token returned by Schedule* calls; can cancel a pending event.
using EventId = std::uint64_t;

class EventScheduler {
 public:
  using Action = std::function<void()>;

  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Current simulated time. Advances only inside Run*/Step.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events still pending (cancelled events are counted until
  /// they are popped).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_count_; }

  /// Schedules `action` at absolute time `when`; `when` must not be in
  /// the simulated past.
  EventId ScheduleAt(SimTime when, Action action);

  /// Schedules `action` after `delay` from now.
  EventId ScheduleAfter(Duration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// Fires the single earliest pending event. Returns false if none.
  bool Step();

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t Run();

  /// Runs events with time <= deadline; afterwards now() == max(now,
  /// deadline) even if the queue drained early (mirrors ns-3 semantics so
  /// periodic sources can be re-armed by the caller).
  std::uint64_t RunUntil(SimTime deadline);

 private:
  struct Event {
    SimTime when;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  void FireTop();

  SimTime now_ = SimTime::Epoch();
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::size_t cancelled_count_ = 0;
  /// Ids issued but not yet fired — distinguishes "already fired" from
  /// "never existed" in Cancel.
  std::unordered_set<EventId> live_;
};

}  // namespace coic::netsim
