// Discrete-event scheduler — the heart of the network simulator.
//
// Single-threaded by design: the paper's experiment is a latency study,
// and a sequential event loop with a virtual clock gives bit-reproducible
// latencies. Events at equal timestamps fire in scheduling order
// (monotonic sequence number tiebreak), which makes every test
// deterministic without sleeps or real time.
//
// Cancellation is lazy: Cancel flips a per-event state byte and the
// event is discarded when it reaches the top of the heap. Ids are dense
// (1, 2, 3, ...) so event state lives in a flat vector indexed by id —
// one byte per event ever scheduled, no hash-set insert/erase on the
// schedule/fire hot path. The open-loop throughput replays schedule a
// few million events per run, so that byte array stays in the MB range
// and the per-event cost is two vector writes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace coic::netsim {

/// Token returned by Schedule* calls; can cancel a pending event.
using EventId = std::uint64_t;

class EventScheduler {
 public:
  using Action = std::function<void()>;

  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Current simulated time. Advances only inside Run*/Step.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events still pending (cancelled events are counted until
  /// they are popped).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_count_; }

  /// Actions executed so far (cancelled events never count). Benches
  /// divide this by wall time for the simulator's own events/sec.
  [[nodiscard]] std::uint64_t total_fired() const noexcept { return total_fired_; }

  /// Schedules `action` at absolute time `when`; `when` must not be in
  /// the simulated past.
  EventId ScheduleAt(SimTime when, Action action);

  /// Schedules `action` after `delay` from now.
  EventId ScheduleAfter(Duration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// Fires the single earliest pending event. Returns false if none.
  bool Step();

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t Run();

  /// Runs events with time <= deadline; afterwards now() == max(now,
  /// deadline) even if the queue drained early (mirrors ns-3 semantics so
  /// periodic sources can be re-armed by the caller).
  std::uint64_t RunUntil(SimTime deadline);

 private:
  struct Event {
    SimTime when;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  enum : std::uint8_t { kPending = 0, kCancelled = 1, kRetired = 2 };

  /// Pops and retires the top event; runs its action unless cancelled.
  /// Returns true iff the action ran.
  bool FireTop();

  SimTime now_ = SimTime::Epoch();
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// state_[id - 1] for every id ever issued — distinguishes "pending"
  /// from "cancelled" from "fired/never existed" without per-event
  /// hash-set bookkeeping.
  std::vector<std::uint8_t> state_;
  std::size_t cancelled_count_ = 0;
  std::uint64_t total_fired_ = 0;
};

}  // namespace coic::netsim
