// Discrete-event scheduler — the heart of the network simulator.
//
// Single-threaded by design: the paper's experiment is a latency study,
// and a sequential event loop with a virtual clock gives bit-reproducible
// latencies. Events at equal timestamps fire in scheduling order
// (monotonic sequence number tiebreak), which makes every test
// deterministic without sleeps or real time.
//
// Cancellation is lazy: Cancel flips a per-event state byte and the
// event is discarded when it reaches the top of the heap. Ids are dense
// (1, 2, 3, ...) so event state lives in a flat vector indexed by id —
// one byte per event ever scheduled, no hash-set insert/erase on the
// schedule/fire hot path. The byte vector does not grow forever: once
// every id below a watermark has retired, the prefix is compacted away
// and lookups index relative to a base offset — long soaks (1M+ ops per
// shard) hold a bounded window of live state, not one byte per event
// ever scheduled.
//
// Sharded execution (netsim/shard.h) runs one scheduler per worker
// thread. A scheduler is still strictly single-threaded: BindOwnerThread
// arms an ownership check so Schedule/Cancel off the owning shard's
// thread CHECK-fail instead of racing.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace coic::netsim {

/// Token returned by Schedule* calls; can cancel a pending event.
using EventId = std::uint64_t;

class EventScheduler {
 public:
  using Action = std::function<void()>;

  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Current simulated time. Advances only inside Run*/Step.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events still pending (cancelled events are counted until
  /// they are popped).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_count_; }

  /// Actions executed so far (cancelled events never count). Benches
  /// divide this by wall time for the simulator's own events/sec.
  [[nodiscard]] std::uint64_t total_fired() const noexcept { return total_fired_; }

  /// Earliest queued event's time in microseconds, or INT64_MAX when the
  /// queue is empty. Cancelled events count — popping them still advances
  /// the clock. The sharded engine's barrier step uses this to skip idle
  /// stretches (a window whose earliest event is seconds away would
  /// otherwise burn thousands of empty barrier rounds).
  [[nodiscard]] std::int64_t NextEventMicros() const noexcept {
    return queue_.empty() ? INT64_MAX : queue_.top().when.micros();
  }

  /// Schedules `action` at absolute time `when`; `when` must not be in
  /// the simulated past.
  EventId ScheduleAt(SimTime when, Action action);

  /// Schedules `action` after `delay` from now.
  EventId ScheduleAfter(Duration delay, Action action) {
    return ScheduleAt(now_ + delay, std::move(action));
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// Fires the single earliest pending event. Returns false if none.
  bool Step();

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t Run();

  /// Runs events with time <= deadline; afterwards now() == max(now,
  /// deadline) even if the queue drained early (mirrors ns-3 semantics so
  /// periodic sources can be re-armed by the caller).
  std::uint64_t RunUntil(SimTime deadline);

  /// Arms the shard-ownership check: from now on ScheduleAt/Cancel (and
  /// the Run* loops) CHECK-fail unless called from the calling thread.
  /// The sharded engine binds each shard's scheduler at worker start so
  /// a cross-shard Schedule is an immediate, attributable crash instead
  /// of a data race.
  void BindOwnerThread() noexcept {
    owner_ = std::this_thread::get_id();
    owner_armed_ = true;
  }
  /// Disarms the ownership check (end of a sharded run; the pipeline's
  /// single-threaded epilogue may then inspect freely).
  void ClearOwnerThread() noexcept { owner_armed_ = false; }

  /// Bytes currently held by the per-event state vector — the watermark
  /// compaction's bounded-memory contract, pinned by tests.
  [[nodiscard]] std::size_t state_bytes() const noexcept {
    return state_.capacity();
  }
  /// Watermark compactions performed so far.
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

 private:
  struct Event {
    SimTime when;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  enum : std::uint8_t { kPending = 0, kCancelled = 1, kRetired = 2 };

  /// Compaction triggers once the all-retired prefix reaches this many
  /// slots (and at least half the vector) — large enough that short runs
  /// never pay the copy, small enough that live state stays in the
  /// ~100 KB range regardless of how many events a soak schedules.
  static constexpr std::size_t kCompactMin = 1u << 16;

  /// Pops and retires the top event; runs its action unless cancelled.
  /// Returns true iff the action ran.
  bool FireTop();

  void CheckOwner() const {
    COIC_CHECK_MSG(!owner_armed_ || owner_ == std::this_thread::get_id(),
                   "scheduler touched off its owning shard thread");
  }

  /// state_ slot for `id`, valid only for ids above the compaction
  /// watermark (ids at or below state_base_ are retired by definition).
  [[nodiscard]] std::size_t SlotFor(EventId id) const noexcept {
    return static_cast<std::size_t>(id - 1) - state_base_;
  }

  /// Drops the all-retired prefix once it dominates the vector. Swaps
  /// into a right-sized vector (erase alone keeps the old capacity, so
  /// memory would still high-water).
  void MaybeCompact();

  SimTime now_ = SimTime::Epoch();
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// state_[id - 1 - state_base_] for every live id — distinguishes
  /// "pending" from "cancelled" from "fired/never existed" without
  /// per-event hash-set bookkeeping. Ids <= state_base_ were compacted
  /// away (all retired).
  std::vector<std::uint8_t> state_;
  /// Ids at or below this watermark are retired and compacted away.
  std::size_t state_base_ = 0;
  /// Index into state_ of the first slot not known retired; everything
  /// before it is retired and eligible for compaction.
  std::size_t retired_floor_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t cancelled_count_ = 0;
  std::uint64_t total_fired_ = 0;
  std::thread::id owner_;
  bool owner_armed_ = false;
};

}  // namespace coic::netsim
