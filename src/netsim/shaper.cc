#include "netsim/shaper.h"

namespace coic::netsim {

TokenBucketShaper::TokenBucketShaper(Bandwidth rate, Bytes burst_bytes)
    : rate_(rate), burst_(burst_bytes), tokens_(static_cast<double>(burst_bytes)) {
  COIC_CHECK_MSG(rate.bps() > 0, "shaper rate must be positive");
  COIC_CHECK_MSG(burst_bytes > 0, "shaper burst must be positive");
}

void TokenBucketShaper::Refill(SimTime now) noexcept {
  if (now <= last_) return;
  const double elapsed_s = (now - last_).seconds();
  const double rate_bytes_per_s = static_cast<double>(rate_.bps()) / 8.0;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed_s * rate_bytes_per_s);
  last_ = now;
}

double TokenBucketShaper::TokensAt(SimTime now) const noexcept {
  if (now <= last_) return tokens_;
  const double elapsed_s = (now - last_).seconds();
  const double rate_bytes_per_s = static_cast<double>(rate_.bps()) / 8.0;
  return std::min(static_cast<double>(burst_),
                  tokens_ + elapsed_s * rate_bytes_per_s);
}

SimTime TokenBucketShaper::Admit(SimTime now, Bytes bytes) {
  COIC_CHECK_MSG(bytes <= burst_,
                 "frame larger than bucket depth can never be admitted");
  COIC_CHECK_MSG(now >= last_, "shaper time went backwards");
  Refill(now);
  // Borrowing formulation: the balance may go negative, in which case
  // the frame is released once the refill pays the debt off. This keeps
  // the refill clock at `now` so simultaneous arrivals are legal.
  tokens_ -= static_cast<double>(bytes);
  SimTime release = now;
  if (tokens_ < 0) {
    const double rate_bytes_per_s = static_cast<double>(rate_.bps()) / 8.0;
    release = now + Duration::Seconds(-tokens_ / rate_bytes_per_s);
  }
  // Preserve FIFO order among admitted frames.
  release = std::max(release, release_horizon_);
  release_horizon_ = release;
  return release;
}

}  // namespace coic::netsim
