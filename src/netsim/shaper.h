// Token-bucket traffic shaper — the `tc tbf` analogue.
//
// The paper shapes the testbed's links with `tc`; the benches reproduce
// each network condition by configuring Link bandwidth directly, and the
// shaper exists to emulate the kernel mechanism itself: rate r, burst b,
// with frames released when enough tokens have accumulated. A test
// (ShaperTest.AgreesWithLinkModelAtSteadyState) pins the two models to
// the same steady-state throughput.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/status.h"
#include "common/time.h"
#include "common/units.h"

namespace coic::netsim {

class TokenBucketShaper {
 public:
  /// rate: long-term average rate; burst: bucket depth in bytes (must be
  /// at least the largest frame admitted, or that frame can never pass).
  TokenBucketShaper(Bandwidth rate, Bytes burst_bytes);

  /// Consumes tokens for a `bytes`-sized frame and returns the earliest
  /// instant >= now at which the frame may be released. Calls must have
  /// non-decreasing `now` (simulated time never rewinds).
  SimTime Admit(SimTime now, Bytes bytes);

  /// Tokens available at `now` without consuming anything.
  [[nodiscard]] double TokensAt(SimTime now) const noexcept;

  [[nodiscard]] Bandwidth rate() const noexcept { return rate_; }
  [[nodiscard]] Bytes burst() const noexcept { return burst_; }

 private:
  /// Advances the refill clock to `now`.
  void Refill(SimTime now) noexcept;

  Bandwidth rate_;
  Bytes burst_;
  double tokens_;          ///< Current bucket level, bytes.
  SimTime last_ = SimTime::Epoch();
  SimTime release_horizon_ = SimTime::Epoch();  ///< FIFO release ordering.
};

}  // namespace coic::netsim
