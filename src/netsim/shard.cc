#include "netsim/shard.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <thread>
#include <utility>

#include "common/status.h"
#include "netsim/spsc_queue.h"

namespace coic::netsim {

struct ShardRunner::Impl {
  /// Per-shard counters published in the drain phase and read by the
  /// decide barrier's completion step. Written only by the owning
  /// worker, read only inside the completion step — the barrier itself
  /// provides the ordering; cache-line padding avoids false sharing.
  struct alignas(64) Slot {
    std::uint64_t pending = 0;
    std::uint64_t completed = 0;
    std::uint64_t idle_floor = 0;
    std::int64_t next_event_micros = 0;
    std::uint64_t sent = 0;  ///< Cross-shard messages pushed (stat).
    std::uint8_t quiesced = 0;
  };

  struct Decide {
    ShardRunner* runner;
    void operator()() noexcept { runner->OnDecideBarrier(); }
  };

  Impl(ShardRunner* runner, std::ptrdiff_t n)
      : queues(static_cast<std::size_t>(n * n)),
        slots(static_cast<std::size_t>(n)),
        decide(n, Decide{runner}),
        window_edge(n) {}

  /// queues[from * S + to]: one SPSC lane per directed shard pair.
  std::vector<SpscQueue<ShardMessage>> queues;
  std::vector<Slot> slots;
  std::barrier<Decide> decide;
  std::barrier<> window_edge;
  /// Pushed-minus-popped across all lanes. Every message pushed in
  /// window k is drained before the next decide barrier, so this must
  /// read zero inside the completion step (CHECKed there).
  std::atomic<std::int64_t> cross_inflight{0};

  // Decision state: written only by the decide completion step (all
  // workers blocked), read by workers after release — no atomics needed.
  std::int64_t window_end_micros = 0;
  std::uint64_t windows = 0;
  std::uint64_t last_completed = 0;
  std::uint64_t windows_no_progress = 0;
  bool quiesce = false;
  bool done = false;
  bool stalled = false;
};

ShardRunner::ShardRunner(ShardRunnerConfig config,
                         std::vector<ShardHooks> shards)
    : config_(config), shards_(std::move(shards)) {
  COIC_CHECK_MSG(!shards_.empty(), "shard runner needs at least one shard");
  COIC_CHECK_MSG(config_.window > Duration::Zero(),
                 "synchronization window must be positive");
  for (const ShardHooks& h : shards_) {
    COIC_CHECK(h.sched != nullptr);
    COIC_CHECK(h.deliver != nullptr);
  }
  impl_ = new Impl(this, static_cast<std::ptrdiff_t>(shards_.size()));
  // Starts at the epoch, not at one window: the first decide barrier
  // advances it, so a non-zero start would make the first window twice
  // the lookahead and break the deterministic-mode delivery bound.
  impl_->window_end_micros = 0;
}

ShardRunner::~ShardRunner() { delete impl_; }

void ShardRunner::Send(std::uint32_t from_shard, std::uint32_t to_shard,
                       ShardMessage msg) {
  COIC_CHECK(from_shard < shards_.size() && to_shard < shards_.size());
  COIC_CHECK_MSG(from_shard != to_shard,
                 "cross-shard send addressed to the sending shard");
  impl_->cross_inflight.fetch_add(1, std::memory_order_relaxed);
  ++impl_->slots[from_shard].sent;
  impl_->queues[from_shard * shards_.size() + to_shard].Push(std::move(msg));
}

ShardRunner::Result ShardRunner::Run() {
  const auto count = static_cast<std::uint32_t>(shards_.size());
  std::vector<std::thread> workers;
  workers.reserve(count - 1);
  for (std::uint32_t s = 1; s < count; ++s) {
    workers.emplace_back([this, s] { WorkerLoop(s); });
  }
  WorkerLoop(0);  // shard 0 runs on the calling thread
  for (std::thread& t : workers) t.join();

  Result result;
  result.windows = impl_->windows;
  result.stalled = impl_->stalled;
  for (const Impl::Slot& slot : impl_->slots) {
    result.cross_messages += slot.sent;
  }
  return result;
}

void ShardRunner::WorkerLoop(std::uint32_t shard) {
  ShardHooks& hooks = shards_[shard];
  hooks.sched->BindOwnerThread();
  const auto count = static_cast<std::uint32_t>(shards_.size());
  bool quiesced = false;

  for (;;) {
    // Drain inboxes in fixed producer order: arrivals at equal delivery
    // times get their scheduler tiebreak ids in a reproducible order.
    for (std::uint32_t p = 0; p < count; ++p) {
      if (p == shard) continue;
      SpscQueue<ShardMessage>& lane = impl_->queues[p * count + shard];
      ShardMessage msg;
      while (lane.Pop(msg)) {
        impl_->cross_inflight.fetch_sub(1, std::memory_order_relaxed);
        hooks.deliver(std::move(msg));
      }
    }

    Impl::Slot& slot = impl_->slots[shard];
    slot.pending = hooks.sched->pending();
    slot.next_event_micros = hooks.sched->NextEventMicros();
    slot.completed = hooks.completed ? hooks.completed() : 0;
    slot.idle_floor = hooks.idle_floor ? hooks.idle_floor() : 0;
    slot.quiesced = quiesced ? 1 : 0;

    impl_->decide.arrive_and_wait();
    if (impl_->done) break;
    if (impl_->quiesce && !quiesced) {
      if (hooks.quiesce) hooks.quiesce();
      quiesced = true;
    }

    hooks.sched->RunUntil(SimTime::FromMicros(impl_->window_end_micros));

    // Edge barrier: every sender has finished the window (all its
    // cross-shard pushes are in the lanes) before anyone drains.
    impl_->window_edge.arrive_and_wait();
  }

  hooks.sched->ClearOwnerThread();
}

void ShardRunner::OnDecideBarrier() noexcept {
  Impl& im = *impl_;
  ++im.windows;

  std::uint64_t pending = 0;
  std::uint64_t completed = 0;
  std::uint64_t floor = 0;
  std::int64_t next_min = INT64_MAX;
  bool all_quiesced = true;
  for (const Impl::Slot& slot : im.slots) {
    pending += slot.pending;
    completed += slot.completed;
    floor += slot.idle_floor;
    next_min = std::min(next_min, slot.next_event_micros);
    all_quiesced = all_quiesced && slot.quiesced != 0;
  }
  // Window-k traffic was fully pushed before the edge barrier and fully
  // drained before this one; anything left is a protocol bug.
  COIC_CHECK_MSG(im.cross_inflight.load(std::memory_order_relaxed) == 0,
                 "cross-shard messages survived the drain phase");

  if (completed != im.last_completed) {
    im.last_completed = completed;
    im.windows_no_progress = 0;
  } else {
    ++im.windows_no_progress;
  }

  if (!im.quiesce) {
    if (completed >= config_.expected_completions) {
      im.quiesce = true;
    } else if (pending == floor) {
      // Every pending event in the cluster is a self-rearming timer and
      // nothing is in flight: no operation can ever complete again.
      im.quiesce = true;
      im.stalled = true;
    } else if (im.windows_no_progress > config_.stall_backstop_windows) {
      im.quiesce = true;
      im.stalled = true;
    }
  }

  if (im.quiesce && all_quiesced && pending == 0) {
    im.done = true;
    return;
  }

  // Advance the window, skipping idle gaps: with nothing in flight
  // (checked above) no shard can hear anything before the globally
  // earliest pending event plus one lookahead window.
  std::int64_t start = im.window_end_micros;
  if (next_min != INT64_MAX && next_min > start) start = next_min;
  im.window_end_micros = start + config_.window.micros();
}

}  // namespace coic::netsim
