// Sharded conservative-PDES execution engine.
//
// Splits a simulated cluster across worker threads, one EventScheduler
// per shard, synchronized with the classic conservative time-window
// protocol: all cross-shard traffic has a minimum latency W (the
// *lookahead* — in CoIC topologies, the smallest propagation delay of
// any link whose endpoints live on different shards), so every shard can
// safely run one window of width W without hearing from its peers.
// Messages sent during window k are handed over at *send* time stamped
// with their precomputed delivery time (Link::SendTimed), which is
// provably at or after the end of window k; they are drained and
// scheduled at the barrier, before window k+1 begins. With a fixed
// inbox drain order this reproduces the single-thread engine's outcomes
// bit-for-bit (events at equal timestamps may interleave differently
// across shards *within* a timestamp, but per-shard state never spans
// shards in CoIC's venue-partitioned pipelines).
//
// Each iteration runs two barrier phases:
//
//   [B] drain inboxes -> publish counters -> barrier (decide)
//   [run] RunUntil(window_end)
//   [A] barrier (all senders finished the window)
//
// Barrier B's completion step — running exclusively while every worker
// is blocked — aggregates the published counters to decide termination:
// once completed ops reach the expected count (or a stall is detected)
// it raises the quiesce flag; workers then cancel their free-running
// timers, the remaining events drain, and `done` latches when no shard
// has pending events. The completion step also advances the window,
// skipping straight to the globally earliest pending event when the gap
// exceeds a window (idle stretches cost one barrier round, not
// thousands).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/frame.h"
#include "common/time.h"
#include "netsim/scheduler.h"

namespace coic::netsim {

/// One cross-shard frame in flight: `from` sent to `to` (node ids in the
/// receiving shard's Network); the sending shard's link model already
/// fixed the delivery time.
struct ShardMessage {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  SimTime deliver_at;
  Frame payload;
};

/// Per-shard callbacks the runner drives. All of them run on the shard's
/// worker thread only.
struct ShardHooks {
  EventScheduler* sched = nullptr;
  /// Schedules one drained cross-shard arrival on this shard's clock.
  std::function<void(ShardMessage)> deliver;
  /// Operations completed by this shard so far.
  std::function<std::uint64_t()> completed;
  /// Number of pending events that are pure self-rearming timers (armed
  /// gossip timers): when every shard's entire backlog is such timers
  /// and nothing is in flight, no operation can ever complete — the
  /// runner quiesces and reports a stall instead of spinning forever.
  std::function<std::uint64_t()> idle_floor;
  /// Invoked once when the runner decides the run is over (success or
  /// stall): cancel free-running timers so the shard can drain.
  std::function<void()> quiesce;
};

struct ShardRunnerConfig {
  /// Synchronization window; must not exceed the cluster's cross-shard
  /// lookahead or the runner CHECK-fails on a late delivery.
  Duration window = Duration::Millis(1);
  /// Target operation count; 0 quiesces at the first barrier (drain-only
  /// run).
  std::uint64_t expected_completions = 0;
  /// Barrier rounds without a new completion before the runner declares
  /// a stall (backstop — the precise idle-floor trigger normally fires
  /// long before this).
  std::uint64_t stall_backstop_windows = 1'000'000;
};

class ShardRunner {
 public:
  ShardRunner(ShardRunnerConfig config, std::vector<ShardHooks> shards);

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;
  ~ShardRunner();

  /// Producer-side handoff: called from shard `from_shard`'s worker
  /// thread (inside its remote-dispatch hook) to enqueue a message for
  /// `to_shard`.
  void Send(std::uint32_t from_shard, std::uint32_t to_shard,
            ShardMessage msg);

  struct Result {
    std::uint64_t windows = 0;         ///< Barrier rounds executed.
    std::uint64_t cross_messages = 0;  ///< Frames that crossed shards.
    bool stalled = false;              ///< Quiesced without completing.
  };

  /// Runs the cluster to completion. Spawns one thread per shard beyond
  /// the first (shard 0 runs on the calling thread) and joins them all
  /// before returning.
  Result Run();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Impl;

  void WorkerLoop(std::uint32_t shard);
  /// Barrier-B completion step; runs while all workers are blocked.
  void OnDecideBarrier() noexcept;

  ShardRunnerConfig config_;
  std::vector<ShardHooks> shards_;
  Impl* impl_;  ///< Barriers/queues/slots (kept out of the header).
};

}  // namespace coic::netsim
