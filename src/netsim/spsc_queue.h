// Unbounded single-producer / single-consumer FIFO.
//
// The sharded engine (netsim/shard.h) wires one of these per directed
// shard pair: exactly one worker ever pushes and exactly one ever pops,
// so a stub-node linked list with a single release/acquire edge per
// element is enough — no CAS loops, no capacity tuning, no backpressure
// (the barrier protocol bounds occupancy to one window's traffic).
//
// Thread contract:
//  - Push: producer thread only.
//  - Pop:  consumer thread only.
//  - Construction and destruction: externally synchronized (the runner
//    builds queues before workers start and destroys them after joins).
#pragma once

#include <atomic>
#include <utility>

namespace coic::netsim {

template <typename T>
class SpscQueue {
 public:
  SpscQueue() : head_(new Node()), tail_(head_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer side. The release store on the predecessor's `next` is the
  /// edge the consumer's acquire load pairs with; `value` is fully
  /// visible to the consumer after a successful Pop.
  void Push(T value) {
    Node* n = new Node(std::move(value));
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
  }

  /// Consumer side. Returns false when the queue is (momentarily) empty.
  bool Pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    delete head_;
    head_ = next;  // `next` becomes the new stub; its value is moved-from
    return true;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* head_;  ///< Consumer-owned stub; its value is already consumed.
  Node* tail_;  ///< Producer-owned.
};

}  // namespace coic::netsim
