#include "obs/metrics.h"

#include <utility>

#include "common/log.h"

namespace coic::obs {
namespace {

void AppendJsonKey(std::string& out, const std::string& key) {
  // Metric paths are code-chosen dotted identifiers; nothing to escape.
  out += '"';
  out += key;
  out += "\": ";
}

}  // namespace

std::uint64_t MetricsSnapshot::value(const std::string& path) const {
  const auto it = values.find(path);
  return it == values.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff;
  for (const auto& [path, after] : values) {
    const std::uint64_t before = earlier.value(path);
    diff.values.emplace(path, after >= before ? after - before : 0);
  }
  // Paths the earlier snapshot had but this one lost (a registry can
  // only grow, so this means different registries were mixed — still,
  // diff them as "now zero" rather than dropping them silently).
  for (const auto& [path, before] : earlier.values) {
    (void)before;
    diff.values.try_emplace(path, 0);
  }
  return diff;
}

std::string MetricsSnapshot::DumpJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [path, v] : values) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(out, path);
    out += std::to_string(v);
  }
  out += '}';
  return out;
}

bool MetricsRegistry::PathTaken(const std::string& path) const {
  return counters_.count(path) > 0 || samplers_.count(path) > 0 ||
         histograms_.count(path) > 0;
}

Counter& MetricsRegistry::GetCounter(const std::string& path) {
  const auto it = counters_.find(path);
  if (it != counters_.end()) return *it->second;
  COIC_CHECK_MSG(!PathTaken(path),
                 "metrics path already registered under another kind");
  return *counters_.emplace(path, std::unique_ptr<Counter>(new Counter()))
              .first->second;
}

void MetricsRegistry::RegisterSampler(const std::string& path,
                                      Sampler sampler) {
  COIC_CHECK_MSG(!PathTaken(path), "duplicate metrics sampler path");
  COIC_CHECK(sampler != nullptr);
  samplers_.emplace(path, std::move(sampler));
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& path) {
  const auto it = histograms_.find(path);
  if (it != histograms_.end()) return *it->second;
  COIC_CHECK_MSG(!PathTaken(path),
                 "metrics path already registered under another kind");
  return *histograms_.emplace(path, std::make_unique<LatencyHistogram>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [path, counter] : counters_) {
    snap.values.emplace(path, counter->value());
  }
  for (const auto& [path, sampler] : samplers_) {
    snap.values.emplace(path, sampler());
  }
  for (const auto& [path, hist] : histograms_) {
    snap.values.emplace(path + ".count", hist->count());
  }
  return snap;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "{\"counters\": ";
  MetricsSnapshot counters;
  for (const auto& [path, counter] : counters_) {
    counters.values.emplace(path, counter->value());
  }
  for (const auto& [path, sampler] : samplers_) {
    counters.values.emplace(path, sampler());
  }
  out += counters.DumpJson();
  out += ", \"histograms\": {";
  bool first = true;
  for (const auto& [path, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(out, path);
    out += "{\"count\": " + std::to_string(hist->count());
    out += ", \"mean_us\": " + std::to_string(hist->MeanMicros());
    out += ", \"p50_us\": " + std::to_string(hist->QuantileMicros(0.5));
    out += ", \"p99_us\": " + std::to_string(hist->QuantileMicros(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace coic::obs
