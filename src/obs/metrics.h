// MetricsRegistry — the unified counter/gauge/histogram namespace.
//
// Before this existed, counters were scattered: frame copies in a
// process global (common/frame.h), datagram stats inside
// netsim::Network, a dozen ad-hoc uint64 members each in EdgeService /
// CoicClient / FederationPipeline — and every bench that wanted a delta
// hand-rolled the "record before, subtract after" dance. The registry
// gives every counter a dotted string path (`edge.0.coalesced_requests`,
// `net.datagram.partials_discarded`, `frame.copies`), one Snapshot()
// covering all of them, an explicit snapshot Diff, and a DumpJson()
// benches and tests can assert on.
//
// Two registration styles, both addressable by path:
//   * Counter cells the registry owns (`GetCounter`): a component binds
//     a `Counter&` at construction and increments it on the hot path —
//     a plain uint64 add, same cost as the member it replaced.
//   * Samplers (`RegisterSampler`): a callback read at Snapshot time,
//     for counters whose storage already lives elsewhere (the
//     frame-copy atomics, netsim's DatagramStats, link loss tallies).
//     Zero hot-path cost; the owner keeps its accessors unchanged.
//
// Single-threaded by design, like the simulator it instruments: the
// multi-core direction (ROADMAP) will shard registries per worker and
// merge snapshots, not lock this one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"

namespace coic::obs {

/// A registered counter cell. Owned by the registry (stable address for
/// the lifetime of the registry); components hold a reference and
/// increment it exactly as they would a uint64 member.
class Counter {
 public:
  Counter& operator++() noexcept {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    value_ += n;
    return *this;
  }
  void Add(std::uint64_t n) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::uint64_t value_ = 0;
};

/// Point-in-time values of every counter, gauge sampler and histogram
/// count in a registry, keyed by path. Diffable: benches snapshot before
/// and after a run and read exact deltas instead of juggling
/// record-before/subtract-after pairs per counter.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> values;

  /// Value at `path`; 0 when absent (an absent path diffs as zero).
  [[nodiscard]] std::uint64_t value(const std::string& path) const;

  /// Per-path `this - earlier`. Paths only present on one side diff
  /// against zero; a counter that went backwards (e.g. an explicit
  /// Reset between snapshots) saturates at 0 rather than wrapping.
  [[nodiscard]] MetricsSnapshot DiffSince(const MetricsSnapshot& earlier) const;

  /// `{"path": value, ...}` with paths in sorted order — stable output
  /// for tests that assert on it.
  [[nodiscard]] std::string DumpJson() const;
};

class MetricsRegistry {
 public:
  using Sampler = std::function<std::uint64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The owned counter at `path`, created on first use. CHECK-fails if
  /// the path is already registered as a sampler or histogram — one
  /// path, one metric, forever.
  [[nodiscard]] Counter& GetCounter(const std::string& path);

  /// Registers a read-at-snapshot callback at `path` (storage stays with
  /// the owner). CHECK-fails on any duplicate registration.
  void RegisterSampler(const std::string& path, Sampler sampler);

  /// The owned latency histogram at `path`, created on first use.
  /// Snapshots expose its count under "<path>.count"; DumpJson adds
  /// quantiles.
  [[nodiscard]] LatencyHistogram& GetHistogram(const std::string& path);

  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Full JSON dump: {"counters": {...}, "histograms": {path: {count,
  /// mean_us, p50_us, p99_us}, ...}} — the single artifact a bench or
  /// test asserts against.
  [[nodiscard]] std::string DumpJson() const;

 private:
  [[nodiscard]] bool PathTaken(const std::string& path) const;

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, Sampler> samplers_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace coic::obs
