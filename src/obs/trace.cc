#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "common/log.h"

namespace coic::obs {

const char* PhaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kClientCompute:
      return "client_compute";
    case Phase::kUplink:
      return "uplink";
    case Phase::kEdgeLookup:
      return "edge_lookup";
    case Phase::kCoalescePark:
      return "coalesce_park";
    case Phase::kPeerProbe:
      return "peer_probe";
    case Phase::kCloudFetch:
      return "cloud_fetch";
    case Phase::kCacheInsert:
      return "cache_insert";
    case Phase::kDownlink:
      return "downlink";
    case Phase::kClientFinish:
      return "client_finish";
  }
  return "unknown";
}

RequestTracer::RequestTracer(TraceConfig config) : config_(config) {
  COIC_CHECK(config_.span_capacity >= 1 && config_.instant_capacity >= 1);
  spans_.reserve(std::min<std::size_t>(config_.span_capacity, 4096));
  instants_.reserve(std::min<std::size_t>(config_.instant_capacity, 1024));
}

void RequestTracer::CloseSpan(std::uint64_t id, const OpenSpan& open,
                              SimTime now) {
  phase_hist_[static_cast<int>(open.phase)].AddMicros(
      (now - open.since).micros());
  ++spans_recorded_;
  SpanEvent ev{id, open.track, open.phase, open.since, now};
  if (spans_.size() < config_.span_capacity) {
    spans_.push_back(ev);
    return;
  }
  spans_[next_span_] = ev;
  next_span_ = (next_span_ + 1) % config_.span_capacity;
}

void RequestTracer::Begin(std::uint64_t id, std::uint32_t track, Phase phase,
                          SimTime now) {
  open_[id] = OpenSpan{track, phase, now};
}

void RequestTracer::Transition(std::uint64_t id, Phase phase, SimTime now) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  CloseSpan(id, it->second, now);
  it->second.phase = phase;
  it->second.since = now;
}

void RequestTracer::End(std::uint64_t id, SimTime now) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  CloseSpan(id, it->second, now);
  open_.erase(it);
}

void RequestTracer::Annotate(std::uint64_t id, const char* name, SimTime now) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  PushInstant(InstantEvent{id, it->second.track, name, now});
}

void RequestTracer::Mark(std::uint32_t track, const char* name, SimTime now) {
  PushInstant(InstantEvent{0, track, name, now});
}

void RequestTracer::PushInstant(const InstantEvent& ev) {
  if (instants_.size() < config_.instant_capacity) {
    instants_.push_back(ev);
    return;
  }
  instants_[next_instant_] = ev;
  next_instant_ = (next_instant_ + 1) % config_.instant_capacity;
}

std::vector<LiveSpan> RequestTracer::LiveSpans() const {
  std::vector<LiveSpan> live;
  live.reserve(open_.size());
  for (const auto& [id, open] : open_) {
    live.push_back({id, open.track, open.phase, open.since});
  }
  std::sort(live.begin(), live.end(),
            [](const LiveSpan& a, const LiveSpan& b) {
              return a.request_id < b.request_id;
            });
  return live;
}

std::vector<SpanEvent> RequestTracer::CompletedSpans() const {
  std::vector<SpanEvent> out;
  out.reserve(spans_.size());
  if (spans_.size() < config_.span_capacity) {
    out = spans_;
    return out;
  }
  // Full ring: oldest entry sits at next_span_.
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(spans_[(next_span_ + i) % spans_.size()]);
  }
  return out;
}

std::vector<SpanEvent> RequestTracer::SpansFor(std::uint64_t id) const {
  std::vector<SpanEvent> out;
  for (const SpanEvent& ev : CompletedSpans()) {
    if (ev.request_id == id) out.push_back(ev);
  }
  return out;
}

std::vector<Phase> RequestTracer::PhaseSequenceFor(std::uint64_t id) const {
  std::vector<Phase> out;
  for (const SpanEvent& ev : SpansFor(id)) out.push_back(ev.phase);
  return out;
}

std::vector<std::string> RequestTracer::AnnotationsFor(
    std::uint64_t id) const {
  std::vector<std::string> out;
  const bool wrapped = instants_.size() >= config_.instant_capacity;
  const std::size_t n = instants_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const InstantEvent& ev =
        instants_[wrapped ? (next_instant_ + i) % n : i];
    if (ev.request_id == id) out.emplace_back(ev.name);
  }
  return out;
}

const LatencyHistogram& RequestTracer::phase_histogram(Phase phase) const {
  return phase_hist_[static_cast<int>(phase)];
}

std::uint64_t RequestTracer::spans_evicted() const noexcept {
  return spans_recorded_ - spans_.size();
}

std::string RequestTracer::DescribeLive(std::uint64_t id) const {
  const auto it = open_.find(id);
  if (it == open_.end()) return {};
  return std::string("phase=") + PhaseName(it->second.phase) +
         " since=+" + std::to_string(it->second.since.micros() / 1000) + "ms";
}

std::string RequestTracer::DumpChromeTrace() const {
  // Chrome trace-event JSON array format: complete "X" events (ts + dur
  // in microseconds — exactly SimTime's unit) for spans, "i" instants
  // for annotations. pid = track (venue), tid = request id. Globally
  // sorted by ts so per-track timestamps are monotonic for the checker.
  struct Line {
    std::int64_t ts;
    int order;  // spans before instants at equal ts
    std::string json;
  };
  std::vector<Line> lines;
  lines.reserve(spans_.size() + instants_.size() + open_.size());
  const auto common = [](std::uint64_t id, std::uint32_t track) {
    return ",\"pid\":" + std::to_string(track) +
           ",\"tid\":" + std::to_string(id) + "}";
  };
  for (const SpanEvent& ev : CompletedSpans()) {
    lines.push_back(
        {ev.begin.micros(), 0,
         std::string("{\"name\":\"") + PhaseName(ev.phase) +
             "\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":" +
             std::to_string(ev.begin.micros()) +
             ",\"dur\":" + std::to_string((ev.end - ev.begin).micros()) +
             common(ev.request_id, ev.track)});
  }
  // Still-open spans export as zero-duration marks at their start so a
  // stranded run's trace shows where each stuck request parked.
  for (const LiveSpan& live : LiveSpans()) {
    lines.push_back(
        {live.since.micros(), 0,
         std::string("{\"name\":\"") + PhaseName(live.phase) +
             "\",\"cat\":\"live\",\"ph\":\"X\",\"ts\":" +
             std::to_string(live.since.micros()) + ",\"dur\":0" +
             common(live.request_id, live.track)});
  }
  const bool wrapped = instants_.size() >= config_.instant_capacity;
  for (std::size_t i = 0; i < instants_.size(); ++i) {
    const InstantEvent& ev =
        instants_[wrapped ? (next_instant_ + i) % instants_.size() : i];
    lines.push_back({ev.at.micros(), 1,
                     std::string("{\"name\":\"") + ev.name +
                         "\",\"cat\":\"annotation\",\"ph\":\"i\",\"s\":\"t\""
                         ",\"ts\":" +
                         std::to_string(ev.at.micros()) +
                         common(ev.request_id, ev.track)});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
                   });
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += ',';
    out += '\n';
    out += lines[i].json;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status RequestTracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status(StatusCode::kUnavailable, "cannot open " + path);
  }
  const std::string json = DumpChromeTrace();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) return Status(StatusCode::kUnavailable, "write failed: " + path);
  return Status::Ok();
}

}  // namespace coic::obs
