// RequestTracer — per-request lifecycle spans with sim-clock stamps.
//
// A request's life is a sequence of phases: on-device compute, the
// uplink, the edge cache lookup, then one of several middles (coalesce
// park, peer-probe round, cloud fetch with retries), the cache insert,
// the downlink, and any post-receive device compute. The tracer records
// that sequence per request id as contiguous spans: Begin() opens the
// first phase, each Transition() closes the open span at `now` and
// opens the next at the same instant, End() closes the last. Because
// the stamps are sim-clock, span durations are exact simulated time —
// phase durations sum to the request's outcome latency by construction.
// Annotate() adds instant markers (retransmits, relay hops, promotions)
// onto the open request's timeline.
//
// Cost model: OFF by default. Components hold a `RequestTracer*` that is
// null when tracing is disabled, so every instrumentation site is one
// pointer test (pinned by a bench_micro row). Enabled, each event is a
// hash-map touch plus a ring-buffer write — completed spans land in a
// bounded ring (oldest overwritten), while per-phase LatencyHistograms
// accumulate every span regardless of ring wraps.
//
// Export: DumpChromeTrace() emits Chrome trace-event JSON ("X" complete
// events + "i" instants; pid = track/venue, tid = request id) loadable
// in chrome://tracing or Perfetto; tools/check_trace_json.py validates
// the format in CI.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"

namespace coic::obs {

/// Request-lifecycle phases, in canonical order of a full cloud miss.
/// Not every request visits every phase: a cache hit goes straight from
/// kEdgeLookup to kDownlink, a coalesced follower parks instead of
/// fetching, recognition has no kClientFinish.
enum class Phase : std::uint8_t {
  kClientCompute = 0,  ///< on-device extraction / request prep
  kUplink,             ///< request on the wire, client -> edge
  kEdgeLookup,         ///< edge cache lookup (queue wait + compute)
  kCoalescePark,       ///< parked on a same-key leader's wait list
  kPeerProbe,          ///< peer-probe round in flight
  kCloudFetch,         ///< forwarded to the cloud (includes retry waits)
  kCacheInsert,        ///< result landed; delayed insert before reply
  kDownlink,           ///< reply on the wire, edge -> client
  kClientFinish,       ///< post-receive device compute (install / crop)
};
inline constexpr int kPhaseCount = 9;

/// Stable snake_case name ("edge_lookup"); doubles as the Chrome event
/// name.
[[nodiscard]] const char* PhaseName(Phase phase) noexcept;

struct TraceConfig {
  /// Off => the owner constructs no tracer at all and every site pays
  /// one null-pointer test.
  bool enabled = false;
  /// Completed-span ring bound (oldest overwritten beyond it).
  std::size_t span_capacity = 1 << 16;
  /// Annotation ring bound.
  std::size_t instant_capacity = 1 << 14;
};

/// A closed phase span on one request's timeline.
struct SpanEvent {
  std::uint64_t request_id = 0;
  std::uint32_t track = 0;  ///< Chrome pid; the venue in federation runs.
  Phase phase = Phase::kClientCompute;
  SimTime begin;
  SimTime end;
};

/// An instant annotation ("client-retransmit", "relay-hop", ...). Names
/// are static string literals — recording one never allocates.
struct InstantEvent {
  std::uint64_t request_id = 0;
  std::uint32_t track = 0;
  const char* name = "";
  SimTime at;
};

/// The currently-open span of an in-flight request — the "where is it
/// parked" answer for stranded-workload diagnostics.
struct LiveSpan {
  std::uint64_t request_id = 0;
  std::uint32_t track = 0;
  Phase phase = Phase::kClientCompute;
  SimTime since;
};

class RequestTracer {
 public:
  explicit RequestTracer(TraceConfig config);
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  /// Opens `id`'s timeline in `phase` at `now`. A second Begin for a
  /// live id restarts its timeline (ids are unique per run by
  /// construction; a collision would otherwise corrupt both).
  void Begin(std::uint64_t id, std::uint32_t track, Phase phase, SimTime now);

  /// Closes the open span at `now` and opens `phase` at the same
  /// instant. No-op for unknown ids: late frames (memo replays,
  /// straggler probe replies) touch requests that already Ended, and
  /// those must not resurrect a timeline.
  void Transition(std::uint64_t id, Phase phase, SimTime now);

  /// Closes the open span and retires the timeline. No-op when unknown.
  void End(std::uint64_t id, SimTime now);

  /// Stamps an instant marker on a live request; no-op when unknown.
  /// `name` must be a string literal (stored by pointer).
  void Annotate(std::uint64_t id, const char* name, SimTime now);

  /// Stamps a global instant marker that belongs to no request — fault
  /// injections, config flips — on `track`'s timeline (request id 0 is
  /// never a real request). Readable back via AnnotationsFor(0).
  void Mark(std::uint32_t track, const char* name, SimTime now);

  // -- Inspection ----------------------------------------------------------

  [[nodiscard]] std::size_t live_count() const noexcept {
    return open_.size();
  }
  /// Open spans, ascending by request id.
  [[nodiscard]] std::vector<LiveSpan> LiveSpans() const;
  /// Completed spans still in the ring, oldest first.
  [[nodiscard]] std::vector<SpanEvent> CompletedSpans() const;
  /// Completed spans of one request, in phase order (subject to ring
  /// eviction; sized for tests and diagnostics, not the hot path).
  [[nodiscard]] std::vector<SpanEvent> SpansFor(std::uint64_t id) const;
  [[nodiscard]] std::vector<Phase> PhaseSequenceFor(std::uint64_t id) const;
  /// Annotation names stamped on one request, in time order.
  [[nodiscard]] std::vector<std::string> AnnotationsFor(
      std::uint64_t id) const;

  /// Every span ever closed feeds these, ring wraps notwithstanding —
  /// the per-phase latency breakdown the BENCH json reports.
  [[nodiscard]] const LatencyHistogram& phase_histogram(Phase phase) const;

  [[nodiscard]] std::uint64_t spans_recorded() const noexcept {
    return spans_recorded_;
  }
  /// Spans overwritten in the ring (recorded minus retained).
  [[nodiscard]] std::uint64_t spans_evicted() const noexcept;

  /// One-line live status for a stuck request: "phase=cloud_fetch
  /// since=+8123ms" (empty when the id has no open span).
  [[nodiscard]] std::string DescribeLive(std::uint64_t id) const;

  /// Chrome trace-event JSON: {"traceEvents": [...]} with complete "X"
  /// events per span and "i" instants per annotation, globally sorted by
  /// timestamp. Loadable in chrome://tracing / Perfetto.
  [[nodiscard]] std::string DumpChromeTrace() const;
  /// DumpChromeTrace to a file.
  [[nodiscard]] Status WriteChromeTrace(const std::string& path) const;

 private:
  struct OpenSpan {
    std::uint32_t track = 0;
    Phase phase = Phase::kClientCompute;
    SimTime since;
  };

  void CloseSpan(std::uint64_t id, const OpenSpan& open, SimTime now);
  void PushInstant(const InstantEvent& ev);

  TraceConfig config_;
  std::unordered_map<std::uint64_t, OpenSpan> open_;
  /// Bounded rings: fill to capacity, then overwrite oldest at next_*.
  std::vector<SpanEvent> spans_;
  std::size_t next_span_ = 0;
  std::vector<InstantEvent> instants_;
  std::size_t next_instant_ = 0;
  std::uint64_t spans_recorded_ = 0;
  LatencyHistogram phase_hist_[kPhaseCount];
};

}  // namespace coic::obs
