#include "proto/descriptor.h"

#include <cmath>

namespace coic::proto {

std::string_view TaskKindName(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kRecognition: return "recognition";
    case TaskKind::kRender: return "render";
    case TaskKind::kPanorama: return "panorama";
  }
  return "unknown";
}

FeatureDescriptor FeatureDescriptor::ForVector(TaskKind task,
                                               std::vector<float> vec) {
  COIC_CHECK_MSG(!vec.empty(), "feature vector must be non-empty");
  FeatureDescriptor d;
  d.task_ = task;
  d.kind_ = DescriptorKind::kFeatureVector;
  d.vector_ = std::move(vec);
  return d;
}

FeatureDescriptor FeatureDescriptor::ForHash(TaskKind task, Digest128 digest) {
  COIC_CHECK_MSG(!digest.IsZero(), "content digest must be non-zero");
  FeatureDescriptor d;
  d.task_ = task;
  d.kind_ = DescriptorKind::kContentHash;
  d.digest_ = digest;
  return d;
}

Bytes FeatureDescriptor::WireSize() const noexcept {
  // task(1) + kind(1) + vec count(4) + 4*dim + digest(16)
  return 1 + 1 + 4 + 4 * vector_.size() + 16;
}

double FeatureDescriptor::DistanceTo(const FeatureDescriptor& other) const {
  COIC_CHECK(kind_ == DescriptorKind::kFeatureVector);
  COIC_CHECK(other.kind_ == DescriptorKind::kFeatureVector);
  COIC_CHECK_MSG(vector_.size() == other.vector_.size(),
                 "descriptor dimension mismatch");
  double acc = 0;
  for (std::size_t i = 0; i < vector_.size(); ++i) {
    const double d = static_cast<double>(vector_[i]) - other.vector_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::uint64_t FeatureDescriptor::IndexKey() const noexcept {
  if (kind_ == DescriptorKind::kContentHash) {
    return digest_.hi ^ (digest_.lo * 0x9E3779B97F4A7C15ULL) ^
           static_cast<std::uint64_t>(task_);
  }
  return static_cast<std::uint64_t>(task_);
}

void FeatureDescriptor::Encode(ByteWriter& w) const {
  w.WriteU8(static_cast<std::uint8_t>(task_));
  w.WriteU8(static_cast<std::uint8_t>(kind_));
  w.WriteF32Vector(vector_);
  w.WriteU64(digest_.hi);
  w.WriteU64(digest_.lo);
}

Result<FeatureDescriptor> FeatureDescriptor::Decode(ByteReader& r) {
  std::uint8_t task_raw = 0;
  std::uint8_t kind_raw = 0;
  FeatureDescriptor d;
  COIC_RETURN_IF_ERROR(r.ReadU8(task_raw));
  COIC_RETURN_IF_ERROR(r.ReadU8(kind_raw));
  if (task_raw > static_cast<std::uint8_t>(TaskKind::kPanorama)) {
    return Status(StatusCode::kDataLoss, "bad TaskKind");
  }
  if (kind_raw > static_cast<std::uint8_t>(DescriptorKind::kContentHash)) {
    return Status(StatusCode::kDataLoss, "bad DescriptorKind");
  }
  d.task_ = static_cast<TaskKind>(task_raw);
  d.kind_ = static_cast<DescriptorKind>(kind_raw);
  COIC_RETURN_IF_ERROR(r.ReadF32Vector(d.vector_));
  COIC_RETURN_IF_ERROR(r.ReadU64(d.digest_.hi));
  COIC_RETURN_IF_ERROR(r.ReadU64(d.digest_.lo));
  if (d.kind_ == DescriptorKind::kFeatureVector && d.vector_.empty()) {
    return Status(StatusCode::kDataLoss, "vector descriptor without vector");
  }
  if (d.kind_ == DescriptorKind::kContentHash && d.digest_.IsZero()) {
    return Status(StatusCode::kDataLoss, "hash descriptor with zero digest");
  }
  return d;
}

}  // namespace coic::proto
