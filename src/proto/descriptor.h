// FeatureDescriptor — the key abstraction of the CoIC protocol (paper §2).
//
// "CoIC extracts dedicated property from each representative IC task as
//  the feature descriptor. [...] for an object recognition task using a
//  DNN model, CoIC uses the feature vector generated from the input
//  image [...]. For 3D object rendering and VR video streaming tasks,
//  CoIC uses the hash value of the required 3D model or panoramic
//  frames."
//
// A descriptor therefore has two variants: an approximate-match float
// vector (recognition) and an exact-match 128-bit content digest
// (rendering / panorama). It lives in proto because it crosses the wire
// verbatim as the cache key.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/units.h"

namespace coic::proto {

/// Which IC task produced the descriptor. Descriptors from different
/// tasks never match each other even if their bits collide.
enum class TaskKind : std::uint8_t {
  kRecognition = 0,  ///< DNN object recognition (approximate match).
  kRender = 1,       ///< 3D model load/render (exact content-hash match).
  kPanorama = 2,     ///< Panoramic VR frame (exact content-hash match).
};

std::string_view TaskKindName(TaskKind kind) noexcept;

/// How the descriptor is compared by the edge cache.
enum class DescriptorKind : std::uint8_t {
  kFeatureVector = 0,  ///< L2 distance under threshold => hit.
  kContentHash = 1,    ///< Digest equality => hit.
};

/// The wire-format cache key.
class FeatureDescriptor {
 public:
  FeatureDescriptor() = default;

  /// An approximate-match descriptor holding an L2-normalized feature
  /// vector from the client-side extractor.
  static FeatureDescriptor ForVector(TaskKind task, std::vector<float> vec);

  /// An exact-match descriptor keyed by content digest (e.g. of the 3D
  /// model bytes or panoramic frame identity).
  static FeatureDescriptor ForHash(TaskKind task, Digest128 digest);

  [[nodiscard]] TaskKind task() const noexcept { return task_; }
  [[nodiscard]] DescriptorKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::span<const float> vector() const noexcept { return vector_; }
  [[nodiscard]] const Digest128& digest() const noexcept { return digest_; }

  /// Serialized size in bytes — this is what the client uploads instead
  /// of the full input, so it drives the Figure 2a latency math.
  [[nodiscard]] Bytes WireSize() const noexcept;

  /// Euclidean distance between two vector descriptors of equal
  /// dimension. Precondition: both kFeatureVector with matching dims.
  [[nodiscard]] double DistanceTo(const FeatureDescriptor& other) const;

  /// Coarse bucketing key for the edge's hash index: content-hash
  /// descriptors key by digest, vector descriptors by task only (the
  /// similarity index handles them separately).
  [[nodiscard]] std::uint64_t IndexKey() const noexcept;

  void Encode(ByteWriter& w) const;
  static Result<FeatureDescriptor> Decode(ByteReader& r);

  friend bool operator==(const FeatureDescriptor& a,
                         const FeatureDescriptor& b) noexcept {
    return a.task_ == b.task_ && a.kind_ == b.kind_ &&
           a.digest_ == b.digest_ && a.vector_ == b.vector_;
  }

 private:
  TaskKind task_ = TaskKind::kRecognition;
  DescriptorKind kind_ = DescriptorKind::kFeatureVector;
  std::vector<float> vector_;
  Digest128 digest_;
};

}  // namespace coic::proto
