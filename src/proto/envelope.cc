#include "proto/envelope.h"

namespace coic::proto {
namespace {

bool ValidMessageType(std::uint8_t raw) noexcept {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kError:
    case MessageType::kRecognitionRequest:
    case MessageType::kRecognitionResult:
    case MessageType::kRenderRequest:
    case MessageType::kRenderResult:
    case MessageType::kPanoramaRequest:
    case MessageType::kPanoramaResult:
    case MessageType::kCacheStatsRequest:
    case MessageType::kCacheStatsReply:
    case MessageType::kPeerLookupRequest:
    case MessageType::kPeerLookupReply:
    case MessageType::kSummaryUpdate:
    case MessageType::kFederatedRelay:
      return true;
  }
  return false;
}

}  // namespace

ByteVec EncodeEnvelope(MessageType type, std::uint64_t request_id,
                       std::span<const std::uint8_t> payload) {
  COIC_CHECK_MSG(payload.size() <= kMaxPayloadBytes, "payload too large");
  ByteWriter w(kEnvelopeHeaderSize + payload.size());
  w.WriteU32(kEnvelopeMagic);
  w.WriteU16(kProtocolVersion);
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU8(0);  // flags
  w.WriteU64(request_id);
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteRaw(payload);
  return w.TakeBytes();
}

Result<Envelope> DecodeEnvelope(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint8_t type_raw = 0;
  std::uint8_t flags = 0;
  Envelope env;
  COIC_RETURN_IF_ERROR(r.ReadU32(magic));
  if (magic != kEnvelopeMagic) {
    return Status(StatusCode::kDataLoss, "bad envelope magic");
  }
  COIC_RETURN_IF_ERROR(r.ReadU16(version));
  if (version != kProtocolVersion) {
    return Status(StatusCode::kDataLoss, "unsupported protocol version");
  }
  COIC_RETURN_IF_ERROR(r.ReadU8(type_raw));
  if (!ValidMessageType(type_raw)) {
    return Status(StatusCode::kDataLoss, "unknown message type");
  }
  env.type = static_cast<MessageType>(type_raw);
  COIC_RETURN_IF_ERROR(r.ReadU8(flags));
  if (flags != 0) {
    return Status(StatusCode::kDataLoss, "nonzero reserved flags");
  }
  COIC_RETURN_IF_ERROR(r.ReadU64(env.request_id));
  std::uint32_t payload_len = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(payload_len));
  if (payload_len > kMaxPayloadBytes) {
    return Status(StatusCode::kDataLoss, "payload length exceeds limit");
  }
  if (r.remaining() < payload_len) {
    return Status(StatusCode::kDataLoss, "payload truncated");
  }
  COIC_RETURN_IF_ERROR(r.ReadBytes(env.payload, payload_len));
  if (!r.AtEnd()) {
    return Status(StatusCode::kDataLoss, "trailing bytes after envelope");
  }
  return env;
}

Result<std::size_t> PeekFrameSize(std::span<const std::uint8_t> data) {
  if (data.size() < kEnvelopeHeaderSize) return static_cast<std::size_t>(0);
  ByteReader r(data);
  std::uint32_t magic = 0;
  (void)r.ReadU32(magic);
  if (magic != kEnvelopeMagic) {
    return Status(StatusCode::kDataLoss, "bad envelope magic");
  }
  std::uint16_t version = 0;
  (void)r.ReadU16(version);
  if (version != kProtocolVersion) {
    return Status(StatusCode::kDataLoss, "unsupported protocol version");
  }
  std::uint8_t type_raw = 0;
  (void)r.ReadU8(type_raw);
  if (!ValidMessageType(type_raw)) {
    return Status(StatusCode::kDataLoss, "unknown message type");
  }
  (void)r.Skip(1 + 8);  // flags + request id
  std::uint32_t payload_len = 0;
  (void)r.ReadU32(payload_len);
  if (payload_len > kMaxPayloadBytes) {
    return Status(StatusCode::kDataLoss, "payload length exceeds limit");
  }
  return kEnvelopeHeaderSize + static_cast<std::size_t>(payload_len);
}

}  // namespace coic::proto
