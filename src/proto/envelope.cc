#include "proto/envelope.h"

namespace coic::proto {
namespace {

bool ValidMessageType(std::uint8_t raw) noexcept {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kError:
    case MessageType::kRecognitionRequest:
    case MessageType::kRecognitionResult:
    case MessageType::kRenderRequest:
    case MessageType::kRenderResult:
    case MessageType::kPanoramaRequest:
    case MessageType::kPanoramaResult:
    case MessageType::kCacheStatsRequest:
    case MessageType::kCacheStatsReply:
    case MessageType::kPeerLookupRequest:
    case MessageType::kPeerLookupReply:
    case MessageType::kSummaryUpdate:
    case MessageType::kFederatedRelay:
    case MessageType::kSummaryDeltaUpdate:
    case MessageType::kSummaryAck:
    case MessageType::kDatagramChunk:
    case MessageType::kRegionDigestUpdate:
      return true;
  }
  return false;
}

}  // namespace

void AppendEnvelopeHeader(ByteWriter& w, MessageType type,
                          std::uint64_t request_id,
                          std::uint32_t payload_len) {
  w.WriteU32(kEnvelopeMagic);
  w.WriteU16(kProtocolVersion);
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU8(0);  // flags
  w.WriteU64(request_id);
  w.WriteU32(payload_len);
}

ByteVec EncodeEnvelope(MessageType type, std::uint64_t request_id,
                       std::span<const std::uint8_t> payload) {
  COIC_CHECK_MSG(payload.size() <= kMaxPayloadBytes, "payload too large");
  ByteWriter w(kEnvelopeHeaderSize + payload.size());
  AppendEnvelopeHeader(w, type, request_id,
                       static_cast<std::uint32_t>(payload.size()));
  w.WriteRaw(payload);
  return w.TakeBytes();
}

Result<EnvelopeView> DecodeEnvelopeView(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint8_t type_raw = 0;
  std::uint8_t flags = 0;
  EnvelopeView env;
  COIC_RETURN_IF_ERROR(r.ReadU32(magic));
  if (magic != kEnvelopeMagic) {
    return Status(StatusCode::kDataLoss, "bad envelope magic");
  }
  COIC_RETURN_IF_ERROR(r.ReadU16(version));
  if (version != kProtocolVersion) {
    return Status(StatusCode::kDataLoss, "unsupported protocol version");
  }
  COIC_RETURN_IF_ERROR(r.ReadU8(type_raw));
  if (!ValidMessageType(type_raw)) {
    return Status(StatusCode::kDataLoss, "unknown message type");
  }
  env.type = static_cast<MessageType>(type_raw);
  COIC_RETURN_IF_ERROR(r.ReadU8(flags));
  if (flags != 0) {
    return Status(StatusCode::kDataLoss, "nonzero reserved flags");
  }
  COIC_RETURN_IF_ERROR(r.ReadU64(env.request_id));
  std::uint32_t payload_len = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(payload_len));
  if (payload_len > kMaxPayloadBytes) {
    return Status(StatusCode::kDataLoss, "payload length exceeds limit");
  }
  if (r.remaining() < payload_len) {
    return Status(StatusCode::kDataLoss, "payload truncated");
  }
  if (r.remaining() != payload_len) {
    return Status(StatusCode::kDataLoss, "trailing bytes after envelope");
  }
  env.payload = data.subspan(kEnvelopeHeaderSize, payload_len);
  return env;
}

Result<Envelope> DecodeEnvelope(std::span<const std::uint8_t> data) {
  // Thin owning wrapper: same validation, then the defensive payload
  // copy the view form exists to avoid.
  auto view = DecodeEnvelopeView(data);
  if (!view.ok()) return view.status();
  Envelope env;
  env.type = view.value().type;
  env.request_id = view.value().request_id;
  env.payload.assign(view.value().payload.begin(), view.value().payload.end());
  return env;
}

Result<RelayFrameView> PeekRelayFrame(std::span<const std::uint8_t> frame) {
  // Fixed relay payload overhead: src(4) + dest(4) + ttl(1) + inner len(4).
  constexpr std::size_t kRelayOverhead = 13;
  ByteReader r(frame);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint8_t type_raw = 0;
  std::uint8_t flags = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(magic));
  COIC_RETURN_IF_ERROR(r.ReadU16(version));
  COIC_RETURN_IF_ERROR(r.ReadU8(type_raw));
  COIC_RETURN_IF_ERROR(r.ReadU8(flags));
  if (magic != kEnvelopeMagic || version != kProtocolVersion || flags != 0 ||
      static_cast<MessageType>(type_raw) != MessageType::kFederatedRelay) {
    return Status(StatusCode::kDataLoss, "not a relay envelope");
  }
  COIC_RETURN_IF_ERROR(r.Skip(8));  // request id
  std::uint32_t payload_len = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(payload_len));
  if (payload_len > kMaxPayloadBytes ||
      frame.size() != kEnvelopeHeaderSize + payload_len ||
      payload_len < kRelayOverhead) {
    return Status(StatusCode::kDataLoss, "bad relay payload length");
  }
  RelayFrameView view;
  std::uint32_t inner_len = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(view.src_edge));
  COIC_RETURN_IF_ERROR(r.ReadU32(view.dest_edge));
  COIC_RETURN_IF_ERROR(r.ReadU8(view.ttl));
  COIC_RETURN_IF_ERROR(r.ReadU32(inner_len));
  if (inner_len != payload_len - kRelayOverhead) {
    return Status(StatusCode::kDataLoss, "bad relay inner length");
  }
  if (view.src_edge == view.dest_edge) {
    return Status(StatusCode::kDataLoss, "relay to self");
  }
  view.inner_offset = r.position();
  view.inner_size = inner_len;
  return view;
}

void DecrementRelayTtl(Frame& frame) {
  constexpr std::size_t kTtlOffset = kEnvelopeHeaderSize + 8;
  COIC_CHECK(frame.size() > kTtlOffset && frame.span()[kTtlOffset] > 0);
  --frame.MutableSpan()[kTtlOffset];
}

Frame UnwrapRelay(const Frame& frame, const RelayFrameView& view) {
  COIC_CHECK(view.inner_offset + view.inner_size == frame.size());
  return frame.Slice(view.inner_offset, view.inner_size);
}

ByteVec EncodeRelayFrame(std::uint32_t src_edge, std::uint32_t dest_edge,
                         std::uint8_t ttl,
                         std::span<const std::uint8_t> inner) {
  // Layout fixed by FederatedRelay::Encode: src(4) dest(4) ttl(1)
  // inner-len(4) inner(N). The envelope request id mirrors the inner
  // frame's so reply routing works on the wrapper alone.
  constexpr std::size_t kRelayOverhead = 13;
  COIC_CHECK(inner.size() >= kEnvelopeHeaderSize);
  COIC_CHECK_MSG(kRelayOverhead + inner.size() <= kMaxPayloadBytes,
                 "relay payload too large");
  ByteWriter w(kEnvelopeHeaderSize + kRelayOverhead + inner.size());
  AppendEnvelopeHeader(w, MessageType::kFederatedRelay, PeekRequestId(inner),
                       static_cast<std::uint32_t>(kRelayOverhead + inner.size()));
  w.WriteU32(src_edge);
  w.WriteU32(dest_edge);
  w.WriteU8(ttl);
  w.WriteBlob(inner);
  return w.TakeBytes();
}

Result<SummaryFrameHeader> PeekSummaryFrame(
    std::span<const std::uint8_t> frame) {
  // SummaryUpdate::Encode and SummaryDeltaUpdate::Encode both lead with
  // u32 edge_id, u64 version.
  const auto type = frame.size() > 6 ? static_cast<MessageType>(frame[6])
                                     : MessageType::kPing;
  if (frame.size() < kEnvelopeHeaderSize + 12 ||
      (type != MessageType::kSummaryUpdate &&
       type != MessageType::kSummaryDeltaUpdate)) {
    return Status(StatusCode::kDataLoss, "not a summary envelope");
  }
  SummaryFrameHeader header;
  std::memcpy(&header.edge_id, frame.data() + kEnvelopeHeaderSize, 4);
  std::memcpy(&header.version, frame.data() + kEnvelopeHeaderSize + 4, 8);
  return header;
}

Result<SummaryDeltaFrameHeader> PeekSummaryDeltaFrame(
    std::span<const std::uint8_t> frame) {
  // SummaryDeltaUpdate::Encode leads with u32 edge_id, u64 version,
  // u64 base_version.
  if (frame.size() < kEnvelopeHeaderSize + 20 ||
      static_cast<MessageType>(frame[6]) != MessageType::kSummaryDeltaUpdate) {
    return Status(StatusCode::kDataLoss, "not a summary-delta envelope");
  }
  SummaryDeltaFrameHeader header;
  std::memcpy(&header.edge_id, frame.data() + kEnvelopeHeaderSize, 4);
  std::memcpy(&header.version, frame.data() + kEnvelopeHeaderSize + 4, 8);
  std::memcpy(&header.base_version, frame.data() + kEnvelopeHeaderSize + 12, 8);
  return header;
}

Result<RegionDigestFrameHeader> PeekRegionDigestFrame(
    std::span<const std::uint8_t> frame) {
  // RegionDigestUpdate::Encode leads with u32 region_id, u32 head_edge,
  // u64 version.
  if (frame.size() < kEnvelopeHeaderSize + 16 ||
      static_cast<MessageType>(frame[6]) != MessageType::kRegionDigestUpdate) {
    return Status(StatusCode::kDataLoss, "not a region-digest envelope");
  }
  RegionDigestFrameHeader header;
  std::memcpy(&header.region_id, frame.data() + kEnvelopeHeaderSize, 4);
  std::memcpy(&header.head_edge, frame.data() + kEnvelopeHeaderSize + 4, 4);
  std::memcpy(&header.version, frame.data() + kEnvelopeHeaderSize + 8, 8);
  return header;
}

Result<std::size_t> PeekFrameSize(std::span<const std::uint8_t> data) {
  if (data.size() < kEnvelopeHeaderSize) return static_cast<std::size_t>(0);
  ByteReader r(data);
  std::uint32_t magic = 0;
  (void)r.ReadU32(magic);
  if (magic != kEnvelopeMagic) {
    return Status(StatusCode::kDataLoss, "bad envelope magic");
  }
  std::uint16_t version = 0;
  (void)r.ReadU16(version);
  if (version != kProtocolVersion) {
    return Status(StatusCode::kDataLoss, "unsupported protocol version");
  }
  std::uint8_t type_raw = 0;
  (void)r.ReadU8(type_raw);
  if (!ValidMessageType(type_raw)) {
    return Status(StatusCode::kDataLoss, "unknown message type");
  }
  (void)r.Skip(1 + 8);  // flags + request id
  std::uint32_t payload_len = 0;
  (void)r.ReadU32(payload_len);
  if (payload_len > kMaxPayloadBytes) {
    return Status(StatusCode::kDataLoss, "payload length exceeds limit");
  }
  return kEnvelopeHeaderSize + static_cast<std::size_t>(payload_len);
}

}  // namespace coic::proto
