// Envelope framing.
//
// Every CoIC message travels inside a fixed-header envelope:
//
//   offset  size  field
//   0       4     magic "CoIC" (0x43 0x6F 0x49 0x43, read as LE u32)
//   4       2     protocol version (currently 1)
//   6       1     MessageType
//   7       1     flags (reserved, must be 0)
//   8       8     request id (client-chosen; echoed in the reply)
//   16      4     payload length N
//   20      N     payload (message-specific encoding)
//
// The same framing is used verbatim by the in-process simulator and the
// real TCP transport, so a simulated exchange and a socket exchange are
// byte-identical.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "common/frame.h"
#include "proto/messages.h"

namespace coic::proto {

inline constexpr std::uint32_t kEnvelopeMagic = 0x43496F43;  // "CoIC" LE
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kEnvelopeHeaderSize = 20;
/// Upper bound on payload size accepted by decoders: a hostile length
/// field must not drive allocation. 64 MiB comfortably covers 8K
/// panoramas and the largest evaluated model (15053 KB).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/// A decoded envelope; payload is an owned copy so the caller may retire
/// the input buffer.
struct Envelope {
  MessageType type = MessageType::kPing;
  std::uint64_t request_id = 0;
  ByteVec payload;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Borrowed-view envelope: `payload` points into the input buffer, so it
/// is valid only while that buffer (typically a refcounted Frame) lives.
/// This is the allocation-free decode the frame hot paths use; Envelope
/// remains for callers that need the payload to outlive the frame.
struct EnvelopeView {
  MessageType type = MessageType::kPing;
  std::uint64_t request_id = 0;
  std::span<const std::uint8_t> payload;
};

/// Serializes header + payload into one buffer.
ByteVec EncodeEnvelope(MessageType type, std::uint64_t request_id,
                       std::span<const std::uint8_t> payload);

/// Appends the 20-byte envelope header to `w`. Callers that do not know
/// the payload length yet write 0 and PatchU32 offset 16 afterwards.
void AppendEnvelopeHeader(ByteWriter& w, MessageType type,
                          std::uint64_t request_id, std::uint32_t payload_len);

/// Convenience: encodes `msg` (any type with Encode(ByteWriter&)) and
/// wraps it in an envelope. Header and payload are written into one
/// buffer (no intermediate payload vector + copy), reserved up front
/// when the message can report its WireSize().
template <typename Message>
ByteVec EncodeMessage(MessageType type, std::uint64_t request_id,
                      const Message& msg) {
  ByteWriter w = [&] {
    if constexpr (requires { msg.WireSize(); }) {
      return ByteWriter(kEnvelopeHeaderSize + msg.WireSize());
    } else {
      return ByteWriter();
    }
  }();
  AppendEnvelopeHeader(w, type, request_id, 0);
  msg.Encode(w);
  COIC_CHECK_MSG(w.size() - kEnvelopeHeaderSize <= kMaxPayloadBytes,
                 "payload too large");
  w.PatchU32(16, static_cast<std::uint32_t>(w.size() - kEnvelopeHeaderSize));
  return w.TakeBytes();
}

/// EncodeMessage writing into caller-provided storage: `storage`'s heap
/// capacity is reused (cleared first), so an arena-recycled buffer makes
/// the encode allocation-free once warm. Returns the same bytes
/// EncodeMessage would.
template <typename Message>
ByteVec EncodeMessageInto(ByteVec&& storage, MessageType type,
                          std::uint64_t request_id, const Message& msg) {
  ByteWriter w(std::move(storage));
  AppendEnvelopeHeader(w, type, request_id, 0);
  msg.Encode(w);
  COIC_CHECK_MSG(w.size() - kEnvelopeHeaderSize <= kMaxPayloadBytes,
                 "payload too large");
  w.PatchU32(16, static_cast<std::uint32_t>(w.size() - kEnvelopeHeaderSize));
  return w.TakeBytes();
}

/// Parses a full envelope from `data` without copying the payload (see
/// EnvelopeView for the lifetime rule). Fails with kDataLoss on bad
/// magic, unsupported version, truncated header/payload or oversized
/// length — exactly where DecodeEnvelope does.
Result<EnvelopeView> DecodeEnvelopeView(std::span<const std::uint8_t> data);

/// Owning form of DecodeEnvelopeView: identical validation, then the
/// payload is copied out so the caller may retire the input buffer.
Result<Envelope> DecodeEnvelope(std::span<const std::uint8_t> data);

/// Request id from an encoded envelope header (bytes 8..16 LE), without
/// validating the rest. Precondition: frame holds at least a header.
inline std::uint64_t PeekRequestId(
    std::span<const std::uint8_t> frame) noexcept {
  COIC_CHECK(frame.size() >= kEnvelopeHeaderSize);
  std::uint64_t id = 0;
  std::memcpy(&id, frame.data() + 8, 8);
  return id;
}

/// Message type from an encoded envelope header (byte 6) — enough to
/// dispatch control frames without a full decode. Precondition: frame
/// holds at least a header.
inline MessageType PeekMessageType(
    std::span<const std::uint8_t> frame) noexcept {
  COIC_CHECK(frame.size() >= kEnvelopeHeaderSize);
  return static_cast<MessageType>(frame[6]);
}

/// Incremental framing helper for stream transports: given the bytes
/// accumulated so far, returns the total frame size (header + payload) if
/// the header is complete, 0 if more header bytes are needed, or an error
/// if the header is invalid.
Result<std::size_t> PeekFrameSize(std::span<const std::uint8_t> data);

// ---------------------------------------------------------------------------
// FederatedRelay fast path
// ---------------------------------------------------------------------------
//
// Relay forwarding is the federation hot path: an intermediate venue only
// needs to read dest/ttl and decrement ttl, so a full decode→re-encode
// (which copies the inner envelope twice) is pure waste. These helpers
// operate on the encoded frame in place. The wire layout after the
// 20-byte envelope header is fixed by FederatedRelay::Encode:
//
//   offset  size  field
//   20      4     src_edge
//   24      4     dest_edge
//   28      1     ttl
//   29      4     inner length N
//   33      N     inner (a complete encoded envelope)

/// Borrowed view of an encoded kFederatedRelay frame.
struct RelayFrameView {
  std::uint32_t src_edge = 0;
  std::uint32_t dest_edge = 0;
  std::uint8_t ttl = 0;
  /// Offset of the inner envelope within the frame (= 33).
  std::size_t inner_offset = 0;
  std::size_t inner_size = 0;
};

/// Validates the envelope header and relay payload structure without
/// copying; fails with kDataLoss exactly where DecodeEnvelope +
/// FederatedRelay::Decode would.
Result<RelayFrameView> PeekRelayFrame(std::span<const std::uint8_t> frame);

/// Decrements the ttl byte of an encoded relay frame. While the frame's
/// buffer is uniquely held — the normal case at an intermediate relay
/// hop, where the link just delivered the only reference — the patch
/// lands in place with zero copies; a shared buffer copies-on-write
/// first (counted in frame_stats()), so other holders never observe the
/// mutation. The result is byte-identical to decode → --ttl → re-encode
/// (covered by a proto test). Precondition: PeekRelayFrame succeeded,
/// ttl > 0.
void DecrementRelayTtl(Frame& frame);

/// The inner envelope of a relay frame as a slice sharing the wrapper's
/// buffer (zero copy, replaces the old memmove-based unwrap).
/// Precondition: `view` was peeked from `frame`.
[[nodiscard]] Frame UnwrapRelay(const Frame& frame, const RelayFrameView& view);

/// Encodes a complete kFederatedRelay frame around an already-encoded
/// inner envelope in one buffer (the envelope request id mirrors the
/// inner frame's, as SendEdgeToEdge requires). One inherent copy of the
/// inner bytes; byte-identical to EncodeMessage over a FederatedRelay
/// struct without the struct detour.
[[nodiscard]] ByteVec EncodeRelayFrame(std::uint32_t src_edge,
                                       std::uint32_t dest_edge,
                                       std::uint8_t ttl,
                                       std::span<const std::uint8_t> inner);

/// Leading fields of an encoded kSummaryUpdate or kSummaryDeltaUpdate
/// frame, read at their fixed offsets without decoding the bloom bits /
/// key list and centroids. Lets a receiver drop a stale or duplicate
/// summary before paying the full decode. Fails with kDataLoss if the
/// frame is not a summary(-delta) envelope or is too short. (A layout
/// test pins these offsets to the Encode field order both types share.)
struct SummaryFrameHeader {
  std::uint32_t edge_id = 0;
  std::uint64_t version = 0;
};
Result<SummaryFrameHeader> PeekSummaryFrame(
    std::span<const std::uint8_t> frame);

/// Delta-specific peek: additionally reads `base_version` so a receiver
/// whose table is not at exactly that version can drop the frame before
/// decoding the key list. kSummaryDeltaUpdate frames only.
struct SummaryDeltaFrameHeader {
  std::uint32_t edge_id = 0;
  std::uint64_t version = 0;
  std::uint64_t base_version = 0;
};
Result<SummaryDeltaFrameHeader> PeekSummaryDeltaFrame(
    std::span<const std::uint8_t> frame);

/// Leading fields of an encoded kRegionDigestUpdate frame at their fixed
/// offsets (u32 region, u32 head, u64 version right after the envelope
/// header) — enough for the stale-drop / head-succession acceptance rule
/// without decoding the bloom union and member hints. Fails with
/// kDataLoss if the frame is not a region-digest envelope or too short.
struct RegionDigestFrameHeader {
  std::uint32_t region_id = 0;
  std::uint32_t head_edge = 0;
  std::uint64_t version = 0;
};
Result<RegionDigestFrameHeader> PeekRegionDigestFrame(
    std::span<const std::uint8_t> frame);

/// Decodes the payload of `env` as message type M, checking that the
/// envelope type tag matches `expected`. Works for owning Envelope and
/// borrowed EnvelopeView alike (M may itself be a *View type whose
/// fields borrow from the underlying buffer).
template <typename M, typename AnyEnvelope>
Result<M> DecodePayloadAs(const AnyEnvelope& env, MessageType expected) {
  if (env.type != expected) {
    return Status(StatusCode::kDataLoss, "unexpected message type");
  }
  ByteReader r(env.payload);
  auto result = M::Decode(r);
  if (!result.ok()) return result.status();
  if (!r.AtEnd()) {
    return Status(StatusCode::kDataLoss, "trailing bytes after payload");
  }
  return result;
}

}  // namespace coic::proto
