// Envelope framing.
//
// Every CoIC message travels inside a fixed-header envelope:
//
//   offset  size  field
//   0       4     magic "CoIC" (0x43 0x6F 0x49 0x43, read as LE u32)
//   4       2     protocol version (currently 1)
//   6       1     MessageType
//   7       1     flags (reserved, must be 0)
//   8       8     request id (client-chosen; echoed in the reply)
//   16      4     payload length N
//   20      N     payload (message-specific encoding)
//
// The same framing is used verbatim by the in-process simulator and the
// real TCP transport, so a simulated exchange and a socket exchange are
// byte-identical.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "proto/messages.h"

namespace coic::proto {

inline constexpr std::uint32_t kEnvelopeMagic = 0x43496F43;  // "CoIC" LE
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kEnvelopeHeaderSize = 20;
/// Upper bound on payload size accepted by decoders: a hostile length
/// field must not drive allocation. 64 MiB comfortably covers 8K
/// panoramas and the largest evaluated model (15053 KB).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/// A decoded envelope; payload is an owned copy so the caller may retire
/// the input buffer.
struct Envelope {
  MessageType type = MessageType::kPing;
  std::uint64_t request_id = 0;
  ByteVec payload;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Serializes header + payload into one buffer.
ByteVec EncodeEnvelope(MessageType type, std::uint64_t request_id,
                       std::span<const std::uint8_t> payload);

/// Convenience: encodes `msg` (any type with Encode(ByteWriter&)) and
/// wraps it in an envelope.
template <typename Message>
ByteVec EncodeMessage(MessageType type, std::uint64_t request_id,
                      const Message& msg) {
  ByteWriter w;
  msg.Encode(w);
  return EncodeEnvelope(type, request_id, w.bytes());
}

/// Parses a full envelope from `data`. Fails with kDataLoss on bad magic,
/// unsupported version, truncated header/payload or oversized length.
Result<Envelope> DecodeEnvelope(std::span<const std::uint8_t> data);

/// Incremental framing helper for stream transports: given the bytes
/// accumulated so far, returns the total frame size (header + payload) if
/// the header is complete, 0 if more header bytes are needed, or an error
/// if the header is invalid.
Result<std::size_t> PeekFrameSize(std::span<const std::uint8_t> data);

/// Decodes the payload of `env` as message type M, checking that the
/// envelope type tag matches `expected`.
template <typename M>
Result<M> DecodePayloadAs(const Envelope& env, MessageType expected) {
  if (env.type != expected) {
    return Status(StatusCode::kDataLoss, "unexpected message type");
  }
  ByteReader r(env.payload);
  auto result = M::Decode(r);
  if (!result.ok()) return result.status();
  if (!r.AtEnd()) {
    return Status(StatusCode::kDataLoss, "trailing bytes after payload");
  }
  return result;
}

}  // namespace coic::proto
