#include "proto/messages.h"

namespace coic::proto {
namespace {

Status DecodeOffloadMode(ByteReader& r, OffloadMode& out) {
  std::uint8_t raw = 0;
  COIC_RETURN_IF_ERROR(r.ReadU8(raw));
  if (raw > static_cast<std::uint8_t>(OffloadMode::kOrigin)) {
    return Status(StatusCode::kDataLoss, "bad OffloadMode");
  }
  out = static_cast<OffloadMode>(raw);
  return Status::Ok();
}

Status DecodeResultSource(ByteReader& r, ResultSource& out) {
  std::uint8_t raw = 0;
  COIC_RETURN_IF_ERROR(r.ReadU8(raw));
  if (raw > static_cast<std::uint8_t>(ResultSource::kPeerEdge)) {
    return Status(StatusCode::kDataLoss, "bad ResultSource");
  }
  out = static_cast<ResultSource>(raw);
  return Status::Ok();
}

Status DecodeResultMessageType(ByteReader& r, MessageType& out) {
  std::uint8_t raw = 0;
  COIC_RETURN_IF_ERROR(r.ReadU8(raw));
  const auto type = static_cast<MessageType>(raw);
  if (type != MessageType::kRecognitionResult &&
      type != MessageType::kRenderResult &&
      type != MessageType::kPanoramaResult) {
    return Status(StatusCode::kDataLoss, "peer reply_type is not a result type");
  }
  out = type;
  return Status::Ok();
}

}  // namespace

Result<OffloadMode> PeekRequestOffloadMode(
    MessageType type, std::span<const std::uint8_t> payload) {
  // RecognitionRequest: u32 user, u32 app, u64 frame_id, mode.
  // RenderRequest:      u32 user, u32 app, u64 model_id, mode.
  // PanoramaRequest:    u32 user, u64 video_id, u32 frame_index, mode.
  constexpr std::size_t kModeOffset = 16;
  if (type != MessageType::kRecognitionRequest &&
      type != MessageType::kRenderRequest &&
      type != MessageType::kPanoramaRequest) {
    return Status(StatusCode::kDataLoss, "not a request payload");
  }
  if (payload.size() <= kModeOffset) {
    return Status(StatusCode::kDataLoss, "request payload truncated");
  }
  const std::uint8_t raw = payload[kModeOffset];
  if (raw > static_cast<std::uint8_t>(OffloadMode::kOrigin)) {
    return Status(StatusCode::kDataLoss, "bad OffloadMode");
  }
  return static_cast<OffloadMode>(raw);
}

std::string_view MessageTypeName(MessageType t) noexcept {
  switch (t) {
    case MessageType::kPing: return "Ping";
    case MessageType::kPong: return "Pong";
    case MessageType::kError: return "Error";
    case MessageType::kRecognitionRequest: return "RecognitionRequest";
    case MessageType::kRecognitionResult: return "RecognitionResult";
    case MessageType::kRenderRequest: return "RenderRequest";
    case MessageType::kRenderResult: return "RenderResult";
    case MessageType::kPanoramaRequest: return "PanoramaRequest";
    case MessageType::kPanoramaResult: return "PanoramaResult";
    case MessageType::kCacheStatsRequest: return "CacheStatsRequest";
    case MessageType::kCacheStatsReply: return "CacheStatsReply";
    case MessageType::kPeerLookupRequest: return "PeerLookupRequest";
    case MessageType::kPeerLookupReply: return "PeerLookupReply";
    case MessageType::kSummaryUpdate: return "SummaryUpdate";
    case MessageType::kFederatedRelay: return "FederatedRelay";
    case MessageType::kSummaryDeltaUpdate: return "SummaryDeltaUpdate";
    case MessageType::kSummaryAck: return "SummaryAck";
    case MessageType::kDatagramChunk: return "DatagramChunk";
    case MessageType::kRegionDigestUpdate: return "RegionDigestUpdate";
  }
  return "Unknown";
}

// --------------------------- RecognitionRequest ----------------------------

Bytes RecognitionRequest::WireSize() const noexcept {
  return 4 + 4 + 8 + 1 + descriptor.WireSize() + 4 + image.size() + 4;
}

void RecognitionRequest::Encode(ByteWriter& w) const {
  w.WriteU32(user_id);
  w.WriteU32(app_id);
  w.WriteU64(frame_id);
  w.WriteU8(static_cast<std::uint8_t>(mode));
  descriptor.Encode(w);
  w.WriteBlob(image);
  w.WriteU32(deadline_ms);
}

Result<RecognitionRequest> RecognitionRequest::Decode(ByteReader& r) {
  RecognitionRequest m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.user_id));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.app_id));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.frame_id));
  COIC_RETURN_IF_ERROR(DecodeOffloadMode(r, m.mode));
  auto desc = FeatureDescriptor::Decode(r);
  if (!desc.ok()) return desc.status();
  m.descriptor = std::move(desc).value();
  COIC_RETURN_IF_ERROR(r.ReadBlob(m.image));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.deadline_ms));
  if (m.mode == OffloadMode::kOrigin && m.image.empty()) {
    return Status(StatusCode::kDataLoss, "Origin recognition without image");
  }
  return m;
}

// --------------------------- RecognitionResult -----------------------------

Bytes RecognitionResult::WireSize() const noexcept {
  return 8 + 4 + label.size() + 4 + 1 + 4 + annotation.size();
}

void RecognitionResult::Encode(ByteWriter& w) const {
  w.WriteU64(frame_id);
  w.WriteString(label);
  w.WriteF32(confidence);
  w.WriteU8(static_cast<std::uint8_t>(source));
  w.WriteBlob(annotation);
}

Result<RecognitionResultView> RecognitionResultView::Decode(ByteReader& r) {
  RecognitionResultView m;
  COIC_RETURN_IF_ERROR(r.ReadU64(m.frame_id));
  COIC_RETURN_IF_ERROR(r.ReadStringView(m.label));
  COIC_RETURN_IF_ERROR(r.ReadF32(m.confidence));
  COIC_RETURN_IF_ERROR(DecodeResultSource(r, m.source));
  COIC_RETURN_IF_ERROR(r.ReadBlobView(m.annotation));
  return m;
}

Result<RecognitionResult> RecognitionResult::Decode(ByteReader& r) {
  // Thin owning wrapper over the view decoder: identical validation,
  // then the borrowed fields are copied out.
  auto view = RecognitionResultView::Decode(r);
  if (!view.ok()) return view.status();
  RecognitionResult m;
  m.frame_id = view.value().frame_id;
  m.label.assign(view.value().label);
  m.confidence = view.value().confidence;
  m.source = view.value().source;
  m.annotation.assign(view.value().annotation.begin(),
                      view.value().annotation.end());
  return m;
}

// ------------------------------ RenderRequest ------------------------------

Bytes RenderRequest::WireSize() const noexcept {
  return 4 + 4 + 8 + 1 + descriptor.WireSize() + 1 + 4;
}

void RenderRequest::Encode(ByteWriter& w) const {
  w.WriteU32(user_id);
  w.WriteU32(app_id);
  w.WriteU64(model_id);
  w.WriteU8(static_cast<std::uint8_t>(mode));
  descriptor.Encode(w);
  w.WriteU8(level_of_detail);
  w.WriteU32(deadline_ms);
}

Result<RenderRequest> RenderRequest::Decode(ByteReader& r) {
  RenderRequest m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.user_id));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.app_id));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.model_id));
  COIC_RETURN_IF_ERROR(DecodeOffloadMode(r, m.mode));
  auto desc = FeatureDescriptor::Decode(r);
  if (!desc.ok()) return desc.status();
  m.descriptor = std::move(desc).value();
  COIC_RETURN_IF_ERROR(r.ReadU8(m.level_of_detail));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.deadline_ms));
  return m;
}

// ------------------------------- RenderResult ------------------------------

Bytes RenderResult::WireSize() const noexcept {
  return 8 + 1 + 4 + model_bytes.size();
}

void RenderResult::Encode(ByteWriter& w) const {
  w.WriteU64(model_id);
  w.WriteU8(static_cast<std::uint8_t>(source));
  w.WriteBlob(model_bytes);
}

Result<RenderResultView> RenderResultView::Decode(ByteReader& r) {
  RenderResultView m;
  COIC_RETURN_IF_ERROR(r.ReadU64(m.model_id));
  COIC_RETURN_IF_ERROR(DecodeResultSource(r, m.source));
  COIC_RETURN_IF_ERROR(r.ReadBlobView(m.model_bytes));
  return m;
}

Result<RenderResult> RenderResult::Decode(ByteReader& r) {
  auto view = RenderResultView::Decode(r);
  if (!view.ok()) return view.status();
  RenderResult m;
  m.model_id = view.value().model_id;
  m.source = view.value().source;
  m.model_bytes.assign(view.value().model_bytes.begin(),
                       view.value().model_bytes.end());
  return m;
}

// ----------------------------- PanoramaRequest -----------------------------

Bytes PanoramaRequest::WireSize() const noexcept {
  return 4 + 8 + 4 + 1 + descriptor.WireSize() + 12 + 4;
}

void PanoramaRequest::Encode(ByteWriter& w) const {
  w.WriteU32(user_id);
  w.WriteU64(video_id);
  w.WriteU32(frame_index);
  w.WriteU8(static_cast<std::uint8_t>(mode));
  descriptor.Encode(w);
  w.WriteF32(viewport.yaw_deg);
  w.WriteF32(viewport.pitch_deg);
  w.WriteF32(viewport.fov_deg);
  w.WriteU32(deadline_ms);
}

Result<PanoramaRequest> PanoramaRequest::Decode(ByteReader& r) {
  PanoramaRequest m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.user_id));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.video_id));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.frame_index));
  COIC_RETURN_IF_ERROR(DecodeOffloadMode(r, m.mode));
  auto desc = FeatureDescriptor::Decode(r);
  if (!desc.ok()) return desc.status();
  m.descriptor = std::move(desc).value();
  COIC_RETURN_IF_ERROR(r.ReadF32(m.viewport.yaw_deg));
  COIC_RETURN_IF_ERROR(r.ReadF32(m.viewport.pitch_deg));
  COIC_RETURN_IF_ERROR(r.ReadF32(m.viewport.fov_deg));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.deadline_ms));
  return m;
}

// ------------------------------ PanoramaResult -----------------------------

Bytes PanoramaResult::WireSize() const noexcept {
  return 8 + 4 + 1 + 2 + 2 + 4 + frame.size();
}

void PanoramaResult::Encode(ByteWriter& w) const {
  w.WriteU64(video_id);
  w.WriteU32(frame_index);
  w.WriteU8(static_cast<std::uint8_t>(source));
  w.WriteU16(width);
  w.WriteU16(height);
  w.WriteBlob(frame);
}

Result<PanoramaResultView> PanoramaResultView::Decode(ByteReader& r) {
  PanoramaResultView m;
  COIC_RETURN_IF_ERROR(r.ReadU64(m.video_id));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.frame_index));
  COIC_RETURN_IF_ERROR(DecodeResultSource(r, m.source));
  COIC_RETURN_IF_ERROR(r.ReadU16(m.width));
  COIC_RETURN_IF_ERROR(r.ReadU16(m.height));
  COIC_RETURN_IF_ERROR(r.ReadBlobView(m.frame));
  return m;
}

Result<PanoramaResult> PanoramaResult::Decode(ByteReader& r) {
  auto view = PanoramaResultView::Decode(r);
  if (!view.ok()) return view.status();
  PanoramaResult m;
  m.video_id = view.value().video_id;
  m.frame_index = view.value().frame_index;
  m.source = view.value().source;
  m.width = view.value().width;
  m.height = view.value().height;
  m.frame.assign(view.value().frame.begin(), view.value().frame.end());
  return m;
}

// -------------------------------- ErrorReply -------------------------------

void ErrorReply::Encode(ByteWriter& w) const {
  w.WriteU16(code);
  w.WriteString(message);
}

Result<ErrorReply> ErrorReply::Decode(ByteReader& r) {
  ErrorReply m;
  COIC_RETURN_IF_ERROR(r.ReadU16(m.code));
  COIC_RETURN_IF_ERROR(r.ReadString(m.message));
  return m;
}

// ----------------------------- PeerLookupRequest ---------------------------

Bytes PeerLookupRequest::WireSize() const noexcept {
  return descriptor.WireSize() + 1;
}

void PeerLookupRequest::Encode(ByteWriter& w) const {
  descriptor.Encode(w);
  w.WriteU8(static_cast<std::uint8_t>(reply_type));
}

Result<PeerLookupRequest> PeerLookupRequest::Decode(ByteReader& r) {
  PeerLookupRequest m;
  auto desc = FeatureDescriptor::Decode(r);
  if (!desc.ok()) return desc.status();
  m.descriptor = std::move(desc).value();
  COIC_RETURN_IF_ERROR(DecodeResultMessageType(r, m.reply_type));
  return m;
}

// ------------------------------ PeerLookupReply ----------------------------

Bytes PeerLookupReply::WireSize() const noexcept {
  return 1 + 1 + 4 + payload.size();
}

void PeerLookupReply::Encode(ByteWriter& w) const {
  w.WriteU8(found ? 1 : 0);
  w.WriteU8(static_cast<std::uint8_t>(reply_type));
  w.WriteBlob(payload);
}

Result<PeerLookupReplyView> PeerLookupReplyView::Decode(ByteReader& r) {
  PeerLookupReplyView m;
  std::uint8_t found_raw = 0;
  COIC_RETURN_IF_ERROR(r.ReadU8(found_raw));
  if (found_raw > 1) {
    return Status(StatusCode::kDataLoss, "bad found flag");
  }
  m.found = found_raw == 1;
  COIC_RETURN_IF_ERROR(DecodeResultMessageType(r, m.reply_type));
  COIC_RETURN_IF_ERROR(r.ReadBlobView(m.payload));
  if (m.found == m.payload.empty()) {
    return Status(StatusCode::kDataLoss, "found flag disagrees with payload");
  }
  return m;
}

Result<PeerLookupReply> PeerLookupReply::Decode(ByteReader& r) {
  auto view = PeerLookupReplyView::Decode(r);
  if (!view.ok()) return view.status();
  PeerLookupReply m;
  m.found = view.value().found;
  m.reply_type = view.value().reply_type;
  m.payload.assign(view.value().payload.begin(), view.value().payload.end());
  return m;
}

// ------------------------------ SummaryUpdate ------------------------------

Bytes SummaryUpdate::WireSize() const noexcept {
  Bytes size = 4 + 8 + 4 + 8 + 4 + bloom_bits.size();
  for (const auto& c : centroids) {
    size += 4 + 4 + c.centroid.size() * 4;
  }
  return size;
}

void SummaryUpdate::Encode(ByteWriter& w) const {
  w.WriteU32(edge_id);
  w.WriteU64(version);
  w.WriteU32(bloom_hashes);
  w.WriteU64(bloom_inserted);
  w.WriteBlob(bloom_bits);
  for (const auto& c : centroids) {
    w.WriteU32(c.count);
    w.WriteF32Vector(c.centroid);
  }
}

Result<SummaryUpdate> SummaryUpdate::Decode(ByteReader& r) {
  SummaryUpdate m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.edge_id));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.version));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.bloom_hashes));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.bloom_inserted));
  COIC_RETURN_IF_ERROR(r.ReadBlob(m.bloom_bits));
  for (auto& c : m.centroids) {
    COIC_RETURN_IF_ERROR(r.ReadU32(c.count));
    COIC_RETURN_IF_ERROR(r.ReadF32Vector(c.centroid));
    if (c.count == 0 && !c.centroid.empty()) {
      return Status(StatusCode::kDataLoss, "centroid without entries");
    }
  }
  return m;
}

// ---------------------------- SummaryDeltaUpdate ---------------------------

Bytes SummaryDeltaUpdate::WireSize() const noexcept {
  Bytes size = 4 + 8 + 8 + 8 + 4 + keys_inserted.size() * 8;
  for (const auto& c : centroids) {
    size += 4 + 4 + c.centroid.size() * 4;
  }
  return size;
}

void SummaryDeltaUpdate::Encode(ByteWriter& w) const {
  w.WriteU32(edge_id);
  w.WriteU64(version);
  w.WriteU64(base_version);
  w.WriteU64(bloom_inserted);
  w.WriteU64Vector(keys_inserted);
  for (const auto& c : centroids) {
    w.WriteU32(c.count);
    w.WriteF32Vector(c.centroid);
  }
}

Result<SummaryDeltaUpdate> SummaryDeltaUpdate::Decode(ByteReader& r) {
  SummaryDeltaUpdate m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.edge_id));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.version));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.base_version));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.bloom_inserted));
  COIC_RETURN_IF_ERROR(r.ReadU64Vector(m.keys_inserted));
  if (m.version <= m.base_version) {
    return Status(StatusCode::kDataLoss, "delta version not after its base");
  }
  if (m.bloom_inserted < m.keys_inserted.size()) {
    return Status(StatusCode::kDataLoss,
                  "delta key count exceeds absolute bloom count");
  }
  for (auto& c : m.centroids) {
    COIC_RETURN_IF_ERROR(r.ReadU32(c.count));
    COIC_RETURN_IF_ERROR(r.ReadF32Vector(c.centroid));
    if (c.count == 0 && !c.centroid.empty()) {
      return Status(StatusCode::kDataLoss, "centroid without entries");
    }
  }
  return m;
}

// ---------------------------- RegionDigestUpdate ---------------------------

Bytes RegionDigestUpdate::WireSize() const noexcept {
  Bytes size = 4 + 4 + 8 + 4 + 8 + 4 + bloom_bits.size();
  for (const auto& c : centroids) {
    size += 4 + 4 + c.centroid.size() * 4;
  }
  size += 4 + member_edges.size() * (4 + 8);
  return size;
}

void RegionDigestUpdate::Encode(ByteWriter& w) const {
  w.WriteU32(region_id);
  w.WriteU32(head_edge);
  w.WriteU64(version);
  w.WriteU32(bloom_hashes);
  w.WriteU64(bloom_inserted);
  w.WriteBlob(bloom_bits);
  for (const auto& c : centroids) {
    w.WriteU32(c.count);
    w.WriteF32Vector(c.centroid);
  }
  w.WriteU32(static_cast<std::uint32_t>(member_edges.size()));
  for (std::size_t i = 0; i < member_edges.size(); ++i) {
    w.WriteU32(member_edges[i]);
    w.WriteU64(member_keys[i]);
  }
}

Result<RegionDigestUpdate> RegionDigestUpdate::Decode(ByteReader& r) {
  RegionDigestUpdate m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.region_id));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.head_edge));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.version));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.bloom_hashes));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.bloom_inserted));
  COIC_RETURN_IF_ERROR(r.ReadBlob(m.bloom_bits));
  for (auto& c : m.centroids) {
    COIC_RETURN_IF_ERROR(r.ReadU32(c.count));
    COIC_RETURN_IF_ERROR(r.ReadF32Vector(c.centroid));
    if (c.count == 0 && !c.centroid.empty()) {
      return Status(StatusCode::kDataLoss, "centroid without entries");
    }
  }
  std::uint32_t members = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(members));
  // 12 bytes per member; bound by remaining input before reserving.
  if (members > r.remaining() / 12) {
    return Status(StatusCode::kDataLoss, "digest member list truncated");
  }
  m.member_edges.reserve(members);
  m.member_keys.reserve(members);
  std::uint64_t hinted_keys = 0;
  for (std::uint32_t i = 0; i < members; ++i) {
    std::uint32_t edge = 0;
    std::uint64_t keys = 0;
    COIC_RETURN_IF_ERROR(r.ReadU32(edge));
    COIC_RETURN_IF_ERROR(r.ReadU64(keys));
    m.member_edges.push_back(edge);
    m.member_keys.push_back(keys);
    hinted_keys += keys;
  }
  if (hinted_keys > m.bloom_inserted) {
    return Status(StatusCode::kDataLoss,
                  "member hint keys exceed digest bloom count");
  }
  return m;
}

// ------------------------------ FederatedRelay -----------------------------

Bytes FederatedRelay::WireSize() const noexcept {
  return 4 + 4 + 1 + 4 + inner.size();
}

void FederatedRelay::Encode(ByteWriter& w) const {
  w.WriteU32(src_edge);
  w.WriteU32(dest_edge);
  w.WriteU8(ttl);
  w.WriteBlob(inner);
}

Result<FederatedRelay> FederatedRelay::Decode(ByteReader& r) {
  FederatedRelay m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.src_edge));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.dest_edge));
  COIC_RETURN_IF_ERROR(r.ReadU8(m.ttl));
  COIC_RETURN_IF_ERROR(r.ReadBlob(m.inner));
  if (m.src_edge == m.dest_edge) {
    return Status(StatusCode::kDataLoss, "relay to self");
  }
  return m;
}

// -------------------------------- SummaryAck -------------------------------

Bytes SummaryAck::WireSize() const noexcept { return 4 + 4 + 8; }

void SummaryAck::Encode(ByteWriter& w) const {
  w.WriteU32(acker_edge);
  w.WriteU32(subject_edge);
  w.WriteU64(version);
}

Result<SummaryAck> SummaryAck::Decode(ByteReader& r) {
  SummaryAck m;
  COIC_RETURN_IF_ERROR(r.ReadU32(m.acker_edge));
  COIC_RETURN_IF_ERROR(r.ReadU32(m.subject_edge));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.version));
  if (m.acker_edge == m.subject_edge) {
    return Status(StatusCode::kDataLoss, "ack of own summary");
  }
  return m;
}

// ------------------------------ DatagramChunk ------------------------------

Bytes DatagramChunk::WireSize() const noexcept {
  return 2 + 2 + 4 + data.size();
}

void DatagramChunk::Encode(ByteWriter& w) const {
  w.WriteU16(chunk_index);
  w.WriteU16(chunk_count);
  w.WriteBlob(data);
}

Result<DatagramChunkView> DatagramChunkView::Decode(ByteReader& r) {
  DatagramChunkView m;
  COIC_RETURN_IF_ERROR(r.ReadU16(m.chunk_index));
  COIC_RETURN_IF_ERROR(r.ReadU16(m.chunk_count));
  COIC_RETURN_IF_ERROR(r.ReadBlobView(m.data));
  if (m.chunk_count == 0) {
    return Status(StatusCode::kDataLoss, "chunk count must be >= 1");
  }
  if (m.chunk_index >= m.chunk_count) {
    return Status(StatusCode::kDataLoss, "chunk index out of range");
  }
  if (m.data.empty()) {
    return Status(StatusCode::kDataLoss, "empty chunk");
  }
  return m;
}

Result<DatagramChunk> DatagramChunk::Decode(ByteReader& r) {
  auto view = DatagramChunkView::Decode(r);
  if (!view.ok()) return view.status();
  DatagramChunk m;
  m.chunk_index = view.value().chunk_index;
  m.chunk_count = view.value().chunk_count;
  m.data.assign(view.value().data.begin(), view.value().data.end());
  return m;
}

// -------------------------- PatchResultSourceInPlace -----------------------

Result<std::size_t> ResultSourceOffset(MessageType type,
                                       std::span<const std::uint8_t> payload) {
  // Offsets follow the Encode() field order of each result type; the
  // source byte always precedes the bulk blob, so computing the offset
  // never walks the large tail.
  std::size_t offset = 0;
  switch (type) {
    case MessageType::kRecognitionResult: {
      // frame_id(8) + label(4 + len) + confidence(4), then source.
      if (payload.size() < 12) {
        return Status(StatusCode::kDataLoss, "result payload too short");
      }
      std::uint32_t label_len = 0;
      std::memcpy(&label_len, payload.data() + 8, 4);
      offset = static_cast<std::size_t>(8) + 4 + label_len + 4;
      break;
    }
    case MessageType::kRenderResult:
      offset = 8;  // model_id(8), then source.
      break;
    case MessageType::kPanoramaResult:
      offset = 12;  // video_id(8) + frame_index(4), then source.
      break;
    default:
      return Status(StatusCode::kDataLoss, "not a result message type");
  }
  if (offset >= payload.size()) {
    return Status(StatusCode::kDataLoss, "result payload too short");
  }
  return offset;
}

bool PatchResultSourceInPlace(MessageType type,
                              std::span<std::uint8_t> payload,
                              ResultSource source) {
  const auto offset = ResultSourceOffset(type, payload);
  if (!offset.ok()) return false;
  payload[offset.value()] = static_cast<std::uint8_t>(source);
  return true;
}

// ----------------------------- CacheStatsReply -----------------------------

void CacheStatsReply::Encode(ByteWriter& w) const {
  w.WriteU64(hits);
  w.WriteU64(misses);
  w.WriteU64(insertions);
  w.WriteU64(evictions);
  w.WriteU64(bytes_used);
  w.WriteU64(bytes_capacity);
}

Result<CacheStatsReply> CacheStatsReply::Decode(ByteReader& r) {
  CacheStatsReply m;
  COIC_RETURN_IF_ERROR(r.ReadU64(m.hits));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.misses));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.insertions));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.evictions));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.bytes_used));
  COIC_RETURN_IF_ERROR(r.ReadU64(m.bytes_capacity));
  return m;
}

}  // namespace coic::proto
