// CoIC wire messages.
//
// One struct per protocol message, each with Encode/Decode. The message
// set covers the three IC task families the paper identifies (object
// recognition, 3D rendering, panoramic VR streaming) in both CoIC mode
// (descriptor-first) and Origin mode (full input offload), plus the
// edge<->cloud forwarding and cache-maintenance messages from Figure 1.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "proto/descriptor.h"

namespace coic::proto {

/// Wire message discriminator (envelope `type` field).
enum class MessageType : std::uint8_t {
  kPing = 0,
  kPong = 1,
  kError = 2,
  kRecognitionRequest = 10,
  kRecognitionResult = 11,
  kRenderRequest = 12,
  kRenderResult = 13,
  kPanoramaRequest = 14,
  kPanoramaResult = 15,
  kCacheStatsRequest = 20,
  kCacheStatsReply = 21,
  /// Edge <-> edge cooperation (the "cooperative" in CoIC): an edge that
  /// misses locally may probe a peer edge's cache before paying the
  /// cloud round trip.
  kPeerLookupRequest = 30,
  kPeerLookupReply = 31,
  /// Edge federation: a compact digest of one edge's cache content,
  /// gossiped periodically so peers can direct lookups instead of
  /// broadcasting.
  kSummaryUpdate = 32,
  /// Edge federation: source-routed wrapper for edge-to-edge frames
  /// between venues that are not directly linked in the topology.
  kFederatedRelay = 33,
  /// Edge federation: incremental cache-summary update — only the
  /// content-hash keys inserted since a base version the receiver
  /// already holds, plus replacement centroid sketches. Falls back to a
  /// full kSummaryUpdate when the base is unknown, the sender's change
  /// journal overflowed, or keys were erased (Bloom bits only compose
  /// under insertion).
  kSummaryDeltaUpdate = 34,
  /// Edge federation: cumulative acknowledgement of a peer's summary
  /// stream, piggybacked on PeerLookup traffic. A sender that sees an
  /// ack older than what it last shipped knows a summary frame was lost
  /// and resends a full summary immediately instead of waiting for the
  /// periodic refresh.
  kSummaryAck = 35,
  /// Unreliable transport: one MTU-sized chunk of a larger message. The
  /// envelope request id carries the per-directed-pair reassembly
  /// sequence number; the payload carries chunk index/count and bytes.
  kDatagramChunk = 36,
  /// Hierarchical federation: a region head's aggregate of its members'
  /// cache summaries (Bloom union + merged centroid sketches), gossiped
  /// cross-region so foreign venues can resolve a miss to a region
  /// without holding per-member summaries.
  kRegionDigestUpdate = 37,
};

std::string_view MessageTypeName(MessageType t) noexcept;

/// How a request wants the task executed.
enum class OffloadMode : std::uint8_t {
  kCoic = 0,    ///< Descriptor-first: edge cache consulted (Figure 1 path).
  kOrigin = 1,  ///< Baseline: full input offloaded straight to the cloud.
};

/// Where a result was produced — clients use this to account hit/miss QoE.
enum class ResultSource : std::uint8_t {
  kEdgeCache = 0,  ///< Served from the local edge IC cache (hit).
  kCloud = 1,      ///< Computed by the cloud (miss or Origin).
  kLocal = 2,      ///< Computed on-device (Local baseline).
  kPeerEdge = 3,   ///< Served from a cooperating peer edge's cache.
};

// ---------------------------------------------------------------------------
// Recognition (AR object recognition; Figure 2a workload)
// ---------------------------------------------------------------------------

/// Client -> edge. In kCoic mode carries only the descriptor; in kOrigin
/// mode carries the full camera frame for cloud inference.
struct RecognitionRequest {
  std::uint32_t user_id = 0;
  std::uint32_t app_id = 0;
  std::uint64_t frame_id = 0;
  OffloadMode mode = OffloadMode::kCoic;
  FeatureDescriptor descriptor;  ///< Valid in kCoic mode.
  ByteVec image;                 ///< Full frame; non-empty in kOrigin mode.
  /// Remaining latency budget the client grants this request, stamped at
  /// send time. 0 = no deadline. The edge sheds already-expired work
  /// before spending a cloud fetch on it.
  std::uint32_t deadline_ms = 0;

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<RecognitionRequest> Decode(ByteReader& r);
  friend bool operator==(const RecognitionRequest&,
                         const RecognitionRequest&) = default;
};

/// Edge/cloud -> client. The annotation blob is the "high-quality 3D
/// annotation" the paper's demo app overlays on recognized objects.
struct RecognitionResult {
  std::uint64_t frame_id = 0;
  std::string label;
  float confidence = 0;
  ResultSource source = ResultSource::kCloud;
  ByteVec annotation;

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<RecognitionResult> Decode(ByteReader& r);
  friend bool operator==(const RecognitionResult&,
                         const RecognitionResult&) = default;
};

/// Borrowed-view twin of RecognitionResult: `label` and `annotation`
/// point into the decoded buffer (valid only while it lives — in
/// practice while the receive-path Frame is held). Identical wire
/// validation; the owning Decode is a thin wrapper over this one.
struct RecognitionResultView {
  std::uint64_t frame_id = 0;
  std::string_view label;
  float confidence = 0;
  ResultSource source = ResultSource::kCloud;
  std::span<const std::uint8_t> annotation;

  static Result<RecognitionResultView> Decode(ByteReader& r);
};

// ---------------------------------------------------------------------------
// 3D model rendering (Figure 2b workload)
// ---------------------------------------------------------------------------

/// Client -> edge: load (and cache) the 3D model named by content digest.
struct RenderRequest {
  std::uint32_t user_id = 0;
  std::uint32_t app_id = 0;
  std::uint64_t model_id = 0;
  OffloadMode mode = OffloadMode::kCoic;
  FeatureDescriptor descriptor;  ///< kContentHash of the model bytes.
  std::uint8_t level_of_detail = 0;
  std::uint32_t deadline_ms = 0;  ///< Latency budget; 0 = no deadline.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<RenderRequest> Decode(ByteReader& r);
  friend bool operator==(const RenderRequest&, const RenderRequest&) = default;
};

/// Edge/cloud -> client: the loaded model payload ready for draw.
struct RenderResult {
  std::uint64_t model_id = 0;
  ResultSource source = ResultSource::kCloud;
  ByteVec model_bytes;  ///< Parsed/loaded model representation.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<RenderResult> Decode(ByteReader& r);
  friend bool operator==(const RenderResult&, const RenderResult&) = default;
};

/// Borrowed-view twin of RenderResult: `model_bytes` points into the
/// decoded buffer — the multi-hundred-KB model body is never duplicated
/// on the client receive path.
struct RenderResultView {
  std::uint64_t model_id = 0;
  ResultSource source = ResultSource::kCloud;
  std::span<const std::uint8_t> model_bytes;

  static Result<RenderResultView> Decode(ByteReader& r);
};

// ---------------------------------------------------------------------------
// Panoramic VR streaming (paper §1.2, third redundancy insight)
// ---------------------------------------------------------------------------

/// Client viewport orientation; the client crops the panorama locally, so
/// the request carries it only for logging/prefetch purposes.
struct Viewport {
  float yaw_deg = 0;
  float pitch_deg = 0;
  float fov_deg = 90;
  friend bool operator==(const Viewport&, const Viewport&) = default;
};

struct PanoramaRequest {
  std::uint32_t user_id = 0;
  std::uint64_t video_id = 0;
  std::uint32_t frame_index = 0;
  OffloadMode mode = OffloadMode::kCoic;
  FeatureDescriptor descriptor;  ///< kContentHash of the panorama identity.
  Viewport viewport;
  std::uint32_t deadline_ms = 0;  ///< Latency budget; 0 = no deadline.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<PanoramaRequest> Decode(ByteReader& r);
  friend bool operator==(const PanoramaRequest&, const PanoramaRequest&) = default;
};

struct PanoramaResult {
  std::uint64_t video_id = 0;
  std::uint32_t frame_index = 0;
  ResultSource source = ResultSource::kCloud;
  std::uint16_t width = 0;   ///< Panorama pixel width.
  std::uint16_t height = 0;  ///< Panorama pixel height.
  ByteVec frame;             ///< Encoded panoramic frame.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<PanoramaResult> Decode(ByteReader& r);
  friend bool operator==(const PanoramaResult&, const PanoramaResult&) = default;
};

/// Borrowed-view twin of PanoramaResult: `frame` points into the decoded
/// buffer (multi-MB panorama rasters stay un-copied on receive).
struct PanoramaResultView {
  std::uint64_t video_id = 0;
  std::uint32_t frame_index = 0;
  ResultSource source = ResultSource::kCloud;
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::span<const std::uint8_t> frame;

  static Result<PanoramaResultView> Decode(ByteReader& r);
};

// ---------------------------------------------------------------------------
// Control / diagnostics
// ---------------------------------------------------------------------------

struct ErrorReply {
  std::uint16_t code = 0;  ///< StatusCode as integer.
  std::string message;

  void Encode(ByteWriter& w) const;
  static Result<ErrorReply> Decode(ByteReader& r);
  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

// ---------------------------------------------------------------------------
// Edge cooperation
// ---------------------------------------------------------------------------

/// Edge -> peer edge: "do you have a result for this descriptor?"
struct PeerLookupRequest {
  FeatureDescriptor descriptor;
  /// The result message type the payload decodes as (kRecognitionResult,
  /// kRenderResult or kPanoramaResult).
  MessageType reply_type = MessageType::kRecognitionResult;

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<PeerLookupRequest> Decode(ByteReader& r);
  friend bool operator==(const PeerLookupRequest&,
                         const PeerLookupRequest&) = default;
};

/// Peer edge -> edge: cached payload if found. A peer never forwards to
/// the cloud on the querier's behalf — cooperation is probe-only, so a
/// slow peer can only ever add one LAN round trip, never a WAN one.
struct PeerLookupReply {
  bool found = false;
  MessageType reply_type = MessageType::kRecognitionResult;
  ByteVec payload;  ///< Result message body; empty when !found.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<PeerLookupReply> Decode(ByteReader& r);
  friend bool operator==(const PeerLookupReply&, const PeerLookupReply&) = default;
};

/// Borrowed-view twin of PeerLookupReply: `payload` points into the
/// decoded buffer, so the probing edge can adopt a peer's cached result
/// as a Frame slice instead of copying it twice (decode + insert).
struct PeerLookupReplyView {
  bool found = false;
  MessageType reply_type = MessageType::kRecognitionResult;
  std::span<const std::uint8_t> payload;

  static Result<PeerLookupReplyView> Decode(ByteReader& r);
};

/// Edge -> peer edges: a compact, periodically gossiped digest of one
/// edge's cache content. Content-hash descriptors (render / panorama)
/// are summarized by a Bloom filter over their index keys; feature-vector
/// descriptors (recognition) by a per-task centroid sketch. Receivers use
/// it to send *directed* PeerLookupRequests to the most likely holder
/// instead of broadcasting to the whole cluster.
struct SummaryUpdate {
  std::uint32_t edge_id = 0;
  /// Monotonic per-edge version; receivers drop stale updates.
  std::uint64_t version = 0;
  /// Bloom filter over FeatureDescriptor::IndexKey() of hash-keyed
  /// entries: `bloom_hashes` probe positions per key into the
  /// `bloom_bits` bit array (LSB-first within each byte).
  std::uint32_t bloom_hashes = 0;
  std::uint64_t bloom_inserted = 0;  ///< Keys inserted (FP-rate estimate).
  ByteVec bloom_bits;
  /// Coarse per-task sketch of vector-keyed entries: entry count and the
  /// (unnormalized) mean descriptor vector. One slot per TaskKind, in
  /// enum order; empty slots have count 0 and an empty centroid.
  struct TaskCentroid {
    std::uint32_t count = 0;
    std::vector<float> centroid;
    friend bool operator==(const TaskCentroid&, const TaskCentroid&) = default;
  };
  std::array<TaskCentroid, 3> centroids;

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<SummaryUpdate> Decode(ByteReader& r);
  friend bool operator==(const SummaryUpdate&, const SummaryUpdate&) = default;
};

/// Edge -> peer edges: the incremental form of SummaryUpdate. Where a
/// full summary re-ships the whole Bloom bit array every time the cache
/// mutated, a delta carries only the content-hash IndexKeys inserted
/// since `base_version` (Bloom insertion is an order-independent OR, so
/// a receiver holding exactly `base_version` reproduces the sender's
/// fresh bit array byte-for-byte) plus the replacement per-task centroid
/// sketches, which are small enough to always send whole. Deltas never
/// encode erasures: removing a key cannot be expressed on shared Bloom
/// bits, so any erase since the base forces the sender back to a full
/// kSummaryUpdate. Leading fields share SummaryUpdate's fixed layout
/// (u32 edge_id, u64 version) so the stale-drop peek works on both.
struct SummaryDeltaUpdate {
  std::uint32_t edge_id = 0;
  /// Version after applying this delta (monotonic per edge).
  std::uint64_t version = 0;
  /// Version the receiver must currently hold for the delta to apply;
  /// anything else is dropped (a later full resend resynchronizes).
  std::uint64_t base_version = 0;
  /// Absolute Bloom key count after apply — lets the receiver verify the
  /// delta composes before mutating its copy.
  std::uint64_t bloom_inserted = 0;
  /// FeatureDescriptor::IndexKey() of content-hash entries inserted
  /// since the base version.
  std::vector<std::uint64_t> keys_inserted;
  /// Replacement sketches (absolute, not incremental); layout matches
  /// SummaryUpdate::centroids.
  std::array<SummaryUpdate::TaskCentroid, 3> centroids;

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<SummaryDeltaUpdate> Decode(ByteReader& r);
  friend bool operator==(const SummaryDeltaUpdate&,
                         const SummaryDeltaUpdate&) = default;
};

/// Source-routed edge-to-edge wrapper. Federation topologies need not be
/// full meshes; a frame for a non-adjacent venue is wrapped in a relay
/// and forwarded hop by hop along the precomputed shortest path. `ttl`
/// is the number of *additional* forwards allowed after the first hop —
/// an intermediate edge drops the frame when it reaches 0.
struct FederatedRelay {
  std::uint32_t src_edge = 0;
  std::uint32_t dest_edge = 0;
  std::uint8_t ttl = 0;
  ByteVec inner;  ///< A complete encoded envelope for dest_edge.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<FederatedRelay> Decode(ByteReader& r);
  friend bool operator==(const FederatedRelay&, const FederatedRelay&) = default;
};

/// Edge -> peer edge: cumulative summary acknowledgement. "I (acker)
/// currently hold subject_edge's summary at `version`." Piggybacked on
/// PeerLookup traffic when the transport is lossy; versions only ever
/// increase, so the message is idempotent and safe to duplicate or
/// reorder. version 0 means "no summary held" (a nack for everything),
/// which is what a rebooted edge reports until the first full summary
/// lands.
struct SummaryAck {
  std::uint32_t acker_edge = 0;    ///< Edge sending the ack.
  std::uint32_t subject_edge = 0;  ///< Edge whose summary is acknowledged.
  std::uint64_t version = 0;       ///< Highest applied summary version.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<SummaryAck> Decode(ByteReader& r);
  friend bool operator==(const SummaryAck&, const SummaryAck&) = default;
};

/// Region head -> all other venues: the two-tier federation digest. The
/// head unions its members' Bloom filters (equal geometry across the
/// cluster, so union = bitwise OR) and merges their per-task centroid
/// sketches into one region-level summary, plus a member-level hint
/// (each member's edge id and advertised key count) so receivers can
/// weight probe routing without a round trip to the head. Leading
/// fields are fixed-width (u32 region, u32 head, u64 version) so a
/// stale-drop peek works without a full decode.
struct RegionDigestUpdate {
  std::uint32_t region_id = 0;
  std::uint32_t head_edge = 0;  ///< Edge that built this digest.
  /// Monotonic digest version. A promoted successor head resumes at
  /// (last version it saw from the old head) + 1, so receivers accept
  /// the succession by plain version comparison; a lower-ranked head
  /// reasserting after recovery wins by rank regardless of version.
  std::uint64_t version = 0;
  /// Union of member Bloom filters (same geometry as SummaryUpdate).
  std::uint32_t bloom_hashes = 0;
  std::uint64_t bloom_inserted = 0;  ///< Sum of member key counts.
  ByteVec bloom_bits;
  /// Merged per-task sketches: count = sum, centroid = weighted mean.
  std::array<SummaryUpdate::TaskCentroid, 3> centroids;
  /// Member hint: edge ids of the summaries merged into this digest and
  /// each member's advertised hash-key count, index-aligned.
  std::vector<std::uint32_t> member_edges;
  std::vector<std::uint64_t> member_keys;

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<RegionDigestUpdate> Decode(ByteReader& r);
  friend bool operator==(const RegionDigestUpdate&,
                         const RegionDigestUpdate&) = default;
};

/// One fragment of a message that exceeded the datagram MTU. The
/// envelope request id field carries the sender's per-directed-pair
/// sequence number (all chunks of one message share it); links are FIFO,
/// so the receiver reassembles in order and drops the partial message on
/// any gap — a lost chunk loses the whole message, and the request-level
/// retry above re-sends it under a fresh sequence number.
struct DatagramChunk {
  std::uint16_t chunk_index = 0;  ///< 0-based position in the message.
  std::uint16_t chunk_count = 0;  ///< Total chunks (>= 1).
  ByteVec data;                   ///< This fragment's bytes.

  [[nodiscard]] Bytes WireSize() const noexcept;
  void Encode(ByteWriter& w) const;
  static Result<DatagramChunk> Decode(ByteReader& r);
  friend bool operator==(const DatagramChunk&, const DatagramChunk&) = default;
};

/// Borrowed-view twin of DatagramChunk: `data` points into the decoded
/// buffer so reassembly appends straight from the delivered frame.
struct DatagramChunkView {
  std::uint16_t chunk_index = 0;
  std::uint16_t chunk_count = 0;
  std::span<const std::uint8_t> data;

  static Result<DatagramChunkView> Decode(ByteReader& r);
};

/// Reads the OffloadMode byte of an encoded request payload
/// (Recognition/Render/PanoramaRequest) at its fixed offset without
/// decoding the rest — the edge routes Origin-mode requests (which may
/// carry a multi-hundred-KB camera image) to the cloud untouched, so a
/// full owning decode just to read one byte is pure copy waste. All
/// three request encoders lead with 16 bytes of fixed-width ids, then
/// the mode byte (pinned by a proto test). Fails with kDataLoss on a
/// wrong message type, short payload, or invalid mode byte.
Result<OffloadMode> PeekRequestOffloadMode(
    MessageType type, std::span<const std::uint8_t> payload);

/// Overwrites the ResultSource byte of an encoded result payload
/// (Recognition/Render/PanoramaResult) in place, without decoding or
/// copying the (possibly multi-MB) annotation/model/frame blob. Returns
/// false if `type` is not a result type or the payload is too short.
/// For payloads produced by our own encoders this is byte-identical to
/// decode → set source → re-encode (covered by a proto test).
bool PatchResultSourceInPlace(MessageType type,
                              std::span<std::uint8_t> payload,
                              ResultSource source);

/// Byte offset of the ResultSource field inside an encoded result
/// payload (the field PatchResultSourceInPlace overwrites). Scatter-
/// gather senders split a cached payload at this offset: everything
/// before it plus the patched source byte goes into a small rewritten
/// head, the (possibly multi-MB) tail after it is shared by reference.
/// Fails with kDataLoss for non-result types or short payloads.
Result<std::size_t> ResultSourceOffset(MessageType type,
                                       std::span<const std::uint8_t> payload);

struct CacheStatsReply {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_used = 0;
  std::uint64_t bytes_capacity = 0;

  void Encode(ByteWriter& w) const;
  static Result<CacheStatsReply> Decode(ByteReader& r);
  friend bool operator==(const CacheStatsReply&, const CacheStatsReply&) = default;
};

}  // namespace coic::proto
