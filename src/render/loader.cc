#include "render/loader.h"

namespace coic::render {

Result<LoadedModel> LoadModel(std::span<const std::uint8_t> serialized) {
  auto parsed = DeserializeModel(serialized);
  if (!parsed.ok()) return parsed.status();

  LoadedModel loaded;
  loaded.model = std::move(parsed).value();

  const auto& mesh = loaded.model.mesh;
  loaded.vertex_buffer.reserve(mesh.vertices.size() * 8);
  for (const Vertex& v : mesh.vertices) {
    loaded.vertex_buffer.insert(loaded.vertex_buffer.end(),
                                {v.position.x, v.position.y, v.position.z,
                                 v.normal.x, v.normal.y, v.normal.z, v.u, v.v});
  }
  loaded.index_count = static_cast<std::uint32_t>(mesh.indices.size());

  for (const std::uint8_t b : loaded.model.texture) {
    ++loaded.texture_histogram[b >> 2];
  }
  return loaded;
}

}  // namespace coic::render
