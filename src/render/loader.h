// Model loading — the expensive step Figure 2b measures.
//
// "To execute a rendering task, the renderer has to load the 3D model
//  into memory first and draw objects on the display. By caching the
//  loaded data in rendering tasks on the edge, CoIC reduces the load
//  latency by up to 75.86%."
//
// LoadModel does the real work our substrate can do (parse, validate,
// build an interleaved GPU-style vertex buffer, decode the texture); the
// wall-clock cost of the paper's loader is modeled separately by the
// pipelines' CostModel so simulated latency is calibrated, not tied to
// host CPU speed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "render/model.h"

namespace coic::render {

/// A model resident in memory, ready for draw calls: the parsed asset
/// plus the interleaved vertex buffer a GPU upload would consume.
struct LoadedModel {
  Model3D model;
  /// position(3) + normal(3) + uv(2) per vertex, interleaved.
  std::vector<float> vertex_buffer;
  std::uint32_t index_count = 0;
  /// Decoded texture summary (our stand-in for texel upload): a 64-bin
  /// luminance histogram of the texture bytes.
  std::array<std::uint32_t, 64> texture_histogram{};

  [[nodiscard]] Bytes ResidentBytes() const noexcept {
    return vertex_buffer.size() * sizeof(float) +
           model.mesh.indices.size() * sizeof(std::uint32_t) +
           model.texture.size();
  }
};

/// Parses serialized bytes into a LoadedModel. This is the "load the 3D
/// model into memory" step; it fails loudly on corrupt assets.
Result<LoadedModel> LoadModel(std::span<const std::uint8_t> serialized);

}  // namespace coic::render
