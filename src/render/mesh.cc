#include "render/mesh.h"

#include <algorithm>
#include <cmath>

namespace coic::render {

float Length(Vec3 v) noexcept { return std::sqrt(Dot(v, v)); }

Vec3 Normalized(Vec3 v) noexcept {
  const float len = Length(v);
  if (len < 1e-12f) return {0, 0, 0};
  return v * (1.0f / len);
}

Status Mesh::Validate() const {
  if (indices.size() % 3 != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "index count is not a multiple of 3");
  }
  for (const std::uint32_t idx : indices) {
    if (idx >= vertices.size()) {
      return Status(StatusCode::kOutOfRange, "index addresses missing vertex");
    }
  }
  return Status::Ok();
}

BoundingBox Mesh::Bounds() const {
  COIC_CHECK_MSG(!vertices.empty(), "bounds of an empty mesh");
  BoundingBox box{vertices[0].position, vertices[0].position};
  for (const Vertex& v : vertices) {
    box.min.x = std::min(box.min.x, v.position.x);
    box.min.y = std::min(box.min.y, v.position.y);
    box.min.z = std::min(box.min.z, v.position.z);
    box.max.x = std::max(box.max.x, v.position.x);
    box.max.y = std::max(box.max.y, v.position.y);
    box.max.z = std::max(box.max.z, v.position.z);
  }
  return box;
}

void Mesh::RecomputeNormals() {
  for (auto& v : vertices) v.normal = {0, 0, 0};
  for (std::size_t t = 0; t + 2 < indices.size(); t += 3) {
    Vertex& a = vertices[indices[t]];
    Vertex& b = vertices[indices[t + 1]];
    Vertex& c = vertices[indices[t + 2]];
    // Cross product magnitude is 2x triangle area: area weighting for free.
    const Vec3 face = Cross(b.position - a.position, c.position - a.position);
    a.normal = a.normal + face;
    b.normal = b.normal + face;
    c.normal = c.normal + face;
  }
  for (auto& v : vertices) v.normal = Normalized(v.normal);
}

}  // namespace coic::render
