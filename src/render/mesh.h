// Triangle-mesh geometry for the 3D rendering substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace coic::render {

struct Vec3 {
  float x = 0, y = 0, z = 0;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) noexcept {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) noexcept {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, float k) noexcept {
    return {a.x * k, a.y * k, a.z * k};
  }
  friend constexpr bool operator==(Vec3, Vec3) noexcept = default;
};

constexpr Vec3 Cross(Vec3 a, Vec3 b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
constexpr float Dot(Vec3 a, Vec3 b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
float Length(Vec3 v) noexcept;
Vec3 Normalized(Vec3 v) noexcept;

struct Vertex {
  Vec3 position{};
  Vec3 normal{};
  float u = 0, v = 0;  ///< Texture coordinates.

  friend constexpr bool operator==(const Vertex&, const Vertex&) noexcept = default;
};

struct BoundingBox {
  Vec3 min{};
  Vec3 max{};
};

/// Indexed triangle mesh. Invariant (checked by Validate): every index
/// addresses a vertex and the index count is a multiple of 3.
struct Mesh {
  std::vector<Vertex> vertices;
  std::vector<std::uint32_t> indices;

  friend bool operator==(const Mesh&, const Mesh&) = default;

  [[nodiscard]] std::size_t triangle_count() const noexcept {
    return indices.size() / 3;
  }

  /// OK iff structurally sound (index bounds, triangle multiple).
  [[nodiscard]] Status Validate() const;

  /// Axis-aligned bounds; precondition: at least one vertex.
  [[nodiscard]] BoundingBox Bounds() const;

  /// Recomputes per-vertex normals by area-weighted face averaging.
  void RecomputeNormals();
};

}  // namespace coic::render
