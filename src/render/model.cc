#include "render/model.h"

#include <cmath>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace coic::render {
namespace {

constexpr std::uint32_t kModelMagic = 0x4344334D;  // "M3DC" LE
constexpr Bytes kHeaderBytes = 4 + 8 + 4 + 4 + 4;
constexpr Bytes kVertexBytes = 32;  // 8 f32: pos(3) + normal(3) + uv(2)
constexpr Bytes kIndexBytes = 4;
constexpr double kPi = 3.14159265358979323846;

/// Serialized geometry bytes for a UV sphere with `rings` rings and
/// 2*rings segments.
constexpr Bytes SphereGeometryBytes(std::uint32_t rings) noexcept {
  const Bytes verts = static_cast<Bytes>(rings + 1) * (2 * rings + 1);
  const Bytes tris = static_cast<Bytes>(rings) * (2 * rings) * 2;
  return verts * kVertexBytes + tris * 3 * kIndexBytes;
}

Mesh BuildSphere(std::uint32_t rings, Rng& rng) {
  const std::uint32_t segments = 2 * rings;
  Mesh mesh;
  mesh.vertices.reserve(static_cast<std::size_t>(rings + 1) * (segments + 1));
  // Small deterministic radial jitter makes every model's bytes unique,
  // so two models of equal size never collide on content digest.
  const float jitter_phase = static_cast<float>(rng.NextDouble() * 2 * kPi);
  for (std::uint32_t r = 0; r <= rings; ++r) {
    const double phi = kPi * r / rings;  // 0..pi
    for (std::uint32_t s = 0; s <= segments; ++s) {
      const double theta = 2 * kPi * s / segments;  // 0..2pi
      Vertex v;
      const float radius =
          1.0f + 0.02f * std::sin(5.0f * static_cast<float>(theta) + jitter_phase);
      v.position = {radius * static_cast<float>(std::sin(phi) * std::cos(theta)),
                    radius * static_cast<float>(std::cos(phi)),
                    radius * static_cast<float>(std::sin(phi) * std::sin(theta))};
      v.u = static_cast<float>(s) / segments;
      v.v = static_cast<float>(r) / rings;
      mesh.vertices.push_back(v);
    }
  }
  for (std::uint32_t r = 0; r < rings; ++r) {
    for (std::uint32_t s = 0; s < segments; ++s) {
      const std::uint32_t a = r * (segments + 1) + s;
      const std::uint32_t b = a + segments + 1;
      mesh.indices.insert(mesh.indices.end(), {a, b, a + 1});
      mesh.indices.insert(mesh.indices.end(), {b, b + 1, a + 1});
    }
  }
  mesh.RecomputeNormals();
  return mesh;
}

}  // namespace

Bytes SerializedModelSize(const Model3D& model) noexcept {
  return kHeaderBytes + model.mesh.vertices.size() * kVertexBytes +
         model.mesh.indices.size() * kIndexBytes + model.texture.size();
}

ByteVec SerializeModel(const Model3D& model) {
  ByteWriter w(SerializedModelSize(model));
  w.WriteU32(kModelMagic);
  w.WriteU64(model.id);
  w.WriteU32(static_cast<std::uint32_t>(model.mesh.vertices.size()));
  w.WriteU32(static_cast<std::uint32_t>(model.mesh.indices.size()));
  w.WriteU32(static_cast<std::uint32_t>(model.texture.size()));
  for (const Vertex& v : model.mesh.vertices) {
    w.WriteF32(v.position.x);
    w.WriteF32(v.position.y);
    w.WriteF32(v.position.z);
    w.WriteF32(v.normal.x);
    w.WriteF32(v.normal.y);
    w.WriteF32(v.normal.z);
    w.WriteF32(v.u);
    w.WriteF32(v.v);
  }
  for (const std::uint32_t idx : model.mesh.indices) w.WriteU32(idx);
  w.WriteRaw(model.texture);
  return w.TakeBytes();
}

Result<Model3D> DeserializeModel(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  std::uint32_t magic = 0, vcount = 0, icount = 0, tlen = 0;
  Model3D model;
  COIC_RETURN_IF_ERROR(r.ReadU32(magic));
  if (magic != kModelMagic) {
    return Status(StatusCode::kDataLoss, "bad model magic");
  }
  COIC_RETURN_IF_ERROR(r.ReadU64(model.id));
  COIC_RETURN_IF_ERROR(r.ReadU32(vcount));
  COIC_RETURN_IF_ERROR(r.ReadU32(icount));
  COIC_RETURN_IF_ERROR(r.ReadU32(tlen));
  if (r.remaining() != static_cast<std::size_t>(vcount) * kVertexBytes +
                           static_cast<std::size_t>(icount) * kIndexBytes + tlen) {
    return Status(StatusCode::kDataLoss, "model size mismatch");
  }
  // Bulk reads: the wire layout is packed little-endian f32/u32 arrays
  // and the total size was validated above, so each array lands in one
  // bounds check + memcpy instead of per-element reads — this loop is
  // the client-ingest hot spot under open-loop render storms.
  model.mesh.vertices.resize(vcount);
  if (vcount != 0) {
    std::vector<float> scratch(static_cast<std::size_t>(vcount) * 8);
    (void)r.ReadRaw(scratch.data(), scratch.size() * 4);
    const float* f = scratch.data();
    for (auto& v : model.mesh.vertices) {
      v.position = {f[0], f[1], f[2]};
      v.normal = {f[3], f[4], f[5]};
      v.u = f[6];
      v.v = f[7];
      f += 8;
    }
  }
  model.mesh.indices.resize(icount);
  if (icount != 0) {
    (void)r.ReadRaw(model.mesh.indices.data(),
                    static_cast<std::size_t>(icount) * 4);
  }
  COIC_RETURN_IF_ERROR(r.ReadBytes(model.texture, tlen));
  COIC_RETURN_IF_ERROR(model.mesh.Validate());
  return model;
}

Model3D BuildProceduralModel(const ProceduralModelParams& params) {
  COIC_CHECK_MSG(params.target_serialized_bytes >= kMinModelBytes,
                 "model size budget below minimum");
  Rng rng(params.seed ^ params.model_id * 0x9E3779B97F4A7C15ULL);

  // Geometry gets at most ~60% of the budget; texture fills the rest,
  // mirroring the texture-dominated composition of production assets.
  const Bytes geometry_budget =
      (params.target_serialized_bytes - kHeaderBytes) * 6 / 10;
  std::uint32_t rings = 2;
  while (SphereGeometryBytes(rings + 1) <= geometry_budget && rings < 512) {
    ++rings;
  }
  if (SphereGeometryBytes(rings) > geometry_budget) rings = 2;

  Model3D model;
  model.id = params.model_id;
  model.mesh = BuildSphere(rings, rng);

  const Bytes geom = SerializedModelSize(model) - model.texture.size();
  COIC_CHECK_MSG(geom <= params.target_serialized_bytes,
                 "geometry overshot the size budget");
  model.texture =
      DeterministicBytes(params.target_serialized_bytes - geom,
                         params.seed * 0x2545F4914F6CDD1DULL + params.model_id);

  COIC_CHECK(SerializedModelSize(model) == params.target_serialized_bytes);
  return model;
}

Digest128 ModelContentDigest(const Model3D& model) {
  const ByteVec bytes = SerializeModel(model);
  return ContentDigest(bytes);
}

}  // namespace coic::render
