// 3D model assets: mesh + texture payload, serialization, and the
// procedural builder that manufactures models at the paper's exact
// evaluated sizes (Figure 2b sweeps model size in KB).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/units.h"
#include "render/mesh.h"

namespace coic::render {

/// A serializable 3D asset: identity, geometry and an opaque texture
/// blob. The texture blob is what lets the builder hit an exact target
/// byte size — geometry quantizes in vertex-sized steps, texture bytes
/// fill the remainder (exactly how real assets are dominated by texture).
struct Model3D {
  std::uint64_t id = 0;
  Mesh mesh;
  ByteVec texture;

  friend bool operator==(const Model3D&, const Model3D&) = default;
};

/// Serializes to the CoIC asset wire format.
ByteVec SerializeModel(const Model3D& model);

/// Parses an asset; rejects corrupt input with kDataLoss.
Result<Model3D> DeserializeModel(std::span<const std::uint8_t> bytes);

/// Exact serialized size of a model without serializing (header + vertex
/// + index + texture arithmetic). Tested equal to SerializeModel().size().
Bytes SerializedModelSize(const Model3D& model) noexcept;

struct ProceduralModelParams {
  std::uint64_t model_id = 1;
  /// Exact serialized byte size the built model must have. Must be at
  /// least kMinModelBytes (one quad of geometry + headers).
  Bytes target_serialized_bytes = KB(231);
  /// Seed for the texture fill and shape jitter.
  std::uint64_t seed = 0x3D;
};

/// Smallest buildable asset: headers + the coarsest sphere (2 rings) +
/// room for a non-empty texture blob.
inline constexpr Bytes kMinModelBytes = 1024;

/// Builds a UV-sphere-based model whose serialized size is exactly
/// `target_serialized_bytes`. Geometry detail scales with the budget
/// (larger models get denser spheres, as real LODs do); the texture blob
/// absorbs the remainder byte-exactly.
Model3D BuildProceduralModel(const ProceduralModelParams& params);

/// Content digest of the serialized form — the exact-match cache key the
/// paper prescribes for rendering tasks ("the hash value of the required
/// 3D model").
Digest128 ModelContentDigest(const Model3D& model);

}  // namespace coic::render
