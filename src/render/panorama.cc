#include "render/panorama.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"

namespace coic::render {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Panorama Panorama::Generate(std::uint64_t video_id, std::uint32_t frame_index,
                            std::uint16_t width, std::uint16_t height) {
  COIC_CHECK_MSG(width >= 16 && height >= 8, "panorama raster too small");
  std::vector<float> pixels(static_cast<std::size_t>(width) * height);
  // A slowly-evolving procedural sky: harmonics keyed by video identity,
  // phase-advanced per frame so consecutive frames differ smoothly.
  std::uint64_t s = video_id * 0x9E3779B97F4A7C15ULL + 0x5EED;
  const double k1 = 1.0 + static_cast<double>(SplitMix64(s) % 5);
  const double k2 = 2.0 + static_cast<double>(SplitMix64(s) % 7);
  const double phase = 0.05 * frame_index;
  for (std::uint16_t y = 0; y < height; ++y) {
    const double lat = kPi * (static_cast<double>(y) + 0.5) / height - kPi / 2;
    for (std::uint16_t x = 0; x < width; ++x) {
      const double lon = 2 * kPi * (static_cast<double>(x) + 0.5) / width - kPi;
      double v = 0.5 + 0.25 * std::sin(k1 * lon + phase) * std::cos(k2 * lat) +
                 0.15 * std::cos((k1 + k2) * lat - phase) +
                 0.10 * std::sin(3.0 * lon * std::cos(lat));
      pixels[static_cast<std::size_t>(y) * width + x] =
          static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
  return Panorama(video_id, frame_index, width, height, std::move(pixels));
}

float Panorama::at(std::int32_t x, std::int32_t y) const noexcept {
  const std::int32_t w = width_;
  std::int32_t wrapped_x = x % w;
  if (wrapped_x < 0) wrapped_x += w;
  const std::int32_t clamped_y =
      std::clamp<std::int32_t>(y, 0, static_cast<std::int32_t>(height_) - 1);
  return pixels_[static_cast<std::size_t>(clamped_y) * width_ + wrapped_x];
}

ByteVec Panorama::Encode() const {
  ByteVec out;
  out.reserve(pixels_.size() + 16);
  ByteWriter w(pixels_.size() + 16);
  w.WriteU64(video_id_);
  w.WriteU32(frame_index_);
  w.WriteU16(width_);
  w.WriteU16(height_);
  for (const float p : pixels_) {
    out.push_back(static_cast<std::uint8_t>(
        std::clamp(p * 255.0f, 0.0f, 255.0f)));
  }
  ByteVec header = w.TakeBytes();
  header.insert(header.end(), out.begin(), out.end());
  return header;
}

Digest128 Panorama::ContentHash() const {
  const ByteVec bytes = Encode();
  return ContentDigest(bytes);
}

ViewportCropper::ViewportCropper(std::uint16_t out_width, std::uint16_t out_height)
    : out_width_(out_width), out_height_(out_height) {
  COIC_CHECK(out_width > 0 && out_height > 0);
}

CroppedView ViewportCropper::Crop(const Panorama& pano,
                                  const proto::Viewport& viewport) const {
  COIC_CHECK_MSG(viewport.fov_deg > 1 && viewport.fov_deg < 170,
                 "viewport FOV out of range");
  CroppedView view;
  view.width = out_width_;
  view.height = out_height_;
  view.pixels.resize(static_cast<std::size_t>(out_width_) * out_height_);

  const double yaw = viewport.yaw_deg * kPi / 180.0;
  const double pitch = viewport.pitch_deg * kPi / 180.0;
  const double half_fov = viewport.fov_deg * kPi / 360.0;
  const double plane_half_w = std::tan(half_fov);
  const double plane_half_h =
      plane_half_w * static_cast<double>(out_height_) / out_width_;

  const double cy = std::cos(yaw), sy = std::sin(yaw);
  const double cp = std::cos(pitch), sp = std::sin(pitch);

  for (std::uint16_t py = 0; py < out_height_; ++py) {
    const double v = (2.0 * (py + 0.5) / out_height_ - 1.0) * plane_half_h;
    for (std::uint16_t px = 0; px < out_width_; ++px) {
      const double u = (2.0 * (px + 0.5) / out_width_ - 1.0) * plane_half_w;
      // Ray in camera space: (u, -v, 1); rotate by pitch then yaw.
      double rx = u, ry = -v, rz = 1.0;
      const double ry2 = ry * cp - rz * sp;
      const double rz2 = ry * sp + rz * cp;
      ry = ry2; rz = rz2;
      const double rx3 = rx * cy + rz * sy;
      const double rz3 = -rx * sy + rz * cy;
      const double lon = std::atan2(rx3, rz3);
      const double lat = std::atan2(ry, std::sqrt(rx3 * rx3 + rz3 * rz3));
      // Map back to equirectangular pixel space (bilinear sample).
      const double fx = (lon + kPi) / (2 * kPi) * pano.width() - 0.5;
      const double fy = (lat + kPi / 2) / kPi * pano.height() - 0.5;
      const auto x0 = static_cast<std::int32_t>(std::floor(fx));
      const auto y0 = static_cast<std::int32_t>(std::floor(fy));
      const double ax = fx - x0;
      const double ay = fy - y0;
      const double sample =
          (1 - ax) * (1 - ay) * pano.at(x0, y0) + ax * (1 - ay) * pano.at(x0 + 1, y0) +
          (1 - ax) * ay * pano.at(x0, y0 + 1) + ax * ay * pano.at(x0 + 1, y0 + 1);
      view.pixels[static_cast<std::size_t>(py) * out_width_ + px] =
          static_cast<float>(sample);
    }
  }
  return view;
}

}  // namespace coic::render
