// Panoramic VR frames and viewport cropping.
//
// Paper §1.2: "current cloud-based VR applications leverage panoramic
// frames to create immersive experience. The server sends a panoramic
// frame to the client, and then the client crops the panorama to
// generate the final frame for display. Multiple users playing the same
// VR applications or watching the same VR video might use the same
// panorama." CoIC therefore caches panoramas on the edge keyed by
// content hash. This module provides the frame generator (the cloud
// renderer stand-in) and the client-side gnomonic viewport cropper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/units.h"
#include "proto/messages.h"

namespace coic::render {

/// An equirectangular panoramic frame: procedural luminance raster plus
/// the encoded byte size the wire would carry.
class Panorama {
 public:
  /// Renders frame `frame_index` of video `video_id`. Deterministic:
  /// every cloud node produces bit-identical frames, which is why edge
  /// caching of panoramas is sound.
  static Panorama Generate(std::uint64_t video_id, std::uint32_t frame_index,
                           std::uint16_t width = 512, std::uint16_t height = 256);

  [[nodiscard]] std::uint16_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint16_t height() const noexcept { return height_; }
  [[nodiscard]] std::uint64_t video_id() const noexcept { return video_id_; }
  [[nodiscard]] std::uint32_t frame_index() const noexcept { return frame_index_; }

  /// Luminance at integer pixel (wraps horizontally, clamps vertically).
  [[nodiscard]] float at(std::int32_t x, std::int32_t y) const noexcept;

  /// Quantized pixels (the "encoded frame" the edge caches / ships).
  [[nodiscard]] ByteVec Encode() const;

  /// Content digest of the encoded frame — the CoIC cache key.
  [[nodiscard]] Digest128 ContentHash() const;

  /// Wire size of a production 4K-class panoramic frame. The procedural
  /// raster is small; pipelines use this constant for transfer math.
  static constexpr Bytes kEncodedWireSize = 2'400'000;

 private:
  Panorama(std::uint64_t video_id, std::uint32_t frame_index,
           std::uint16_t width, std::uint16_t height,
           std::vector<float> pixels) noexcept
      : video_id_(video_id), frame_index_(frame_index), width_(width),
        height_(height), pixels_(std::move(pixels)) {}

  std::uint64_t video_id_;
  std::uint32_t frame_index_;
  std::uint16_t width_;
  std::uint16_t height_;
  std::vector<float> pixels_;
};

/// A cropped per-eye display frame.
struct CroppedView {
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::vector<float> pixels;
};

/// Gnomonic (rectilinear) projection of a viewport out of an
/// equirectangular panorama — the "client crops the panorama" step.
class ViewportCropper {
 public:
  ViewportCropper(std::uint16_t out_width, std::uint16_t out_height);

  [[nodiscard]] CroppedView Crop(const Panorama& pano,
                                 const proto::Viewport& viewport) const;

 private:
  std::uint16_t out_width_;
  std::uint16_t out_height_;
};

}  // namespace coic::render
