#include "render/registry.h"

namespace coic::render {

Status ModelRegistry::RegisterProcedural(std::uint64_t model_id,
                                         Bytes serialized_size,
                                         std::uint64_t seed) {
  ProceduralModelParams params;
  params.model_id = model_id;
  params.target_serialized_bytes = serialized_size;
  params.seed = seed;
  return RegisterBytes(model_id, SerializeModel(BuildProceduralModel(params)));
}

Status ModelRegistry::RegisterBytes(std::uint64_t model_id, ByteVec serialized) {
  if (models_.count(model_id) != 0) {
    return Status(StatusCode::kAlreadyExists, "model id already registered");
  }
  Stored stored;
  stored.digest = ContentDigest(serialized);
  stored.bytes = std::move(serialized);
  by_digest_[stored.digest] = model_id;
  models_.emplace(model_id, std::move(stored));
  return Status::Ok();
}

Result<std::span<const std::uint8_t>> ModelRegistry::BytesFor(
    std::uint64_t model_id) const {
  const auto it = models_.find(model_id);
  if (it == models_.end()) {
    return Status(StatusCode::kNotFound, "unknown model id");
  }
  return std::span<const std::uint8_t>(it->second.bytes);
}

Result<Digest128> ModelRegistry::DigestFor(std::uint64_t model_id) const {
  const auto it = models_.find(model_id);
  if (it == models_.end()) {
    return Status(StatusCode::kNotFound, "unknown model id");
  }
  return it->second.digest;
}

std::optional<std::uint64_t> ModelRegistry::FindByDigest(
    const Digest128& digest) const {
  const auto it = by_digest_.find(digest);
  if (it == by_digest_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> ModelRegistry::ModelIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(models_.size());
  for (const auto& [id, _] : models_) ids.push_back(id);
  return ids;
}

const std::vector<Bytes>& ModelRegistry::Figure2bSizes() {
  // Sizes in KB as printed along Figure 2b's x-axis.
  static const std::vector<Bytes> kSizes = {KB(231),  KB(1073), KB(1949),
                                            KB(7050), KB(13072), KB(15053)};
  return kSizes;
}

ModelRegistry ModelRegistry::MakeFigure2bSet(std::uint64_t seed) {
  ModelRegistry registry;
  std::uint64_t id = 1;
  for (const Bytes size : Figure2bSizes()) {
    COIC_CHECK(registry.RegisterProcedural(id, size, seed).ok());
    ++id;
  }
  return registry;
}

}  // namespace coic::render
