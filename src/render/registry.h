// ModelRegistry — the cloud-side asset store.
//
// In the paper's testbed, the cloud holds the application's 3D models and
// serves them (possibly after loading) to the edge. The registry owns the
// serialized assets, exposes digest-keyed lookup (the cache key space)
// and manufactures the Figure 2b model set at the paper's exact sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/units.h"
#include "render/model.h"

namespace coic::render {

class ModelRegistry {
 public:
  /// Builds and registers a procedural model of exactly `serialized_size`
  /// bytes under `model_id`. Fails on duplicate id.
  Status RegisterProcedural(std::uint64_t model_id, Bytes serialized_size,
                            std::uint64_t seed = 0x3D);

  /// Registers pre-serialized bytes verbatim.
  Status RegisterBytes(std::uint64_t model_id, ByteVec serialized);

  /// Serialized bytes by model id; kNotFound if absent.
  [[nodiscard]] Result<std::span<const std::uint8_t>> BytesFor(
      std::uint64_t model_id) const;

  /// Content digest of a registered model; kNotFound if absent.
  [[nodiscard]] Result<Digest128> DigestFor(std::uint64_t model_id) const;

  /// Model id owning `digest`, if any.
  [[nodiscard]] std::optional<std::uint64_t> FindByDigest(
      const Digest128& digest) const;

  [[nodiscard]] std::size_t size() const noexcept { return models_.size(); }
  [[nodiscard]] std::vector<std::uint64_t> ModelIds() const;

  /// The model sizes evaluated in Figure 2b, in KB as printed on the
  /// figure's x-axis.
  static const std::vector<Bytes>& Figure2bSizes();

  /// Convenience: a registry pre-populated with one model per Figure 2b
  /// size, ids 1..N in size order.
  static ModelRegistry MakeFigure2bSet(std::uint64_t seed = 0x3D);

 private:
  struct Stored {
    ByteVec bytes;
    Digest128 digest;
  };
  std::unordered_map<std::uint64_t, Stored> models_;
  std::unordered_map<Digest128, std::uint64_t, Digest128Hasher> by_digest_;
};

}  // namespace coic::render
