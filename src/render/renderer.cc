#include "render/renderer.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace coic::render {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Vec4 {
  float x, y, z, w;
};

Vec4 Transform(const Mat4& m, Vec3 v) noexcept {
  return {m[0] * v.x + m[4] * v.y + m[8] * v.z + m[12],
          m[1] * v.x + m[5] * v.y + m[9] * v.z + m[13],
          m[2] * v.x + m[6] * v.y + m[10] * v.z + m[14],
          m[3] * v.x + m[7] * v.y + m[11] * v.z + m[15]};
}

}  // namespace

Mat4 Identity4() {
  Mat4 m{};
  m[0] = m[5] = m[10] = m[15] = 1;
  return m;
}

Mat4 Multiply(const Mat4& a, const Mat4& b) {
  Mat4 out{};
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      float acc = 0;
      for (int k = 0; k < 4; ++k) acc += a[k * 4 + row] * b[col * 4 + k];
      out[col * 4 + row] = acc;
    }
  }
  return out;
}

Mat4 Perspective(float fov_y_deg, float aspect, float near_z, float far_z) {
  COIC_CHECK(fov_y_deg > 0 && fov_y_deg < 180);
  COIC_CHECK(near_z > 0 && far_z > near_z);
  const float f = 1.0f / std::tan(static_cast<float>(fov_y_deg * kPi / 360.0));
  Mat4 m{};
  m[0] = f / aspect;
  m[5] = f;
  m[10] = (far_z + near_z) / (near_z - far_z);
  m[11] = -1;
  m[14] = 2 * far_z * near_z / (near_z - far_z);
  return m;
}

Mat4 LookAtOrigin(Vec3 eye) {
  const Vec3 fwd = Normalized(Vec3{0, 0, 0} - eye);
  Vec3 up{0, 1, 0};
  if (std::abs(Dot(fwd, up)) > 0.999f) up = {1, 0, 0};
  const Vec3 right = Normalized(Cross(fwd, up));
  const Vec3 cam_up = Cross(right, fwd);
  Mat4 m = Identity4();
  m[0] = right.x; m[4] = right.y; m[8] = right.z;
  m[1] = cam_up.x; m[5] = cam_up.y; m[9] = cam_up.z;
  m[2] = -fwd.x; m[6] = -fwd.y; m[10] = -fwd.z;
  m[12] = -Dot(right, eye);
  m[13] = -Dot(cam_up, eye);
  m[14] = Dot(fwd, eye);
  return m;
}

Renderer::Renderer(std::uint32_t viewport_width, std::uint32_t viewport_height)
    : width_(viewport_width), height_(viewport_height) {
  COIC_CHECK(viewport_width > 0 && viewport_height > 0);
}

DrawStats Renderer::Draw(const LoadedModel& model, const Mat4& view_proj) const {
  DrawStats stats;
  const auto& mesh = model.model.mesh;
  const auto& idx = mesh.indices;
  stats.triangles_submitted = static_cast<std::uint32_t>(idx.size() / 3);

  const auto to_screen = [&](Vec3 p, bool& behind) {
    const Vec4 clip = Transform(view_proj, p);
    behind = clip.w <= 1e-6f;
    const float inv_w = behind ? 0.0f : 1.0f / clip.w;
    return std::pair<float, float>{
        (clip.x * inv_w * 0.5f + 0.5f) * static_cast<float>(width_),
        (0.5f - clip.y * inv_w * 0.5f) * static_cast<float>(height_)};
  };

  for (std::size_t t = 0; t + 2 < idx.size(); t += 3) {
    bool behind_a = false, behind_b = false, behind_c = false;
    const auto [ax, ay] = to_screen(mesh.vertices[idx[t]].position, behind_a);
    const auto [bx, by] = to_screen(mesh.vertices[idx[t + 1]].position, behind_b);
    const auto [cx, cy] = to_screen(mesh.vertices[idx[t + 2]].position, behind_c);
    if (behind_a || behind_b || behind_c) {
      ++stats.triangles_culled;
      continue;
    }
    // Back-face cull by signed screen-space area (CCW = front).
    const float area2 = (bx - ax) * (cy - ay) - (cx - ax) * (by - ay);
    if (area2 >= 0) {
      ++stats.triangles_culled;
      continue;
    }
    // Clipped bounding-box coverage as the raster-work proxy.
    const float min_x = std::max(0.0f, std::min({ax, bx, cx}));
    const float max_x = std::min(static_cast<float>(width_), std::max({ax, bx, cx}));
    const float min_y = std::max(0.0f, std::min({ay, by, cy}));
    const float max_y = std::min(static_cast<float>(height_), std::max({ay, by, cy}));
    if (min_x >= max_x || min_y >= max_y) {
      ++stats.triangles_culled;
      continue;
    }
    ++stats.triangles_rasterized;
    stats.pixels_covered += static_cast<std::uint64_t>(max_x - min_x) *
                            static_cast<std::uint64_t>(max_y - min_y);
  }
  return stats;
}

}  // namespace coic::render
