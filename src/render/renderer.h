// A deterministic software renderer facade.
//
// The substrate cannot drive a GPU, but the draw step still has to be
// real code with model-dependent work so the pipelines exercise it: the
// renderer transforms every vertex by a view-projection matrix, culls
// back faces, and accumulates raster statistics from projected triangle
// bounds. Draw *time* on the paper's devices is supplied by the
// pipelines' CostModel; DrawStats gives tests something exact to assert.
#pragma once

#include <array>
#include <cstdint>

#include "render/loader.h"
#include "render/mesh.h"

namespace coic::render {

/// Column-major 4x4 matrix.
using Mat4 = std::array<float, 16>;

Mat4 Identity4();
Mat4 Multiply(const Mat4& a, const Mat4& b);
/// Right-handed perspective projection.
Mat4 Perspective(float fov_y_deg, float aspect, float near_z, float far_z);
/// Camera at `eye` looking at the origin with +Y up.
Mat4 LookAtOrigin(Vec3 eye);

struct DrawStats {
  std::uint32_t triangles_submitted = 0;
  std::uint32_t triangles_culled = 0;    ///< Back-facing or off-screen.
  std::uint32_t triangles_rasterized = 0;
  std::uint64_t pixels_covered = 0;      ///< Sum of clipped bbox coverage.

  friend bool operator==(const DrawStats&, const DrawStats&) = default;
};

class Renderer {
 public:
  Renderer(std::uint32_t viewport_width, std::uint32_t viewport_height);

  /// Draws a loaded model under `view_proj`, returning exact raster
  /// statistics. Pure: no retained state between calls.
  [[nodiscard]] DrawStats Draw(const LoadedModel& model,
                               const Mat4& view_proj) const;

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }

 private:
  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace coic::render
