#include "trace/workload.h"

#include <algorithm>

#include "common/status.h"

namespace coic::trace {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed),
      object_popularity_(config.objects, config.zipf_skew) {
  COIC_CHECK(config.users >= 1);
  COIC_CHECK(config.apps >= 1);
  COIC_CHECK(config.objects >= 1);
  COIC_CHECK(config.colocated_fraction >= 0 && config.colocated_fraction <= 1);
  COIC_CHECK(config.arrival_rate_hz > 0);
}

bool WorkloadGenerator::UserIsColocated(std::uint32_t user) const noexcept {
  // Deterministic membership: the first ceil(f * users) users share the
  // place. Keeping membership static (not re-drawn per request) matches
  // the physical story — you are either at the crossroads or not.
  const auto shared =
      static_cast<std::uint32_t>(config_.colocated_fraction * config_.users + 0.5);
  return user < shared;
}

TraceRecord WorkloadGenerator::NextBase() {
  TraceRecord rec;
  clock_ = clock_ + Duration::Seconds(
                        rng_.NextExponential(config_.arrival_rate_hz));
  rec.at = clock_;
  rec.user_id = static_cast<std::uint32_t>(rng_.NextBelow(config_.users));
  rec.app_id = static_cast<std::uint32_t>(rng_.NextBelow(config_.apps));
  return rec;
}

vision::SceneParams WorkloadGenerator::PerturbedScene(std::uint64_t scene_id) {
  vision::SceneParams scene;
  scene.scene_id = scene_id;
  scene.view_angle_deg =
      (rng_.NextDouble() * 2 - 1) * config_.view_angle_jitter_deg;
  scene.distance = 1.0 + (rng_.NextDouble() * 2 - 1) * config_.distance_jitter;
  scene.illumination =
      1.0 + (rng_.NextDouble() * 2 - 1) * config_.illumination_jitter;
  scene.width = config_.scene_raster;
  scene.height = config_.scene_raster;
  return scene;
}

std::vector<TraceRecord> WorkloadGenerator::GenerateRecognition(std::size_t n) {
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec = NextBase();
    rec.type = IcTaskType::kRecognition;
    const std::size_t rank = object_popularity_.Sample(rng_);
    const std::uint64_t scene_id = UserIsColocated(rec.user_id)
                                       ? SharedSceneId(rank)
                                       : PrivateSceneId(rec.user_id, rank);
    rec.scene = PerturbedScene(scene_id);
    out.push_back(rec);
  }
  return out;
}

std::vector<TraceRecord> WorkloadGenerator::GenerateRender(
    std::size_t n, std::span<const std::uint64_t> model_ids) {
  COIC_CHECK_MSG(!model_ids.empty(), "render trace needs a model catalogue");
  ZipfDistribution popularity(model_ids.size(), config_.zipf_skew);
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec = NextBase();
    rec.type = IcTaskType::kRender;
    rec.model_id = model_ids[popularity.Sample(rng_)];
    out.push_back(rec);
  }
  return out;
}

std::vector<TraceRecord> WorkloadGenerator::GeneratePanorama(
    std::size_t n, std::uint64_t video_id, std::uint32_t frames_in_video) {
  COIC_CHECK(frames_in_video >= 1);
  std::vector<TraceRecord> out;
  out.reserve(n);
  // Synchronized (co-located) viewers all watch the same playhead, which
  // advances once per full round of viewers — so a frame rendered for
  // the first synced viewer is re-requested by the rest (the paper's
  // shared-panorama redundancy). Solo viewers advance privately.
  const auto synced = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config_.colocated_fraction * config_.users + 0.5));
  std::vector<std::uint32_t> playhead(config_.users, 0);
  std::uint64_t synced_requests = 0;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord rec = NextBase();
    rec.type = IcTaskType::kPanorama;
    rec.video_id = video_id;
    if (UserIsColocated(rec.user_id)) {
      const auto head = static_cast<std::uint32_t>(
          (synced_requests / synced) % frames_in_video);
      ++synced_requests;
      // Small random lag models imperfect sync.
      const std::uint32_t lag = rng_.NextBool(0.15) ? 1 : 0;
      rec.frame_index = (head + frames_in_video - lag) % frames_in_video;
    } else {
      auto& head = playhead[rec.user_id];
      head = (head + 1) % frames_in_video;
      rec.frame_index = head;
    }
    out.push_back(rec);
  }
  return out;
}

std::vector<TraceRecord> WorkloadGenerator::GenerateMixed(
    std::size_t n, std::span<const std::uint64_t> model_ids,
    std::uint64_t video_id) {
  std::vector<TraceRecord> out;
  out.reserve(n);
  const auto recognition = GenerateRecognition(n);  // oversampled pools
  const auto render = GenerateRender(n, model_ids);
  const auto panorama = GeneratePanorama(n, video_id, 64);
  std::size_t ri = 0, mi = 0, pi = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t draw = rng_.NextBelow(10);
    TraceRecord rec;
    if (draw < 6) {
      rec = recognition[ri++];
    } else if (draw < 9) {
      rec = render[mi++];
    } else {
      rec = panorama[pi++];
    }
    out.push_back(rec);
  }
  // Re-stamp arrivals so the interleaved trace is time-ordered.
  SimTime t = SimTime::Epoch();
  for (auto& rec : out) {
    t = t + Duration::Seconds(rng_.NextExponential(config_.arrival_rate_hz));
    rec.at = t;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cluster workloads
// ---------------------------------------------------------------------------

ClusterWorkloadGenerator::ClusterWorkloadGenerator(ClusterWorkloadConfig config)
    : config_(config), gen_(config.base), rng_(config.placement_seed),
      venue_of_user_(config.base.users) {
  COIC_CHECK(config_.venues >= 1);
  COIC_CHECK(config_.handoff_probability >= 0 &&
             config_.handoff_probability <= 1);
  for (std::uint32_t u = 0; u < config_.base.users; ++u) {
    venue_of_user_[u] = u % config_.venues;
  }
}

std::uint32_t ClusterWorkloadGenerator::VenueOf(std::uint32_t user) const {
  COIC_CHECK(user < venue_of_user_.size());
  return venue_of_user_[user];
}

std::vector<PlacedRecord> ClusterWorkloadGenerator::Place(
    std::vector<TraceRecord> records) {
  std::vector<PlacedRecord> out;
  out.reserve(records.size());
  for (TraceRecord& rec : records) {
    auto& venue = venue_of_user_[rec.user_id];
    if (config_.venues > 1 && rng_.NextBool(config_.handoff_probability)) {
      // Move to a uniformly random *other* venue.
      const auto shift =
          1 + static_cast<std::uint32_t>(rng_.NextBelow(config_.venues - 1));
      venue = (venue + shift) % config_.venues;
      ++handoffs_;
    }
    out.push_back({venue, std::move(rec)});
  }
  return out;
}

std::vector<PlacedRecord> ClusterWorkloadGenerator::GenerateRecognition(
    std::size_t n) {
  return Place(gen_.GenerateRecognition(n));
}

std::vector<PlacedRecord> ClusterWorkloadGenerator::GenerateRender(
    std::size_t n, std::span<const std::uint64_t> model_ids) {
  return Place(gen_.GenerateRender(n, model_ids));
}

std::vector<PlacedRecord> ClusterWorkloadGenerator::GeneratePanorama(
    std::size_t n, std::uint64_t video_id, std::uint32_t frames_in_video) {
  return Place(gen_.GeneratePanorama(n, video_id, frames_in_video));
}

std::vector<PlacedRecord> ClusterWorkloadGenerator::GenerateMixed(
    std::size_t n, std::span<const std::uint64_t> model_ids,
    std::uint64_t video_id) {
  return Place(gen_.GenerateMixed(n, model_ids, video_id));
}

// ---------------------------------------------------------------------------
// Trace serialization
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kTraceMagic = 0x43525443;  // "CTRC" LE
}  // namespace

namespace {

/// Shared Poisson clock for both RetimeArrivals overloads; `record_of`
/// maps an element to the TraceRecord whose arrival gets re-stamped.
template <typename T, typename RecordOf>
void RetimeImpl(std::span<T> items, double rate_hz, std::uint64_t seed,
                RecordOf record_of) {
  COIC_CHECK_MSG(rate_hz > 0, "arrival rate must be positive");
  Rng rng(seed);
  SimTime clock = SimTime::Epoch();
  for (auto& item : items) {
    clock = clock + Duration::Seconds(rng.NextExponential(rate_hz));
    record_of(item).at = clock;
  }
}

}  // namespace

void RetimeArrivals(std::span<TraceRecord> records, double rate_hz,
                    std::uint64_t seed) {
  RetimeImpl(records, rate_hz, seed,
             [](TraceRecord& r) -> TraceRecord& { return r; });
}

void RetimeArrivals(std::span<PlacedRecord> placed, double rate_hz,
                    std::uint64_t seed) {
  RetimeImpl(placed, rate_hz, seed,
             [](PlacedRecord& p) -> TraceRecord& { return p.record; });
}

std::vector<PlacedRecord> MakeChurnWorkload(std::uint32_t venues,
                                            std::size_t rounds,
                                            std::uint32_t window,
                                            std::uint32_t catalog,
                                            std::uint32_t rotate_rounds,
                                            std::uint64_t seed) {
  COIC_CHECK(window <= catalog && rotate_rounds >= 1);
  Rng rng(seed);
  ZipfDistribution popularity(window, 0.9);
  std::vector<PlacedRecord> placed;
  placed.reserve(rounds * venues);
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::uint32_t window_base = std::min(
        static_cast<std::uint32_t>(i) / rotate_rounds * 2, catalog - window);
    for (std::uint32_t v = 0; v < venues; ++v) {
      PlacedRecord p;
      p.venue = v;
      p.record.type = IcTaskType::kRender;
      p.record.user_id = static_cast<std::uint32_t>(i * venues + v);
      p.record.model_id = 1 + window_base + popularity.Sample(rng);
      placed.push_back(p);
    }
  }
  return placed;
}

std::vector<PlacedRecord> MakeRenderStorm(std::uint32_t venues,
                                          std::size_t count, double rate_hz,
                                          std::uint32_t models) {
  std::vector<PlacedRecord> placed(count);
  for (std::size_t i = 0; i < count; ++i) {
    placed[i].venue = static_cast<std::uint32_t>(i % venues);
    placed[i].record.type = IcTaskType::kRender;
    placed[i].record.user_id = static_cast<std::uint32_t>(i);
    placed[i].record.model_id = (i * 7) % models + 1;
  }
  RetimeArrivals(std::span<PlacedRecord>(placed), rate_hz);
  return placed;
}

ByteVec SerializeTrace(std::span<const TraceRecord> records) {
  ByteWriter w;
  w.WriteU32(kTraceMagic);
  w.WriteU32(static_cast<std::uint32_t>(records.size()));
  for (const TraceRecord& rec : records) {
    w.WriteI64(rec.at.micros());
    w.WriteU32(rec.user_id);
    w.WriteU32(rec.app_id);
    w.WriteU8(static_cast<std::uint8_t>(rec.type));
    w.WriteU64(rec.scene.scene_id);
    w.WriteF64(rec.scene.view_angle_deg);
    w.WriteF64(rec.scene.distance);
    w.WriteF64(rec.scene.illumination);
    w.WriteU32(rec.scene.width);
    w.WriteU32(rec.scene.height);
    w.WriteU64(rec.model_id);
    w.WriteU64(rec.video_id);
    w.WriteU32(rec.frame_index);
  }
  return w.TakeBytes();
}

Result<std::vector<TraceRecord>> DeserializeTrace(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  std::uint32_t magic = 0, count = 0;
  COIC_RETURN_IF_ERROR(r.ReadU32(magic));
  if (magic != kTraceMagic) {
    return Status(StatusCode::kDataLoss, "bad trace magic");
  }
  COIC_RETURN_IF_ERROR(r.ReadU32(count));
  std::vector<TraceRecord> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceRecord rec;
    std::int64_t at_us = 0;
    std::uint8_t type_raw = 0;
    COIC_RETURN_IF_ERROR(r.ReadI64(at_us));
    rec.at = SimTime::FromMicros(at_us);
    COIC_RETURN_IF_ERROR(r.ReadU32(rec.user_id));
    COIC_RETURN_IF_ERROR(r.ReadU32(rec.app_id));
    COIC_RETURN_IF_ERROR(r.ReadU8(type_raw));
    if (type_raw > static_cast<std::uint8_t>(IcTaskType::kPanorama)) {
      return Status(StatusCode::kDataLoss, "bad task type in trace");
    }
    rec.type = static_cast<IcTaskType>(type_raw);
    COIC_RETURN_IF_ERROR(r.ReadU64(rec.scene.scene_id));
    COIC_RETURN_IF_ERROR(r.ReadF64(rec.scene.view_angle_deg));
    COIC_RETURN_IF_ERROR(r.ReadF64(rec.scene.distance));
    COIC_RETURN_IF_ERROR(r.ReadF64(rec.scene.illumination));
    COIC_RETURN_IF_ERROR(r.ReadU32(rec.scene.width));
    COIC_RETURN_IF_ERROR(r.ReadU32(rec.scene.height));
    COIC_RETURN_IF_ERROR(r.ReadU64(rec.model_id));
    COIC_RETURN_IF_ERROR(r.ReadU64(rec.video_id));
    COIC_RETURN_IF_ERROR(r.ReadU32(rec.frame_index));
    out.push_back(rec);
  }
  if (!r.AtEnd()) {
    return Status(StatusCode::kDataLoss, "trailing bytes after trace");
  }
  return out;
}

}  // namespace coic::trace
