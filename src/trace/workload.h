// Workload generation — the §1.2 measurement study, synthesized.
//
// The paper's motivating observation is structural redundancy across
// users and applications: co-located users recognize the same stop sign
// from different angles, render the same avatar, watch the same
// panorama. The generator reproduces that structure with explicit knobs:
//   * `objects` distinct physical objects with Zipf popularity (a few
//     objects are requested constantly, most rarely);
//   * a `colocated_fraction` of users share the popular object pool —
//     the rest see private objects nobody else requests;
//   * per-request view jitter (angle/distance/illumination) models "the
//     same stop sign from a different angle".
// Benches sweep these knobs to map when cooperative caching pays off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/time.h"
#include "vision/image.h"

namespace coic::trace {

enum class IcTaskType : std::uint8_t {
  kRecognition = 0,
  kRender = 1,
  kPanorama = 2,
};

/// One IC request in a trace.
struct TraceRecord {
  SimTime at;                 ///< Arrival time (Poisson process).
  std::uint32_t user_id = 0;
  std::uint32_t app_id = 0;
  IcTaskType type = IcTaskType::kRecognition;
  /// kRecognition: the observed scene (object id + view perturbation).
  vision::SceneParams scene;
  /// kRender: which asset.
  std::uint64_t model_id = 0;
  /// kPanorama: which stream/frame.
  std::uint64_t video_id = 0;
  std::uint32_t frame_index = 0;
};

struct WorkloadConfig {
  std::uint32_t users = 8;
  std::uint32_t apps = 3;
  /// Distinct physical objects in the shared world.
  std::uint32_t objects = 50;
  /// Zipf skew over object popularity (0 = uniform).
  double zipf_skew = 0.9;
  /// Fraction of users standing in the shared place (drawing from the
  /// shared object pool). The rest request private objects.
  double colocated_fraction = 0.75;
  /// View perturbation bounds (uniform in +/- these).
  double view_angle_jitter_deg = 6.0;
  double distance_jitter = 0.08;
  double illumination_jitter = 0.10;
  /// Poisson arrival rate across all users, requests/second.
  double arrival_rate_hz = 4.0;
  /// Raster fed to the feature extractor (SceneParams width/height). The
  /// figure reproductions keep the DNN-input default; throughput replays
  /// may shrink it — descriptor geometry (same-scene views stay nearby)
  /// is preserved at any raster, and per-request generation cost scales
  /// with its square.
  std::uint32_t scene_raster = 96;
  std::uint64_t seed = 7;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// `n` recognition requests. Object ids map to scene ids 1..objects
  /// for co-located users, and per-user private ranges above that.
  std::vector<TraceRecord> GenerateRecognition(std::size_t n);

  /// `n` render requests over the given asset catalogue (Zipf over it).
  std::vector<TraceRecord> GenerateRender(std::size_t n,
                                          std::span<const std::uint64_t> model_ids);

  /// `n` panorama requests: users progress through a shared video with
  /// loosely synchronized frame positions (same-frame redundancy).
  std::vector<TraceRecord> GeneratePanorama(std::size_t n,
                                            std::uint64_t video_id,
                                            std::uint32_t frames_in_video);

  /// A mixed AR-session trace: recognition-heavy with render/panorama
  /// interleaved (ratios 6:3:1).
  std::vector<TraceRecord> GenerateMixed(std::size_t n,
                                         std::span<const std::uint64_t> model_ids,
                                         std::uint64_t video_id);

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return config_; }

  /// Scene id of shared object at popularity `rank` (1-based scene ids).
  [[nodiscard]] std::uint64_t SharedSceneId(std::size_t rank) const noexcept {
    return rank + 1;
  }
  /// Scene id of a private object for `user`.
  [[nodiscard]] std::uint64_t PrivateSceneId(std::uint32_t user,
                                             std::size_t rank) const noexcept {
    return static_cast<std::uint64_t>(config_.objects) + 1 +
           static_cast<std::uint64_t>(user) * 1'000'000 + rank;
  }

 private:
  /// Fills arrival time, user, app; advances the Poisson clock.
  TraceRecord NextBase();
  [[nodiscard]] bool UserIsColocated(std::uint32_t user) const noexcept;
  vision::SceneParams PerturbedScene(std::uint64_t scene_id);

  WorkloadConfig config_;
  Rng rng_;
  ZipfDistribution object_popularity_;
  SimTime clock_ = SimTime::Epoch();
};

/// Re-spaces arrival times as one fresh Poisson stream at `rate_hz`
/// (first arrival at epoch + one interarrival), preserving record order
/// and content. This is the open-loop replay plan: the same trace — same
/// objects, users, venue placement — swept across offered-load levels,
/// so throughput curves differ only in arrival intensity.
void RetimeArrivals(std::span<TraceRecord> records, double rate_hz,
                    std::uint64_t seed = 17);

/// Binary trace serialization (record/replay for benches and tests).
ByteVec SerializeTrace(std::span<const TraceRecord> records);
Result<std::vector<TraceRecord>> DeserializeTrace(
    std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// Cluster workloads (edge federation)
// ---------------------------------------------------------------------------

/// A trace record placed at the venue whose edge serves it.
struct PlacedRecord {
  std::uint32_t venue = 0;
  TraceRecord record;
};

/// RetimeArrivals for a placed cluster trace (venue tags untouched).
void RetimeArrivals(std::span<PlacedRecord> placed, double rate_hz,
                    std::uint64_t seed = 17);

/// The canonical render-only request storm: `count` requests placed
/// round-robin over `venues`, model ids cycling `(i*7) % models + 1`
/// over a small shared pool, re-timed as one Poisson stream at
/// `rate_hz`. Shared by the relay-storm / open-loop benches and the
/// tests that pin their claims, so the scenario cannot drift between
/// the table and the assertion. Callers must register models 1..models.
std::vector<PlacedRecord> MakeRenderStorm(std::uint32_t venues,
                                          std::size_t count, double rate_hz,
                                          std::uint32_t models = 6);

/// The canonical churning render workload for the gossip-staleness
/// ablation: each of `rounds` rounds enqueues one render per venue,
/// drawn Zipf(0.9) from a window of `window` model ids that slides two
/// ids forward every `rotate_rounds` rounds across a catalogue of
/// 1..`catalog` — so fresh content keeps entering every cache and
/// summary freshness governs peer-hit success. Smaller `rotate_rounds`
/// = higher churn. Records carry no arrival times (closed-loop replay);
/// callers must register models 1..catalog. Shared by
/// bench_federation_scaling's staleness table and the regression tests
/// that pin its claims, so the two cannot drift apart.
std::vector<PlacedRecord> MakeChurnWorkload(std::uint32_t venues,
                                            std::size_t rounds,
                                            std::uint32_t window,
                                            std::uint32_t catalog,
                                            std::uint32_t rotate_rounds,
                                            std::uint64_t seed = 0xC0DE);

struct ClusterWorkloadConfig {
  WorkloadConfig base;
  /// Venues in the federation; users are spread across them round-robin
  /// at start (user u begins at venue u mod venues).
  std::uint32_t venues = 4;
  /// Per-request probability that the issuing user has moved to another
  /// (uniformly random) venue since their last request — the mid-trace
  /// handoff that makes federated caching matter: the user's history
  /// lives in the old venue's edge cache.
  double handoff_probability = 0.0;
  std::uint64_t placement_seed = 11;
};

/// Wraps WorkloadGenerator with user→venue placement and mobility. The
/// underlying request structure (Zipf popularity, co-location, jitter)
/// is untouched; only a venue tag and occasional handoffs are added.
class ClusterWorkloadGenerator {
 public:
  explicit ClusterWorkloadGenerator(ClusterWorkloadConfig config);

  std::vector<PlacedRecord> GenerateRecognition(std::size_t n);
  std::vector<PlacedRecord> GenerateRender(
      std::size_t n, std::span<const std::uint64_t> model_ids);
  std::vector<PlacedRecord> GeneratePanorama(std::size_t n,
                                             std::uint64_t video_id,
                                             std::uint32_t frames_in_video);
  std::vector<PlacedRecord> GenerateMixed(
      std::size_t n, std::span<const std::uint64_t> model_ids,
      std::uint64_t video_id);

  /// Current venue of `user`.
  [[nodiscard]] std::uint32_t VenueOf(std::uint32_t user) const;
  /// Handoffs applied so far.
  [[nodiscard]] std::uint64_t handoffs() const noexcept { return handoffs_; }
  [[nodiscard]] const ClusterWorkloadConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] WorkloadGenerator& generator() noexcept { return gen_; }

 private:
  std::vector<PlacedRecord> Place(std::vector<TraceRecord> records);

  ClusterWorkloadConfig config_;
  WorkloadGenerator gen_;
  Rng rng_;
  std::vector<std::uint32_t> venue_of_user_;
  std::uint64_t handoffs_ = 0;
};

}  // namespace coic::trace
