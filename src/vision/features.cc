#include "vision/features.h"

#include <cmath>

#include "common/rng.h"
#include "common/status.h"

namespace coic::vision {

FeatureExtractor::FeatureExtractor(FeatureExtractorConfig config)
    : config_(config) {
  COIC_CHECK_MSG(config.grid >= 2, "pooling grid too small");
  COIC_CHECK_MSG(config.output_dim >= 4, "descriptor too small");
  const std::size_t in_dim = static_cast<std::size_t>(config.grid) * config.grid;
  projection_.resize(static_cast<std::size_t>(config.output_dim) * in_dim);
  Rng rng(config.seed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
  for (auto& w : projection_) {
    w = static_cast<float>(rng.NextGaussian()) * scale;
  }
}

std::vector<float> FeatureExtractor::Pool(const SyntheticImage& image) const {
  const std::uint32_t g = config_.grid;
  std::vector<float> pooled(static_cast<std::size_t>(g) * g, 0.0f);
  std::vector<std::uint32_t> counts(pooled.size(), 0);
  for (std::uint32_t y = 0; y < image.height(); ++y) {
    const std::uint32_t cy = y * g / image.height();
    for (std::uint32_t x = 0; x < image.width(); ++x) {
      const std::uint32_t cx = x * g / image.width();
      pooled[static_cast<std::size_t>(cy) * g + cx] += image.at(x, y);
      ++counts[static_cast<std::size_t>(cy) * g + cx];
    }
  }
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    if (counts[i] > 0) pooled[i] /= static_cast<float>(counts[i]);
  }
  return pooled;
}

std::vector<float> FeatureExtractor::Extract(const SyntheticImage& image) const {
  const std::vector<float> pooled = Pool(image);
  const std::size_t in_dim = pooled.size();
  std::vector<float> out(config_.output_dim);
  for (std::uint32_t row = 0; row < config_.output_dim; ++row) {
    double acc = 0;
    const float* w = projection_.data() + static_cast<std::size_t>(row) * in_dim;
    for (std::size_t i = 0; i < in_dim; ++i) acc += static_cast<double>(w[i]) * pooled[i];
    out[row] = static_cast<float>(std::tanh(acc));
  }
  // L2-normalize so distances are scale-free and the similarity threshold
  // has a stable meaning across illumination changes.
  double norm = 0;
  for (const float v : out) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (auto& v : out) v = static_cast<float>(v / norm);
  }
  return out;
}

double DescriptorDistance(std::span<const float> a, std::span<const float> b) {
  COIC_CHECK_MSG(a.size() == b.size(), "descriptor length mismatch");
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  COIC_CHECK_MSG(a.size() == b.size(), "descriptor length mismatch");
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-24 || nb < 1e-24) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace coic::vision
