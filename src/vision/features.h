// Deterministic feature extraction — the client-side half of CoIC's
// recognition path.
//
// Real CoIC runs the lower layers of a DNN on the phone and ships the
// intermediate feature vector as the descriptor. Our substitute keeps the
// two properties the framework relies on and nothing else:
//   1. determinism — same frame, same descriptor, everywhere;
//   2. metric structure — views of the same object land close in L2,
//      different objects land far (tested as a margin property).
//
// Pipeline: grid average-pooling (a convolution-ish local summary) ->
// fixed Gaussian random projection (the "learned" mixing) -> tanh
// squashing -> L2 normalization. The projection matrix is derived from a
// seed, so client and tests agree on the extractor by sharing a config.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "vision/image.h"

namespace coic::vision {

struct FeatureExtractorConfig {
  /// Pooling grid (gxg cells over the frame).
  std::uint32_t grid = 8;
  /// Output dimensionality of the descriptor vector.
  std::uint32_t output_dim = 64;
  /// Seed for the fixed projection matrix ("network weights").
  std::uint64_t seed = 0xFEA7;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureExtractorConfig config = {});

  /// Extracts the descriptor vector; length == config().output_dim,
  /// L2 norm == 1 (within FP rounding).
  [[nodiscard]] std::vector<float> Extract(const SyntheticImage& image) const;

  [[nodiscard]] const FeatureExtractorConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::vector<float> Pool(const SyntheticImage& image) const;

  FeatureExtractorConfig config_;
  /// Row-major output_dim x grid^2 projection.
  std::vector<float> projection_;
};

/// L2 distance between two descriptor vectors of equal length.
double DescriptorDistance(std::span<const float> a, std::span<const float> b);

/// Cosine similarity (both inputs need not be normalized).
double CosineSimilarity(std::span<const float> a, std::span<const float> b);

}  // namespace coic::vision
