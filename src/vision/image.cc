#include "vision/image.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"

namespace coic::vision {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// A scene is a fixed set of Gaussian blobs whose geometry is derived
/// from scene_id; the view parameters move the camera, not the blobs.
struct Blob {
  double cx, cy;     // canonical center in [-1, 1]^2
  double sigma;      // spread
  double amplitude;  // brightness
};

std::vector<Blob> BlobsForScene(std::uint64_t scene_id) {
  Rng rng(scene_id * 0x9E3779B97F4A7C15ULL + 0xC01C);
  const std::size_t count = 6 + rng.NextBelow(5);  // 6..10 blobs
  std::vector<Blob> blobs(count);
  for (auto& b : blobs) {
    b.cx = rng.NextDouble() * 1.4 - 0.7;
    b.cy = rng.NextDouble() * 1.4 - 0.7;
    b.sigma = 0.08 + rng.NextDouble() * 0.25;
    b.amplitude = 0.35 + rng.NextDouble() * 0.65;
  }
  return blobs;
}

std::uint64_t SceneTextureKey(std::uint64_t scene_id) noexcept {
  std::uint64_t s = scene_id ^ 0xA5A5A5A5DEADBEEFULL;
  return SplitMix64(s);
}

}  // namespace

SyntheticImage SyntheticImage::Generate(const SceneParams& params) {
  COIC_CHECK_MSG(params.width >= 8 && params.height >= 8,
                 "image raster too small");
  COIC_CHECK_MSG(params.distance > 0.05, "camera inside the object");
  const auto blobs = BlobsForScene(params.scene_id);

  const double theta = params.view_angle_deg * kPi / 180.0;
  const double cos_t = std::cos(theta);
  const double sin_t = std::sin(theta);
  const double zoom = 1.0 / params.distance;

  std::vector<float> pixels(static_cast<std::size_t>(params.width) *
                            params.height);
  // Loop invariants hoisted out of the raster scan (the per-request wall
  // cost the open-loop replay pays ~10^5 times): the texture key and the
  // per-blob Gaussian denominators. The arithmetic per pixel is the same
  // expressions in the same order, so pixels stay bit-identical.
  const std::uint64_t tex = SceneTextureKey(params.scene_id);
  const double tex_sin_phase = static_cast<double>(tex & 7);
  const double tex_cos_phase = static_cast<double>((tex >> 3) & 7);
  std::vector<double> denoms(blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    denoms[i] = 2 * blobs[i].sigma * blobs[i].sigma;
  }
  for (std::uint32_t y = 0; y < params.height; ++y) {
    // Pixel coordinates in [-1, 1].
    const double py = 2.0 * (static_cast<double>(y) + 0.5) / params.height - 1.0;
    for (std::uint32_t x = 0; x < params.width; ++x) {
      const double px = 2.0 * (static_cast<double>(x) + 0.5) / params.width - 1.0;
      // Inverse-rotate the pixel into scene space: rotating the camera by
      // +theta is sampling the scene rotated by -theta.
      const double sx = (px * cos_t + py * sin_t) / zoom;
      const double sy = (-px * sin_t + py * cos_t) / zoom;
      double v = 0;
      for (std::size_t i = 0; i < blobs.size(); ++i) {
        const Blob& b = blobs[i];
        const double dx = sx - b.cx;
        const double dy = sy - b.cy;
        v += b.amplitude * std::exp(-(dx * dx + dy * dy) / denoms[i]);
      }
      // Deterministic high-frequency texture keyed by scene identity —
      // distinguishes scenes whose blob layouts happen to be close.
      v += 0.05 * std::sin(7.0 * sx + tex_sin_phase) *
           std::cos(5.0 * sy + tex_cos_phase);
      v *= params.illumination;
      pixels[static_cast<std::size_t>(y) * params.width + x] =
          static_cast<float>(std::clamp(v, 0.0, 4.0));
    }
  }
  return SyntheticImage(params, std::move(pixels));
}

ByteVec SyntheticImage::EncodePixels() const {
  ByteVec out(pixels_.size());
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::clamp(pixels_[i] * 64.0f, 0.0f, 255.0f));
  }
  return out;
}

Digest128 SyntheticImage::ContentHash() const {
  const ByteVec bytes = EncodePixels();
  return ContentDigest(bytes);
}

SyntheticImage SyntheticImage::FromPixels(const SceneParams& params,
                                          std::vector<float> pixels) {
  COIC_CHECK(pixels.size() ==
             static_cast<std::size_t>(params.width) * params.height);
  return SyntheticImage(params, std::move(pixels));
}

ByteVec SyntheticImage::SerializeForWire(Bytes padded_total) const {
  ByteWriter w;
  w.WriteU64(params_.scene_id);
  w.WriteF64(params_.view_angle_deg);
  w.WriteF64(params_.distance);
  w.WriteF64(params_.illumination);
  w.WriteU32(params_.width);
  w.WriteU32(params_.height);
  w.WriteBlob(EncodePixels());
  const std::size_t body = w.size() + 4;  // +4 for the pad length field
  const std::size_t pad =
      padded_total > body ? static_cast<std::size_t>(padded_total) - body : 0;
  w.WriteBlob(DeterministicBytes(pad, params_.scene_id ^ 0x4A50454Bu));
  return w.TakeBytes();
}

Result<SyntheticImage> SyntheticImage::DecodeWire(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  SceneParams params;
  COIC_RETURN_IF_ERROR(r.ReadU64(params.scene_id));
  COIC_RETURN_IF_ERROR(r.ReadF64(params.view_angle_deg));
  COIC_RETURN_IF_ERROR(r.ReadF64(params.distance));
  COIC_RETURN_IF_ERROR(r.ReadF64(params.illumination));
  COIC_RETURN_IF_ERROR(r.ReadU32(params.width));
  COIC_RETURN_IF_ERROR(r.ReadU32(params.height));
  ByteVec quantized;
  COIC_RETURN_IF_ERROR(r.ReadBlob(quantized));
  if (quantized.size() !=
      static_cast<std::size_t>(params.width) * params.height) {
    return Status(StatusCode::kDataLoss, "pixel payload size mismatch");
  }
  ByteVec padding;
  COIC_RETURN_IF_ERROR(r.ReadBlob(padding));  // discarded filler
  std::vector<float> pixels(quantized.size());
  for (std::size_t i = 0; i < quantized.size(); ++i) {
    pixels[i] = static_cast<float>(quantized[i]) / 64.0f;
  }
  return FromPixels(params, std::move(pixels));
}

}  // namespace coic::vision
