// Synthetic camera frames.
//
// The paper's AR workload feeds camera frames of physical objects (stop
// signs, avatars) to a DNN. We have no camera, so frames are generated
// procedurally from a SceneParams: `scene_id` selects the physical object
// (two users looking at the same stop sign share a scene_id), and the
// view parameters (angle / distance / illumination) perturb the rendering
// the way a second user at the same crossroads would see it. The
// substitution preserves the property CoIC depends on: frames of the same
// scene under small view changes yield nearby feature descriptors, frames
// of different scenes yield distant ones.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/units.h"

namespace coic::vision {

/// What the camera is looking at, and from where.
struct SceneParams {
  /// Identity of the physical object/scene. Same scene_id == same object.
  std::uint64_t scene_id = 0;
  /// Camera azimuth around the object, degrees.
  double view_angle_deg = 0;
  /// Normalized camera distance; 1.0 = canonical framing.
  double distance = 1.0;
  /// Illumination multiplier; 1.0 = canonical lighting.
  double illumination = 1.0;
  /// Raster resolution fed to the feature extractor (DNN input size).
  std::uint32_t width = 96;
  std::uint32_t height = 96;
};

/// A grayscale float raster plus the byte size it would occupy encoded
/// (what a real client would upload in Origin mode).
class SyntheticImage {
 public:
  /// Deterministically renders the scene. Identical params produce
  /// identical pixels on every platform.
  static SyntheticImage Generate(const SceneParams& params);

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::span<const float> pixels() const noexcept { return pixels_; }
  [[nodiscard]] const SceneParams& params() const noexcept { return params_; }

  /// Pixel accessor (row-major). Precondition: in range.
  [[nodiscard]] float at(std::uint32_t x, std::uint32_t y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Size of the camera frame on the wire in Origin mode. The paper's
  /// client uploads a high-resolution frame; we model a 1080p-class JPEG
  /// (configurable by the pipelines) independent of the raster used for
  /// extraction.
  static constexpr Bytes kDefaultEncodedSize = 1'500'000;

  /// Quantized pixel bytes; stable input for content digests.
  [[nodiscard]] ByteVec EncodePixels() const;

  /// Digest of the quantized pixels.
  [[nodiscard]] Digest128 ContentHash() const;

  /// Wire form for Origin-mode offload: scene metadata + quantized
  /// pixels, padded with deterministic filler to `padded_total` bytes so
  /// the transfer cost models a high-resolution camera JPEG while the
  /// raster stays extraction-sized. `padded_total` of 0 means no padding.
  [[nodiscard]] ByteVec SerializeForWire(Bytes padded_total) const;

  /// Parses a wire frame back into an image. The pixel floats are
  /// reconstructed from the quantized bytes (i.e. this round-trip is
  /// lossy exactly the way camera JPEG is); descriptor extraction on the
  /// decoded image lands within the matcher threshold of the original.
  static Result<SyntheticImage> DecodeWire(std::span<const std::uint8_t> bytes);

  /// Constructs directly from a pixel buffer (decoder path).
  static SyntheticImage FromPixels(const SceneParams& params,
                                   std::vector<float> pixels);

 private:
  SyntheticImage(SceneParams params, std::vector<float> pixels) noexcept
      : params_(params), width_(params.width), height_(params.height),
        pixels_(std::move(pixels)) {}

  SceneParams params_;
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace coic::vision
