#include "vision/recognition.h"

#include <cmath>
#include <limits>

#include "common/hash.h"
#include "common/status.h"

namespace coic::vision {

RecognitionModel::RecognitionModel(std::vector<ObjectClass> classes,
                                   const FeatureExtractor& extractor,
                                   std::uint32_t views_per_class)
    : classes_(std::move(classes)), extractor_(extractor) {
  COIC_CHECK_MSG(!classes_.empty(), "recognition model needs classes");
  COIC_CHECK(views_per_class >= 1);
  centroids_.reserve(classes_.size());
  for (const ObjectClass& cls : classes_) {
    std::vector<double> acc(extractor_.config().output_dim, 0.0);
    for (std::uint32_t v = 0; v < views_per_class; ++v) {
      SceneParams params;
      params.scene_id = cls.scene_id;
      params.view_angle_deg = -20.0 + 40.0 * v / std::max(1u, views_per_class - 1);
      const auto desc = extractor_.Extract(SyntheticImage::Generate(params));
      for (std::size_t i = 0; i < desc.size(); ++i) acc[i] += desc[i];
    }
    std::vector<float> centroid(acc.size());
    double norm = 0;
    for (const double v : acc) norm += v * v;
    norm = std::sqrt(norm);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      centroid[i] = static_cast<float>(norm > 1e-12 ? acc[i] / norm : 0.0);
    }
    centroids_.push_back(std::move(centroid));
  }
}

Recognition RecognitionModel::Classify(const SyntheticImage& image) const {
  return ClassifyDescriptor(extractor_.Extract(image));
}

Recognition RecognitionModel::ClassifyDescriptor(
    std::span<const float> descriptor) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = DescriptorDistance(descriptor, centroids_[c]);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  Recognition r;
  r.label = classes_[best].label;
  r.scene_id = classes_[best].scene_id;
  // Descriptors and centroids are unit vectors, so distance <= 2.
  r.confidence = static_cast<float>(1.0 - std::min(best_dist, 2.0) / 2.0);
  return r;
}

ByteVec RecognitionModel::MakeAnnotation(const std::string& label,
                                         Bytes annotation_bytes) {
  return DeterministicBytes(annotation_bytes, Fnv1a64(label));
}

}  // namespace coic::vision
