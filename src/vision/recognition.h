// Cloud-side object recognition — the "DNN model" of the paper.
//
// The model is a nearest-centroid classifier over the same descriptor
// space the client extractor produces: each registered object class gets
// a centroid from a set of canonical views; classification returns the
// closest centroid's label with a distance-derived confidence. This is
// the full-fidelity "cloud inference" that Origin mode pays for on every
// frame and CoIC pays for only on cache misses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "vision/features.h"
#include "vision/image.h"

namespace coic::vision {

/// One recognizable object class.
struct ObjectClass {
  std::uint64_t scene_id = 0;  ///< The synthetic scene rendering this object.
  std::string label;           ///< E.g. "stop_sign".
};

struct Recognition {
  std::string label;
  float confidence = 0;   ///< In (0, 1]; 1 = exactly on the centroid.
  std::uint64_t scene_id = 0;
};

class RecognitionModel {
 public:
  /// Builds centroids for `classes` by averaging descriptors over
  /// `views_per_class` canonical view angles.
  RecognitionModel(std::vector<ObjectClass> classes,
                   const FeatureExtractor& extractor,
                   std::uint32_t views_per_class = 5);

  /// Classifies a frame end-to-end (extract + nearest centroid).
  [[nodiscard]] Recognition Classify(const SyntheticImage& image) const;

  /// Classifies a pre-extracted descriptor (used by the layer-split
  /// pipeline where the client already ran the lower layers).
  [[nodiscard]] Recognition ClassifyDescriptor(std::span<const float> descriptor) const;

  [[nodiscard]] std::size_t class_count() const noexcept { return classes_.size(); }
  [[nodiscard]] const std::vector<ObjectClass>& classes() const noexcept { return classes_; }

  /// Synthesizes the "high-quality 3D annotation" result blob for a
  /// label; deterministic per label so cached copies are byte-identical.
  /// `annotation_bytes` is the blob size (result download cost driver).
  [[nodiscard]] static ByteVec MakeAnnotation(const std::string& label,
                                              Bytes annotation_bytes);

 private:
  std::vector<ObjectClass> classes_;
  const FeatureExtractor& extractor_;
  std::vector<std::vector<float>> centroids_;
};

}  // namespace coic::vision
