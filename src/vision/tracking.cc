#include "vision/tracking.h"

#include <cmath>

#include "common/status.h"

namespace coic::vision {
namespace {

bool PatchInside(const SyntheticImage& frame, PatchLocation loc,
                 std::uint32_t size) noexcept {
  return loc.x >= 0 && loc.y >= 0 &&
         loc.x + static_cast<std::int32_t>(size) <=
             static_cast<std::int32_t>(frame.width()) &&
         loc.y + static_cast<std::int32_t>(size) <=
             static_cast<std::int32_t>(frame.height());
}

}  // namespace

ObjectTracker::ObjectTracker(const SyntheticImage& frame,
                             PatchLocation location, TrackerConfig config)
    : config_(config) {
  COIC_CHECK(config.patch_size >= 4);
  COIC_CHECK(config.min_score > -1 && config.min_score < 1);
  COIC_CHECK_MSG(PatchInside(frame, location, config.patch_size),
                 "template patch outside the frame");
  CaptureTemplate(frame, location);
}

void ObjectTracker::CaptureTemplate(const SyntheticImage& frame,
                                    PatchLocation location) {
  const std::uint32_t n = config_.patch_size;
  location_ = location;
  patch_.resize(static_cast<std::size_t>(n) * n);
  double sum = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    for (std::uint32_t x = 0; x < n; ++x) {
      const float v = frame.at(static_cast<std::uint32_t>(location.x) + x,
                               static_cast<std::uint32_t>(location.y) + y);
      patch_[static_cast<std::size_t>(y) * n + x] = v;
      sum += v;
    }
  }
  patch_mean_ = sum / static_cast<double>(patch_.size());
  double norm = 0;
  for (const float v : patch_) {
    const double d = v - patch_mean_;
    norm += d * d;
  }
  patch_norm_ = std::sqrt(norm);
}

double ObjectTracker::NccAt(const SyntheticImage& frame,
                            PatchLocation loc) const {
  const std::uint32_t n = config_.patch_size;
  // Window statistics first (single pass for mean).
  double sum = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    for (std::uint32_t x = 0; x < n; ++x) {
      sum += frame.at(static_cast<std::uint32_t>(loc.x) + x,
                      static_cast<std::uint32_t>(loc.y) + y);
    }
  }
  const double mean = sum / static_cast<double>(n) / n;
  double dot = 0, norm = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    for (std::uint32_t x = 0; x < n; ++x) {
      const double w = frame.at(static_cast<std::uint32_t>(loc.x) + x,
                                static_cast<std::uint32_t>(loc.y) + y) -
                       mean;
      dot += w * (patch_[static_cast<std::size_t>(y) * n + x] - patch_mean_);
      norm += w * w;
    }
  }
  const double denom = patch_norm_ * std::sqrt(norm);
  if (denom < 1e-12) return 0;
  return dot / denom;
}

TrackResult ObjectTracker::Track(const SyntheticImage& frame) {
  const auto radius = static_cast<std::int32_t>(config_.search_radius);
  TrackResult best;
  best.score = -2;
  for (std::int32_t dy = -radius; dy <= radius; ++dy) {
    for (std::int32_t dx = -radius; dx <= radius; ++dx) {
      const PatchLocation candidate{location_.x + dx, location_.y + dy};
      if (!PatchInside(frame, candidate, config_.patch_size)) continue;
      const double score = NccAt(frame, candidate);
      if (score > best.score) {
        best.score = score;
        best.location = candidate;
        best.dx = dx;
        best.dy = dy;
      }
    }
  }
  if (best.score >= config_.min_score) {
    best.found = true;
    lost_streak_ = 0;
    // Re-anchor and refresh the template so slow appearance drift
    // (lighting, rotation) is absorbed frame by frame.
    CaptureTemplate(frame, best.location);
  } else {
    best.found = false;
    best.dx = 0;
    best.dy = 0;
    ++lost_streak_;
  }
  return best;
}

}  // namespace coic::vision
