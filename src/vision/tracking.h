// On-device object tracking.
//
// Paper §2: "we did not cache object tracking results for AR applications
// because tracking is less computation-intensive as compared to
// recognition. Thus tracking is doable to be efficiently and accurately
// executed on mobile devices." The AR loop is therefore: recognize once
// through CoIC (expensive, cached), then *track* the recognized object
// locally frame-to-frame. This module is that local tracker: normalized
// cross-correlation template matching over a bounded search window —
// cheap, deterministic, and entirely client-side.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vision/image.h"

namespace coic::vision {

/// An axis-aligned patch location in pixel coordinates (top-left corner).
struct PatchLocation {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const PatchLocation&, const PatchLocation&) = default;
};

struct TrackResult {
  bool found = false;
  PatchLocation location;     ///< Best-match position in the new frame.
  double score = 0;           ///< NCC in [-1, 1]; 1 = perfect match.
  std::int32_t dx = 0;        ///< Displacement from the previous location.
  std::int32_t dy = 0;
};

struct TrackerConfig {
  /// Side length of the square template patch.
  std::uint32_t patch_size = 16;
  /// Search radius around the previous location, pixels.
  std::uint32_t search_radius = 8;
  /// NCC below this reports lost-track (the AR app then re-runs
  /// recognition through CoIC).
  double min_score = 0.6;
};

/// Tracks one template patch across frames.
class ObjectTracker {
 public:
  /// Captures the template from `frame` at `location`. The patch must
  /// lie fully inside the frame.
  ObjectTracker(const SyntheticImage& frame, PatchLocation location,
                TrackerConfig config = {});

  /// Finds the template in `frame` near the last known location. On
  /// success the tracker re-anchors (and refreshes the template) at the
  /// new location; on a lost track the state is unchanged.
  TrackResult Track(const SyntheticImage& frame);

  [[nodiscard]] PatchLocation location() const noexcept { return location_; }
  [[nodiscard]] const TrackerConfig& config() const noexcept { return config_; }
  /// Consecutive lost-track results since the last success.
  [[nodiscard]] std::uint32_t lost_streak() const noexcept { return lost_streak_; }

 private:
  void CaptureTemplate(const SyntheticImage& frame, PatchLocation location);
  [[nodiscard]] double NccAt(const SyntheticImage& frame,
                             PatchLocation location) const;

  TrackerConfig config_;
  PatchLocation location_;
  std::vector<float> patch_;       ///< Template pixels, row-major.
  double patch_mean_ = 0;
  double patch_norm_ = 0;          ///< sqrt(sum((p - mean)^2))
  std::uint32_t lost_streak_ = 0;
};

}  // namespace coic::vision
