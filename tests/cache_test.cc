// Edge-cache tests: policy traces, similarity indexes, and IcCache
// semantics (byte accounting, eviction, TTL, approximate matching).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cache/ic_cache.h"
#include "cache/policy.h"
#include "cache/similarity_index.h"
#include "common/rng.h"

namespace coic::cache {
namespace {

using proto::DescriptorKind;
using proto::FeatureDescriptor;
using proto::TaskKind;

// ---------------------------------------------------------------------------
// Eviction policies
// ---------------------------------------------------------------------------

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnInsert(3);
  EXPECT_EQ(lru.Victim(), 1u);
  lru.OnAccess(1);  // 2 is now coldest
  EXPECT_EQ(lru.Victim(), 2u);
  lru.OnErase(2);
  EXPECT_EQ(lru.Victim(), 3u);
}

TEST(LruPolicyTest, EmptyHasNoVictim) {
  LruPolicy lru;
  EXPECT_EQ(lru.Victim(), std::nullopt);
  lru.OnInsert(1);
  lru.OnErase(1);
  EXPECT_EQ(lru.Victim(), std::nullopt);
  EXPECT_EQ(lru.tracked(), 0u);
}

TEST(FifoPolicyTest, IgnoresAccesses) {
  FifoPolicy fifo;
  fifo.OnInsert(1);
  fifo.OnInsert(2);
  fifo.OnAccess(1);
  fifo.OnAccess(1);
  EXPECT_EQ(fifo.Victim(), 1u);  // still the oldest
}

TEST(LfuPolicyTest, EvictsLeastFrequent) {
  LfuPolicy lfu;
  lfu.OnInsert(1);
  lfu.OnInsert(2);
  lfu.OnInsert(3);
  lfu.OnAccess(1);
  lfu.OnAccess(1);
  lfu.OnAccess(2);
  EXPECT_EQ(lfu.Victim(), 3u);  // freq 1
  lfu.OnAccess(3);
  lfu.OnAccess(3);
  lfu.OnAccess(3);
  EXPECT_EQ(lfu.Victim(), 2u);  // freq 2 beats 1(freq3), 3(freq4)
}

TEST(LfuPolicyTest, TiebreaksByRecencyWithinFrequency) {
  LfuPolicy lfu;
  lfu.OnInsert(1);
  lfu.OnInsert(2);  // both freq 1; 1 is older
  EXPECT_EQ(lfu.Victim(), 1u);
}

TEST(SlruPolicyTest, ProbationEvictedBeforeProtected) {
  SlruPolicy slru(0.5);
  slru.OnInsert(1);
  slru.OnInsert(2);
  slru.OnAccess(1);  // promote 1 to protected
  EXPECT_EQ(slru.Victim(), 2u);  // probation evicted first
}

TEST(SlruPolicyTest, ScanResistance) {
  // Hot entry accessed repeatedly, then a scan of one-shot entries: the
  // hot entry must survive as long as any scan entry remains.
  SlruPolicy slru(0.5);
  slru.OnInsert(100);
  slru.OnAccess(100);
  for (EntryId id = 1; id <= 20; ++id) {
    slru.OnInsert(id);
    const auto victim = slru.Victim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_NE(*victim, 100u);
    slru.OnErase(*victim);
  }
}

TEST(SlruPolicyTest, ProtectedOverflowDemotes) {
  SlruPolicy slru(0.34);  // protected bound = ceil(0.34 * n)
  slru.OnInsert(1);
  slru.OnInsert(2);
  slru.OnInsert(3);
  slru.OnAccess(1);
  slru.OnAccess(2);
  slru.OnAccess(3);  // 3 promotions; bound ~2 -> oldest demoted
  // All三 tracked, victim must exist and be a demoted (probation) entry.
  EXPECT_EQ(slru.tracked(), 3u);
  EXPECT_TRUE(slru.Victim().has_value());
}

TEST(PolicyFactoryTest, MakesEveryKind) {
  for (const auto kind : {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kLfu,
                          PolicyKind::kSlru}) {
    const auto policy = MakePolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), PolicyKindName(kind));
  }
}

// Property: over a random trace, every policy keeps tracked() consistent
// and always nominates a currently-tracked victim.
class PolicyPropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyPropertyTest, VictimAlwaysTracked) {
  const auto policy = MakePolicy(GetParam());
  Rng rng(42);
  std::set<EntryId> live;
  EntryId next = 1;
  for (int step = 0; step < 3000; ++step) {
    const double p = rng.NextDouble();
    if (p < 0.4 || live.empty()) {
      policy->OnInsert(next);
      live.insert(next);
      ++next;
    } else if (p < 0.7) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      policy->OnAccess(*it);
    } else {
      const auto victim = policy->Victim();
      ASSERT_TRUE(victim.has_value());
      EXPECT_TRUE(live.count(*victim)) << "victim not live";
      policy->OnErase(*victim);
      live.erase(*victim);
    }
    EXPECT_EQ(policy->tracked(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                           PolicyKind::kLfu, PolicyKind::kSlru));

// ---------------------------------------------------------------------------
// Similarity indexes
// ---------------------------------------------------------------------------

std::vector<float> RandomUnitVector(Rng& rng, std::size_t dim) {
  std::vector<float> v(dim);
  double norm = 0;
  for (auto& x : v) {
    x = static_cast<float>(rng.NextGaussian());
    norm += static_cast<double>(x) * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x = static_cast<float>(x / norm);
  return v;
}

TEST(LinearIndexTest, FindsExactMatch) {
  LinearIndex index;
  Rng rng(1);
  const auto target = RandomUnitVector(rng, 32);
  index.Insert(7, target);
  for (int i = 0; i < 20; ++i) index.Insert(100 + i, RandomUnitVector(rng, 32));
  const auto nearest = index.Nearest(target);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->id, 7u);
  EXPECT_NEAR(nearest->distance, 0.0, 1e-6);
}

TEST(LinearIndexTest, EmptyReturnsNullopt) {
  LinearIndex index;
  EXPECT_EQ(index.Nearest(std::vector<float>{1.0f}), std::nullopt);
}

TEST(LinearIndexTest, RemoveMakesEntryUnfindable) {
  LinearIndex index;
  Rng rng(2);
  const auto a = RandomUnitVector(rng, 16);
  const auto b = RandomUnitVector(rng, 16);
  index.Insert(1, a);
  index.Insert(2, b);
  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  const auto nearest = index.Nearest(a);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->id, 2u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(LinearIndexTest, SwapRemoveKeepsOtherRowsIntact) {
  LinearIndex index;
  Rng rng(3);
  std::vector<std::vector<float>> vecs;
  for (std::uint64_t id = 0; id < 50; ++id) {
    vecs.push_back(RandomUnitVector(rng, 8));
    index.Insert(id, vecs.back());
  }
  // Remove every third entry, then verify all survivors still resolve.
  for (std::uint64_t id = 0; id < 50; id += 3) EXPECT_TRUE(index.Remove(id));
  for (std::uint64_t id = 0; id < 50; ++id) {
    if (id % 3 == 0) continue;
    const auto nearest = index.Nearest(vecs[id]);
    ASSERT_TRUE(nearest.has_value());
    EXPECT_EQ(nearest->id, id);
    EXPECT_NEAR(nearest->distance, 0.0, 1e-6);
  }
}

TEST(LinearIndexTest, ReturnsTrueNearestNeighbor) {
  // Brute-force ground truth comparison.
  LinearIndex index;
  Rng rng(4);
  std::vector<std::vector<float>> vecs;
  for (std::uint64_t id = 0; id < 200; ++id) {
    vecs.push_back(RandomUnitVector(rng, 24));
    index.Insert(id, vecs.back());
  }
  for (int q = 0; q < 20; ++q) {
    const auto query = RandomUnitVector(rng, 24);
    double best = 1e300;
    std::uint64_t best_id = 0;
    for (std::uint64_t id = 0; id < 200; ++id) {
      double acc = 0;
      for (std::size_t i = 0; i < 24; ++i) {
        const double d = static_cast<double>(query[i]) - vecs[id][i];
        acc += d * d;
      }
      if (acc < best) {
        best = acc;
        best_id = id;
      }
    }
    const auto nearest = index.Nearest(query);
    ASSERT_TRUE(nearest.has_value());
    EXPECT_EQ(nearest->id, best_id);
  }
}

TEST(LshIndexTest, HighRecallOnClusteredData) {
  // CoIC's regime: tight clusters (views of the same object). LSH must
  // find the cluster-mate nearly always.
  LshParams params;
  params.tables = 12;
  params.hyperplanes = 10;
  LshIndex index(params);
  Rng rng(5);
  std::vector<std::vector<float>> centers;
  constexpr int kClusters = 40;
  for (int c = 0; c < kClusters; ++c) {
    centers.push_back(RandomUnitVector(rng, 32));
    index.Insert(static_cast<std::uint64_t>(c), centers.back());
  }
  int found = 0;
  for (int c = 0; c < kClusters; ++c) {
    auto query = centers[c];
    for (auto& x : query) x += static_cast<float>(rng.NextGaussian() * 0.02);
    const auto nearest = index.Nearest(query);
    if (nearest && nearest->id == static_cast<std::uint64_t>(c)) ++found;
  }
  EXPECT_GE(found, kClusters * 9 / 10);
}

TEST(LshIndexTest, ProbesFewerCandidatesThanLinear) {
  LshIndex index;
  Rng rng(6);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    index.Insert(id, RandomUnitVector(rng, 32));
  }
  (void)index.Nearest(RandomUnitVector(rng, 32));
  EXPECT_LT(index.last_probe_count(), 1000u);
}

TEST(LshIndexTest, RemoveWorks) {
  LshIndex index;
  Rng rng(7);
  const auto v = RandomUnitVector(rng, 16);
  index.Insert(1, v);
  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.Nearest(v), std::nullopt);
}

// ---------------------------------------------------------------------------
// IcCache
// ---------------------------------------------------------------------------

FeatureDescriptor HashKey(std::uint64_t lo, TaskKind task = TaskKind::kRender) {
  return FeatureDescriptor::ForHash(task, Digest128{0xABC, lo});
}

FeatureDescriptor VectorKey(const std::vector<float>& v) {
  return FeatureDescriptor::ForVector(TaskKind::kRecognition, v);
}

TEST(IcCacheTest, ExactHitAfterInsert) {
  IcCache cache(IcCacheConfig{});
  const auto key = HashKey(1);
  cache.Insert(key, ByteVec{1, 2, 3}, SimTime::Epoch());
  const auto outcome = cache.Lookup(key, SimTime::Epoch());
  ASSERT_TRUE(outcome.hit);
  EXPECT_EQ(outcome.payload.CloneBytes(), (ByteVec{1, 2, 3}));
  EXPECT_EQ(outcome.distance, 0.0);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(IcCacheTest, MissOnUnknownKey) {
  IcCache cache(IcCacheConfig{});
  EXPECT_FALSE(cache.Lookup(HashKey(99), SimTime::Epoch()).hit);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(IcCacheTest, SameDigestDifferentTaskDoesNotHit) {
  IcCache cache(IcCacheConfig{});
  cache.Insert(HashKey(5, TaskKind::kRender), ByteVec{1}, SimTime::Epoch());
  EXPECT_FALSE(cache.Lookup(HashKey(5, TaskKind::kPanorama), SimTime::Epoch()).hit);
}

TEST(IcCacheTest, VectorHitWithinThreshold) {
  IcCacheConfig config;
  config.similarity_threshold = 0.3;
  IcCache cache(config);
  cache.Insert(VectorKey({1.0f, 0.0f}), ByteVec{42}, SimTime::Epoch());
  // Distance 0.2 < 0.3: hit.
  const auto near = cache.Lookup(VectorKey({1.0f, 0.2f}), SimTime::Epoch());
  EXPECT_TRUE(near.hit);
  EXPECT_NEAR(near.distance, 0.2, 1e-6);
  // Distance 1.0 > 0.3: miss.
  EXPECT_FALSE(cache.Lookup(VectorKey({0.0f, 1.0f}), SimTime::Epoch()).hit);
}

TEST(IcCacheTest, ThresholdBoundaryInclusive) {
  IcCacheConfig config;
  config.similarity_threshold = 0.5;
  IcCache cache(config);
  cache.Insert(VectorKey({0.0f, 0.0f}), ByteVec{1}, SimTime::Epoch());
  EXPECT_TRUE(cache.Lookup(VectorKey({0.5f, 0.0f}), SimTime::Epoch()).hit);
  EXPECT_FALSE(cache.Lookup(VectorKey({0.500001f, 0.0f}), SimTime::Epoch()).hit);
}

TEST(IcCacheTest, ByteAccountingExact) {
  IcCache cache(IcCacheConfig{});
  const auto key1 = HashKey(1);
  const auto key2 = HashKey(2);
  cache.Insert(key1, DeterministicBytes(100, 1), SimTime::Epoch());
  cache.Insert(key2, DeterministicBytes(200, 2), SimTime::Epoch());
  const Bytes expected = (100 + key1.WireSize() + IcCache::kEntryOverhead) +
                         (200 + key2.WireSize() + IcCache::kEntryOverhead);
  EXPECT_EQ(cache.bytes_used(), expected);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(IcCacheTest, ExactKeyReinsertUpdatesInPlace) {
  IcCache cache(IcCacheConfig{});
  const auto key = HashKey(1);
  cache.Insert(key, DeterministicBytes(100, 1), SimTime::Epoch());
  const Bytes before = cache.bytes_used();
  cache.Insert(key, DeterministicBytes(300, 2), SimTime::Epoch());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes_used(), before + 200);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().updates, 1u);
  const auto outcome = cache.Lookup(key, SimTime::Epoch());
  ASSERT_TRUE(outcome.hit);
  EXPECT_EQ(outcome.payload.size(), 300u);
}

TEST(IcCacheTest, CapacityEvictsLru) {
  IcCacheConfig config;
  config.capacity_bytes = 3 * (100 + HashKey(0).WireSize() + IcCache::kEntryOverhead);
  config.policy = PolicyKind::kLru;
  IcCache cache(config);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    cache.Insert(HashKey(i), DeterministicBytes(100, i), SimTime::Epoch());
  }
  EXPECT_EQ(cache.size(), 3u);
  // Touch 1 so 2 becomes the LRU victim.
  (void)cache.Lookup(HashKey(1), SimTime::Epoch());
  cache.Insert(HashKey(4), DeterministicBytes(100, 4), SimTime::Epoch());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(HashKey(1), SimTime::Epoch()).hit);
  EXPECT_FALSE(cache.Lookup(HashKey(2), SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Lookup(HashKey(3), SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Lookup(HashKey(4), SimTime::Epoch()).hit);
}

TEST(IcCacheTest, CapacityNeverExceededAfterAnyInsert) {
  IcCacheConfig config;
  config.capacity_bytes = 10'000;
  IcCache cache(config);
  Rng rng(8);
  for (std::uint64_t i = 0; i < 500; ++i) {
    cache.Insert(HashKey(i), DeterministicBytes(rng.NextBelow(900), i),
                 SimTime::Epoch());
    EXPECT_LE(cache.bytes_used(), config.capacity_bytes);
  }
}

TEST(IcCacheTest, OversizedEntryEvictsEverythingIncludingItself) {
  IcCacheConfig config;
  config.capacity_bytes = 500;
  IcCache cache(config);
  cache.Insert(HashKey(1), DeterministicBytes(100, 1), SimTime::Epoch());
  cache.Insert(HashKey(2), DeterministicBytes(10'000, 2), SimTime::Epoch());
  // The oversized entry cannot fit: the cache must end within capacity.
  EXPECT_LE(cache.bytes_used(), config.capacity_bytes);
}

TEST(IcCacheTest, TtlExpiresEntries) {
  IcCacheConfig config;
  config.ttl = Duration::Seconds(10);
  IcCache cache(config);
  const auto key = HashKey(1);
  cache.Insert(key, ByteVec{1}, SimTime::Epoch());
  EXPECT_TRUE(cache.Lookup(key, SimTime::Epoch() + Duration::Seconds(9)).hit);
  EXPECT_FALSE(cache.Lookup(key, SimTime::Epoch() + Duration::Seconds(11)).hit);
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(IcCacheTest, VectorEntriesEvictAndUnindex) {
  IcCacheConfig config;
  config.similarity_threshold = 0.1;
  IcCache cache(config);
  const auto key = VectorKey({1.0f, 0.0f, 0.0f});
  const auto id = cache.Insert(key, ByteVec{7}, SimTime::Epoch());
  EXPECT_TRUE(cache.Lookup(key, SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Erase(id));
  EXPECT_FALSE(cache.Lookup(key, SimTime::Epoch()).hit);
  EXPECT_FALSE(cache.Erase(id));
}

TEST(IcCacheTest, LshModeHitsOnClusteredDescriptors) {
  IcCacheConfig config;
  config.use_lsh = true;
  config.similarity_threshold = 0.3;
  IcCache cache(config);
  Rng rng(9);
  const auto base = RandomUnitVector(rng, 32);
  cache.Insert(VectorKey(base), ByteVec{1}, SimTime::Epoch());
  auto query = base;
  query[0] += 0.01f;
  EXPECT_TRUE(cache.Lookup(VectorKey(query), SimTime::Epoch()).hit);
}

TEST(IcCacheTest, HitRefreshesRecency) {
  IcCacheConfig config;
  config.capacity_bytes = 2 * (10 + HashKey(0).WireSize() + IcCache::kEntryOverhead);
  IcCache cache(config);
  cache.Insert(HashKey(1), DeterministicBytes(10, 1), SimTime::Epoch());
  cache.Insert(HashKey(2), DeterministicBytes(10, 2), SimTime::Epoch());
  (void)cache.Lookup(HashKey(1), SimTime::Epoch());  // 1 is now hot
  cache.Insert(HashKey(3), DeterministicBytes(10, 3), SimTime::Epoch());
  EXPECT_TRUE(cache.Lookup(HashKey(1), SimTime::Epoch()).hit);
  EXPECT_FALSE(cache.Lookup(HashKey(2), SimTime::Epoch()).hit);
}

TEST(IcCacheTest, StatsHitRate) {
  IcCache cache(IcCacheConfig{});
  cache.Insert(HashKey(1), ByteVec{1}, SimTime::Epoch());
  (void)cache.Lookup(HashKey(1), SimTime::Epoch());
  (void)cache.Lookup(HashKey(2), SimTime::Epoch());
  (void)cache.Lookup(HashKey(1), SimTime::Epoch());
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-9);
}

// Property: under a random interleaving of insert/lookup/erase across
// both descriptor kinds, byte accounting stays exact and capacity holds.
class IcCachePropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(IcCachePropertyTest, AccountingInvariants) {
  IcCacheConfig config;
  config.capacity_bytes = 50'000;
  config.policy = GetParam();
  config.similarity_threshold = 0.2;
  IcCache cache(config);
  Rng rng(10 + static_cast<std::uint64_t>(GetParam()));
  std::vector<EntryId> ids;
  for (int step = 0; step < 2000; ++step) {
    const double p = rng.NextDouble();
    if (p < 0.5) {
      const bool vector_kind = rng.NextBool(0.5);
      const auto payload = DeterministicBytes(rng.NextBelow(2000), step);
      EntryId id;
      if (vector_kind) {
        id = cache.Insert(VectorKey(RandomUnitVector(rng, 16)), ByteVec(payload),
                          SimTime::FromMicros(step));
      } else {
        id = cache.Insert(HashKey(rng.NextBelow(300)), ByteVec(payload),
                          SimTime::FromMicros(step));
      }
      ids.push_back(id);
    } else if (p < 0.9) {
      (void)cache.Lookup(HashKey(rng.NextBelow(300)),
                         SimTime::FromMicros(step));
    } else if (!ids.empty()) {
      (void)cache.Erase(ids[rng.NextBelow(ids.size())]);
    }
    EXPECT_LE(cache.bytes_used(), config.capacity_bytes);
    if (cache.size() == 0) {
      EXPECT_EQ(cache.bytes_used(), 0u);
    }
  }
  // Drain and verify the accounting returns to zero.
  cache.Clear();
  EXPECT_EQ(cache.bytes_used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, IcCachePropertyTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                           PolicyKind::kLfu, PolicyKind::kSlru));

TEST(IcCacheTest, MutationCountMovesOnEveryContentChange) {
  // Change-detection consumers (gossip summary memo) rely on this
  // counter moving for *every* insert/removal path, including Erase and
  // Clear, which bump no stats counter.
  IcCache cache(IcCacheConfig{});
  EXPECT_EQ(cache.mutation_count(), 0u);
  const auto key = [](std::uint64_t i) {
    return FeatureDescriptor::ForHash(TaskKind::kRender, Digest128{1, i});
  };
  const EntryId a = cache.Insert(key(1), ByteVec(8), SimTime::Epoch());
  const std::uint64_t after_insert = cache.mutation_count();
  EXPECT_GT(after_insert, 0u);
  EXPECT_TRUE(cache.Erase(a));
  const std::uint64_t after_erase = cache.mutation_count();
  EXPECT_GT(after_erase, after_insert);
  cache.Insert(key(2), ByteVec(8), SimTime::Epoch());
  cache.Insert(key(3), ByteVec(8), SimTime::Epoch());
  cache.Clear();
  EXPECT_GT(cache.mutation_count(), after_erase + 2);
  // Lookups alone do not move it.
  const std::uint64_t after_clear = cache.mutation_count();
  (void)cache.Lookup(key(2), SimTime::Epoch());
  EXPECT_EQ(cache.mutation_count(), after_clear);
}

TEST(IcCacheJournalTest, RecordsHashKeyInsertsAndRemovals) {
  IcCacheConfig config;
  config.journal_capacity = 64;
  IcCache cache(config);
  EXPECT_EQ(cache.journal_cursor(), 0u);
  EXPECT_EQ(cache.journal_head(), 0u);

  const EntryId a = cache.Insert(HashKey(1), ByteVec(8), SimTime::Epoch());
  cache.Insert(HashKey(2), ByteVec(8), SimTime::Epoch());
  // Vector keys are summarized by centroid sketches, not the Bloom
  // filter, so they do not enter the journal.
  cache.Insert(FeatureDescriptor::ForVector(TaskKind::kRecognition,
                                            {1.0f, 0.0f}),
               ByteVec(8), SimTime::Epoch());
  // Re-inserting an existing exact key updates in place: the key set is
  // unchanged, so nothing is journaled.
  cache.Insert(HashKey(2), ByteVec(16), SimTime::Epoch());
  EXPECT_TRUE(cache.Erase(a));
  EXPECT_EQ(cache.journal_cursor(), 3u);

  std::vector<std::pair<std::uint64_t, bool>> seen;
  EXPECT_TRUE(cache.ForEachJournaled(0, [&](const CacheJournalEntry& e) {
    seen.emplace_back(e.index_key, e.erased);
  }));
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair{HashKey(1).IndexKey(), false}));
  EXPECT_EQ(seen[1], (std::pair{HashKey(2).IndexKey(), false}));
  EXPECT_EQ(seen[2], (std::pair{HashKey(1).IndexKey(), true}));

  // A mid-stream cursor sees only the suffix.
  seen.clear();
  EXPECT_TRUE(cache.ForEachJournaled(2, [&](const CacheJournalEntry& e) {
    seen.emplace_back(e.index_key, e.erased);
  }));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_TRUE(seen[0].second);
}

TEST(IcCacheJournalTest, OverflowEvictsOldestAndSignalsReaders) {
  IcCacheConfig config;
  config.journal_capacity = 4;
  IcCache cache(config);
  for (std::uint64_t k = 1; k <= 6; ++k) {
    cache.Insert(HashKey(k), ByteVec(8), SimTime::Epoch());
  }
  EXPECT_EQ(cache.journal_cursor(), 6u);
  EXPECT_EQ(cache.journal_head(), 2u);  // entries 0 and 1 fell off
  // A reader whose cursor predates the window must be told to resync...
  EXPECT_FALSE(cache.ForEachJournaled(1, [](const CacheJournalEntry&) {}));
  // ...while one inside the window replays the retained suffix.
  std::size_t visited = 0;
  EXPECT_TRUE(cache.ForEachJournaled(3,
                                     [&](const CacheJournalEntry&) { ++visited; }));
  EXPECT_EQ(visited, 3u);
}

TEST(IcCacheTest, InsertCompactsSmallSlicesOfLargeDeliveryBuffers) {
  // Regression: adopting a slice by reference retained the entire
  // delivery buffer — a 1 KiB cached entry pinned its multi-MB network
  // frame until eviction.
  IcCache cache(IcCacheConfig{});
  const auto key = FeatureDescriptor::ForHash(TaskKind::kRender,
                                              Digest128{1, 2});
  const Frame delivery(DeterministicBytes(1 << 20, 1));
  const std::uint64_t copies_before = frame_stats().copies();
  cache.Insert(key, delivery.Slice(100, 1024), SimTime::Epoch());
  // One deliberate, counted re-own copy of the 1 KiB slice...
  EXPECT_EQ(frame_stats().copies(), copies_before + 1);
  const auto out = cache.Lookup(key, SimTime::Epoch());
  ASSERT_TRUE(out.hit);
  // ...leaving the cached payload right-sized and the delivery buffer
  // free to die with the transport.
  EXPECT_EQ(out.payload.size(), 1024u);
  EXPECT_EQ(out.payload.backing_size(), out.payload.size());
  EXPECT_FALSE(out.payload.SharesBufferWith(delivery));
}

TEST(IcCacheTest, InsertKeepsSharingWhenTheSliceIsMostOfTheBuffer) {
  // A slice covering most of its backing buffer stays zero-copy: the
  // compaction would save almost nothing and cost a real memcpy.
  IcCache cache(IcCacheConfig{});
  const auto key = FeatureDescriptor::ForHash(TaskKind::kRender,
                                              Digest128{3, 4});
  const Frame delivery(DeterministicBytes(3000, 2));
  const std::uint64_t copies_before = frame_stats().copies();
  cache.Insert(key, delivery.Slice(20, 2800), SimTime::Epoch());
  EXPECT_EQ(frame_stats().copies(), copies_before);
  const auto out = cache.Lookup(key, SimTime::Epoch());
  ASSERT_TRUE(out.hit);
  EXPECT_TRUE(out.payload.SharesBufferWith(delivery));
}

// ---------------------------------------------------------------------------
// Peer-aware eviction
// ---------------------------------------------------------------------------

namespace {
IcCacheConfig ThreeEntryLruConfig() {
  IcCacheConfig config;
  config.capacity_bytes =
      3 * (100 + HashKey(0).WireSize() + IcCache::kEntryOverhead);
  config.policy = PolicyKind::kLru;
  return config;
}
}  // namespace

TEST(PeerAwareEvictionTest, SteersOntoReplicatedEntryAndSparesUniqueOne) {
  // Keys 1..3 fill the cache (LRU victim order 1, 2, 3). A peer
  // advertises key 2, so the overflow insert of key 4 evicts the
  // replicated 2 — its re-reference is a cheap probe — and spares the
  // unique LRU pick 1, which would cost a cloud round trip.
  IcCacheConfig config = ThreeEntryLruConfig();
  const std::uint64_t replicated = HashKey(2).IndexKey();
  config.replicated_hint = [replicated](std::uint64_t index_key) {
    return index_key == replicated;
  };
  IcCache cache(config);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    cache.Insert(HashKey(i), DeterministicBytes(100, i), SimTime::Epoch());
  }
  cache.Insert(HashKey(4), DeterministicBytes(100, 4), SimTime::Epoch());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().unique_spared, 1u);
  EXPECT_TRUE(cache.Lookup(HashKey(1), SimTime::Epoch()).hit);
  EXPECT_FALSE(cache.Lookup(HashKey(2), SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Lookup(HashKey(3), SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Lookup(HashKey(4), SimTime::Epoch()).hit);
}

TEST(PeerAwareEvictionTest, NullHintKeepsThePolicyChoiceExactly) {
  // The default config (no hint) must be byte-identical to plain LRU;
  // a hint that never fires must be too, with nothing counted spared.
  for (const bool with_hint : {false, true}) {
    IcCacheConfig config = ThreeEntryLruConfig();
    if (with_hint) {
      config.replicated_hint = [](std::uint64_t) { return false; };
    }
    IcCache cache(config);
    for (std::uint64_t i = 1; i <= 3; ++i) {
      cache.Insert(HashKey(i), DeterministicBytes(100, i), SimTime::Epoch());
    }
    cache.Insert(HashKey(4), DeterministicBytes(100, 4), SimTime::Epoch());
    EXPECT_FALSE(cache.Lookup(HashKey(1), SimTime::Epoch()).hit);
    EXPECT_TRUE(cache.Lookup(HashKey(2), SimTime::Epoch()).hit);
    EXPECT_EQ(cache.stats().unique_spared, 0u);
  }
}

TEST(PeerAwareEvictionTest, NewcomerIsNeverSteeredOnto) {
  // Only the just-inserted key 4 is "replicated": steering must skip the
  // candidate itself (admission owns that decision) and evict plain LRU.
  IcCacheConfig config = ThreeEntryLruConfig();
  const std::uint64_t newcomer = HashKey(4).IndexKey();
  config.replicated_hint = [newcomer](std::uint64_t index_key) {
    return index_key == newcomer;
  };
  IcCache cache(config);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    cache.Insert(HashKey(i), DeterministicBytes(100, i), SimTime::Epoch());
  }
  cache.Insert(HashKey(4), DeterministicBytes(100, 4), SimTime::Epoch());
  EXPECT_FALSE(cache.Lookup(HashKey(1), SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Lookup(HashKey(4), SimTime::Epoch()).hit);
  EXPECT_EQ(cache.stats().unique_spared, 0u);
}

TEST(PeerAwareEvictionTest, ScanDepthBoundsTheSteeringWindow) {
  // The replicated entry sits third in eviction order but the scan
  // window only covers two candidates: steering finds nothing and the
  // LRU pick stands. Near-equivalent victims may be traded; a recently
  // touched entry never is.
  IcCacheConfig config = ThreeEntryLruConfig();
  config.replication_scan_depth = 2;
  const std::uint64_t replicated = HashKey(3).IndexKey();
  config.replicated_hint = [replicated](std::uint64_t index_key) {
    return index_key == replicated;
  };
  IcCache cache(config);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    cache.Insert(HashKey(i), DeterministicBytes(100, i), SimTime::Epoch());
  }
  cache.Insert(HashKey(4), DeterministicBytes(100, 4), SimTime::Epoch());
  EXPECT_FALSE(cache.Lookup(HashKey(1), SimTime::Epoch()).hit);
  EXPECT_TRUE(cache.Lookup(HashKey(3), SimTime::Epoch()).hit);
  EXPECT_EQ(cache.stats().unique_spared, 0u);
}

TEST(LruPolicyTest, VictimCandidatesEnumerateInEvictionOrder) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnInsert(3);
  lru.OnAccess(1);  // eviction order is now 2, 3, 1
  EXPECT_EQ(lru.VictimCandidates(2), (std::vector<EntryId>{2, 3}));
  EXPECT_EQ(lru.VictimCandidates(8), (std::vector<EntryId>{2, 3, 1}));
  EXPECT_TRUE(lru.VictimCandidates(0).empty());
  EXPECT_EQ(lru.VictimCandidates(1).front(), *lru.Victim());
}

TEST(IcCacheJournalTest, JournalIsOffByDefault) {
  // Non-delta-gossip caches must not pay for the journal; the default
  // config keeps it disabled (FederationPipeline enables it when delta
  // gossip is configured). A disabled journal records nothing, so it
  // must answer readers like a permanently overflowed one — never
  // attesting coverage it does not have.
  IcCache cache(IcCacheConfig{});
  cache.Insert(HashKey(1), ByteVec(8), SimTime::Epoch());
  EXPECT_EQ(cache.journal_cursor(), 0u);
  std::size_t visited = 0;
  EXPECT_FALSE(cache.ForEachJournaled(
      0, [&](const CacheJournalEntry&) { ++visited; }));
  EXPECT_EQ(visited, 0u);
}

}  // namespace
}  // namespace coic::cache
