// Unit and property tests for the common substrate.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bytes.h"
#include "common/frame.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time.h"
#include "common/units.h"

namespace coic {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kDataLoss, "frame truncated");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "frame truncated");
  EXPECT_EQ(s.ToString(), "kDataLoss: frame truncated");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status(), Status::Ok());
  EXPECT_EQ(Status(StatusCode::kTimeout, "x"), Status(StatusCode::kTimeout, "x"));
  EXPECT_NE(Status(StatusCode::kTimeout, "x"), Status(StatusCode::kTimeout, "y"));
  EXPECT_NE(Status(StatusCode::kTimeout, "x"), Status(StatusCode::kInternal, "x"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(StatusCode::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

// ---------------------------------------------------------------------------
// Time / Units
// ---------------------------------------------------------------------------

TEST(DurationTest, ConstructionAndConversion) {
  EXPECT_EQ(Duration::Millis(3).micros(), 3000);
  EXPECT_EQ(Duration::Seconds(0.5).micros(), 500'000);
  EXPECT_DOUBLE_EQ(Duration::Micros(1500).millis(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Millis(2500).seconds(), 2.5);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Millis(10);
  const Duration b = Duration::Millis(4);
  EXPECT_EQ((a + b).micros(), 14'000);
  EXPECT_EQ((a - b).micros(), 6'000);
  EXPECT_EQ((a * 3).micros(), 30'000);
  EXPECT_EQ((3 * a).micros(), 30'000);
  EXPECT_LT(b, a);
  EXPECT_EQ(Duration::Zero().micros(), 0);
}

TEST(SimTimeTest, AffineArithmetic) {
  const SimTime t0 = SimTime::Epoch();
  const SimTime t1 = t0 + Duration::Millis(5);
  EXPECT_EQ((t1 - t0).micros(), 5000);
  EXPECT_EQ((t1 - Duration::Millis(5)), t0);
  EXPECT_GT(t1, t0);
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Micros(12).ToString(), "12 us");
  EXPECT_EQ(Duration::Millis(3).ToString(), "3.000 ms");
  EXPECT_EQ(Duration::Seconds(2).ToString(), "2.000 s");
}

TEST(BandwidthTest, TransmitTimeMatchesArithmetic) {
  // 1 MB at 8 Mbps = exactly 1 second.
  EXPECT_EQ(Bandwidth::Mbps(8).TransmitTime(1'000'000).micros(), 1'000'000);
  // 1500 bytes at 100 Mbps = 120 us.
  EXPECT_EQ(Bandwidth::Mbps(100).TransmitTime(1500).micros(), 120);
}

TEST(BandwidthTest, TransmitTimeRoundsUp) {
  // 1 byte at 1 Gbps = 8 ns -> rounds up to 1 us, never 0.
  EXPECT_EQ(Bandwidth::Gbps(1).TransmitTime(1).micros(), 1);
  EXPECT_EQ(Bandwidth::Gbps(1).TransmitTime(0).micros(), 0);
}

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(KiB(2), 2048u);
  EXPECT_EQ(MiB(1), 1048576u);
  EXPECT_EQ(KB(231), 231'000u);
  EXPECT_EQ(MB(2), 2'000'000u);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(KB(231)), "231.0 KB");
  EXPECT_EQ(FormatBytes(MB(2)), "2.00 MB");
}

// ---------------------------------------------------------------------------
// Rng / Zipf
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(7), 7u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(14);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextExponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfDistribution zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(50, 0.9);
  double sum = 0;
  for (std::size_t k = 0; k < 50; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PopularRanksDominate) {
  ZipfDistribution zipf(100, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(99));
}

TEST(ZipfTest, SampleHistogramTracksPmf) {
  ZipfDistribution zipf(20, 1.2);
  Rng rng(16);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t k : {0u, 1u, 5u}) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.Pmf(k), 0.01)
        << "rank " << k;
  }
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1aKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(std::string_view{}), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, ContentDigestDeterministic) {
  const ByteVec data = DeterministicBytes(1024, 42);
  EXPECT_EQ(ContentDigest(data), ContentDigest(data));
}

TEST(HashTest, ContentDigestSensitiveToEveryByte) {
  ByteVec data = DeterministicBytes(256, 43);
  const Digest128 base = ContentDigest(data);
  for (std::size_t i = 0; i < data.size(); i += 37) {
    ByteVec mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(ContentDigest(mutated), base) << "byte " << i;
  }
}

TEST(HashTest, ContentDigestLengthSensitive) {
  const ByteVec a = DeterministicBytes(100, 44);
  ByteVec b = a;
  b.push_back(0);
  EXPECT_NE(ContentDigest(a), ContentDigest(b));
  // Zero-extension must also change the digest (prefix attack).
  ByteVec c(a.begin(), a.end() - 1);
  EXPECT_NE(ContentDigest(a), ContentDigest(c));
}

TEST(HashTest, DigestHexIs32Chars) {
  const Digest128 d{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(d.ToHex(), "0123456789abcdeffedcba9876543210");
}

TEST(HashTest, NoCollisionsAcrossManyBuffers) {
  std::unordered_set<std::string> seen;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    seen.insert(ContentDigest(DeterministicBytes(64, i)).ToHex());
  }
  EXPECT_EQ(seen.size(), 2000u);
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI64(-42);
  w.WriteF32(3.5f);
  w.WriteF64(-2.25);

  ByteReader r(w.bytes());
  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  float f32;
  double f64;
  ASSERT_TRUE(r.ReadU8(u8).ok());
  ASSERT_TRUE(r.ReadU16(u16).ok());
  ASSERT_TRUE(r.ReadU32(u32).ok());
  ASSERT_TRUE(r.ReadU64(u64).ok());
  ASSERT_TRUE(r.ReadI64(i64).ok());
  ASSERT_TRUE(r.ReadF32(f32).ok());
  ASSERT_TRUE(r.ReadF64(f64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, BlobStringVectorRoundTrip) {
  ByteWriter w;
  const ByteVec blob = {1, 2, 3, 4, 5};
  const std::vector<float> vec = {0.5f, -1.5f, 2.0f};
  w.WriteBlob(blob);
  w.WriteString("hello");
  w.WriteF32Vector(vec);

  ByteReader r(w.bytes());
  ByteVec blob_out;
  std::string str_out;
  std::vector<float> vec_out;
  ASSERT_TRUE(r.ReadBlob(blob_out).ok());
  ASSERT_TRUE(r.ReadString(str_out).ok());
  ASSERT_TRUE(r.ReadF32Vector(vec_out).ok());
  EXPECT_EQ(blob_out, blob);
  EXPECT_EQ(str_out, "hello");
  EXPECT_EQ(vec_out, vec);
}

TEST(BytesTest, TruncatedReadsFailWithDataLoss) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r(w.bytes());
  std::uint32_t u32;
  EXPECT_EQ(r.ReadU32(u32).code(), StatusCode::kDataLoss);
}

TEST(BytesTest, BlobLengthBeyondBufferFailsAndRestoresCursor) {
  ByteWriter w;
  w.WriteU32(1000);  // claims 1000 bytes; none follow
  ByteReader r(w.bytes());
  ByteVec out;
  EXPECT_EQ(r.ReadBlob(out).code(), StatusCode::kDataLoss);
  // Cursor restored: the length field is still readable.
  std::uint32_t len;
  ASSERT_TRUE(r.ReadU32(len).ok());
  EXPECT_EQ(len, 1000u);
}

TEST(BytesTest, SkipAndReadBytes) {
  ByteWriter w;
  w.WriteU32(0x11111111);
  w.WriteU32(0x22222222);
  ByteReader r(w.bytes());
  ASSERT_TRUE(r.Skip(4).ok());
  ByteVec raw;
  ASSERT_TRUE(r.ReadBytes(raw, 4).ok());
  EXPECT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw[0], 0x22);
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(BytesTest, DeterministicBytesStableAndSeedSensitive) {
  EXPECT_EQ(DeterministicBytes(100, 5), DeterministicBytes(100, 5));
  EXPECT_NE(DeterministicBytes(100, 5), DeterministicBytes(100, 6));
  EXPECT_EQ(DeterministicBytes(0, 5).size(), 0u);
  EXPECT_EQ(DeterministicBytes(13, 5).size(), 13u);  // non-multiple of 8
}

// Property: write/read round trip over random scalar sequences.
class BytesPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytesPropertyTest, RandomSequenceRoundTrips) {
  Rng rng(GetParam());
  ByteWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = rng.NextU64();
    values.push_back(v);
    w.WriteU64(v);
  }
  ByteReader r(w.bytes());
  for (const std::uint64_t expected : values) {
    std::uint64_t got;
    ASSERT_TRUE(r.ReadU64(got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-6);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, MergeEqualsConcatenation) {
  Rng rng(21);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3 + 1;
    all.Add(x);
    (i % 2 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleTest, ExactPercentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleTest, SingleElement) {
  Sample s;
  s.Add(7.0);
  EXPECT_EQ(s.Percentile(0), 7.0);
  EXPECT_EQ(s.Percentile(50), 7.0);
  EXPECT_EQ(s.Percentile(100), 7.0);
}

TEST(SampleTest, PercentileAfterIncrementalAdds) {
  Sample s;
  s.Add(10);
  EXPECT_EQ(s.median(), 10);
  s.Add(20);  // re-sorts lazily
  s.Add(0);
  EXPECT_EQ(s.median(), 10);
}

TEST(LatencyHistogramTest, QuantilesApproximateTruth) {
  LatencyHistogram h;
  Rng rng(22);
  std::vector<double> truth;
  for (int i = 0; i < 20000; ++i) {
    const auto us = static_cast<std::int64_t>(rng.NextExponential(1e-4));
    h.AddMicros(us);
    truth.push_back(static_cast<double>(us));
  }
  std::sort(truth.begin(), truth.end());
  const double p50_true = truth[truth.size() / 2];
  const double p50_est = h.QuantileMicros(0.5);
  // Bucket width is sqrt(2): the estimate must be within a factor ~1.5.
  EXPECT_GT(p50_est, p50_true / 1.6);
  EXPECT_LT(p50_est, p50_true * 1.6);
  EXPECT_EQ(h.count(), 20000u);
}

TEST(LatencyHistogramTest, ToStringListsNonEmptyBuckets) {
  LatencyHistogram h;
  h.AddMicros(10);
  h.AddMicros(10000);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_FALSE(s.empty());
}

// ---------------------------------------------------------------------------
// Frame — the refcounted zero-copy buffer every layer ships.
// ---------------------------------------------------------------------------

TEST(FrameTest, OwnAdoptsWithoutCopying) {
  const std::uint64_t copies_before = frame_stats().copies();
  ByteVec bytes = DeterministicBytes(1024, 1);
  const ByteVec expected = bytes;
  const Frame frame = Frame::Own(std::move(bytes));
  EXPECT_EQ(frame.size(), 1024u);
  EXPECT_EQ(frame.CloneBytes(), expected);
  // Own() is free; only the explicit CloneBytes above counted.
  EXPECT_EQ(frame_stats().copies(), copies_before + 1);
}

TEST(FrameTest, CopyingAFrameSharesTheBuffer) {
  const Frame a(DeterministicBytes(256, 2));
  EXPECT_EQ(a.use_count(), 1);
  const Frame b = a;
  const Frame c = b;
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_TRUE(b.SharesBufferWith(a));
  EXPECT_TRUE(c.SharesBufferWith(a));
  EXPECT_EQ(b.data(), a.data());
}

TEST(FrameTest, SliceSharesAndViewsTheWindow) {
  const ByteVec bytes = DeterministicBytes(100, 3);
  const Frame frame = Frame::Own(ByteVec(bytes));
  const Frame slice = frame.Slice(20, 30);
  EXPECT_TRUE(slice.SharesBufferWith(frame));
  EXPECT_EQ(slice.size(), 30u);
  EXPECT_EQ(slice.CloneBytes(),
            ByteVec(bytes.begin() + 20, bytes.begin() + 50));
  // Slices of slices compose.
  const Frame inner = slice.Slice(5, 10);
  EXPECT_EQ(inner.CloneBytes(),
            ByteVec(bytes.begin() + 25, bytes.begin() + 35));
}

TEST(FrameTest, SliceOfRecoversASubSpanAsASharedFrame) {
  const Frame frame(DeterministicBytes(64, 4));
  const auto sub = frame.span().subspan(8, 16);
  const Frame sliced = frame.SliceOf(sub);
  EXPECT_TRUE(sliced.SharesBufferWith(frame));
  EXPECT_EQ(sliced.data(), sub.data());
  EXPECT_EQ(sliced.size(), sub.size());
}

TEST(FrameTest, ExplicitCopiesAreCounted) {
  const std::uint64_t copies_before = frame_stats().copies();
  const std::uint64_t bytes_before = frame_stats().bytes_copied();
  const ByteVec bytes = DeterministicBytes(500, 5);
  const Frame copied = Frame::Copy(bytes);
  EXPECT_FALSE(copied.SharesBufferWith(Frame()));
  EXPECT_EQ(frame_stats().copies(), copies_before + 1);
  EXPECT_EQ(frame_stats().bytes_copied(), bytes_before + 500);
  (void)copied.CloneBytes();
  EXPECT_EQ(frame_stats().copies(), copies_before + 2);
  EXPECT_EQ(frame_stats().bytes_copied(), bytes_before + 1000);
}

TEST(FrameTest, MutableSpanPatchesInPlaceWhenUniquelyHeld) {
  const std::uint64_t copies_before = frame_stats().copies();
  Frame frame(ByteVec{1, 2, 3, 4});
  const auto* data_before = frame.data();
  frame.MutableSpan()[2] = 99;
  EXPECT_EQ(frame.data(), data_before);  // no reallocation
  EXPECT_EQ(frame.CloneBytes(), (ByteVec{1, 2, 99, 4}));
  // The in-place patch cost zero counted copies (CloneBytes above is 1).
  EXPECT_EQ(frame_stats().copies(), copies_before + 1);
}

TEST(FrameTest, MutableSpanCopiesOnWriteWhenShared) {
  Frame original(ByteVec{1, 2, 3, 4});
  Frame shared = original;
  const std::uint64_t copies_before = frame_stats().copies();
  shared.MutableSpan()[0] = 77;
  // The mutation forced a counted copy, and the other holder never sees
  // it.
  EXPECT_EQ(frame_stats().copies(), copies_before + 1);
  EXPECT_FALSE(shared.SharesBufferWith(original));
  EXPECT_EQ(original.span()[0], 1);
  EXPECT_EQ(shared.span()[0], 77);
  EXPECT_EQ(original.use_count(), 1);
}

TEST(FrameTest, EmptyFrameBehaves) {
  const Frame empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_TRUE(empty.span().empty());
}

}  // namespace
}  // namespace coic
